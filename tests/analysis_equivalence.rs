//! The analysis engine's determinism contract: the full experiment
//! registry renders byte-identical output at any `analysis_threads`
//! count, through the sorted-index and naive grouping paths alike, and
//! matches the pre-engine serial output pinned by a golden digest.
//!
//! See `crates/core/src/experiments.rs` for why this holds by
//! construction (registry-indexed result slots, merge in registry order).

use ipv6_user_study::analysis::IndexMode;
use ipv6_user_study::experiments::run_all_with;
use ipv6_user_study::report::{render_markdown, render_summary};
use ipv6_user_study::stats::hash::stable_hash64;
use ipv6_user_study::{Study, StudyConfig};

/// `stable_hash64("ANEQ", markdown)` of the tiny-scale serial
/// `render_markdown` output, pinned from the serial engine before the
/// parallel rewrite. Any change to what the analyses compute — not just
/// how fast — moves this digest. Last repinned for the out-of-core PR:
/// `Study::user_sample_rate` switched from the configured probability to
/// the realized sampler-counter rate (it feeds the extrapolated o62
/// scale), and the rendered preamble now names the relocated `repro`
/// binary.
const GOLDEN_TINY_MARKDOWN_DIGEST: u64 = 0x8bca_6eb1_5de8_2ac9;

const DIGEST_SEED: u64 = 0x414E_4551; // "ANEQ"

fn tiny_study() -> Study {
    Study::run(StudyConfig::tiny()).expect("tiny preset is valid")
}

/// Renders the registry output for one engine configuration.
fn rendered(threads: usize, mode: IndexMode) -> (String, String) {
    let mut study = tiny_study();
    let results = run_all_with(&mut study, threads, mode);
    (render_markdown(&results), render_summary(&results))
}

#[test]
fn parallel_engine_matches_serial_at_every_thread_count() {
    let (serial_md, serial_summary) = rendered(1, IndexMode::Sorted);
    for threads in [2usize, 8] {
        let (md, summary) = rendered(threads, IndexMode::Sorted);
        assert_eq!(
            serial_md, md,
            "markdown differs at analysis_threads={threads}"
        );
        assert_eq!(
            serial_summary, summary,
            "summary differs at analysis_threads={threads}"
        );
    }
}

#[test]
fn naive_grouping_matches_the_sorted_index_path() {
    let (sorted_md, sorted_summary) = rendered(1, IndexMode::Sorted);
    for threads in [1usize, 8] {
        let (md, summary) = rendered(threads, IndexMode::Naive);
        assert_eq!(
            sorted_md, md,
            "naive-index markdown differs at analysis_threads={threads}"
        );
        assert_eq!(
            sorted_summary, summary,
            "naive-index summary differs at analysis_threads={threads}"
        );
    }
}

#[test]
fn repeated_runs_produce_the_same_digest() {
    let digest = |md: &str| stable_hash64(DIGEST_SEED, md.as_bytes());
    let (a, _) = rendered(8, IndexMode::Sorted);
    let (b, _) = rendered(8, IndexMode::Sorted);
    assert_eq!(digest(&a), digest(&b), "same config, different output");
}

#[test]
fn serial_output_matches_the_pinned_golden_digest() {
    let (md, _) = rendered(1, IndexMode::Sorted);
    let digest = stable_hash64(DIGEST_SEED, md.as_bytes());
    assert_eq!(
        digest, GOLDEN_TINY_MARKDOWN_DIGEST,
        "tiny-scale analysis output drifted from the pinned pre-engine \
         golden (update the constant only for intentional analysis changes)"
    );
}

/// The columnar-core contract: the interned struct-of-arrays engine must
/// reproduce the row-oriented serial output bit for bit — the pinned
/// pre-columnar golden digest — at both ends of the thread range. A
/// drifting intern order (dense ids not isomorphic to entity order)
/// or a lossy column round-trip shows up here first.
#[test]
fn columnar_engine_matches_the_row_golden_at_1_and_8_threads() {
    for threads in [1usize, 8] {
        let (md, _) = rendered(threads, IndexMode::Sorted);
        let digest = stable_hash64(DIGEST_SEED, md.as_bytes());
        assert_eq!(
            digest, GOLDEN_TINY_MARKDOWN_DIGEST,
            "columnar output drifted from the row-store golden at \
             analysis_threads={threads}"
        );
    }
}
