//! Storage-layer chaos tests: deterministic I/O fault injection through
//! the spill pipeline.
//!
//! Four contracts under test, the crash-safe storage layer's acceptance
//! criteria:
//!
//! 1. **I/O retry determinism** — transient write/read faults (including
//!    torn short writes) absorbed by op-level retries, and faulted shard
//!    attempts recovered by shard-level retries, leave the merged
//!    datasets byte-identical to a fault-free run at any thread count.
//! 2. **Typed corruption** — flipped on-disk bytes surface as
//!    [`SpillError::Corrupt`] naming the file, run, and byte offset —
//!    never as a panic — and the failed run leaves no orphan spill files.
//! 3. **Budget degradation** — a too-small `disk_budget_bytes` fails
//!    shards with a non-retryable budget fault; under
//!    `FailurePolicy::Degrade` the run completes and reports every
//!    dropped shard with `kind: "budget"`.
//! 4. **Sparse shards** — near-empty populations (zero-record families,
//!    empty run manifests) flow through the fallible merge unchanged.
//!
//! Every fault here is a pure function of the study seed, so each test
//! replays bit-for-bit.

use std::path::PathBuf;

use ipv6_user_study::stats::hash::StableHasher;
use ipv6_user_study::telemetry::ColumnSlice;
use ipv6_user_study::{
    FailurePolicy, FaultInjector, FaultKind, SpillError, StorageMode, Study, StudyConfig,
    StudyError,
};

/// Order-sensitive digest of a record sequence.
fn digest(records: ColumnSlice<'_>) -> u64 {
    let mut h = StableHasher::new(0x4348_494F); // "CHIO"
    for r in records.records() {
        h.write_u64(u64::from(r.ts.secs()))
            .write_u64(r.user.raw())
            .write_u64(r.ip_key())
            .write_u64(u64::from(r.asn.0));
    }
    h.finish()
}

/// Full-dataset digest comparison between two studies.
fn assert_identical(a: &Study, b: &Study, what: &str) {
    assert_eq!(
        a.datasets().offered,
        b.datasets().offered,
        "{what}: offered"
    );
    assert_eq!(
        digest(a.datasets().request_sample.all()),
        digest(b.datasets().request_sample.all()),
        "{what}: request sample"
    );
    assert_eq!(
        digest(a.datasets().user_sample.all()),
        digest(b.datasets().user_sample.all()),
        "{what}: user sample"
    );
    assert_eq!(
        digest(a.datasets().ip_sample.all()),
        digest(b.datasets().ip_sample.all()),
        "{what}: ip sample"
    );
    for &len in &a.config().prefix_lengths {
        assert_eq!(
            digest(a.datasets().prefix_sample(len).all()),
            digest(b.datasets().prefix_sample(len).all()),
            "{what}: /{len} prefix sample"
        );
    }
    assert_eq!(
        digest(a.abuse_store().all()),
        digest(b.abuse_store().all()),
        "{what}: abuse store"
    );
    assert_eq!(
        digest(a.pair_store().all()),
        digest(b.pair_store().all()),
        "{what}: pair store"
    );
}

fn spill_config(threads: usize, segment_rows: usize) -> StudyConfig {
    let mut cfg = StudyConfig::tiny();
    cfg.threads = threads;
    cfg.storage = StorageMode::Spill {
        dir: None,
        segment_rows,
    };
    cfg
}

/// Transient write, read, and torn-write faults — all within the
/// op-level retry budget — are absorbed inside the spill layer: no shard
/// ever fails, the counters prove the faults fired, and the merged bytes
/// match a fault-free run at 1 and 8 threads.
#[test]
fn absorbed_io_faults_leave_runs_byte_identical_at_1_and_8_threads() {
    let clean = Study::run(spill_config(2, 256)).expect("fault-free spill run");
    assert!(clean.faults().is_clean());
    assert_eq!(clean.faults().io_retries, 0);

    let mut retries_by_threads = Vec::new();
    for threads in [1usize, 8] {
        let mut cfg = spill_config(threads, 256);
        cfg.instrument = true;
        cfg.faults = Some(
            FaultInjector::new()
                .with_io_write_fail_rate(0.05)
                .with_io_read_fail_rate(0.05)
                .with_short_write_rate(0.5),
        );
        let chaotic = Study::run(cfg).expect("op-level retries absorb every fault");
        assert!(
            chaotic.faults().is_clean(),
            "threads={threads}: absorbed faults must not fail shards"
        );
        assert!(
            chaotic.faults().io_retries > 0,
            "threads={threads}: the injector fired"
        );
        retries_by_threads.push(chaotic.faults().io_retries);
        assert_identical(
            &clean,
            &chaotic,
            &format!("absorbed faults threads={threads}"),
        );

        // The v5 report carries the storage counters.
        let json = chaotic.report().to_json_string();
        assert!(json.contains("\"io_retries\""), "{json}");
        assert!(json.contains("\"spill_bytes_verified\""), "{json}");
    }
    // Fault decisions key off the segment stream, not the worker that
    // wrote it, so the absorbed-retry count is thread-count invariant.
    assert_eq!(retries_by_threads[0], retries_by_threads[1]);
}

/// Write faults that outlast the op-level retry budget fail the shard
/// attempt with a typed Io fault; the shard-level retry re-runs the pure
/// shard function and the recovered run stays byte-identical.
#[test]
fn exhausted_op_retries_fail_the_shard_and_a_shard_retry_recovers_it() {
    let clean = Study::run(spill_config(2, 256)).expect("fault-free spill run");

    for threads in [1usize, 8] {
        let mut cfg = spill_config(threads, 256);
        cfg.failure_policy = FailurePolicy::Retry;
        cfg.max_shard_retries = 8;
        // Each faulted op fails 16 io attempts in a row — far past the
        // op budget — so the owning shard attempt fails with Io.
        cfg.faults = Some(
            FaultInjector::new()
                .with_io_write_fail_rate(0.001)
                .with_io_fail_attempts(16),
        );
        let chaotic = Study::run(cfg).expect("shard retries recover io-failed attempts");
        assert!(
            !chaotic.faults().is_clean(),
            "threads={threads}: some shard attempt must have failed"
        );
        assert!(
            chaotic
                .faults()
                .failures
                .iter()
                .all(|f| f.kind == FaultKind::Io && !f.dropped),
            "threads={threads}: {:?}",
            chaotic.faults().failures
        );
        let rendered = chaotic.faults().render();
        assert!(rendered.contains("last io:"), "{rendered}");
        assert_identical(
            &clean,
            &chaotic,
            &format!("io shard retry threads={threads}"),
        );
    }
}

/// Flipped on-disk bytes are detected by the merge-time checksum pass
/// and surface as a typed [`SpillError::Corrupt`] naming the file, run,
/// and offset — never a panic — and the failed session leaves nothing
/// on disk (the mid-merge `StudyError` orphan check).
#[test]
fn injected_corruption_is_a_typed_error_and_leaves_no_orphans() {
    let parent = std::env::temp_dir().join(format!("ipv6-chaos-io-{}", std::process::id()));
    std::fs::create_dir_all(&parent).expect("create spill parent");

    let mut cfg = StudyConfig::tiny();
    cfg.threads = 2;
    cfg.storage = StorageMode::Spill {
        dir: Some(PathBuf::from(&parent)),
        segment_rows: 256,
    };
    // Every successfully written run gets one byte flipped afterwards.
    cfg.faults = Some(FaultInjector::new().with_corrupt_rate(1.0));

    match Study::run(cfg) {
        Err(StudyError::Spill(e @ SpillError::Corrupt { .. })) => {
            let SpillError::Corrupt {
                ref path,
                run,
                offset,
                ref reason,
            } = e
            else {
                unreachable!()
            };
            assert!(
                path.starts_with(&parent),
                "corrupt path {path:?} outside the session"
            );
            assert!(!reason.is_empty(), "reason names what failed to verify");
            // The rendered error carries the full locator.
            let msg = e.to_string();
            assert!(msg.contains(&format!("run {run}")), "{msg}");
            assert!(msg.contains(&format!("byte offset {offset}")), "{msg}");
        }
        other => panic!("expected SpillError::Corrupt, got {other:?}"),
    }

    // The session directory is torn down with the error: only the
    // user-supplied parent remains, empty.
    let leftovers: Vec<_> = std::fs::read_dir(&parent)
        .expect("parent dir survives the failed run")
        .collect();
    assert!(leftovers.is_empty(), "orphan spill entries: {leftovers:?}");
    std::fs::remove_dir(&parent).expect("cleanup");
}

/// A too-small disk budget fails spilling shards with a budget fault.
/// The fault is non-retryable — the budget would still be exceeded — so
/// even with retries configured each shard is abandoned after one
/// attempt; under `Degrade` the run completes on whatever fit.
#[test]
fn disk_budget_exhaustion_degrades_gracefully_with_budget_kind() {
    let run = |policy: FailurePolicy| {
        let mut cfg = spill_config(1, 256);
        cfg.instrument = true;
        cfg.failure_policy = policy;
        cfg.max_shard_retries = 3;
        cfg.disk_budget_bytes = Some(4096);
        Study::run(cfg)
    };

    let degraded = run(FailurePolicy::Degrade).expect("degrade completes within the budget");
    assert!(degraded.faults().dropped_count() > 0, "the budget bit");
    for f in degraded.faults().failures.iter().filter(|f| f.dropped) {
        assert_eq!(f.kind, FaultKind::Budget);
        assert_eq!(f.attempts, 1, "budget faults never consume retries");
        assert!(f.panic_msg.contains("budget"), "{}", f.panic_msg);
    }
    // The dropped shards are visible in the v5 report, and the config
    // echo records the budget that caused them.
    let json = degraded.report().to_json_string();
    assert!(json.contains("\"kind\": \"budget\""), "{json}");
    assert!(json.contains("\"disk_budget_bytes\": 4096"), "{json}");

    // The same budget under Abort fails the run instead of degrading.
    match run(FailurePolicy::Abort) {
        Err(StudyError::ShardsFailed(report)) => {
            assert!(report
                .failures
                .iter()
                .all(|f| f.kind == FaultKind::Budget && f.attempts == 1));
        }
        other => panic!("expected ShardsFailed, got {other:?}"),
    }

    // An ample budget changes nothing: byte-identical to no budget.
    let mut roomy = spill_config(2, 256);
    roomy.disk_budget_bytes = Some(1 << 30);
    let roomy = Study::run(roomy).expect("ample budget");
    assert!(roomy.faults().is_clean());
    let unbudgeted = Study::run(spill_config(2, 256)).expect("no budget");
    assert_identical(&unbudgeted, &roomy, "ample budget vs none");
}

/// Near-empty populations — where whole families spill zero records and
/// some shards seal empty run manifests — flow through the fallible
/// merge and still match the in-memory path byte for byte.
#[test]
fn sparse_shards_with_empty_families_merge_identically() {
    let tiny_pop = |storage: StorageMode| {
        let mut cfg = StudyConfig::tiny();
        cfg.households = 3;
        cfg.threads = 4;
        cfg.storage = storage;
        Study::run(cfg).expect("sparse run")
    };
    let memory = tiny_pop(StorageMode::InMemory);
    let spilled = tiny_pop(StorageMode::Spill {
        dir: None,
        segment_rows: 64,
    });
    assert_identical(&memory, &spilled, "sparse population");
    // With 3 households the run is truly sparse, but the samplers still
    // retained something — the test exercises real (if small) merges.
    assert!(memory.datasets().offered > 0);
}
