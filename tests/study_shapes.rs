//! End-to-end integration tests: run one shared study at test scale and
//! assert the paper's *qualitative findings* — orderings, inversions,
//! crossovers — hold in the reproduction.
//!
//! These are the acceptance criteria from DESIGN.md §4: absolute platform
//! numbers are out of reach without Facebook's telemetry, but who wins, by
//! roughly what factor, and where the knees sit must match.

use std::sync::OnceLock;

use ipv6_user_study::experiments::{self, AnalysisCtx, ExperimentOutput};
use ipv6_user_study::{Study, StudyConfig};

/// One shared study run (and one shared analysis context over it) for the
/// whole test binary: simulation dominates runtime, and every test reads
/// the same deterministic datasets through `&self` queries.
fn ctx() -> &'static AnalysisCtx<'static> {
    static STUDY: OnceLock<Study> = OnceLock::new();
    static CTX: OnceLock<AnalysisCtx<'static>> = OnceLock::new();
    CTX.get_or_init(|| {
        AnalysisCtx::new(
            STUDY.get_or_init(|| Study::run(StudyConfig::test_scale()).expect("valid preset")),
        )
    })
}

fn run(f: impl FnOnce(&AnalysisCtx) -> ExperimentOutput) -> ExperimentOutput {
    f(ctx())
}

fn stat(out: &ExperimentOutput, key: &str) -> f64 {
    out.get_stat(key)
        .unwrap_or_else(|| panic!("missing stat {key}"))
}

#[test]
fn fig1_prevalence_band_and_scissors() {
    let out = run(experiments::fig1_prevalence);
    let users = stat(&out, "fig1.user_share_mean");
    let reqs = stat(&out, "fig1.request_share_mean");
    // Paper: 34–36% of users, 22–25% of requests (we allow simulator slack).
    assert!((0.28..=0.46).contains(&users), "user share {users}");
    assert!((0.16..=0.33).contains(&reqs), "request share {reqs}");
    assert!(users > reqs, "user share must exceed request share");
    // The lockdown scissors: users down, requests up.
    assert!(stat(&out, "fig1.user_share_lockdown_delta") < 0.005);
    assert!(stat(&out, "fig1.request_share_lockdown_delta") > -0.005);
}

#[test]
fn tab1_top_asns_are_ipv6_heavy() {
    let out = run(experiments::tab1_asns);
    assert!(
        stat(&out, "tab1.top_ratio") > 0.85,
        "top ASN should be >85% IPv6"
    );
    // §4.2: a tail of ASNs has little or no IPv6.
    assert!(stat(&out, "tab1.low_v6_share") > stat(&out, "tab1.zero_v6_share"));
}

#[test]
fn tab2_country_stories() {
    let out = run(experiments::tab2_countries);
    // India leads (Table 2).
    assert!(stat(&out, "tab2.in_apr") > 0.70);
    assert!(
        stat(&out, "tab2.in_apr") > stat(&out, "tab2.us_apr") - 0.08,
        "IN near the top"
    );
    // Germany jumps (deployment ramp + lockdown), Appendix A.2.
    assert!(stat(&out, "tab2.de_delta") > 0.05, "Germany should rise");
}

#[test]
fn c44_client_address_patterns() {
    let out = run(experiments::c44_client_patterns);
    // Transition protocols are essentially dead (<0.01% in the paper).
    assert!(stat(&out, "c44.transition_share") < 0.005);
    // EUI-64 users are a small minority (~2.5%)…
    let mac = stat(&out, "c44.mac_embedded_share");
    assert!((0.003..=0.06).contains(&mac), "mac-embedded share {mac}");
    // …and most of them reuse one IID (static MACs, 83% in the paper).
    assert!(stat(&out, "c44.iid_reuse_share") > 0.6);
}

#[test]
fn fig2_users_hold_more_v6_than_v4_addresses() {
    let out = run(experiments::fig2_addrs_per_user);
    assert!(
        stat(&out, "fig2.v6_week_median") >= stat(&out, "fig2.v4_week_median"),
        "weekly v6 addresses should exceed v4 (paper: 9 vs 6)"
    );
    // Singles exist but are a minority over a week for v6 users.
    assert!(stat(&out, "fig2.v6_day_single") < 0.75);
}

#[test]
fn fig3_abusive_inversion() {
    let out = run(experiments::fig3_aa_addrs);
    // Attackers hold FEWER v6 than v4 addresses — opposite of benign users.
    assert!(
        stat(&out, "fig3.v6_mean") <= stat(&out, "fig3.v4_mean"),
        "abusive accounts: v6 {} should not exceed v4 {}",
        stat(&out, "fig3.v6_mean"),
        stat(&out, "fig3.v4_mean")
    );
    assert!(stat(&out, "fig3.v6_day_single") >= stat(&out, "fig3.v4_day_single"));
}

#[test]
fn o51_outlier_users_are_v4_heavy() {
    let out = run(experiments::o51_user_outliers);
    assert!(
        stat(&out, "o51.v4_max") > stat(&out, "o51.v6_max"),
        "the most extreme user holds more v4 ({}) than v6 ({}) addresses",
        stat(&out, "o51.v4_max"),
        stat(&out, "o51.v6_max")
    );
    // Abusive outliers likewise (paper: 11.0K v4 vs none over 1K v6).
    assert!(stat(&out, "o51.aa_v4_max") > stat(&out, "o51.aa_v6_max"));
}

#[test]
fn fig4_prefix_aggregation_knees() {
    let out = run(experiments::fig4_prefix_span);
    let at128 = stat(&out, "fig4.users_le1_at128");
    let at72 = stat(&out, "fig4.users_le1_at72");
    let at64 = stat(&out, "fig4.users_le1_at64");
    let at48 = stat(&out, "fig4.users_le1_at48");
    let at40 = stat(&out, "fig4.users_le1_at40");
    // Longer-than-/64 prefixes behave like full addresses…
    assert!((at72 - at128).abs() < 0.12, "/72 ≈ /128: {at72} vs {at128}");
    // …then a large jump at /64 (the SLAAC aggregation knee)…
    assert!(at64 > at72 + 0.15, "modal shift at /64: {at64} vs {at72}");
    // …and further aggregation below /48 (routing prefixes).
    assert!(at40 >= at48, "sub-/48 aggregation: {at40} vs {at48}");
}

#[test]
fn fig5_v6_addresses_are_ephemeral() {
    let out = run(experiments::fig5_lifespans);
    let v6_new = stat(&out, "fig5.v6_newborn_share");
    let v4_new = stat(&out, "fig5.v4_newborn_share");
    assert!(
        v6_new > v4_new + 0.2,
        "v6 pairs far younger: {v6_new} vs {v4_new}"
    );
    assert!(
        v6_new > 0.8,
        "most v6 pairs first seen that day (paper 84%)"
    );
    // Old pairs are an IPv4 phenomenon (paper: 22% vs 1.2% past a week).
    assert!(stat(&out, "fig5.v4_gt7d_share") > 5.0 * stat(&out, "fig5.v6_gt7d_share"));
    assert!(stat(&out, "fig5.v4_ge27d_share") > stat(&out, "fig5.v6_ge27d_share"));
}

#[test]
fn fig6_prefixes_outlive_addresses() {
    let out = run(experiments::fig6_prefix_lifespans);
    let new128 = stat(&out, "fig6.v6_new_at128");
    let new64 = stat(&out, "fig6.v6_new_at64");
    assert!(
        new64 < new128 - 0.3,
        "users persist in /64s far longer than on addresses: {new64} vs {new128}"
    );
    // IPv4 address lifespans sit between v6 /128 and v6 /64 (Fig 6a's
    // "IPv4 most similar to the IPv6 /64" up to simulator slack).
    let v4 = stat(&out, "fig6.v4_new_at32");
    assert!(v4 < new128, "IPv4 addresses live longer than v6 addresses");
}

#[test]
fn fig7_v6_addresses_are_sparsely_populated() {
    let out = run(experiments::fig7_users_per_ip);
    let v6_single = stat(&out, "fig7.v6_day_single");
    let v4_single = stat(&out, "fig7.v4_day_single");
    assert!(
        v6_single > 0.85,
        "≈95% of v6 addresses single-user, got {v6_single}"
    );
    assert!(
        v4_single < 0.6,
        "only a minority of v4 addresses single-user, got {v4_single}"
    );
    assert!(
        stat(&out, "fig7.v6_day_le2") > 0.95,
        "paper: >99% of v6 ≤ 2 users"
    );
    // Over a week, v4 sharing grows; v6 barely moves.
    assert!(stat(&out, "fig7.v4_week_single") < v4_single + 1e-9);
    assert!((stat(&out, "fig7.v6_week_single") - v6_single).abs() < 0.05);
    // The >3-users tail is an IPv4 phenomenon (29.3% vs <0.2%).
    assert!(stat(&out, "fig7.v4_day_gt3") > 20.0 * stat(&out, "fig7.v6_day_gt3").max(1e-4));
}

#[test]
fn fig8_abusive_isolation_on_v6() {
    let out = run(experiments::fig8_aa_per_ip);
    // Most addresses with abuse host exactly one abusive account.
    assert!(stat(&out, "fig8.v4_single_aa_day") > 0.5);
    assert!(stat(&out, "fig8.v6_single_aa") > 0.5);
    // v6 abusive addresses are isolated; v4 ones share with benign users.
    assert!(
        stat(&out, "fig8.v6_isolated_day") > stat(&out, "fig8.v4_isolated_day") + 0.2,
        "v6 isolation {} vs v4 {}",
        stat(&out, "fig8.v6_isolated_day"),
        stat(&out, "fig8.v4_isolated_day")
    );
}

#[test]
fn o61_heavy_addresses_are_v4_prevalent_v6_predictable() {
    let out = run(experiments::o61_ip_outliers);
    assert!(
        stat(&out, "o61.v4_max_users") > 3.0 * stat(&out, "o61.v6_max_users"),
        "v4 mega-addresses dwarf v6 ones (paper: 830K vs 71K)"
    );
    assert!(stat(&out, "o61.v4_heavy_count") > stat(&out, "o61.v6_heavy_count"));
    // Heavy v6 addresses concentrate in few ASNs and carry the signature.
    if stat(&out, "o61.v6_heavy_count") > 0.0 {
        assert!(stat(&out, "o61.v6_heavy_top1_asn_share") > 0.5);
        assert!(
            stat(&out, "o61.sig_heavy_share") > stat(&out, "o61.sig_light_share") + 0.5,
            "the gateway signature separates heavy from light addresses"
        );
        assert!(stat(&out, "o61.predictor_recall") > 0.7);
    }
    assert!(stat(&out, "o61.v4_heavy_asns") >= stat(&out, "o61.v6_heavy_asns"));
}

#[test]
fn fig9_users_aggregate_in_64s_and_below_48() {
    let out = run(experiments::fig9_users_per_prefix);
    let s128 = stat(&out, "fig9.single_user_at128");
    let s68 = stat(&out, "fig9.single_user_at68");
    let s64 = stat(&out, "fig9.single_user_at64");
    let s44 = stat(&out, "fig9.single_user_at44");
    assert!(s128 > 0.9, "addresses are single-user");
    assert!(
        s64 < s68 - 0.08,
        "the largest shift is at /64 (paper: 73% → 41%)"
    );
    assert!(s44 < s64, "further aggregation below /48");
    // IPv4 behaves like a short prefix, not like a v6 address.
    assert!(stat(&out, "fig9.v4_best_match_len") <= 64.0);
}

#[test]
fn fig10_abusive_aggregation_at_56() {
    let out = run(experiments::fig10_aa_per_prefix);
    // Abusive accounts aggregate by /56 (hosting customers), and the
    // closest IPv4 analogue is a short prefix.
    assert!(stat(&out, "fig10.v4_aa_best_match_len") <= 64.0);
    assert!(stat(&out, "fig10.aa_single_at56") <= stat(&out, "fig10.aa_single_at64") + 0.05);
}

#[test]
fn o62_gateway_112s_dominate_heavy_prefixes() {
    let out = run(experiments::o62_prefix_outliers);
    // The top /112 rivals the top /64 — gateway blocks ARE both.
    assert!(
        stat(&out, "o62.max112_over_max64") > 0.75,
        "mega-/112s should dominate: ratio {}",
        stat(&out, "o62.max112_over_max64")
    );
    if stat(&out, "o62.heavy_p64_count") > 0.0 {
        assert!(
            stat(&out, "o62.heavy_p64_top4_share") > 0.5,
            "heavy /64s are concentrated"
        );
    }
}

#[test]
fn fig11_actioning_tradeoffs() {
    let out = run(experiments::fig11_roc);
    let v6_full = stat(&out, "fig11.p128_max_tpr");
    let v6_64 = stat(&out, "fig11.p64_max_tpr");
    let v4 = stat(&out, "fig11.IPv4_max_tpr");
    // /64 actioning catches more than full-address actioning (attackers
    // move within prefixes), and IPv4 catches the most (infrastructure
    // persistence) at massive FPR cost.
    assert!(v6_64 >= v6_full, "/64 recall {v6_64} vs /128 {v6_full}");
    assert!(v4 > v6_full, "IPv4 max recall should exceed /128's");
    assert!(
        stat(&out, "fig11.IPv4_t0_fpr") > 2.0 * stat(&out, "fig11.p64_t0_fpr").max(1e-4),
        "IPv4 collateral dwarfs v6 collateral: {} vs {}",
        stat(&out, "fig11.IPv4_t0_fpr"),
        stat(&out, "fig11.p64_t0_fpr")
    );
    // At a low FPR budget, v6 actioning is competitive or better.
    assert!(
        stat(&out, "fig11.p64_tpr_at_fpr_1pct") + 0.05 >= stat(&out, "fig11.IPv4_tpr_at_fpr_1pct"),
        "at 1% FPR, /64 actioning holds its own"
    );
}

#[test]
fn s72_defense_implications() {
    let out = run(experiments::s72_defenses);
    // Rate limits: IPv4 needs far more liberal budgets.
    assert!(
        stat(&out, "s72.ratelimit_v4_over_v6") > 3.0,
        "v4/v6 budget ratio {}",
        stat(&out, "s72.ratelimit_v4_over_v6")
    );
    // Threat intel on v6 addresses decays at least as fast as on /64s.
    assert!(
        stat(&out, "s72.exchange_v6_addr_half_life")
            <= stat(&out, "s72.exchange_v6_p64_half_life") + 1e-9
    );
    // ML: a v6-trained model beats a v4-trained model on v6 units.
    if let (Some(v6v6), Some(v4v6)) = (
        out.get_stat("s72.ml_v6_on_v6_auc"),
        out.get_stat("s72.ml_v4_on_v6_auc"),
    ) {
        assert!(
            v6v6 + 1e-9 >= v4v6,
            "protocol-specific training wins: {v6v6} vs {v4v6}"
        );
    }
}

#[test]
fn study_is_deterministic_across_runs() {
    // Independent of the shared study: two tiny runs must agree exactly.
    let a = Study::run(StudyConfig::tiny()).unwrap();
    let b = Study::run(StudyConfig::tiny()).unwrap();
    assert_eq!(a.datasets().offered, b.datasets().offered);
    assert_eq!(
        a.datasets().user_sample.len(),
        b.datasets().user_sample.len()
    );
    assert_eq!(a.labels().len(), b.labels().len());
}
