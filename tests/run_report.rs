//! The observability layer's two contracts:
//!
//! 1. **Schema stability** — a fixed-seed study produces a
//!    `BENCH_run.json` whose *field set* is pinned (timing values are
//!    free to vary run to run, the paths are not), and the document
//!    never contains `Infinity` or `NaN`.
//! 2. **Passivity** — instrumentation cannot perturb the simulation:
//!    runs with instrumentation on and off yield byte-identical
//!    datasets.

use ipv6_user_study::experiments::run_all;
use ipv6_user_study::stats::hash::StableHasher;
use ipv6_user_study::telemetry::ColumnSlice;
use ipv6_user_study::{Study, StudyConfig};

fn instrumented_tiny_run() -> Study {
    let mut cfg = StudyConfig::tiny();
    cfg.instrument = true;
    let mut study = Study::run(cfg).expect("tiny preset is valid");
    let _ = run_all(&mut study);
    study
}

/// Every field the acceptance contract requires in `BENCH_run.json`.
const REQUIRED_PATHS: &[&str] = &[
    "$.schema_version",
    "$.enabled",
    "$.config.seed",
    "$.config.households",
    "$.config.threads",
    "$.sim.threads",
    "$.sim.phases.plan",
    "$.sim.phases.sim",
    "$.sim.phases.merge",
    "$.sim.phases.sort",
    "$.sim.phases.total",
    "$.sim.shards[].label",
    "$.sim.shards[].records",
    "$.sim.shards[].wall_secs",
    "$.sim.shards[].records_per_sec",
    "$.sim.total_records",
    "$.sim.records_per_sec",
    "$.sim.store_bytes",
    "$.sim.bytes_per_record",
    "$.sim.peak_store_bytes",
    "$.analysis.index_bytes",
    "$.analysis.figures[].id",
    "$.analysis.figures[].wall_secs",
    "$.analysis.figures[].input_records",
    "$.analysis.total_wall_secs",
    "$.analysis.phases.index",
    "$.analysis.phases.passes",
    "$.analysis.phases.total",
    "$.analysis.scanned_records",
    "$.analysis.records_per_sec",
    "$.analysis.index_records",
    "$.analysis.index_records_per_sec",
    "$.analysis.incremental.days_reused",
    "$.analysis.incremental.days_computed",
    "$.analysis.incremental.extend_wall_secs",
    "$.config.analysis_threads",
    "$.actioning[].granularity",
    "$.actioning[].wall_secs",
    "$.actioning[].units_scored",
    "$.actioning[].units_evaluated",
    "$.actioning_sweep.build_wall_secs",
    "$.actioning_sweep.read_wall_secs",
    "$.actioning_sweep.total_wall_secs",
    "$.actioning_sweep.days",
    "$.actioning_sweep.trie_nodes",
    "$.metrics.counters.sim.records_total",
    "$.metrics.gauges.sim.records_per_sec",
    "$.metrics.gauges.sim.store_bytes",
    "$.metrics.gauges.sim.bytes_per_record",
    "$.metrics.gauges.sim.peak_store_bytes",
    "$.metrics.gauges.analysis.index_bytes",
    "$.metrics.histograms.analysis.figure_wall.count",
    "$.metrics.histograms.sim.shard_wall.count",
    "$.config.failure_policy",
    "$.config.max_shard_retries",
    "$.config.storage",
    "$.config.segment_rows",
    "$.config.sampling",
    "$.faults.policy",
    "$.faults.failed_shards[]",
    "$.faults.retries_total",
    "$.faults.dropped_shards",
    "$.faults.records_lost",
    "$.faults.io_retries",
    "$.faults.checksum_failures",
    "$.sim.spill_bytes_verified",
    "$.config.disk_budget_bytes",
    "$.metrics.counters.sim.shard_failures",
    "$.metrics.counters.sim.shard_retries_total",
    "$.metrics.counters.sim.shards_dropped",
    "$.metrics.counters.sim.records_lost",
    "$.metrics.counters.sim.io_retries",
    "$.metrics.counters.sim.checksum_failures",
    "$.metrics.gauges.sim.spill_bytes_verified",
];

/// The per-shard fault fields, present whenever a shard failed (pinned by
/// a fault-injected run below; a clean run's `failed_shards` is empty).
const FAULT_SHARD_PATHS: &[&str] = &[
    "$.faults.failed_shards[].shard",
    "$.faults.failed_shards[].label",
    "$.faults.failed_shards[].attempts",
    "$.faults.failed_shards[].retries",
    "$.faults.failed_shards[].dropped",
    "$.faults.failed_shards[].records_lost",
    "$.faults.failed_shards[].kind",
    "$.faults.failed_shards[].panic_msg",
    "$.metrics.value_histograms.sim.shard_retries.count",
];

#[test]
fn bench_report_schema_is_stable_and_finite() {
    let study = instrumented_tiny_run();
    let json = study.report().to_json();
    let paths = json.schema_paths();
    for required in REQUIRED_PATHS {
        assert!(
            paths.iter().any(|p| p == required),
            "missing {required} in schema: {paths:#?}"
        );
    }

    // Values vary run to run; the field set must not.
    let again = instrumented_tiny_run();
    assert_eq!(
        paths,
        again.report().to_json().schema_paths(),
        "report schema differs between identical runs"
    );

    // The acceptance contract: no Infinity/NaN anywhere in the document.
    let text = study.report().to_json_string();
    assert!(!text.contains("Infinity"), "report contains Infinity");
    assert!(!text.contains("NaN"), "report contains NaN");
}

#[test]
fn faulty_run_pins_the_per_shard_fault_schema() {
    let mut cfg = StudyConfig::tiny();
    cfg.instrument = true;
    cfg.failure_policy = ipv6_user_study::FailurePolicy::Retry;
    cfg.faults = Some(ipv6_user_study::FaultInjector::default().fail_shard(0, 1));
    let study = Study::run(cfg).expect("one retry recovers the shard");
    assert_eq!(study.faults().total_retries(), 1);
    let paths = study.report().to_json().schema_paths();
    for required in FAULT_SHARD_PATHS {
        assert!(
            paths.iter().any(|p| p == required),
            "missing {required} in schema: {paths:#?}"
        );
    }
    let text = study.report().to_json_string();
    assert!(text.contains("\"policy\":"), "faults section names policy");
    assert!(!text.contains("Infinity") && !text.contains("NaN"));
}

#[test]
fn report_covers_every_experiment_and_all_sim_records() {
    let study = instrumented_tiny_run();
    assert_eq!(study.report().figures.len(), 20, "one stat per experiment");
    assert!(study.report().figures.iter().any(|f| f.input_records > 0));
    assert_eq!(
        study.report().actioning.len(),
        4,
        "one stat per granularity"
    );
    assert_eq!(
        study.report().actioning_sweep.days,
        4,
        "one aggregation-trie pair per pooled day"
    );
    assert!(study.report().actioning_sweep.trie_nodes > 0);
    assert_eq!(
        study.report().total_records(),
        study.metrics().total_records(),
        "shard stats must account for every simulated record"
    );
    assert!(study.report().phase_wall("sim").is_some());
}

/// Order-sensitive digest of a record sequence.
fn digest(records: ColumnSlice<'_>) -> u64 {
    let mut h = StableHasher::new(0x4f42_5331); // "OBS1"
    for r in records.records() {
        h.write_u64(u64::from(r.ts.secs()))
            .write_u64(r.user.raw())
            .write_u64(r.ip_key())
            .write_u64(u64::from(r.asn.0));
    }
    h.finish()
}

#[test]
fn instrumentation_leaves_datasets_byte_identical() {
    let run = |instrument: bool| {
        let mut cfg = StudyConfig::tiny();
        cfg.instrument = instrument;
        Study::run(cfg).expect("tiny preset is valid")
    };
    let on = run(true);
    let off = run(false);
    assert!(on.report().enabled);
    assert!(!off.report().enabled);

    assert_eq!(on.datasets().offered, off.datasets().offered);
    assert_eq!(
        on.datasets().user_sample.all(),
        off.datasets().user_sample.all()
    );
    assert_eq!(
        digest(on.datasets().request_sample.all()),
        digest(off.datasets().request_sample.all())
    );
    assert_eq!(
        digest(on.datasets().ip_sample.all()),
        digest(off.datasets().ip_sample.all())
    );
    assert_eq!(
        digest(on.abuse_store().all()),
        digest(off.abuse_store().all())
    );
    assert_eq!(
        digest(on.pair_store().all()),
        digest(off.pair_store().all())
    );
    let lengths = on.config().prefix_lengths.clone();
    for &l in &lengths {
        assert_eq!(
            digest(on.datasets().prefix_sample(l).all()),
            digest(off.datasets().prefix_sample(l).all()),
            "prefix /{l} digest"
        );
    }
}
