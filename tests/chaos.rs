//! Fault-injection ("chaos") tests for the driver's fault-tolerant
//! execution layer.
//!
//! Three contracts under test, all exercised through the deterministic
//! [`FaultInjector`] so CI replays every failure path bit-for-bit:
//!
//! 1. **Retry determinism** — a run whose shards panic and get retried
//!    produces byte-identical datasets to a fault-free run, at every
//!    thread count (each shard is a pure function of the config, so a
//!    retry reproduces the exact bytes the first attempt would have).
//! 2. **Graceful degradation** — under `FailurePolicy::Degrade`, an
//!    unrecoverable shard is dropped, the run completes, and the fault
//!    report (and its `faults` section in the `BENCH_run.json` document)
//!    names exactly that shard.
//! 3. **Failure policies** — `Abort` fails on the first failure without
//!    retrying; `Retry` fails only after the retry budget is exhausted.

use ipv6_user_study::stats::hash::StableHasher;
use ipv6_user_study::telemetry::ColumnSlice;
use ipv6_user_study::{FailurePolicy, FaultInjector, Study, StudyConfig, StudyError};

/// Order-sensitive digest of a record sequence.
fn digest(records: ColumnSlice<'_>) -> u64 {
    let mut h = StableHasher::new(0x4348_414F); // "CHAO"
    for r in records.records() {
        h.write_u64(u64::from(r.ts.secs()))
            .write_u64(r.user.raw())
            .write_u64(r.ip_key())
            .write_u64(u64::from(r.asn.0));
    }
    h.finish()
}

/// Full-dataset digest comparison between two studies.
fn assert_identical(a: &Study, b: &Study, what: &str) {
    assert_eq!(
        a.datasets().offered,
        b.datasets().offered,
        "{what}: offered"
    );
    assert_eq!(
        a.datasets().user_sample.all(),
        b.datasets().user_sample.all(),
        "{what}: user sample"
    );
    assert_eq!(
        digest(a.datasets().request_sample.all()),
        digest(b.datasets().request_sample.all()),
        "{what}: request sample"
    );
    assert_eq!(
        digest(a.datasets().ip_sample.all()),
        digest(b.datasets().ip_sample.all()),
        "{what}: ip sample"
    );
    assert_eq!(
        digest(a.abuse_store().all()),
        digest(b.abuse_store().all()),
        "{what}: abuse store"
    );
    assert_eq!(
        digest(a.pair_store().all()),
        digest(b.pair_store().all()),
        "{what}: pair store"
    );
    let lengths = a.config().prefix_lengths.clone();
    for &l in &lengths {
        assert_eq!(
            digest(a.datasets().prefix_sample(l).all()),
            digest(b.datasets().prefix_sample(l).all()),
            "{what}: prefix /{l}"
        );
    }
}

/// The tiny preset's shard plan: 7 benign shards (indices 0..7) then 5
/// abuse shards (indices 7..12). Failing one of each flavor exercises
/// both shard kinds; the delay shuffles worker scheduling without
/// touching output.
fn chaotic_config(threads: usize) -> StudyConfig {
    let mut cfg = StudyConfig::tiny();
    cfg.threads = threads;
    cfg.failure_policy = FailurePolicy::Retry;
    cfg.max_shard_retries = 2;
    cfg.faults = Some(
        FaultInjector::new()
            .fail_shard(0, 2) // benign shard: recovers on 3rd attempt
            .fail_shard(8, 1) // abuse shard: recovers on 2nd attempt
            .delay_shard(3, 500),
    );
    cfg
}

#[test]
fn fault_injected_runs_are_byte_identical_to_fault_free() {
    let clean = Study::run(StudyConfig::tiny()).expect("fault-free run");
    assert!(clean.faults().is_clean());

    for threads in [1usize, 2, 8] {
        let chaotic = Study::run(chaotic_config(threads)).expect("retries recover every shard");
        // The injector really fired: 2 + 1 retries across two shards.
        assert_eq!(
            chaotic.faults().total_retries(),
            3,
            "threads={threads}: retries"
        );
        assert_eq!(chaotic.faults().failures.len(), 2);
        assert_eq!(chaotic.faults().dropped_count(), 0);
        assert!(
            chaotic.faults().records_lost() > 0,
            "panics after one simulated day must discard partial work"
        );
        assert_identical(
            &clean,
            &chaotic,
            &format!("fault-free vs chaotic threads={threads}"),
        );
    }
}

#[test]
fn degrade_policy_completes_and_reports_exactly_the_dead_shard() {
    const DEAD_SHARD: usize = 11; // last abuse shard of the tiny plan
    let run = |threads: usize| {
        let mut cfg = StudyConfig::tiny();
        cfg.threads = threads;
        cfg.instrument = true;
        cfg.failure_policy = FailurePolicy::Degrade;
        cfg.max_shard_retries = 1;
        cfg.faults = Some(FaultInjector::new().always_fail_shard(DEAD_SHARD));
        Study::run(cfg).expect("degrade completes without the dead shard")
    };
    let degraded = run(2);

    // Exactly the dead shard is reported, dropped, with its full budget
    // spent (1 try + 1 retry).
    assert_eq!(degraded.faults().failures.len(), 1);
    let failure = &degraded.faults().failures[0];
    assert_eq!(failure.shard, DEAD_SHARD);
    assert!(failure.dropped);
    assert_eq!(failure.attempts, 2);
    assert!(failure.panic_msg.contains("injected fault"));
    assert_eq!(degraded.faults().dropped_count(), 1);

    // The merged output holds exactly the surviving shards' records.
    assert_eq!(degraded.metrics().shards.len(), 11, "12 planned, 1 dropped");
    let surviving: u64 = degraded.metrics().shards.iter().map(|s| s.records).sum();
    assert_eq!(degraded.datasets().offered, surviving);

    // Versus a clean run, only the dead shard's records are missing.
    let clean = Study::run(StudyConfig::tiny()).expect("fault-free run");
    let dead_records = clean.metrics().shards[DEAD_SHARD].records;
    assert!(dead_records > 0, "the dead shard does real work");
    assert_eq!(
        degraded.datasets().offered + dead_records,
        clean.datasets().offered
    );

    // The shard is listed in the faults section of the BENCH_run.json
    // document (the acceptance criterion).
    let json = degraded.report().to_json_string();
    assert!(json.contains(&format!("\"shard\": {DEAD_SHARD}")), "{json}");
    assert!(json.contains("\"dropped\": true"));
    assert!(json.contains("\"policy\": \"degrade\""));

    // Degraded runs keep the thread-count determinism contract too.
    assert_identical(&degraded, &run(8), "degrade threads=2 vs 8");
}

#[test]
fn abort_policy_fails_fast_without_retrying() {
    let mut cfg = StudyConfig::tiny();
    cfg.threads = 4;
    cfg.failure_policy = FailurePolicy::Abort;
    cfg.max_shard_retries = 5; // ignored under Abort
    cfg.faults = Some(FaultInjector::new().always_fail_shard(2));
    match Study::run(cfg) {
        Err(StudyError::ShardsFailed(report)) => {
            assert_eq!(report.policy, FailurePolicy::Abort);
            assert!(report.failures.iter().any(|f| f.shard == 2));
            let failed = report.failures.iter().find(|f| f.shard == 2).unwrap();
            assert_eq!(failed.attempts, 1, "Abort never retries");
        }
        other => panic!("expected ShardsFailed, got {other:?}"),
    }
}

#[test]
fn retry_policy_fails_once_the_budget_is_exhausted() {
    let mut cfg = StudyConfig::tiny();
    cfg.threads = 2;
    cfg.failure_policy = FailurePolicy::Retry;
    cfg.max_shard_retries = 2;
    cfg.faults = Some(FaultInjector::new().always_fail_shard(5));
    match Study::run(cfg) {
        Err(StudyError::ShardsFailed(report)) => {
            let failed = report.failures.iter().find(|f| f.shard == 5).unwrap();
            assert_eq!(failed.attempts, 3, "1 try + 2 retries");
            assert!(!failed.dropped, "Retry never drops, it fails the run");
        }
        other => panic!("expected ShardsFailed, got {other:?}"),
    }
}

#[test]
fn probabilistic_chaos_is_reproducible() {
    let run = || {
        let mut cfg = StudyConfig::tiny();
        cfg.threads = 4;
        cfg.failure_policy = FailurePolicy::Retry;
        cfg.max_shard_retries = 8;
        cfg.faults = Some(FaultInjector::new().with_panic_rate(0.2));
        Study::run(cfg).expect("rate 0.2 with 8 retries recovers")
    };
    let a = run();
    let b = run();
    // The "random" chaos is a pure function of (seed, shard, attempt):
    // both runs see the same failures and produce the same bytes.
    assert_eq!(a.faults().total_retries(), b.faults().total_retries());
    assert_eq!(
        a.faults()
            .failures
            .iter()
            .map(|f| (f.shard, f.attempts))
            .collect::<Vec<_>>(),
        b.faults()
            .failures
            .iter()
            .map(|f| (f.shard, f.attempts))
            .collect::<Vec<_>>()
    );
    assert_identical(&a, &b, "probabilistic chaos twice");
}
