//! The incremental engine's correctness bar (DESIGN.md §14): extending a
//! study day-over-day is **byte-identical** to a from-scratch run of the
//! longer range — datasets, EXPERIMENTS.md, console summary — at any
//! thread count and either storage mode; and a `--state-dir` checkpoint
//! resumes to the same bytes while re-running only the passes whose read
//! windows cover the new days.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::path::PathBuf;

use ipv6_user_study::experiments::run_all;
use ipv6_user_study::stats::hash::StableHasher;
use ipv6_user_study::stats::TestGen;
use ipv6_user_study::telemetry::{ColumnSlice, IpTable, UserTable};
use ipv6_user_study::{
    incremental, report, ConfigError, StorageMode, Study, StudyConfig, StudyError,
};

/// Order-sensitive digest of a record sequence.
fn digest(records: ColumnSlice<'_>) -> u64 {
    let mut h = StableHasher::new(0x494E_4331); // "INC1"
    for r in records.records() {
        h.write_u64(u64::from(r.ts.secs()))
            .write_u64(r.user.raw())
            .write_u64(r.ip_key())
            .write_u64(u64::from(r.asn.0));
    }
    h.finish()
}

/// Asserts every store and counter of two studies is byte-identical.
fn assert_studies_identical(a: &Study, b: &Study, what: &str) {
    assert_eq!(
        a.datasets().offered,
        b.datasets().offered,
        "{what}: offered"
    );
    assert_eq!(
        digest(a.datasets().request_sample.all()),
        digest(b.datasets().request_sample.all()),
        "{what}: request sample"
    );
    assert_eq!(
        digest(a.datasets().user_sample.all()),
        digest(b.datasets().user_sample.all()),
        "{what}: user sample"
    );
    assert_eq!(
        digest(a.datasets().ip_sample.all()),
        digest(b.datasets().ip_sample.all()),
        "{what}: ip sample"
    );
    let lengths = a.config().prefix_lengths.clone();
    assert_eq!(lengths, b.config().prefix_lengths);
    for &l in &lengths {
        assert_eq!(
            digest(a.datasets().prefix_sample(l).all()),
            digest(b.datasets().prefix_sample(l).all()),
            "{what}: prefix /{l}"
        );
    }
    assert_eq!(
        digest(a.abuse_store().all()),
        digest(b.abuse_store().all()),
        "{what}: abuse store"
    );
    assert_eq!(
        digest(a.pair_store().all()),
        digest(b.pair_store().all()),
        "{what}: pair store"
    );
    assert_eq!(
        a.user_sample_rate(),
        b.user_sample_rate(),
        "{what}: realized sample rate"
    );
}

/// Runs both registries and asserts the rendered documents match too.
fn assert_documents_identical(a: &mut Study, b: &mut Study, what: &str) {
    let ra = run_all(a);
    let rb = run_all(b);
    assert_eq!(
        report::render_markdown(&ra),
        report::render_markdown(&rb),
        "{what}: EXPERIMENTS.md"
    );
    assert_eq!(
        report::render_summary(&ra),
        report::render_summary(&rb),
        "{what}: summary"
    );
}

/// Satellite: the intern tables are order-isomorphic under key-set
/// growth — keys present before an extension keep their relative dense-id
/// order after new keys arrive. This is the property that lets cached
/// per-day structures and merged indexes survive the union re-encode.
#[test]
fn intern_tables_are_order_isomorphic_under_growth() {
    let mut g = TestGen::new(0x4953_4F4D); // "ISOM"
    for trial in 0..20 {
        let n_old = g.range_u64(1, 300) as usize;
        let n_new = g.range_u64(1, 300) as usize;
        let old_keys = g.vec_of(n_old, |g| g.next_u64());
        let mut all_keys = old_keys.clone();
        all_keys.extend(g.vec_of(n_new, |g| g.next_u64()));

        let small = UserTable::from_keys(old_keys.clone());
        let big = UserTable::from_keys(all_keys);
        // Walk the small table in dense order; the same users must appear
        // in strictly increasing dense order in the big table.
        let mut prev = None;
        for dense in 0..small.len() as u32 {
            let user = small.user(dense);
            let in_big = big.dense_of(user);
            assert_eq!(big.user(in_big), user, "trial {trial}: key survives");
            if let Some(p) = prev {
                assert!(
                    in_big > p,
                    "trial {trial}: dense order not preserved ({in_big} after {p})"
                );
            }
            prev = Some(in_big);
        }
        // Same property for the address table, both families. Dense ids
        // are per-family ascending-key positions, so walking the old keys
        // in sorted order must yield increasing indexes in the big table.
        let old_v4 = g.vec_of(n_old, |g| g.next_u64() as u32);
        let old_v6 = g.vec_of(n_old, |g| g.next_u128());
        let mut all_v4 = old_v4.clone();
        let mut all_v6 = old_v6.clone();
        all_v4.extend(g.vec_of(n_new, |g| g.next_u64() as u32));
        all_v6.extend(g.vec_of(n_new, |g| g.next_u128()));
        let small = IpTable::from_keys(old_v4.clone(), old_v6.clone());
        let big = IpTable::from_keys(all_v4, all_v6);
        let mut sorted_v4 = old_v4;
        sorted_v4.sort_unstable();
        sorted_v4.dedup();
        let mut prev = None;
        for &raw in &sorted_v4 {
            let addr = IpAddr::V4(Ipv4Addr::from(raw));
            assert_eq!(small.addr(small.id_of(addr)), addr, "trial {trial}");
            let in_big = big.id_of(addr);
            assert!(!in_big.is_v6(), "trial {trial}: family preserved");
            if let Some(p) = prev {
                assert!(in_big.index() > p, "trial {trial}: v4 order not preserved");
            }
            prev = Some(in_big.index());
        }
        let mut sorted_v6 = old_v6;
        sorted_v6.sort_unstable();
        sorted_v6.dedup();
        let mut prev = None;
        for &raw in &sorted_v6 {
            let addr = IpAddr::V6(Ipv6Addr::from(raw));
            assert_eq!(small.addr(small.id_of(addr)), addr, "trial {trial}");
            let in_big = big.id_of(addr);
            assert!(in_big.is_v6(), "trial {trial}: family preserved");
            if let Some(p) = prev {
                assert!(in_big.index() > p, "trial {trial}: v6 order not preserved");
            }
            prev = Some(in_big.index());
        }
    }
}

#[test]
fn extend_by_one_day_matches_scratch_in_memory() {
    let base = Study::run(StudyConfig::tiny()).expect("tiny preset is valid");
    let old_days = u64::from(base.config().sim_range().num_days());
    let (mut extended, stats) = base.extend_days(1).expect("one day fits the calendar");
    assert_eq!(stats.days_reused, old_days);
    assert_eq!(stats.days_computed, 1);
    assert_eq!(
        extended.report().incremental,
        stats,
        "report carries the reuse split"
    );

    let mut scratch_cfg = StudyConfig::tiny();
    scratch_cfg.extend_days = 1;
    let mut scratch = Study::run(scratch_cfg).expect("extended tiny is valid");
    assert_studies_identical(&extended, &scratch, "extend(1) vs scratch");
    assert_documents_identical(&mut extended, &mut scratch, "extend(1) vs scratch");
}

#[test]
fn extend_matches_scratch_across_thread_counts_and_spill() {
    // The extension runs serial+spill; the scratch run is parallel and
    // in-memory with a different analysis worker count — the bytes must
    // not care.
    let mut base_cfg = StudyConfig::tiny();
    base_cfg.threads = 1;
    base_cfg.analysis_threads = Some(1);
    base_cfg.storage = StorageMode::Spill {
        dir: None,
        segment_rows: 512,
    };
    let base = Study::run(base_cfg).expect("spill tiny is valid");
    let (mut extended, stats) = base.extend_days(2).expect("two days fit the calendar");
    assert_eq!(stats.days_computed, 2);

    let mut scratch_cfg = StudyConfig::tiny();
    scratch_cfg.threads = 4;
    scratch_cfg.analysis_threads = Some(8);
    scratch_cfg.extend_days = 2;
    let mut scratch = Study::run(scratch_cfg).expect("extended tiny is valid");
    assert_studies_identical(&extended, &scratch, "spill extend vs memory scratch");
    assert_documents_identical(
        &mut extended,
        &mut scratch,
        "spill extend vs memory scratch",
    );
}

#[test]
fn extend_zero_days_is_identity() {
    let base = Study::run(StudyConfig::tiny()).expect("tiny preset is valid");
    let before = digest(base.datasets().request_sample.all());
    let (extended, stats) = base.extend_days(0).expect("no-op extension");
    assert_eq!(stats.days_computed, 0);
    assert_eq!(
        stats.days_reused,
        u64::from(extended.config().sim_range().num_days())
    );
    assert_eq!(digest(extended.datasets().request_sample.all()), before);
}

#[test]
fn extension_past_calendar_is_rejected() {
    let base = Study::run(StudyConfig::tiny()).expect("tiny preset is valid");
    let err = base.extend_days(400).expect_err("past the calendar");
    assert!(
        matches!(
            err,
            StudyError::Config(ConfigError::ExtensionPastCalendar { .. })
        ),
        "got {err}"
    );
}

#[test]
fn day_count_tries_are_carried_across_extension() {
    let mut base = Study::run(StudyConfig::tiny()).expect("tiny preset is valid");
    let _ = run_all(&mut base); // populates the per-day trie cache
    let cached_before = base.cached_day_counts();
    assert!(
        !cached_before.is_empty(),
        "run_all builds pair-window tries"
    );
    let old_end = base.config().sim_end();
    let (extended, _) = base.extend_days(1).expect("one day fits");
    let carried = extended.cached_day_counts();
    // The pair window slid by one day: every carried day is an old cached
    // day still inside the new window, and at least one day survives.
    assert!(!carried.is_empty(), "overlap days are carried, not rebuilt");
    for day in &carried {
        assert!(cached_before.contains(day), "carried day was cached before");
        assert!(*day <= old_end, "carried days predate the extension");
    }
    assert!(
        carried.len() < cached_before.len() || cached_before.len() == 1,
        "days that left the sliding window are dropped"
    );
}

/// A scoped temp dir that cleans up on drop (tests must not leak state
/// dirs into the shared temp root).
struct ScopedDir(PathBuf);

impl ScopedDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ipv6-incr-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create state dir");
        Self(dir)
    }
}

impl Drop for ScopedDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn state_dir_roundtrip_reuses_days_and_matches_scratch() {
    let state = ScopedDir::new("roundtrip");
    let mut cfg = StudyConfig::tiny();
    cfg.instrument = true;

    // Cold start: everything computed, checkpoint written.
    let cold = incremental::run(cfg.clone(), &state.0).expect("cold run");
    let all_days = u64::from(cold.study.config().sim_range().num_days());
    assert_eq!(cold.stats.days_reused, 0);
    assert_eq!(cold.stats.days_computed, all_days);
    assert!(
        state.0.join("manifest.json").exists(),
        "commit point exists"
    );

    // Warm resume, one day further: exactly one day simulated.
    let mut ext_cfg = cfg.clone();
    ext_cfg.extend_days = 1;
    let warm = incremental::run(ext_cfg.clone(), &state.0).expect("warm extend");
    assert_eq!(warm.stats.days_reused, all_days);
    assert_eq!(warm.stats.days_computed, 1);
    assert_eq!(
        warm.study.report().incremental,
        warm.stats,
        "v7 report carries the split"
    );

    // The spliced documents are byte-identical to a from-scratch run of
    // the extended range.
    let mut scratch = Study::run(ext_cfg.clone()).expect("scratch extended run");
    assert_studies_identical(&warm.study, &scratch, "warm resume vs scratch");
    let rs = run_all(&mut scratch);
    assert_eq!(
        warm.markdown,
        report::render_markdown(&rs),
        "spliced EXPERIMENTS.md == scratch"
    );
    assert_eq!(
        warm.summary,
        report::render_summary(&rs),
        "spliced summary == scratch"
    );

    // Re-running the same extension is a pure cache hit: no days computed.
    let again = incremental::run(ext_cfg, &state.0).expect("repeat run");
    assert_eq!(again.stats.days_computed, 0);
    assert_eq!(again.stats.days_reused, all_days + 1);
    assert_eq!(again.markdown, warm.markdown, "cache-hit markdown stable");
}

#[test]
fn state_dir_rejects_mismatched_config_and_backward_runs() {
    let state = ScopedDir::new("mismatch");
    let cfg = StudyConfig::tiny();
    let _ = incremental::run(cfg.clone(), &state.0).expect("cold run");

    // A different seed is a different study: refuse to mix.
    let mut other = cfg.clone();
    other.seed ^= 1;
    let err = incremental::run(other, &state.0).expect_err("seed mismatch");
    assert!(
        matches!(err, StudyError::Config(ConfigError::Storage(ref msg)) if msg.contains("different configuration")),
        "got {err}"
    );

    // Extend forward, then ask for the shorter range again: refused.
    let mut ext = cfg.clone();
    ext.extend_days = 2;
    let _ = incremental::run(ext, &state.0).expect("extend to 2");
    let err = incremental::run(cfg, &state.0).expect_err("backward request");
    assert!(
        matches!(err, StudyError::Config(ConfigError::Storage(ref msg)) if msg.contains("forward")),
        "got {err}"
    );
}
