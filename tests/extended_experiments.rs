//! The extended (beyond-paper) registry's contracts: the
//! entropy-clustered blocklisting experiment renders byte-identical
//! output at any `analysis_threads` count and through either grouping
//! mode, matches its own pinned golden digest, and never perturbs the
//! default registry's rendered output.

use ipv6_user_study::analysis::IndexMode;
use ipv6_user_study::experiments::{run_all_with, run_extended_with};
use ipv6_user_study::report::render_markdown;
use ipv6_user_study::stats::hash::stable_hash64;
use ipv6_user_study::{Study, StudyConfig};

/// `stable_hash64("ECEQ", markdown)` of the tiny-scale serial extended
/// render, pinned when the entropy-clustered blocklisting experiment
/// landed. Any change to what EC1 computes — not just how fast — moves
/// this digest.
const GOLDEN_TINY_EXTENDED_DIGEST: u64 = 0x9a51_7fe4_37c3_04fe;

const DIGEST_SEED: u64 = 0x4543_4551; // "ECEQ"

fn tiny_study() -> Study {
    Study::run(StudyConfig::tiny()).expect("tiny preset is valid")
}

/// Renders the extended registry for one engine configuration.
fn rendered_extended(threads: usize, mode: IndexMode) -> String {
    let study = tiny_study();
    render_markdown(&run_extended_with(&study, threads, mode))
}

#[test]
fn extended_output_is_thread_invariant_and_matches_the_golden() {
    let serial = rendered_extended(1, IndexMode::Sorted);
    let digest = stable_hash64(DIGEST_SEED, serial.as_bytes());
    assert_eq!(
        digest, GOLDEN_TINY_EXTENDED_DIGEST,
        "tiny-scale extended output drifted from the pinned golden \
         (got {digest:#018x}; update the constant only for intentional \
         changes to EC1)"
    );
    assert_eq!(
        serial,
        rendered_extended(8, IndexMode::Sorted),
        "extended markdown differs at analysis_threads=8"
    );
    assert_eq!(
        serial,
        rendered_extended(1, IndexMode::Naive),
        "extended markdown differs through the naive grouping path"
    );
}

#[test]
fn extended_pass_leaves_the_default_registry_output_unchanged() {
    let mut study = tiny_study();
    let before = render_markdown(&run_all_with(&mut study, 1, IndexMode::Sorted));
    let _ = run_extended_with(&study, 8, IndexMode::Sorted);
    let after = render_markdown(&run_all_with(&mut study, 1, IndexMode::Sorted));
    assert_eq!(
        before, after,
        "running the extended registry changed the default render"
    );
}
