//! The out-of-core pipeline's equivalence contract: a spill-mode run is
//! byte-identical to an in-memory run of the same config — at any thread
//! count, any segment size, and across mid-run shard failures.
//!
//! Why this holds: each shard spills *sorted* runs (stable by timestamp,
//! ties by emission order), the merge concatenates per-family manifests
//! in plan order, and the k-way merge keyed `(ts, global run index)`
//! reproduces exactly the stable sort of the plan-order concatenation
//! that the in-memory path performs. Entity tables are order-independent
//! (sorted-and-deduped key sets), so dense ids — and therefore every
//! frozen column byte — agree too.

use std::path::PathBuf;

use ipv6_user_study::experiments::run_all;
use ipv6_user_study::report::render_markdown;
use ipv6_user_study::stats::hash::StableHasher;
use ipv6_user_study::telemetry::ColumnSlice;
use ipv6_user_study::{
    FailurePolicy, FaultInjector, StorageMode, Study, StudyConfig, DEFAULT_SEGMENT_ROWS,
};

/// Order-sensitive digest of a record sequence.
fn digest(records: ColumnSlice<'_>) -> u64 {
    let mut h = StableHasher::new(0x5350_494C); // "SPIL"
    for r in records.records() {
        h.write_u64(u64::from(r.ts.secs()))
            .write_u64(r.user.raw())
            .write_u64(r.ip_key())
            .write_u64(u64::from(r.asn.0));
    }
    h.finish()
}

/// Full-dataset digest comparison between two studies.
fn assert_identical(a: &Study, b: &Study, what: &str) {
    assert_eq!(
        a.datasets().offered,
        b.datasets().offered,
        "{what}: offered"
    );
    assert_eq!(
        digest(a.datasets().request_sample.all()),
        digest(b.datasets().request_sample.all()),
        "{what}: request sample"
    );
    assert_eq!(
        digest(a.datasets().user_sample.all()),
        digest(b.datasets().user_sample.all()),
        "{what}: user sample"
    );
    assert_eq!(
        digest(a.datasets().ip_sample.all()),
        digest(b.datasets().ip_sample.all()),
        "{what}: ip sample"
    );
    for &len in &a.config().prefix_lengths {
        assert_eq!(
            digest(a.datasets().prefix_sample(len).all()),
            digest(b.datasets().prefix_sample(len).all()),
            "{what}: /{len} prefix sample"
        );
    }
    assert_eq!(
        digest(a.abuse_store().all()),
        digest(b.abuse_store().all()),
        "{what}: abuse store"
    );
    assert_eq!(
        digest(a.pair_store().all()),
        digest(b.pair_store().all()),
        "{what}: pair store"
    );
    assert_eq!(
        a.user_sample_rate(),
        b.user_sample_rate(),
        "{what}: realized sample rate"
    );
}

fn spill_config(threads: usize, segment_rows: usize) -> StudyConfig {
    let mut cfg = StudyConfig::tiny();
    cfg.threads = threads;
    cfg.storage = StorageMode::Spill {
        dir: None,
        segment_rows,
    };
    cfg
}

#[test]
fn spill_runs_match_memory_runs_through_the_full_analysis_at_1_and_8_threads() {
    let memory = Study::run(StudyConfig::tiny()).expect("in-memory run");
    for threads in [1usize, 8] {
        let mut cfg = spill_config(threads, DEFAULT_SEGMENT_ROWS);
        cfg.analysis_threads = Some(threads);
        let mut spilled = Study::run(cfg).expect("spill run");
        assert_identical(&memory, &spilled, &format!("threads={threads}"));
        assert!(
            spilled.metrics().peak_store_bytes > 0,
            "the gauge actually measured the sim phase"
        );
        // The whole experiment registry — every table and figure —
        // renders the same bytes over the spill-built columns.
        let md = render_markdown(&run_all(&mut spilled));
        let mut memory_again = Study::run({
            let mut c = StudyConfig::tiny();
            c.analysis_threads = Some(threads);
            c
        })
        .expect("in-memory rerun");
        let memory_md = render_markdown(&run_all(&mut memory_again));
        assert_eq!(md, memory_md, "threads={threads}: markdown differs");
    }
}

/// Segment-boundary property: the merged output cannot depend on where
/// run boundaries fall — tiny runs (many segment flushes per shard), the
/// default, and `usize::MAX` (one whole-shard run per family, never a
/// mid-shard flush) all produce the same bytes.
#[test]
fn digest_is_invariant_under_segment_row_boundaries() {
    let memory = Study::run(StudyConfig::tiny()).expect("in-memory run");
    for segment_rows in [64usize, DEFAULT_SEGMENT_ROWS, usize::MAX] {
        let spilled = Study::run(spill_config(2, segment_rows)).expect("spill run");
        assert_identical(&memory, &spilled, &format!("segment_rows={segment_rows}"));
    }
}

/// A shard attempt that panics mid-run (with segments already spilled)
/// must leave nothing behind: the retry's output replaces it exactly and
/// the attempt's segment files are deleted, so the explicit parent
/// directory is empty once the study completes.
#[test]
fn mid_segment_panic_retry_leaves_no_orphan_spill_files() {
    let parent = std::env::temp_dir().join(format!("ipv6-spill-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&parent).expect("create spill parent");

    let clean = Study::run(StudyConfig::tiny()).expect("fault-free run");
    let mut cfg = StudyConfig::tiny();
    cfg.threads = 2;
    cfg.failure_policy = FailurePolicy::Retry;
    cfg.max_shard_retries = 2;
    // Small segments so the failing attempts have already spilled files
    // when the injected panic fires (shard 0 fails twice, shard 8 once).
    cfg.storage = StorageMode::Spill {
        dir: Some(PathBuf::from(&parent)),
        segment_rows: 64,
    };
    cfg.faults = Some(
        FaultInjector::new()
            .fail_shard(0, 2)
            .fail_shard(8, 1)
            .delay_shard(3, 500),
    );
    let chaotic = Study::run(cfg).expect("retries recover every shard");
    assert_eq!(chaotic.faults().total_retries(), 3, "the injector fired");
    assert_identical(&clean, &chaotic, "chaotic spill run");

    // The session directory (and with it every segment file, including
    // any a failed attempt wrote) is gone; only the user-supplied parent
    // remains, empty.
    let leftovers: Vec<_> = std::fs::read_dir(&parent)
        .expect("parent dir survives the run")
        .collect();
    assert!(leftovers.is_empty(), "orphan spill entries: {leftovers:?}");
    std::fs::remove_dir(&parent).expect("cleanup");
}

/// An unusable spill directory is a config-style error, reported before
/// any simulation work starts — not a mid-run panic.
#[test]
fn unusable_spill_dir_is_rejected_as_config_error() {
    let mut cfg = StudyConfig::tiny();
    // A file, not a directory: session creation must fail cleanly.
    let bogus = std::env::temp_dir().join(format!("ipv6-spill-bogus-{}", std::process::id()));
    std::fs::write(&bogus, b"not a directory").expect("create blocker file");
    cfg.storage = StorageMode::Spill {
        dir: Some(bogus.clone()),
        segment_rows: DEFAULT_SEGMENT_ROWS,
    };
    let err = Study::run(cfg).expect_err("file as spill parent");
    assert!(
        matches!(err, ipv6_user_study::StudyError::Config(_)),
        "got {err}"
    );
    std::fs::remove_file(&bogus).expect("cleanup");
}
