//! The sharded driver's determinism contract: a study run is
//! byte-identical at any thread count, and reproducible run-to-run at the
//! same thread count. See `crates/core/src/driver.rs` for why this holds
//! by construction.

use ipv6_user_study::stats::hash::StableHasher;
use ipv6_user_study::telemetry::ColumnSlice;
use ipv6_user_study::{Study, StudyConfig};

fn run_with_threads(threads: usize) -> Study {
    let mut cfg = StudyConfig::tiny();
    cfg.threads = threads;
    Study::run(cfg).expect("tiny preset is valid")
}

/// Order-sensitive digest of a record sequence.
fn digest(records: ColumnSlice<'_>) -> u64 {
    let mut h = StableHasher::new(0x5041_5245); // "PARE"
    for r in records.records() {
        h.write_u64(u64::from(r.ts.secs()))
            .write_u64(r.user.raw())
            .write_u64(r.ip_key())
            .write_u64(u64::from(r.asn.0));
    }
    h.finish()
}

fn compare(a: Study, b: Study, what: &str) {
    assert_eq!(
        a.datasets().offered,
        b.datasets().offered,
        "{what}: offered"
    );
    assert_eq!(a.approx_users(), b.approx_users(), "{what}: approx_users");

    // Dataset lengths.
    assert_eq!(
        a.datasets().request_sample.len(),
        b.datasets().request_sample.len(),
        "{what}"
    );
    assert_eq!(
        a.datasets().user_sample.len(),
        b.datasets().user_sample.len(),
        "{what}"
    );
    assert_eq!(
        a.datasets().ip_sample.len(),
        b.datasets().ip_sample.len(),
        "{what}"
    );
    assert_eq!(a.abuse_store().len(), b.abuse_store().len(), "{what}");
    assert_eq!(a.pair_store().len(), b.pair_store().len(), "{what}");
    let lengths: Vec<u8> = a.config().prefix_lengths.clone();
    for &l in &lengths {
        assert_eq!(
            a.datasets().prefix_sample(l).len(),
            b.datasets().prefix_sample(l).len(),
            "{what}: prefix /{l}"
        );
    }

    // Label sets.
    assert_eq!(a.labels().len(), b.labels().len(), "{what}: label count");
    let mut la: Vec<_> = a.labels().iter().collect();
    let mut lb: Vec<_> = b.labels().iter().collect();
    la.sort_unstable_by_key(|(u, _)| *u);
    lb.sort_unstable_by_key(|(u, _)| *u);
    assert_eq!(la, lb, "{what}: label sets");

    // Byte-level equality of the sorted record streams, via digests and
    // (for the sampled stores) exact slice comparison.
    assert_eq!(
        a.datasets().user_sample.all(),
        b.datasets().user_sample.all(),
        "{what}"
    );
    assert_eq!(
        digest(a.datasets().request_sample.all()),
        digest(b.datasets().request_sample.all())
    );
    assert_eq!(
        digest(a.datasets().ip_sample.all()),
        digest(b.datasets().ip_sample.all())
    );
    assert_eq!(digest(a.abuse_store().all()), digest(b.abuse_store().all()));
    assert_eq!(digest(a.pair_store().all()), digest(b.pair_store().all()));
    for &l in &lengths {
        assert_eq!(
            digest(a.datasets().prefix_sample(l).all()),
            digest(b.datasets().prefix_sample(l).all()),
            "{what}: prefix /{l} digest"
        );
    }
}

#[test]
fn serial_and_parallel_runs_are_identical() {
    let serial = run_with_threads(1);
    let parallel = run_with_threads(4);
    assert_eq!(serial.metrics().threads, 1);
    assert!(
        parallel.metrics().threads > 1,
        "tiny plan has enough shards for 4 workers"
    );
    compare(serial, parallel, "threads=1 vs threads=4");
}

#[test]
fn parallel_runs_are_reproducible() {
    // Two parallel runs race their shard claims differently; the merged
    // output must not notice.
    compare(
        run_with_threads(4),
        run_with_threads(4),
        "threads=4 vs threads=4",
    );
}
