//! # ipv6-user-study
//!
//! A from-scratch Rust reproduction of **"Towards A User-Level Understanding
//! of IPv6 Behavior"** (Li & Freeman, IMC 2020): a calibrated internet/user
//! simulator standing in for the paper's proprietary platform telemetry,
//! the paper's deterministic-sampling methodology, every analysis behind its
//! figures and tables, and the security-application harness of §7.
//!
//! This crate is the facade: it re-exports the workspace's public API. See
//! `DESIGN.md` for the architecture and substitution argument, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use ipv6_user_study::Study;
//! use ipv6_user_study::experiments::{self, AnalysisCtx};
//!
//! // Simulate a small platform and regenerate Figure 7.
//! let study = Study::builder().tiny().run().unwrap();
//! let ctx = AnalysisCtx::new(&study);
//! let fig7 = experiments::fig7_users_per_ip(&ctx);
//! let v6_single = fig7.get_stat("fig7.v6_day_single").unwrap();
//! let v4_single = fig7.get_stat("fig7.v4_day_single").unwrap();
//! assert!(v6_single > v4_single, "IPv6 addresses are sparsely populated");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ipv6_study_core::{
    experiments, incremental, paper, report, ConfigError, FailurePolicy, FaultInjector, FaultKind,
    FaultReport, IncrementalRun, IncrementalStat, IoFaultSpec, RunMetrics, RunReport, SamplingPlan,
    ShardFailure, ShardMetrics, SpillError, StorageMode, Study, StudyBuilder, StudyConfig,
    StudyError, StudyOutcome, DEFAULT_SEGMENT_ROWS,
};

/// Statistical substrate: ECDFs, ROC curves, hashing, extrapolation.
pub use ipv6_study_core::experiments::ExperimentOutput;

// Re-export the component crates under stable names so downstream users can
// reach any layer of the system.
pub use ipv6_study_analysis as analysis;
pub use ipv6_study_behavior as behavior;
pub use ipv6_study_netaddr as netaddr;
pub use ipv6_study_netmodel as netmodel;
pub use ipv6_study_obs as obs;
pub use ipv6_study_secapp as secapp;
pub use ipv6_study_stats as stats;
pub use ipv6_study_telemetry as telemetry;
