//! Blocklist policy design: sweep granularity × threshold × TTL, then print
//! a recommendation in the spirit of §7.2.
//!
//! ```text
//! cargo run --release --example blocklist_policy
//! ```

use ipv6_user_study::secapp::actioning::{actioning_roc, operating_points, Granularity};
use ipv6_user_study::secapp::blocklist::{evaluate_over_days, Blocklist};
use ipv6_user_study::telemetry::time::focus_day_user;
use ipv6_user_study::telemetry::SimDate;
use ipv6_user_study::Study;

fn main() {
    let study = Study::builder().test_scale().run().expect("valid preset");
    let day_n = focus_day_user() - 1;
    let day_n1 = focus_day_user();
    let n = study.pair_store().on_day(day_n);
    let n1 = study.pair_store().on_day(day_n1);

    println!("== day-over-day actioning ROC (operating points) ==");
    println!(
        "{:>6} {:>8} {:>9} {:>9} {:>9}",
        "unit", "thresh", "TPR", "FPR", "TPR@1%FPR"
    );
    let grans = [
        Granularity::V6Full,
        Granularity::V6Prefix(64),
        Granularity::V6Prefix(56),
        Granularity::V4Full,
    ];
    for gran in grans {
        let curve = actioning_roc(n, n1, study.labels(), gran);
        let pts = operating_points(&curve);
        for (label, (tpr, fpr)) in [("0%", pts.t0), ("10%", pts.t10), ("100%", pts.t100)] {
            println!(
                "{:>6} {:>8} {:>8.1}% {:>8.3}% {:>8.1}%",
                gran.label(),
                label,
                100.0 * tpr,
                100.0 * fpr,
                100.0 * curve.tpr_at_fpr(0.01, None)
            );
        }
    }

    // Longitudinal: how fast does a one-day blocklist decay?
    println!("\n== blocklist decay (threshold 50%, TTL 14d, listed Apr 13) ==");
    let list_day = SimDate::ymd(4, 13);
    let listing = study.datasets().ip_sample.on_day(list_day);
    for (gran, name) in [
        (Granularity::V6Full, "IPv6 /128"),
        (Granularity::V6Prefix(64), "IPv6 /64"),
        (Granularity::V4Full, "IPv4"),
    ] {
        let bl = Blocklist::from_day(listing, study.labels(), gran, 0.5, list_day, 14);
        let later: Vec<(SimDate, _)> = (1..=6u16)
            .map(|k| {
                (
                    list_day + k,
                    study.datasets().ip_sample.on_day(list_day + k),
                )
            })
            .collect();
        let evals = evaluate_over_days(&bl, study.labels(), list_day, later.iter().copied());
        let series: Vec<String> = evals
            .iter()
            .map(|e| format!("d+{}: {:.0}%", e.offset, 100.0 * e.recall))
            .collect();
        println!(
            "{name:>10} ({} entries): {}",
            bl.live_entries(list_day + 1),
            series.join("  ")
        );
    }

    println!(
        "\nRecommendation (mirrors §7.2): action IPv6 at the /64 granularity for recall\n\
         or the full address for near-zero collateral; refresh lists daily — IPv6\n\
         indicators go stale much faster than IPv4 ones."
    );
}
