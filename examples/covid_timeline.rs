//! The Figure 1 timeline: daily IPv6 share of users and requests over
//! Jan 23 – Apr 19 2020, rendered as an ASCII chart with weekend and
//! lockdown annotations.
//!
//! ```text
//! cargo run --release --example covid_timeline
//! ```

use ipv6_user_study::analysis::characterize::prevalence_series;
use ipv6_user_study::telemetry::SimDate;
use ipv6_user_study::Study;

fn bar(share: f64, lo: f64, hi: f64, width: usize) -> String {
    let frac = ((share - lo) / (hi - lo)).clamp(0.0, 1.0);
    let filled = (frac * width as f64).round() as usize;
    format!("{}{}", "█".repeat(filled), "░".repeat(width - filled))
}

fn main() {
    let study = Study::builder().test_scale().run().expect("valid preset");
    let range = study.config().full_range;
    let user = study.datasets().user_sample.in_range(range);
    let req = study.datasets().request_sample.in_range(range);
    let pts = prevalence_series(user, req, range);

    let (ulo, uhi) = (0.30, 0.46);
    println!(
        "daily IPv6 share of users (bars span {:.0}%..{:.0}%)",
        ulo * 100.0,
        uhi * 100.0
    );
    for p in &pts {
        let marks = format!(
            "{}{}",
            if p.day.is_weekend() { " W" } else { "" },
            annotate(p.day)
        );
        println!(
            "{} {} {:5.1}% | req {:5.1}%{}",
            p.day,
            bar(p.user_share, ulo, uhi, 30),
            p.user_share * 100.0,
            p.request_share * 100.0,
            marks
        );
    }

    let first_two_weeks: Vec<&_> = pts.iter().take(14).collect();
    let last_two_weeks: Vec<&_> = pts.iter().rev().take(14).collect();
    let mean =
        |v: &[&ipv6_user_study::analysis::characterize::PrevalencePoint],
         f: fn(&ipv6_user_study::analysis::characterize::PrevalencePoint) -> f64| {
            v.iter().map(|p| f(p)).sum::<f64>() / v.len() as f64
        };
    println!(
        "\nJan vs Apr means — users: {:.1}% → {:.1}%   requests: {:.1}% → {:.1}%",
        100.0 * mean(&first_two_weeks, |p| p.user_share),
        100.0 * mean(&last_two_weeks, |p| p.user_share),
        100.0 * mean(&first_two_weeks, |p| p.request_share),
        100.0 * mean(&last_two_weeks, |p| p.request_share),
    );
    println!(
        "The scissors of Figure 1: lockdowns pull the user share down and push the\n\
         request share up, as traffic shifts from offices and cellular to home networks."
    );
}

fn annotate(day: SimDate) -> &'static str {
    match (day.month(), day.day()) {
        (3, 9) => "  <- Italy locks down",
        (3, 19) => "  <- first US state locks down",
        (3, 22) => "  <- Germany locks down",
        _ => "",
    }
}
