//! Rate-limit tuning: derive per-key daily budgets from the measured
//! users-per-address/prefix distributions (§7.2), then demonstrate the
//! resulting token-bucket enforcement.
//!
//! ```text
//! cargo run --release --example rate_limit_tuning
//! ```

use ipv6_user_study::analysis::ip_centric::{users_per_ip, users_per_prefix};
use ipv6_user_study::analysis::DatasetIndex;
use ipv6_user_study::secapp::ratelimit::{recommend_threshold, KeyPolicy, RateLimiter};
use ipv6_user_study::telemetry::time::focus_week;
use ipv6_user_study::Study;

fn main() {
    let study = Study::builder().test_scale().run().expect("valid preset");
    let week = focus_week();

    let per_ip = users_per_ip(&DatasetIndex::build(
        study.datasets().ip_sample.in_range(week),
    ));
    let p64 = {
        let idx = DatasetIndex::build(study.datasets().prefix_sample(64).in_range(week));
        users_per_prefix(&idx, 64).ecdf
    };
    let p48 = {
        let idx = DatasetIndex::build(study.datasets().prefix_sample(48).in_range(week));
        users_per_prefix(&idx, 48).ecdf
    };

    const PER_USER: u64 = 200; // daily request budget per legitimate user
    const Q: f64 = 0.999; // protect 99.9% of keys from throttling

    println!(
        "== recommended per-key daily budgets (protecting p{:.1} of keys) ==",
        Q * 100.0
    );
    println!(
        "{:>12} {:>16} {:>16}",
        "key", "users@quantile", "requests/day"
    );
    for (name, ecdf) in [
        ("IPv6 /128", &per_ip.v6),
        ("IPv6 /64", &p64),
        ("IPv6 /48", &p48),
        ("IPv4 addr", &per_ip.v4),
    ] {
        let r = recommend_threshold(ecdf, PER_USER, Q);
        println!(
            "{:>12} {:>16} {:>16}",
            name, r.users_at_quantile, r.requests_per_day
        );
    }
    let v6 = recommend_threshold(&per_ip.v6, PER_USER, Q);
    let v4 = recommend_threshold(&per_ip.v4, PER_USER, Q);
    println!(
        "\nIPv4 needs a {}x more liberal limit than IPv6 — §7.2's \"thresholds can be\n\
         set more tightly\" finding. IPv6 /48 budgets resemble IPv4 address budgets,\n\
         so existing IPv4 rate-limit logic can translate to /48 keying.",
        (v4.requests_per_day as f64 / v6.requests_per_day.max(1) as f64).round()
    );

    // Enforcement demo: a v6-keyed limiter built from the recommendation.
    let rate = v6.requests_per_day as f64 / 86_400.0;
    let mut limiter = RateLimiter::new(KeyPolicy::V6PrefixLen(64), rate, 60.0);
    let mut allowed = 0u64;
    let mut throttled = 0u64;
    let day = ipv6_user_study::telemetry::time::focus_day_ip();
    let recs = study.datasets().ip_sample.on_day(day);
    for r in recs.records() {
        if limiter.allow(r.ip, r.ts) {
            allowed += 1;
        } else {
            throttled += 1;
        }
    }
    println!(
        "\nenforcement on {day}: {} keys tracked, {} allowed, {} throttled ({:.3}%)",
        limiter.tracked_keys(),
        allowed,
        throttled,
        100.0 * throttled as f64 / (allowed + throttled).max(1) as f64
    );
}
