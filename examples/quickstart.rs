//! Quickstart: run a small study end-to-end and print the headline
//! user-level IPv6 findings.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ipv6_user_study::experiments::{self, AnalysisCtx};
use ipv6_user_study::Study;

fn main() {
    // A scaled-down platform: ~5k households (~12k users), attacker
    // campaigns included, simulated over the paper's Jan 23 – Apr 19 2020
    // window with deterministic sampling.
    let config = Study::builder().test_scale().build().expect("valid preset");
    println!(
        "simulating {} households, {} campaigns, {} .. {}",
        config.households, config.campaigns, config.full_range.start, config.full_range.end
    );
    let study = Study::run(config).expect("validated above");
    println!(
        "platform saw {} requests; samples retained {}; {} labeled abusive accounts\n",
        study.datasets().offered,
        study.datasets().retained(),
        study.labels().len()
    );
    let ctx = AnalysisCtx::new(&study);

    // RQ1 — user behavior across protocols (Figure 2 / Figure 7).
    let fig2 = experiments::fig2_addrs_per_user(&ctx);
    let fig7 = experiments::fig7_users_per_ip(&ctx);
    println!("== RQ1: users across protocols ==");
    println!(
        "addresses per user per week (median): IPv4 {} vs IPv6 {}",
        fig2.get_stat("fig2.v4_week_median").unwrap(),
        fig2.get_stat("fig2.v6_week_median").unwrap()
    );
    println!(
        "single-user addresses in a day:       IPv4 {:.0}% vs IPv6 {:.0}%",
        100.0 * fig7.get_stat("fig7.v4_day_single").unwrap(),
        100.0 * fig7.get_stat("fig7.v6_day_single").unwrap()
    );

    // RQ2 — attacker behavior (Figure 3's inversion).
    let fig3 = experiments::fig3_aa_addrs(&ctx);
    println!("\n== RQ2: attackers ==");
    println!(
        "addresses per abusive account per day (mean): IPv4 {:.2} vs IPv6 {:.2} (the inversion)",
        fig3.get_stat("fig3.v4_mean").unwrap(),
        fig3.get_stat("fig3.v6_mean").unwrap()
    );

    // RQ3 — outliers (§6.1.3).
    let o61 = experiments::o61_ip_outliers(&ctx);
    println!("\n== RQ3: outliers ==");
    println!(
        "most-populated address this week: IPv4 {} users vs IPv6 {} users",
        o61.get_stat("o61.v4_max_users").unwrap(),
        o61.get_stat("o61.v6_max_users").unwrap()
    );
    println!(
        "heavy-IPv6-address gateway signature share: {:.0}% (vs {:.1}% among light addresses)",
        100.0 * o61.get_stat("o61.sig_heavy_share").unwrap(),
        100.0 * o61.get_stat("o61.sig_light_share").unwrap()
    );

    // RQ4 — actioning tradeoffs (Figure 11).
    let fig11 = experiments::fig11_roc(&ctx);
    println!("\n== RQ4: day-over-day actioning (threshold 0) ==");
    for tag in ["p128", "p64", "p56", "IPv4"] {
        println!(
            "{:>5}: TPR {:.1}%  FPR {:.3}%",
            tag.replace('p', "/"),
            100.0 * fig11.get_stat(&format!("fig11.{tag}_max_tpr")).unwrap(),
            100.0 * fig11.get_stat(&format!("fig11.{tag}_t0_fpr")).unwrap()
        );
    }
    println!("\nSee EXPERIMENTS.md for the full paper-vs-measured comparison.");
}
