//! Attacker hunting: combine the §6.1.3 heavy-address signature predictor
//! with the §7.2 ML features to triage tomorrow's abusive addresses today.
//!
//! ```text
//! cargo run --release --example attacker_hunting
//! ```

use std::collections::HashMap;

use ipv6_user_study::analysis::ip_centric::users_per_ip;
use ipv6_user_study::analysis::DatasetIndex;
use ipv6_user_study::secapp::mlfeatures::{training_set, LogisticModel};
use ipv6_user_study::secapp::signatures::HeavyAddressPredictor;
use ipv6_user_study::telemetry::time::{focus_day_user, focus_week};
use ipv6_user_study::Study;

fn main() {
    let study = Study::builder().test_scale().run().expect("valid preset");

    // 1. Exempt-list the predictable mega-addresses (gateway signature),
    //    so blocklists and limiters can skip them (the paper's advice:
    //    "feasibly predicted to avoid blocklisting and to handle through
    //    other means").
    let week = study.datasets().ip_sample.in_range(focus_week());
    let upi = users_per_ip(&DatasetIndex::build(week));
    let mut asn_of = HashMap::new();
    for r in week.records() {
        asn_of.entry(r.ip).or_insert(r.asn);
    }
    let heavy = (study.approx_users() / 1_500).max(8);
    let predictor = HeavyAddressPredictor::learn(&upi.counts, &asn_of, heavy);
    let eval = predictor.evaluate(&upi.counts, &asn_of, heavy);
    println!("== heavy-address predictor (structural signature + learned ASNs) ==");
    println!(
        "gateway ASNs learned: {:?}",
        predictor
            .gateway_asns()
            .iter()
            .map(|a| a.0)
            .collect::<Vec<_>>()
    );
    println!(
        "precision {:.2}, recall {:.2} over {} heavy / {} predicted addresses",
        eval.precision, eval.recall, eval.heavy, eval.predicted
    );

    // 2. Train per-protocol next-day abuse models on the full-population
    //    day pair and rank today's riskiest units.
    let last = focus_day_user();
    println!("\n== next-day abuse scoring (pooled over three day pairs) ==");
    for (label, v6) in [("IPv4", false), ("IPv6", true)] {
        let mut set = Vec::new();
        for k in 0..3u16 {
            let day = study.pair_store().on_day(last - (k + 1));
            let next = study.pair_store().on_day(last - k);
            set.extend(training_set(day, next, study.labels(), Some(v6)));
        }
        if set.is_empty() {
            continue;
        }
        let model = LogisticModel::train(&set, 250, 0.3);
        let auc = model.auc(&set);
        let positives = set.iter().filter(|(_, y)| *y).count();
        println!(
            "{label}: {} units, {} next-day abusive, ranking AUC {:.3}",
            set.len(),
            positives,
            auc
        );
    }
    println!(
        "\nAt larger scales (`StudyConfig::default_scale()`), per-protocol models\n\
         separate cleanly on IPv6 (isolated attacker infrastructure) and less so\n\
         on IPv4 (attackers hide behind CGN crowds) — §7.2's case for treating\n\
         the protocols distinctly."
    );
}
