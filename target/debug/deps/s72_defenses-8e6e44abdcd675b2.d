/root/repo/target/debug/deps/s72_defenses-8e6e44abdcd675b2.d: crates/bench/benches/s72_defenses.rs

/root/repo/target/debug/deps/libs72_defenses-8e6e44abdcd675b2.rmeta: crates/bench/benches/s72_defenses.rs

crates/bench/benches/s72_defenses.rs:
