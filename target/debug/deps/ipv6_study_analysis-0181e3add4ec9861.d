/root/repo/target/debug/deps/ipv6_study_analysis-0181e3add4ec9861.d: crates/analysis/src/lib.rs crates/analysis/src/characterize.rs crates/analysis/src/ip_centric.rs crates/analysis/src/outliers.rs crates/analysis/src/report.rs crates/analysis/src/similarity.rs crates/analysis/src/user_centric.rs

/root/repo/target/debug/deps/libipv6_study_analysis-0181e3add4ec9861.rmeta: crates/analysis/src/lib.rs crates/analysis/src/characterize.rs crates/analysis/src/ip_centric.rs crates/analysis/src/outliers.rs crates/analysis/src/report.rs crates/analysis/src/similarity.rs crates/analysis/src/user_centric.rs

crates/analysis/src/lib.rs:
crates/analysis/src/characterize.rs:
crates/analysis/src/ip_centric.rs:
crates/analysis/src/outliers.rs:
crates/analysis/src/report.rs:
crates/analysis/src/similarity.rs:
crates/analysis/src/user_centric.rs:
