/root/repo/target/debug/deps/ipv6_study_secapp-424783b8c2f39ad3.d: crates/secapp/src/lib.rs crates/secapp/src/actioning.rs crates/secapp/src/blocklist.rs crates/secapp/src/mlfeatures.rs crates/secapp/src/ratelimit.rs crates/secapp/src/signatures.rs crates/secapp/src/threat_exchange.rs

/root/repo/target/debug/deps/libipv6_study_secapp-424783b8c2f39ad3.rmeta: crates/secapp/src/lib.rs crates/secapp/src/actioning.rs crates/secapp/src/blocklist.rs crates/secapp/src/mlfeatures.rs crates/secapp/src/ratelimit.rs crates/secapp/src/signatures.rs crates/secapp/src/threat_exchange.rs

crates/secapp/src/lib.rs:
crates/secapp/src/actioning.rs:
crates/secapp/src/blocklist.rs:
crates/secapp/src/mlfeatures.rs:
crates/secapp/src/ratelimit.rs:
crates/secapp/src/signatures.rs:
crates/secapp/src/threat_exchange.rs:
