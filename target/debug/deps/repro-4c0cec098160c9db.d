/root/repo/target/debug/deps/repro-4c0cec098160c9db.d: crates/core/src/bin/repro.rs

/root/repo/target/debug/deps/repro-4c0cec098160c9db: crates/core/src/bin/repro.rs

crates/core/src/bin/repro.rs:
