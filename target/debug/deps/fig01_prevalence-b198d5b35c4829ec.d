/root/repo/target/debug/deps/fig01_prevalence-b198d5b35c4829ec.d: crates/bench/benches/fig01_prevalence.rs

/root/repo/target/debug/deps/libfig01_prevalence-b198d5b35c4829ec.rmeta: crates/bench/benches/fig01_prevalence.rs

crates/bench/benches/fig01_prevalence.rs:
