/root/repo/target/debug/deps/parallel_equivalence-d41c55166f66136d.d: tests/parallel_equivalence.rs

/root/repo/target/debug/deps/parallel_equivalence-d41c55166f66136d: tests/parallel_equivalence.rs

tests/parallel_equivalence.rs:
