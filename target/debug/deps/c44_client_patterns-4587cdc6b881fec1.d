/root/repo/target/debug/deps/c44_client_patterns-4587cdc6b881fec1.d: crates/bench/benches/c44_client_patterns.rs

/root/repo/target/debug/deps/libc44_client_patterns-4587cdc6b881fec1.rmeta: crates/bench/benches/c44_client_patterns.rs

crates/bench/benches/c44_client_patterns.rs:
