/root/repo/target/debug/deps/ipv6_study_telemetry-a62b0d85ab2f2a8d.d: crates/telemetry/src/lib.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/ids.rs crates/telemetry/src/labels.rs crates/telemetry/src/record.rs crates/telemetry/src/sampler.rs crates/telemetry/src/sink.rs crates/telemetry/src/store.rs crates/telemetry/src/time.rs

/root/repo/target/debug/deps/libipv6_study_telemetry-a62b0d85ab2f2a8d.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/ids.rs crates/telemetry/src/labels.rs crates/telemetry/src/record.rs crates/telemetry/src/sampler.rs crates/telemetry/src/sink.rs crates/telemetry/src/store.rs crates/telemetry/src/time.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/csv.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/ids.rs:
crates/telemetry/src/labels.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/sampler.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/store.rs:
crates/telemetry/src/time.rs:
