/root/repo/target/debug/deps/ipv6_study_analysis-1637b76dbf1fc3ba.d: crates/analysis/src/lib.rs crates/analysis/src/characterize.rs crates/analysis/src/ip_centric.rs crates/analysis/src/outliers.rs crates/analysis/src/report.rs crates/analysis/src/similarity.rs crates/analysis/src/user_centric.rs Cargo.toml

/root/repo/target/debug/deps/libipv6_study_analysis-1637b76dbf1fc3ba.rmeta: crates/analysis/src/lib.rs crates/analysis/src/characterize.rs crates/analysis/src/ip_centric.rs crates/analysis/src/outliers.rs crates/analysis/src/report.rs crates/analysis/src/similarity.rs crates/analysis/src/user_centric.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/characterize.rs:
crates/analysis/src/ip_centric.rs:
crates/analysis/src/outliers.rs:
crates/analysis/src/report.rs:
crates/analysis/src/similarity.rs:
crates/analysis/src/user_centric.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
