/root/repo/target/debug/deps/parallel_equivalence-0b32c512c98836fd.d: tests/parallel_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_equivalence-0b32c512c98836fd.rmeta: tests/parallel_equivalence.rs Cargo.toml

tests/parallel_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
