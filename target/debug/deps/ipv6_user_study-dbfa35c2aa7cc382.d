/root/repo/target/debug/deps/ipv6_user_study-dbfa35c2aa7cc382.d: src/lib.rs

/root/repo/target/debug/deps/ipv6_user_study-dbfa35c2aa7cc382: src/lib.rs

src/lib.rs:
