/root/repo/target/debug/deps/ipv6_user_study-ce22d618914e73ed.d: src/lib.rs

/root/repo/target/debug/deps/libipv6_user_study-ce22d618914e73ed.rlib: src/lib.rs

/root/repo/target/debug/deps/libipv6_user_study-ce22d618914e73ed.rmeta: src/lib.rs

src/lib.rs:
