/root/repo/target/debug/deps/ipv6_study_bench-ecaee55cd98f1a7b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libipv6_study_bench-ecaee55cd98f1a7b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libipv6_study_bench-ecaee55cd98f1a7b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
