/root/repo/target/debug/deps/ipv6_user_study-973d91af708f0888.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libipv6_user_study-973d91af708f0888.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
