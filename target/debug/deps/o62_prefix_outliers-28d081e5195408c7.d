/root/repo/target/debug/deps/o62_prefix_outliers-28d081e5195408c7.d: crates/bench/benches/o62_prefix_outliers.rs

/root/repo/target/debug/deps/libo62_prefix_outliers-28d081e5195408c7.rmeta: crates/bench/benches/o62_prefix_outliers.rs

crates/bench/benches/o62_prefix_outliers.rs:
