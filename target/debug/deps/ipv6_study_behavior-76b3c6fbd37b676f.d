/root/repo/target/debug/deps/ipv6_study_behavior-76b3c6fbd37b676f.d: crates/behavior/src/lib.rs crates/behavior/src/abuse.rs crates/behavior/src/device.rs crates/behavior/src/emit.rs crates/behavior/src/population.rs crates/behavior/src/schedule.rs

/root/repo/target/debug/deps/libipv6_study_behavior-76b3c6fbd37b676f.rmeta: crates/behavior/src/lib.rs crates/behavior/src/abuse.rs crates/behavior/src/device.rs crates/behavior/src/emit.rs crates/behavior/src/population.rs crates/behavior/src/schedule.rs

crates/behavior/src/lib.rs:
crates/behavior/src/abuse.rs:
crates/behavior/src/device.rs:
crates/behavior/src/emit.rs:
crates/behavior/src/population.rs:
crates/behavior/src/schedule.rs:
