/root/repo/target/debug/deps/fig08_aa_per_ip-2a7dee71c47d0f70.d: crates/bench/benches/fig08_aa_per_ip.rs

/root/repo/target/debug/deps/libfig08_aa_per_ip-2a7dee71c47d0f70.rmeta: crates/bench/benches/fig08_aa_per_ip.rs

crates/bench/benches/fig08_aa_per_ip.rs:
