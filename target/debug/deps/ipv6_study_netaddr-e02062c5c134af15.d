/root/repo/target/debug/deps/ipv6_study_netaddr-e02062c5c134af15.d: crates/netaddr/src/lib.rs crates/netaddr/src/aggregate.rs crates/netaddr/src/entropy.rs crates/netaddr/src/iid.rs crates/netaddr/src/mac.rs crates/netaddr/src/prefix.rs crates/netaddr/src/set.rs crates/netaddr/src/trie.rs Cargo.toml

/root/repo/target/debug/deps/libipv6_study_netaddr-e02062c5c134af15.rmeta: crates/netaddr/src/lib.rs crates/netaddr/src/aggregate.rs crates/netaddr/src/entropy.rs crates/netaddr/src/iid.rs crates/netaddr/src/mac.rs crates/netaddr/src/prefix.rs crates/netaddr/src/set.rs crates/netaddr/src/trie.rs Cargo.toml

crates/netaddr/src/lib.rs:
crates/netaddr/src/aggregate.rs:
crates/netaddr/src/entropy.rs:
crates/netaddr/src/iid.rs:
crates/netaddr/src/mac.rs:
crates/netaddr/src/prefix.rs:
crates/netaddr/src/set.rs:
crates/netaddr/src/trie.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
