/root/repo/target/debug/deps/repro-f2ff060e3d3e33ef.d: crates/core/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-f2ff060e3d3e33ef.rmeta: crates/core/src/bin/repro.rs

crates/core/src/bin/repro.rs:
