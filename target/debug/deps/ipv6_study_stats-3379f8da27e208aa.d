/root/repo/target/debug/deps/ipv6_study_stats-3379f8da27e208aa.d: crates/stats/src/lib.rs crates/stats/src/counter.rs crates/stats/src/dist.rs crates/stats/src/ecdf.rs crates/stats/src/extrapolate.rs crates/stats/src/hash.rs crates/stats/src/histogram.rs crates/stats/src/roc.rs crates/stats/src/summary.rs crates/stats/src/testgen.rs Cargo.toml

/root/repo/target/debug/deps/libipv6_study_stats-3379f8da27e208aa.rmeta: crates/stats/src/lib.rs crates/stats/src/counter.rs crates/stats/src/dist.rs crates/stats/src/ecdf.rs crates/stats/src/extrapolate.rs crates/stats/src/hash.rs crates/stats/src/histogram.rs crates/stats/src/roc.rs crates/stats/src/summary.rs crates/stats/src/testgen.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/counter.rs:
crates/stats/src/dist.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/extrapolate.rs:
crates/stats/src/hash.rs:
crates/stats/src/histogram.rs:
crates/stats/src/roc.rs:
crates/stats/src/summary.rs:
crates/stats/src/testgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
