/root/repo/target/debug/deps/ablations-74c9f6b341d091bb.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-74c9f6b341d091bb.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
