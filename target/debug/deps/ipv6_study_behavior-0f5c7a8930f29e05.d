/root/repo/target/debug/deps/ipv6_study_behavior-0f5c7a8930f29e05.d: crates/behavior/src/lib.rs crates/behavior/src/abuse.rs crates/behavior/src/device.rs crates/behavior/src/emit.rs crates/behavior/src/population.rs crates/behavior/src/schedule.rs

/root/repo/target/debug/deps/libipv6_study_behavior-0f5c7a8930f29e05.rmeta: crates/behavior/src/lib.rs crates/behavior/src/abuse.rs crates/behavior/src/device.rs crates/behavior/src/emit.rs crates/behavior/src/population.rs crates/behavior/src/schedule.rs

crates/behavior/src/lib.rs:
crates/behavior/src/abuse.rs:
crates/behavior/src/device.rs:
crates/behavior/src/emit.rs:
crates/behavior/src/population.rs:
crates/behavior/src/schedule.rs:
