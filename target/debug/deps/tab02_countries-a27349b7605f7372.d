/root/repo/target/debug/deps/tab02_countries-a27349b7605f7372.d: crates/bench/benches/tab02_countries.rs

/root/repo/target/debug/deps/libtab02_countries-a27349b7605f7372.rmeta: crates/bench/benches/tab02_countries.rs

crates/bench/benches/tab02_countries.rs:
