/root/repo/target/debug/deps/parallel_equivalence-8f8ca07ca037b03e.d: tests/parallel_equivalence.rs

/root/repo/target/debug/deps/libparallel_equivalence-8f8ca07ca037b03e.rmeta: tests/parallel_equivalence.rs

tests/parallel_equivalence.rs:
