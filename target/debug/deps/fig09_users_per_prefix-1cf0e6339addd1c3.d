/root/repo/target/debug/deps/fig09_users_per_prefix-1cf0e6339addd1c3.d: crates/bench/benches/fig09_users_per_prefix.rs

/root/repo/target/debug/deps/libfig09_users_per_prefix-1cf0e6339addd1c3.rmeta: crates/bench/benches/fig09_users_per_prefix.rs

crates/bench/benches/fig09_users_per_prefix.rs:
