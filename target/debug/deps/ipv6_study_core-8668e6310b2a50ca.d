/root/repo/target/debug/deps/ipv6_study_core-8668e6310b2a50ca.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/experiments.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libipv6_study_core-8668e6310b2a50ca.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/experiments.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/experiments.rs:
crates/core/src/paper.rs:
crates/core/src/report.rs:
crates/core/src/study.rs:
