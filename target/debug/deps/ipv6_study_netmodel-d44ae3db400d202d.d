/root/repo/target/debug/deps/ipv6_study_netmodel-d44ae3db400d202d.d: crates/netmodel/src/lib.rs crates/netmodel/src/conf.rs crates/netmodel/src/countries.rs crates/netmodel/src/epoch.rs crates/netmodel/src/kind.rs crates/netmodel/src/network.rs crates/netmodel/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libipv6_study_netmodel-d44ae3db400d202d.rmeta: crates/netmodel/src/lib.rs crates/netmodel/src/conf.rs crates/netmodel/src/countries.rs crates/netmodel/src/epoch.rs crates/netmodel/src/kind.rs crates/netmodel/src/network.rs crates/netmodel/src/world.rs Cargo.toml

crates/netmodel/src/lib.rs:
crates/netmodel/src/conf.rs:
crates/netmodel/src/countries.rs:
crates/netmodel/src/epoch.rs:
crates/netmodel/src/kind.rs:
crates/netmodel/src/network.rs:
crates/netmodel/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
