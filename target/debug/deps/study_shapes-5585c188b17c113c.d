/root/repo/target/debug/deps/study_shapes-5585c188b17c113c.d: tests/study_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libstudy_shapes-5585c188b17c113c.rmeta: tests/study_shapes.rs Cargo.toml

tests/study_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
