/root/repo/target/debug/deps/ipv6_study_behavior-ff8fbd7d4c9a35f0.d: crates/behavior/src/lib.rs crates/behavior/src/abuse.rs crates/behavior/src/device.rs crates/behavior/src/emit.rs crates/behavior/src/population.rs crates/behavior/src/schedule.rs Cargo.toml

/root/repo/target/debug/deps/libipv6_study_behavior-ff8fbd7d4c9a35f0.rmeta: crates/behavior/src/lib.rs crates/behavior/src/abuse.rs crates/behavior/src/device.rs crates/behavior/src/emit.rs crates/behavior/src/population.rs crates/behavior/src/schedule.rs Cargo.toml

crates/behavior/src/lib.rs:
crates/behavior/src/abuse.rs:
crates/behavior/src/device.rs:
crates/behavior/src/emit.rs:
crates/behavior/src/population.rs:
crates/behavior/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
