/root/repo/target/debug/deps/ipv6_study_netmodel-3c9a63d46ea75c6a.d: crates/netmodel/src/lib.rs crates/netmodel/src/conf.rs crates/netmodel/src/countries.rs crates/netmodel/src/epoch.rs crates/netmodel/src/kind.rs crates/netmodel/src/network.rs crates/netmodel/src/world.rs

/root/repo/target/debug/deps/libipv6_study_netmodel-3c9a63d46ea75c6a.rmeta: crates/netmodel/src/lib.rs crates/netmodel/src/conf.rs crates/netmodel/src/countries.rs crates/netmodel/src/epoch.rs crates/netmodel/src/kind.rs crates/netmodel/src/network.rs crates/netmodel/src/world.rs

crates/netmodel/src/lib.rs:
crates/netmodel/src/conf.rs:
crates/netmodel/src/countries.rs:
crates/netmodel/src/epoch.rs:
crates/netmodel/src/kind.rs:
crates/netmodel/src/network.rs:
crates/netmodel/src/world.rs:
