/root/repo/target/debug/deps/ipv6_study_behavior-56b70051972057de.d: crates/behavior/src/lib.rs crates/behavior/src/abuse.rs crates/behavior/src/device.rs crates/behavior/src/emit.rs crates/behavior/src/population.rs crates/behavior/src/schedule.rs

/root/repo/target/debug/deps/ipv6_study_behavior-56b70051972057de: crates/behavior/src/lib.rs crates/behavior/src/abuse.rs crates/behavior/src/device.rs crates/behavior/src/emit.rs crates/behavior/src/population.rs crates/behavior/src/schedule.rs

crates/behavior/src/lib.rs:
crates/behavior/src/abuse.rs:
crates/behavior/src/device.rs:
crates/behavior/src/emit.rs:
crates/behavior/src/population.rs:
crates/behavior/src/schedule.rs:
