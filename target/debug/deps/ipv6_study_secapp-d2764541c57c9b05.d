/root/repo/target/debug/deps/ipv6_study_secapp-d2764541c57c9b05.d: crates/secapp/src/lib.rs crates/secapp/src/actioning.rs crates/secapp/src/blocklist.rs crates/secapp/src/mlfeatures.rs crates/secapp/src/ratelimit.rs crates/secapp/src/signatures.rs crates/secapp/src/threat_exchange.rs Cargo.toml

/root/repo/target/debug/deps/libipv6_study_secapp-d2764541c57c9b05.rmeta: crates/secapp/src/lib.rs crates/secapp/src/actioning.rs crates/secapp/src/blocklist.rs crates/secapp/src/mlfeatures.rs crates/secapp/src/ratelimit.rs crates/secapp/src/signatures.rs crates/secapp/src/threat_exchange.rs Cargo.toml

crates/secapp/src/lib.rs:
crates/secapp/src/actioning.rs:
crates/secapp/src/blocklist.rs:
crates/secapp/src/mlfeatures.rs:
crates/secapp/src/ratelimit.rs:
crates/secapp/src/signatures.rs:
crates/secapp/src/threat_exchange.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
