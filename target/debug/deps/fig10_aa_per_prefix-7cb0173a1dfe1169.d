/root/repo/target/debug/deps/fig10_aa_per_prefix-7cb0173a1dfe1169.d: crates/bench/benches/fig10_aa_per_prefix.rs

/root/repo/target/debug/deps/libfig10_aa_per_prefix-7cb0173a1dfe1169.rmeta: crates/bench/benches/fig10_aa_per_prefix.rs

crates/bench/benches/fig10_aa_per_prefix.rs:
