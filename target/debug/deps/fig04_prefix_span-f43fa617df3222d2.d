/root/repo/target/debug/deps/fig04_prefix_span-f43fa617df3222d2.d: crates/bench/benches/fig04_prefix_span.rs

/root/repo/target/debug/deps/libfig04_prefix_span-f43fa617df3222d2.rmeta: crates/bench/benches/fig04_prefix_span.rs

crates/bench/benches/fig04_prefix_span.rs:
