/root/repo/target/debug/deps/o51_user_outliers-b29c1012237c9f64.d: crates/bench/benches/o51_user_outliers.rs

/root/repo/target/debug/deps/libo51_user_outliers-b29c1012237c9f64.rmeta: crates/bench/benches/o51_user_outliers.rs

crates/bench/benches/o51_user_outliers.rs:
