/root/repo/target/debug/deps/repro-f64d0bb7eb3777ba.d: crates/core/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-f64d0bb7eb3777ba.rmeta: crates/core/src/bin/repro.rs

crates/core/src/bin/repro.rs:
