/root/repo/target/debug/deps/ipv6_study_bench-8c2d0fb2cba130bc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ipv6_study_bench-8c2d0fb2cba130bc: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
