/root/repo/target/debug/deps/o61_ip_outliers-aabc45315fa08f18.d: crates/bench/benches/o61_ip_outliers.rs

/root/repo/target/debug/deps/libo61_ip_outliers-aabc45315fa08f18.rmeta: crates/bench/benches/o61_ip_outliers.rs

crates/bench/benches/o61_ip_outliers.rs:
