/root/repo/target/debug/deps/ipv6_study_stats-d7eeb48bc713eae1.d: crates/stats/src/lib.rs crates/stats/src/counter.rs crates/stats/src/dist.rs crates/stats/src/ecdf.rs crates/stats/src/extrapolate.rs crates/stats/src/hash.rs crates/stats/src/histogram.rs crates/stats/src/roc.rs crates/stats/src/summary.rs crates/stats/src/testgen.rs

/root/repo/target/debug/deps/libipv6_study_stats-d7eeb48bc713eae1.rmeta: crates/stats/src/lib.rs crates/stats/src/counter.rs crates/stats/src/dist.rs crates/stats/src/ecdf.rs crates/stats/src/extrapolate.rs crates/stats/src/hash.rs crates/stats/src/histogram.rs crates/stats/src/roc.rs crates/stats/src/summary.rs crates/stats/src/testgen.rs

crates/stats/src/lib.rs:
crates/stats/src/counter.rs:
crates/stats/src/dist.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/extrapolate.rs:
crates/stats/src/hash.rs:
crates/stats/src/histogram.rs:
crates/stats/src/roc.rs:
crates/stats/src/summary.rs:
crates/stats/src/testgen.rs:
