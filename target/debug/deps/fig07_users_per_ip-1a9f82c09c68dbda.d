/root/repo/target/debug/deps/fig07_users_per_ip-1a9f82c09c68dbda.d: crates/bench/benches/fig07_users_per_ip.rs

/root/repo/target/debug/deps/libfig07_users_per_ip-1a9f82c09c68dbda.rmeta: crates/bench/benches/fig07_users_per_ip.rs

crates/bench/benches/fig07_users_per_ip.rs:
