/root/repo/target/debug/deps/ipv6_study_netaddr-4d2f1f5712b2e48e.d: crates/netaddr/src/lib.rs crates/netaddr/src/aggregate.rs crates/netaddr/src/entropy.rs crates/netaddr/src/iid.rs crates/netaddr/src/mac.rs crates/netaddr/src/prefix.rs crates/netaddr/src/set.rs crates/netaddr/src/trie.rs

/root/repo/target/debug/deps/libipv6_study_netaddr-4d2f1f5712b2e48e.rmeta: crates/netaddr/src/lib.rs crates/netaddr/src/aggregate.rs crates/netaddr/src/entropy.rs crates/netaddr/src/iid.rs crates/netaddr/src/mac.rs crates/netaddr/src/prefix.rs crates/netaddr/src/set.rs crates/netaddr/src/trie.rs

crates/netaddr/src/lib.rs:
crates/netaddr/src/aggregate.rs:
crates/netaddr/src/entropy.rs:
crates/netaddr/src/iid.rs:
crates/netaddr/src/mac.rs:
crates/netaddr/src/prefix.rs:
crates/netaddr/src/set.rs:
crates/netaddr/src/trie.rs:
