/root/repo/target/debug/deps/ipv6_study_netaddr-97082e34c5741028.d: crates/netaddr/src/lib.rs crates/netaddr/src/aggregate.rs crates/netaddr/src/entropy.rs crates/netaddr/src/iid.rs crates/netaddr/src/mac.rs crates/netaddr/src/prefix.rs crates/netaddr/src/set.rs crates/netaddr/src/trie.rs

/root/repo/target/debug/deps/ipv6_study_netaddr-97082e34c5741028: crates/netaddr/src/lib.rs crates/netaddr/src/aggregate.rs crates/netaddr/src/entropy.rs crates/netaddr/src/iid.rs crates/netaddr/src/mac.rs crates/netaddr/src/prefix.rs crates/netaddr/src/set.rs crates/netaddr/src/trie.rs

crates/netaddr/src/lib.rs:
crates/netaddr/src/aggregate.rs:
crates/netaddr/src/entropy.rs:
crates/netaddr/src/iid.rs:
crates/netaddr/src/mac.rs:
crates/netaddr/src/prefix.rs:
crates/netaddr/src/set.rs:
crates/netaddr/src/trie.rs:
