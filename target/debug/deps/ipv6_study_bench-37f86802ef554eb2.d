/root/repo/target/debug/deps/ipv6_study_bench-37f86802ef554eb2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libipv6_study_bench-37f86802ef554eb2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
