/root/repo/target/debug/deps/ipv6_study_core-536c5495fd59ecd1.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/experiments.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/study.rs Cargo.toml

/root/repo/target/debug/deps/libipv6_study_core-536c5495fd59ecd1.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/experiments.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/study.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/experiments.rs:
crates/core/src/paper.rs:
crates/core/src/report.rs:
crates/core/src/study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
