/root/repo/target/debug/deps/ipv6_user_study-1569fc181936c36d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libipv6_user_study-1569fc181936c36d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
