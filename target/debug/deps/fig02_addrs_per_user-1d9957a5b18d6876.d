/root/repo/target/debug/deps/fig02_addrs_per_user-1d9957a5b18d6876.d: crates/bench/benches/fig02_addrs_per_user.rs

/root/repo/target/debug/deps/libfig02_addrs_per_user-1d9957a5b18d6876.rmeta: crates/bench/benches/fig02_addrs_per_user.rs

crates/bench/benches/fig02_addrs_per_user.rs:
