/root/repo/target/debug/deps/fig03_aa_addrs-1ca57bb77deca6ad.d: crates/bench/benches/fig03_aa_addrs.rs

/root/repo/target/debug/deps/libfig03_aa_addrs-1ca57bb77deca6ad.rmeta: crates/bench/benches/fig03_aa_addrs.rs

crates/bench/benches/fig03_aa_addrs.rs:
