/root/repo/target/debug/deps/ipv6_study_bench-d6fe1cfa66a06cf9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libipv6_study_bench-d6fe1cfa66a06cf9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
