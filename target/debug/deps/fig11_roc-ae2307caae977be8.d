/root/repo/target/debug/deps/fig11_roc-ae2307caae977be8.d: crates/bench/benches/fig11_roc.rs

/root/repo/target/debug/deps/libfig11_roc-ae2307caae977be8.rmeta: crates/bench/benches/fig11_roc.rs

crates/bench/benches/fig11_roc.rs:
