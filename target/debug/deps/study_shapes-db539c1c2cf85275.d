/root/repo/target/debug/deps/study_shapes-db539c1c2cf85275.d: tests/study_shapes.rs

/root/repo/target/debug/deps/libstudy_shapes-db539c1c2cf85275.rmeta: tests/study_shapes.rs

tests/study_shapes.rs:
