/root/repo/target/debug/deps/fig06_prefix_lifespans-e95d3eba9f71e8b4.d: crates/bench/benches/fig06_prefix_lifespans.rs

/root/repo/target/debug/deps/libfig06_prefix_lifespans-e95d3eba9f71e8b4.rmeta: crates/bench/benches/fig06_prefix_lifespans.rs

crates/bench/benches/fig06_prefix_lifespans.rs:
