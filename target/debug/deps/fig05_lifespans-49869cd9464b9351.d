/root/repo/target/debug/deps/fig05_lifespans-49869cd9464b9351.d: crates/bench/benches/fig05_lifespans.rs

/root/repo/target/debug/deps/libfig05_lifespans-49869cd9464b9351.rmeta: crates/bench/benches/fig05_lifespans.rs

crates/bench/benches/fig05_lifespans.rs:
