/root/repo/target/debug/deps/tab01_asn-84f50668d89dce8c.d: crates/bench/benches/tab01_asn.rs

/root/repo/target/debug/deps/libtab01_asn-84f50668d89dce8c.rmeta: crates/bench/benches/tab01_asn.rs

crates/bench/benches/tab01_asn.rs:
