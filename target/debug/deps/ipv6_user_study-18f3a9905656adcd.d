/root/repo/target/debug/deps/ipv6_user_study-18f3a9905656adcd.d: src/lib.rs

/root/repo/target/debug/deps/libipv6_user_study-18f3a9905656adcd.rmeta: src/lib.rs

src/lib.rs:
