/root/repo/target/debug/deps/ipv6_study_telemetry-a2846ccf61a6b6b9.d: crates/telemetry/src/lib.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/ids.rs crates/telemetry/src/labels.rs crates/telemetry/src/record.rs crates/telemetry/src/sampler.rs crates/telemetry/src/sink.rs crates/telemetry/src/store.rs crates/telemetry/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libipv6_study_telemetry-a2846ccf61a6b6b9.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/ids.rs crates/telemetry/src/labels.rs crates/telemetry/src/record.rs crates/telemetry/src/sampler.rs crates/telemetry/src/sink.rs crates/telemetry/src/store.rs crates/telemetry/src/time.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/csv.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/ids.rs:
crates/telemetry/src/labels.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/sampler.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/store.rs:
crates/telemetry/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
