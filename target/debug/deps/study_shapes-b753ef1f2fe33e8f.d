/root/repo/target/debug/deps/study_shapes-b753ef1f2fe33e8f.d: tests/study_shapes.rs

/root/repo/target/debug/deps/study_shapes-b753ef1f2fe33e8f: tests/study_shapes.rs

tests/study_shapes.rs:
