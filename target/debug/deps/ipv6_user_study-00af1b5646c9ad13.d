/root/repo/target/debug/deps/ipv6_user_study-00af1b5646c9ad13.d: src/lib.rs

/root/repo/target/debug/deps/libipv6_user_study-00af1b5646c9ad13.rmeta: src/lib.rs

src/lib.rs:
