/root/repo/target/debug/deps/ipv6_study_core-5d8608ce5dbedf41.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/experiments.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libipv6_study_core-5d8608ce5dbedf41.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/experiments.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/experiments.rs:
crates/core/src/paper.rs:
crates/core/src/report.rs:
crates/core/src/study.rs:
