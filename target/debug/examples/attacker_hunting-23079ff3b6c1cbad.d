/root/repo/target/debug/examples/attacker_hunting-23079ff3b6c1cbad.d: examples/attacker_hunting.rs

/root/repo/target/debug/examples/libattacker_hunting-23079ff3b6c1cbad.rmeta: examples/attacker_hunting.rs

examples/attacker_hunting.rs:
