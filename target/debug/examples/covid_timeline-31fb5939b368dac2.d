/root/repo/target/debug/examples/covid_timeline-31fb5939b368dac2.d: examples/covid_timeline.rs

/root/repo/target/debug/examples/covid_timeline-31fb5939b368dac2: examples/covid_timeline.rs

examples/covid_timeline.rs:
