/root/repo/target/debug/examples/quickstart-10d6795e55a481b6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-10d6795e55a481b6: examples/quickstart.rs

examples/quickstart.rs:
