/root/repo/target/debug/examples/rate_limit_tuning-3b92db23c70f03e1.d: examples/rate_limit_tuning.rs

/root/repo/target/debug/examples/rate_limit_tuning-3b92db23c70f03e1: examples/rate_limit_tuning.rs

examples/rate_limit_tuning.rs:
