/root/repo/target/debug/examples/covid_timeline-69fba82d451983f3.d: examples/covid_timeline.rs

/root/repo/target/debug/examples/libcovid_timeline-69fba82d451983f3.rmeta: examples/covid_timeline.rs

examples/covid_timeline.rs:
