/root/repo/target/debug/examples/rate_limit_tuning-12ec13b7f34bcb55.d: examples/rate_limit_tuning.rs Cargo.toml

/root/repo/target/debug/examples/librate_limit_tuning-12ec13b7f34bcb55.rmeta: examples/rate_limit_tuning.rs Cargo.toml

examples/rate_limit_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
