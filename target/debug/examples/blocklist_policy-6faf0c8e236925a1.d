/root/repo/target/debug/examples/blocklist_policy-6faf0c8e236925a1.d: examples/blocklist_policy.rs

/root/repo/target/debug/examples/libblocklist_policy-6faf0c8e236925a1.rmeta: examples/blocklist_policy.rs

examples/blocklist_policy.rs:
