/root/repo/target/debug/examples/quickstart-40a0f746f28a6e8b.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-40a0f746f28a6e8b.rmeta: examples/quickstart.rs

examples/quickstart.rs:
