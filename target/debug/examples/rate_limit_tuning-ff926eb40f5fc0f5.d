/root/repo/target/debug/examples/rate_limit_tuning-ff926eb40f5fc0f5.d: examples/rate_limit_tuning.rs

/root/repo/target/debug/examples/librate_limit_tuning-ff926eb40f5fc0f5.rmeta: examples/rate_limit_tuning.rs

examples/rate_limit_tuning.rs:
