/root/repo/target/debug/examples/attacker_hunting-745ffa1b1f35f8f4.d: examples/attacker_hunting.rs Cargo.toml

/root/repo/target/debug/examples/libattacker_hunting-745ffa1b1f35f8f4.rmeta: examples/attacker_hunting.rs Cargo.toml

examples/attacker_hunting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
