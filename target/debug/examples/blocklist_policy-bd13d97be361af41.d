/root/repo/target/debug/examples/blocklist_policy-bd13d97be361af41.d: examples/blocklist_policy.rs Cargo.toml

/root/repo/target/debug/examples/libblocklist_policy-bd13d97be361af41.rmeta: examples/blocklist_policy.rs Cargo.toml

examples/blocklist_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
