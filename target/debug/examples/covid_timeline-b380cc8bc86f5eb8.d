/root/repo/target/debug/examples/covid_timeline-b380cc8bc86f5eb8.d: examples/covid_timeline.rs Cargo.toml

/root/repo/target/debug/examples/libcovid_timeline-b380cc8bc86f5eb8.rmeta: examples/covid_timeline.rs Cargo.toml

examples/covid_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
