/root/repo/target/debug/examples/blocklist_policy-68e208a8fd9c3cd3.d: examples/blocklist_policy.rs

/root/repo/target/debug/examples/blocklist_policy-68e208a8fd9c3cd3: examples/blocklist_policy.rs

examples/blocklist_policy.rs:
