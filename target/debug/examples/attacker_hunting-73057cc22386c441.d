/root/repo/target/debug/examples/attacker_hunting-73057cc22386c441.d: examples/attacker_hunting.rs

/root/repo/target/debug/examples/attacker_hunting-73057cc22386c441: examples/attacker_hunting.rs

examples/attacker_hunting.rs:
