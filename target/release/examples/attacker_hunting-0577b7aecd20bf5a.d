/root/repo/target/release/examples/attacker_hunting-0577b7aecd20bf5a.d: examples/attacker_hunting.rs

/root/repo/target/release/examples/attacker_hunting-0577b7aecd20bf5a: examples/attacker_hunting.rs

examples/attacker_hunting.rs:
