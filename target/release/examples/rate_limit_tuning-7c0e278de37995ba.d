/root/repo/target/release/examples/rate_limit_tuning-7c0e278de37995ba.d: examples/rate_limit_tuning.rs

/root/repo/target/release/examples/rate_limit_tuning-7c0e278de37995ba: examples/rate_limit_tuning.rs

examples/rate_limit_tuning.rs:
