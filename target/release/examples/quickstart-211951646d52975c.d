/root/repo/target/release/examples/quickstart-211951646d52975c.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-211951646d52975c: examples/quickstart.rs

examples/quickstart.rs:
