/root/repo/target/release/examples/blocklist_policy-eca0b27efa7aa1ac.d: examples/blocklist_policy.rs

/root/repo/target/release/examples/blocklist_policy-eca0b27efa7aa1ac: examples/blocklist_policy.rs

examples/blocklist_policy.rs:
