/root/repo/target/release/examples/covid_timeline-afe529874f30acd1.d: examples/covid_timeline.rs

/root/repo/target/release/examples/covid_timeline-afe529874f30acd1: examples/covid_timeline.rs

examples/covid_timeline.rs:
