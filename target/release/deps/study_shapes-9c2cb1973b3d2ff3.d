/root/repo/target/release/deps/study_shapes-9c2cb1973b3d2ff3.d: tests/study_shapes.rs

/root/repo/target/release/deps/study_shapes-9c2cb1973b3d2ff3: tests/study_shapes.rs

tests/study_shapes.rs:
