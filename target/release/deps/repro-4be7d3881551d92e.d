/root/repo/target/release/deps/repro-4be7d3881551d92e.d: crates/core/src/bin/repro.rs

/root/repo/target/release/deps/repro-4be7d3881551d92e: crates/core/src/bin/repro.rs

crates/core/src/bin/repro.rs:
