/root/repo/target/release/deps/ipv6_study_netaddr-8196cdf9d8b3069a.d: crates/netaddr/src/lib.rs crates/netaddr/src/aggregate.rs crates/netaddr/src/entropy.rs crates/netaddr/src/iid.rs crates/netaddr/src/mac.rs crates/netaddr/src/prefix.rs crates/netaddr/src/set.rs crates/netaddr/src/trie.rs

/root/repo/target/release/deps/ipv6_study_netaddr-8196cdf9d8b3069a: crates/netaddr/src/lib.rs crates/netaddr/src/aggregate.rs crates/netaddr/src/entropy.rs crates/netaddr/src/iid.rs crates/netaddr/src/mac.rs crates/netaddr/src/prefix.rs crates/netaddr/src/set.rs crates/netaddr/src/trie.rs

crates/netaddr/src/lib.rs:
crates/netaddr/src/aggregate.rs:
crates/netaddr/src/entropy.rs:
crates/netaddr/src/iid.rs:
crates/netaddr/src/mac.rs:
crates/netaddr/src/prefix.rs:
crates/netaddr/src/set.rs:
crates/netaddr/src/trie.rs:
