/root/repo/target/release/deps/ipv6_user_study-ad688b8641fd57d0.d: src/lib.rs

/root/repo/target/release/deps/libipv6_user_study-ad688b8641fd57d0.rlib: src/lib.rs

/root/repo/target/release/deps/libipv6_user_study-ad688b8641fd57d0.rmeta: src/lib.rs

src/lib.rs:
