/root/repo/target/release/deps/ipv6_user_study-6b01b4802f3efc67.d: src/lib.rs

/root/repo/target/release/deps/ipv6_user_study-6b01b4802f3efc67: src/lib.rs

src/lib.rs:
