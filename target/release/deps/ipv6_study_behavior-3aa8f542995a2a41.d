/root/repo/target/release/deps/ipv6_study_behavior-3aa8f542995a2a41.d: crates/behavior/src/lib.rs crates/behavior/src/abuse.rs crates/behavior/src/device.rs crates/behavior/src/emit.rs crates/behavior/src/population.rs crates/behavior/src/schedule.rs

/root/repo/target/release/deps/ipv6_study_behavior-3aa8f542995a2a41: crates/behavior/src/lib.rs crates/behavior/src/abuse.rs crates/behavior/src/device.rs crates/behavior/src/emit.rs crates/behavior/src/population.rs crates/behavior/src/schedule.rs

crates/behavior/src/lib.rs:
crates/behavior/src/abuse.rs:
crates/behavior/src/device.rs:
crates/behavior/src/emit.rs:
crates/behavior/src/population.rs:
crates/behavior/src/schedule.rs:
