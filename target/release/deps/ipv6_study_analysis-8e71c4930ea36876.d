/root/repo/target/release/deps/ipv6_study_analysis-8e71c4930ea36876.d: crates/analysis/src/lib.rs crates/analysis/src/characterize.rs crates/analysis/src/ip_centric.rs crates/analysis/src/outliers.rs crates/analysis/src/report.rs crates/analysis/src/similarity.rs crates/analysis/src/user_centric.rs

/root/repo/target/release/deps/ipv6_study_analysis-8e71c4930ea36876: crates/analysis/src/lib.rs crates/analysis/src/characterize.rs crates/analysis/src/ip_centric.rs crates/analysis/src/outliers.rs crates/analysis/src/report.rs crates/analysis/src/similarity.rs crates/analysis/src/user_centric.rs

crates/analysis/src/lib.rs:
crates/analysis/src/characterize.rs:
crates/analysis/src/ip_centric.rs:
crates/analysis/src/outliers.rs:
crates/analysis/src/report.rs:
crates/analysis/src/similarity.rs:
crates/analysis/src/user_centric.rs:
