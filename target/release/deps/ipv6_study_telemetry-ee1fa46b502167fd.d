/root/repo/target/release/deps/ipv6_study_telemetry-ee1fa46b502167fd.d: crates/telemetry/src/lib.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/ids.rs crates/telemetry/src/labels.rs crates/telemetry/src/record.rs crates/telemetry/src/sampler.rs crates/telemetry/src/sink.rs crates/telemetry/src/store.rs crates/telemetry/src/time.rs

/root/repo/target/release/deps/ipv6_study_telemetry-ee1fa46b502167fd: crates/telemetry/src/lib.rs crates/telemetry/src/csv.rs crates/telemetry/src/dataset.rs crates/telemetry/src/ids.rs crates/telemetry/src/labels.rs crates/telemetry/src/record.rs crates/telemetry/src/sampler.rs crates/telemetry/src/sink.rs crates/telemetry/src/store.rs crates/telemetry/src/time.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/csv.rs:
crates/telemetry/src/dataset.rs:
crates/telemetry/src/ids.rs:
crates/telemetry/src/labels.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/sampler.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/store.rs:
crates/telemetry/src/time.rs:
