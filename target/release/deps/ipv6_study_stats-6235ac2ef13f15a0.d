/root/repo/target/release/deps/ipv6_study_stats-6235ac2ef13f15a0.d: crates/stats/src/lib.rs crates/stats/src/counter.rs crates/stats/src/dist.rs crates/stats/src/ecdf.rs crates/stats/src/extrapolate.rs crates/stats/src/hash.rs crates/stats/src/histogram.rs crates/stats/src/roc.rs crates/stats/src/summary.rs crates/stats/src/testgen.rs

/root/repo/target/release/deps/ipv6_study_stats-6235ac2ef13f15a0: crates/stats/src/lib.rs crates/stats/src/counter.rs crates/stats/src/dist.rs crates/stats/src/ecdf.rs crates/stats/src/extrapolate.rs crates/stats/src/hash.rs crates/stats/src/histogram.rs crates/stats/src/roc.rs crates/stats/src/summary.rs crates/stats/src/testgen.rs

crates/stats/src/lib.rs:
crates/stats/src/counter.rs:
crates/stats/src/dist.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/extrapolate.rs:
crates/stats/src/hash.rs:
crates/stats/src/histogram.rs:
crates/stats/src/roc.rs:
crates/stats/src/summary.rs:
crates/stats/src/testgen.rs:
