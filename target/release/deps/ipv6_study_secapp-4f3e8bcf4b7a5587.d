/root/repo/target/release/deps/ipv6_study_secapp-4f3e8bcf4b7a5587.d: crates/secapp/src/lib.rs crates/secapp/src/actioning.rs crates/secapp/src/blocklist.rs crates/secapp/src/mlfeatures.rs crates/secapp/src/ratelimit.rs crates/secapp/src/signatures.rs crates/secapp/src/threat_exchange.rs

/root/repo/target/release/deps/libipv6_study_secapp-4f3e8bcf4b7a5587.rlib: crates/secapp/src/lib.rs crates/secapp/src/actioning.rs crates/secapp/src/blocklist.rs crates/secapp/src/mlfeatures.rs crates/secapp/src/ratelimit.rs crates/secapp/src/signatures.rs crates/secapp/src/threat_exchange.rs

/root/repo/target/release/deps/libipv6_study_secapp-4f3e8bcf4b7a5587.rmeta: crates/secapp/src/lib.rs crates/secapp/src/actioning.rs crates/secapp/src/blocklist.rs crates/secapp/src/mlfeatures.rs crates/secapp/src/ratelimit.rs crates/secapp/src/signatures.rs crates/secapp/src/threat_exchange.rs

crates/secapp/src/lib.rs:
crates/secapp/src/actioning.rs:
crates/secapp/src/blocklist.rs:
crates/secapp/src/mlfeatures.rs:
crates/secapp/src/ratelimit.rs:
crates/secapp/src/signatures.rs:
crates/secapp/src/threat_exchange.rs:
