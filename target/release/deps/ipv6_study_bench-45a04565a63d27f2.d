/root/repo/target/release/deps/ipv6_study_bench-45a04565a63d27f2.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libipv6_study_bench-45a04565a63d27f2.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libipv6_study_bench-45a04565a63d27f2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
