/root/repo/target/release/deps/ipv6_study_netmodel-2f113b399be8ecd9.d: crates/netmodel/src/lib.rs crates/netmodel/src/conf.rs crates/netmodel/src/countries.rs crates/netmodel/src/epoch.rs crates/netmodel/src/kind.rs crates/netmodel/src/network.rs crates/netmodel/src/world.rs

/root/repo/target/release/deps/ipv6_study_netmodel-2f113b399be8ecd9: crates/netmodel/src/lib.rs crates/netmodel/src/conf.rs crates/netmodel/src/countries.rs crates/netmodel/src/epoch.rs crates/netmodel/src/kind.rs crates/netmodel/src/network.rs crates/netmodel/src/world.rs

crates/netmodel/src/lib.rs:
crates/netmodel/src/conf.rs:
crates/netmodel/src/countries.rs:
crates/netmodel/src/epoch.rs:
crates/netmodel/src/kind.rs:
crates/netmodel/src/network.rs:
crates/netmodel/src/world.rs:
