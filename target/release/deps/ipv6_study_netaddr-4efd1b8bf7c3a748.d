/root/repo/target/release/deps/ipv6_study_netaddr-4efd1b8bf7c3a748.d: crates/netaddr/src/lib.rs crates/netaddr/src/aggregate.rs crates/netaddr/src/entropy.rs crates/netaddr/src/iid.rs crates/netaddr/src/mac.rs crates/netaddr/src/prefix.rs crates/netaddr/src/set.rs crates/netaddr/src/trie.rs

/root/repo/target/release/deps/libipv6_study_netaddr-4efd1b8bf7c3a748.rlib: crates/netaddr/src/lib.rs crates/netaddr/src/aggregate.rs crates/netaddr/src/entropy.rs crates/netaddr/src/iid.rs crates/netaddr/src/mac.rs crates/netaddr/src/prefix.rs crates/netaddr/src/set.rs crates/netaddr/src/trie.rs

/root/repo/target/release/deps/libipv6_study_netaddr-4efd1b8bf7c3a748.rmeta: crates/netaddr/src/lib.rs crates/netaddr/src/aggregate.rs crates/netaddr/src/entropy.rs crates/netaddr/src/iid.rs crates/netaddr/src/mac.rs crates/netaddr/src/prefix.rs crates/netaddr/src/set.rs crates/netaddr/src/trie.rs

crates/netaddr/src/lib.rs:
crates/netaddr/src/aggregate.rs:
crates/netaddr/src/entropy.rs:
crates/netaddr/src/iid.rs:
crates/netaddr/src/mac.rs:
crates/netaddr/src/prefix.rs:
crates/netaddr/src/set.rs:
crates/netaddr/src/trie.rs:
