/root/repo/target/release/deps/parallel_equivalence-77a4d59869cb4041.d: tests/parallel_equivalence.rs

/root/repo/target/release/deps/parallel_equivalence-77a4d59869cb4041: tests/parallel_equivalence.rs

tests/parallel_equivalence.rs:
