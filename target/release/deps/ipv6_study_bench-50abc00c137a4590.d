/root/repo/target/release/deps/ipv6_study_bench-50abc00c137a4590.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/ipv6_study_bench-50abc00c137a4590: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
