/root/repo/target/release/deps/ipv6_study_core-7941e28396f8b218.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/experiments.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/release/deps/ipv6_study_core-7941e28396f8b218: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/experiments.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/experiments.rs:
crates/core/src/paper.rs:
crates/core/src/report.rs:
crates/core/src/study.rs:
