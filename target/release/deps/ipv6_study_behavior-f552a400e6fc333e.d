/root/repo/target/release/deps/ipv6_study_behavior-f552a400e6fc333e.d: crates/behavior/src/lib.rs crates/behavior/src/abuse.rs crates/behavior/src/device.rs crates/behavior/src/emit.rs crates/behavior/src/population.rs crates/behavior/src/schedule.rs

/root/repo/target/release/deps/libipv6_study_behavior-f552a400e6fc333e.rlib: crates/behavior/src/lib.rs crates/behavior/src/abuse.rs crates/behavior/src/device.rs crates/behavior/src/emit.rs crates/behavior/src/population.rs crates/behavior/src/schedule.rs

/root/repo/target/release/deps/libipv6_study_behavior-f552a400e6fc333e.rmeta: crates/behavior/src/lib.rs crates/behavior/src/abuse.rs crates/behavior/src/device.rs crates/behavior/src/emit.rs crates/behavior/src/population.rs crates/behavior/src/schedule.rs

crates/behavior/src/lib.rs:
crates/behavior/src/abuse.rs:
crates/behavior/src/device.rs:
crates/behavior/src/emit.rs:
crates/behavior/src/population.rs:
crates/behavior/src/schedule.rs:
