/root/repo/target/release/deps/ipv6_study_secapp-7f74813075827358.d: crates/secapp/src/lib.rs crates/secapp/src/actioning.rs crates/secapp/src/blocklist.rs crates/secapp/src/mlfeatures.rs crates/secapp/src/ratelimit.rs crates/secapp/src/signatures.rs crates/secapp/src/threat_exchange.rs

/root/repo/target/release/deps/ipv6_study_secapp-7f74813075827358: crates/secapp/src/lib.rs crates/secapp/src/actioning.rs crates/secapp/src/blocklist.rs crates/secapp/src/mlfeatures.rs crates/secapp/src/ratelimit.rs crates/secapp/src/signatures.rs crates/secapp/src/threat_exchange.rs

crates/secapp/src/lib.rs:
crates/secapp/src/actioning.rs:
crates/secapp/src/blocklist.rs:
crates/secapp/src/mlfeatures.rs:
crates/secapp/src/ratelimit.rs:
crates/secapp/src/signatures.rs:
crates/secapp/src/threat_exchange.rs:
