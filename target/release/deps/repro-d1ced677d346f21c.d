/root/repo/target/release/deps/repro-d1ced677d346f21c.d: crates/core/src/bin/repro.rs

/root/repo/target/release/deps/repro-d1ced677d346f21c: crates/core/src/bin/repro.rs

crates/core/src/bin/repro.rs:
