/root/repo/target/release/deps/ipv6_study_core-a3ee89bb3900e327.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/experiments.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/release/deps/libipv6_study_core-a3ee89bb3900e327.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/experiments.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/release/deps/libipv6_study_core-a3ee89bb3900e327.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/experiments.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/experiments.rs:
crates/core/src/paper.rs:
crates/core/src/report.rs:
crates/core/src/study.rs:
