//! Shared harness for the per-figure benchmark targets.
//!
//! Every bench target regenerates one of the paper's tables or figures:
//! it prints the measured rows/series once (the reproduction artifact),
//! then times the analysis pass itself with a small std-only loop
//! (`std::time::Instant`; no external benchmark framework so the
//! workspace builds fully offline). The simulated study — and the shared
//! [`AnalysisCtx`] with its pre-built dataset indexes — is built once per
//! process and shared read-only.

use std::sync::OnceLock;
use std::time::Instant;

use ipv6_study_core::{AnalysisCtx, Study, StudyConfig};

pub mod cli;

/// The shared study (test scale: fast enough for bench startup, dense
/// enough for every figure to be populated).
pub fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(StudyConfig::test_scale()).expect("valid preset"))
}

/// The shared analysis context over [`study`] (indexes built once).
pub fn ctx() -> &'static AnalysisCtx<'static> {
    static CTX: OnceLock<AnalysisCtx<'static>> = OnceLock::new();
    CTX.get_or_init(|| AnalysisCtx::new(study()))
}

/// Prints an experiment's artifacts (figures as sampled series, tables as
/// aligned text, stats as a list) — the paper-facing output of the bench.
pub fn print_output(id: &str, out: &ipv6_study_core::ExperimentOutput) {
    println!("================ {id} ================");
    for t in &out.tables {
        println!("{}", t.to_text());
    }
    for f in &out.figures {
        println!("{}", f.to_text(12));
    }
    for (k, v) in &out.stats {
        println!("  {k:45} {v:.4}");
    }
}

/// Times `f` over `samples` iterations (after one warm-up call) and prints
/// a one-line min/mean/max summary. Returns the mean in seconds.
pub fn time_fn<R>(name: &str, samples: u32, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f()); // warm-up
    let mut times = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / f64::from(samples);
    println!(
        "bench {name:40} min {:>9} mean {:>9} max {:>9}",
        fmt_s(min),
        fmt_s(mean),
        fmt_s(max)
    );
    mean
}

fn fmt_s(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.1}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.3}s")
    }
}

/// Declares a bench target for one experiment function.
#[macro_export]
macro_rules! bench_experiment {
    ($name:ident, $id:literal, $func:path) => {
        fn main() {
            let ctx = $crate::ctx();
            let out = $func(ctx);
            $crate::print_output($id, &out);
            $crate::time_fn(concat!(stringify!($name), "_analysis"), 10, || $func(ctx));
        }
    };
}
