//! Shared harness for the per-figure benchmark targets.
//!
//! Every bench target regenerates one of the paper's tables or figures:
//! it prints the measured rows/series once (the reproduction artifact),
//! then benchmarks the analysis pass itself with Criterion. The simulated
//! study is built once per process and shared.

use std::sync::{Mutex, MutexGuard, OnceLock};

use ipv6_study_core::{Study, StudyConfig};

/// The shared study (test scale: fast enough for bench startup, dense
/// enough for every figure to be populated).
pub fn study() -> MutexGuard<'static, Study> {
    static STUDY: OnceLock<Mutex<Study>> = OnceLock::new();
    STUDY
        .get_or_init(|| Mutex::new(Study::run(StudyConfig::test_scale())))
        .lock()
        .expect("study mutex poisoned")
}

/// Prints an experiment's artifacts (figures as sampled series, tables as
/// aligned text, stats as a list) — the paper-facing output of the bench.
pub fn print_output(id: &str, out: &ipv6_study_core::ExperimentOutput) {
    println!("================ {id} ================");
    for t in &out.tables {
        println!("{}", t.to_text());
    }
    for f in &out.figures {
        println!("{}", f.to_text(12));
    }
    for (k, v) in &out.stats {
        println!("  {k:45} {v:.4}");
    }
}

/// Declares a bench target for one experiment function.
#[macro_export]
macro_rules! bench_experiment {
    ($name:ident, $id:literal, $func:path) => {
        fn $name(c: &mut criterion::Criterion) {
            let mut study = $crate::study();
            let out = $func(&mut study);
            $crate::print_output($id, &out);
            c.bench_function(concat!(stringify!($name), "_analysis"), |b| {
                b.iter(|| criterion::black_box($func(&mut study)))
            });
        }
        criterion::criterion_group! {
            name = benches;
            config = criterion::Criterion::default().sample_size(10);
            targets = $name
        }
        criterion::criterion_main!(benches);
    };
}
