//! Kernel-level microbenchmarks: times the `telemetry::kernels`
//! primitives (masks, gather, radix sorts) and the `RecordView` cursor
//! on synthetic columns, and writes a small JSON blob so future PRs can
//! track kernel-level drift separately from whole-run walls.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ipv6-study-bench --bin bench_kernels -- \
//!     [--rows N] [--iters N] [--out PATH]
//! ```
//!
//! Defaults: 1M rows, best-of-5 timing, `BENCH_kernels.json`. Each
//! kernel is timed against its pre-kernel counterpart where one exists
//! (comparison sorts for the radix paths, the index-per-row cursor for
//! `RecordView`), so the blob records the speedup the hot paths run on,
//! not just an absolute number that only this machine can interpret.

use std::sync::Arc;
use std::time::Instant;

use ipv6_study_bench::cli::usage_exit;
use ipv6_study_obs::Json;
use ipv6_study_stats::testgen::TestGen;
use ipv6_study_telemetry::columns::ColumnStore;
use ipv6_study_telemetry::intern::{EntityTables, IpId, IpTable, UserTable};
use ipv6_study_telemetry::kernels::{
    mask_eq_u32, mask_ts_window, radix_sort_perm_u32, radix_sort_u64, scratch_stats,
};
use ipv6_study_telemetry::time::Timestamp;
use ipv6_study_telemetry::{Asn, Country};

const USAGE: &str = "usage: bench_kernels [--rows N] [--iters N] [--out PATH]";

/// Best-of-`iters` wall clock of `f`, with the result kept alive so the
/// optimizer cannot elide the work.
fn time_best<R>(iters: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters.max(1) {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("at least one iteration"))
}

/// One benchmark row: kernel wall, baseline wall (0.0 when there is no
/// pre-kernel counterpart), and throughput over `rows`.
fn entry(rows: usize, kernel_secs: f64, baseline_secs: f64) -> Json {
    let rate = if kernel_secs > 0.0 {
        rows as f64 / kernel_secs
    } else {
        0.0
    };
    let speedup = if kernel_secs > 0.0 && baseline_secs > 0.0 {
        baseline_secs / kernel_secs
    } else {
        0.0
    };
    Json::obj()
        .with("secs", Json::num(kernel_secs))
        .with("baseline_secs", Json::num(baseline_secs))
        .with("rows_per_sec", Json::num(rate))
        .with("speedup", Json::num(speedup))
}

fn main() {
    let mut rows: usize = 1_000_000;
    let mut iters: usize = 5;
    let mut out_path = String::from("BENCH_kernels.json");
    let mut args = std::env::args().skip(1);
    let parse_n = |v: &str| -> usize {
        v.parse()
            .unwrap_or_else(|_| usage_exit(USAGE, &format!("bad count `{v}`")))
    };
    while let Some(arg) = args.next() {
        if arg == "--rows" {
            let Some(v) = args.next() else {
                usage_exit(USAGE, "--rows needs a value")
            };
            rows = parse_n(&v);
        } else if let Some(v) = arg.strip_prefix("--rows=") {
            rows = parse_n(v);
        } else if arg == "--iters" {
            let Some(v) = args.next() else {
                usage_exit(USAGE, "--iters needs a value")
            };
            iters = parse_n(&v);
        } else if let Some(v) = arg.strip_prefix("--iters=") {
            iters = parse_n(v);
        } else if arg == "--out" {
            let Some(v) = args.next() else {
                usage_exit(USAGE, "--out needs a value")
            };
            out_path = v;
        } else if let Some(v) = arg.strip_prefix("--out=") {
            out_path = v.to_string();
        } else {
            usage_exit(USAGE, &format!("unexpected argument `{arg}`"));
        }
    }

    // Synthetic columns: `rows` encoded rows over small real intern
    // tables (so the RecordView cursor exercises genuine dense-id
    // lookups), duplicate-heavy keys, timestamps spanning ~6 days.
    const USERS: u64 = 50_000;
    const V4: usize = 10_000;
    const V6: usize = 40_000;
    const ASNS: u64 = 200;
    let tables = Arc::new(EntityTables {
        ips: IpTable::from_keys(
            (0..V4 as u32).map(|i| 0x0a00_0000 + i).collect(),
            (0..V6 as u128)
                .map(|i| (0x2001_0db8u128 << 96) + i)
                .collect(),
        ),
        users: UserTable::from_keys((0..USERS).collect()),
    });
    let mut g = TestGen::new(0x4b45_524e); // "KERN"
    let mut cols = ColumnStore::default();
    cols.reserve(rows);
    for _ in 0..rows {
        cols.ts.push(Timestamp::from_secs(g.below(500_000) as u32));
        let v6 = g.below(5) != 0; // ~80% v6, like the study's samples
        cols.ip.push(if v6 {
            IpId::new(true, g.below(V6 as u64) as usize)
        } else {
            IpId::new(false, g.below(V4 as u64) as usize)
        });
        cols.user.push(g.below(USERS) as u32);
        cols.asn.push(Asn(64_000 + g.below(ASNS) as u32));
        cols.country.push(Country::new("US"));
    }
    let slice = cols.slice(0..rows, &tables);

    // -- mask builders ----------------------------------------------------
    let (lo, hi) = (Timestamp::from_secs(100_000), Timestamp::from_secs(300_000));
    let (mask_ts_secs, ts_mask) = time_best(iters, || mask_ts_window(slice.ts(), lo, hi));
    let probe_asn = 64_007u32;
    let (mask_eq_secs, asn_mask) = time_best(iters, || mask_eq_u32(slice.asns(), probe_asn));
    let (and_secs, selected) = time_best(iters, || {
        let mut m = ts_mask.clone();
        m.and(&asn_mask);
        m.count()
    });

    // -- gather vs the old filtered re-encode -----------------------------
    let mut kind_mask = ts_mask.clone();
    kind_mask.and(&asn_mask);
    let (gather_secs, gathered) = time_best(iters, || slice.gather(&kind_mask).len());
    let (reencode_secs, reencoded) = time_best(iters, || {
        let keep = |r: &ipv6_study_telemetry::RequestRecord| {
            r.asn.0 == probe_asn && r.ts >= lo && r.ts <= hi
        };
        ipv6_study_telemetry::OwnedColumns::encode_with(
            Arc::clone(&tables),
            slice.records().filter(keep),
        )
        .len()
    });
    assert_eq!(gathered, reencoded, "gather == filtered re-encode");
    assert_eq!(gathered, selected, "gather count == mask popcount");

    // -- RecordView cursor vs per-row indexed materialization -------------
    let (cursor_secs, cursor_sum) = time_best(iters, || {
        slice
            .records()
            .fold(0u64, |acc, r| acc.wrapping_add(u64::from(r.asn.0)))
    });
    let (indexed_secs, indexed_sum) = time_best(iters, || {
        (0..slice.len()).fold(0u64, |acc, i| {
            acc.wrapping_add(u64::from(slice.record(i).asn.0))
        })
    });
    assert_eq!(cursor_sum, indexed_sum, "cursor == indexed materialization");

    // -- radix sorts vs comparison sorts ----------------------------------
    let (radix_perm_secs, radix_perm) =
        time_best(iters, || radix_sort_perm_u32(slice.users_dense()));
    let (cmp_perm_secs, cmp_perm) = time_best(iters, || {
        let mut perm: Vec<u32> = (0..rows as u32).collect();
        perm.sort_by_key(|&i| slice.users_dense()[i as usize]);
        perm
    });
    assert_eq!(radix_perm, cmp_perm, "radix perm == stable comparison perm");

    // Bounded like the sim's raw user-id space, so the uniform-byte
    // pass-skip in `radix_sort_u64` is exercised the way
    // `RequestStore::distinct_users` exercises it.
    let keys64: Vec<u64> = {
        let mut g = TestGen::new(7);
        g.vec_of(rows, |g| g.below(1 << 20))
    };
    let (radix64_secs, radix_sorted) = time_best(iters, || {
        let mut v = keys64.clone();
        radix_sort_u64(&mut v);
        v
    });
    let (cmp64_secs, cmp_sorted) = time_best(iters, || {
        let mut v = keys64.clone();
        v.sort_unstable();
        v
    });
    assert_eq!(radix_sorted, cmp_sorted, "radix u64 == sort_unstable");

    let (leases, reuses, retained) = scratch_stats();
    let doc = Json::obj()
        .with("schema_version", Json::UInt(1))
        .with("rows", Json::UInt(rows as u64))
        .with("iters", Json::UInt(iters as u64))
        .with(
            "kernels",
            Json::obj()
                .with("mask_ts_window", entry(rows, mask_ts_secs, 0.0))
                .with("mask_eq_u32", entry(rows, mask_eq_secs, 0.0))
                .with("mask_and_count", entry(rows, and_secs, 0.0))
                .with("gather", entry(rows, gather_secs, reencode_secs))
                .with("record_view_cursor", entry(rows, cursor_secs, indexed_secs))
                .with(
                    "radix_perm_u32",
                    entry(rows, radix_perm_secs, cmp_perm_secs),
                )
                .with("radix_sort_u64", entry(rows, radix64_secs, cmp64_secs)),
        )
        .with(
            "scratch",
            Json::obj()
                .with("leases", Json::UInt(leases))
                .with("reuses", Json::UInt(reuses))
                .with("retained_bytes", Json::UInt(retained as u64)),
        );

    eprintln!("kernel microbench over {rows} rows (best of {iters}):");
    for (name, secs, base) in [
        ("mask_ts_window", mask_ts_secs, 0.0),
        ("mask_eq_u32", mask_eq_secs, 0.0),
        ("mask_and_count", and_secs, 0.0),
        ("gather", gather_secs, reencode_secs),
        ("record_view_cursor", cursor_secs, indexed_secs),
        ("radix_perm_u32", radix_perm_secs, cmp_perm_secs),
        ("radix_sort_u64", radix64_secs, cmp64_secs),
    ] {
        let rate = rows as f64 / secs.max(1e-12) / 1e6;
        if base > 0.0 {
            eprintln!(
                "  {name:20} {secs:>10.6}s  {rate:>8.1} Mrows/s  ({:.2}x vs baseline)",
                base / secs
            );
        } else {
            eprintln!("  {name:20} {secs:>10.6}s  {rate:>8.1} Mrows/s");
        }
    }
    eprintln!("  scratch arena: {leases} leases, {reuses} reuses, {retained} bytes retained");

    match std::fs::write(&out_path, doc.render_pretty()) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
