//! Regenerates every table and figure of the study and writes
//! EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ipv6-study-bench --bin repro -- \
//!     [scale] [output.md] [--threads N|auto] [--analysis-threads N|auto] \
//!     [--households N] [--storage memory|spill[:DIR]] [--segment-rows N] \
//!     [--disk-budget BYTES] [--extend-days N] [--state-dir DIR] [--extended]
//! ```
//!
//! `scale` is one of `tiny`, `test`, `default` (the default) or `full`.
//! When an output path is given, the markdown report is written there;
//! otherwise it goes to `EXPERIMENTS.md` in the current directory.
//! `--threads N` runs the sharded simulation driver on N workers
//! (`auto` = all available cores), and `--analysis-threads N` does the
//! same for the analysis engine (it defaults to `--threads`). `--storage
//! spill` bounds peak memory by spilling full-fidelity streams to sorted
//! segment files during the sim. Output is byte-identical at any thread
//! count and in either storage mode. `--extended` additionally runs the
//! beyond-paper registry (the entropy-clustered blocklisting experiment)
//! and writes it to a sibling `*_extended.md` — the default outputs are
//! unchanged by the flag.
//!
//! `--extend-days N` simulates N days past the preset's base window;
//! with `--state-dir DIR` the run becomes a standing service: frozen day
//! deltas persist in DIR, a warm directory simulates only the
//! not-yet-covered days and re-runs only the passes whose read windows
//! reach them, and the written EXPERIMENTS.md is byte-identical to a
//! from-scratch run of the same range (DESIGN.md §14).

use std::time::Instant;

use ipv6_study_bench::cli::{usage_exit, CommonArgs};
use ipv6_study_core::experiments::{run_all, run_extended};
use ipv6_study_core::report::{render_markdown, render_summary};
use ipv6_study_core::{incremental, Study, StudyError};

const USAGE: &str = "usage: repro [tiny|test|default|full] [output.md] [--threads N|auto] \
     [--analysis-threads N|auto] [--households N] [--storage memory|spill[:DIR]] \
     [--segment-rows N] [--disk-budget BYTES] [--extend-days N] [--state-dir DIR] \
     [--extended]";

/// Renders a study error and exits with the conventional status.
fn run_failed(e: StudyError) -> ! {
    match e {
        e @ StudyError::Config(_) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
        StudyError::ShardsFailed(report) => {
            eprint!("{}", report.render());
            eprintln!("run failed: shard failures exceeded the failure policy");
            std::process::exit(1);
        }
        e @ StudyError::Spill(_) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = CommonArgs::parse(std::env::args().skip(1), USAGE);
    let mut output = None;
    let mut extended = false;
    for arg in &args.rest {
        if arg == "--extended" {
            extended = true;
        } else if arg.starts_with('-') || output.is_some() {
            usage_exit(USAGE, &format!("unexpected argument `{arg}`"));
        } else {
            output = Some(arg.clone());
        }
    }
    let output = output.unwrap_or_else(|| "EXPERIMENTS.md".into());
    let config = args.config(USAGE);

    eprintln!(
        "running study: {} households, {} campaigns, {}..{} (+{} days), {} thread(s), {} storage",
        config.households,
        config.campaigns,
        config.full_range.start,
        config.full_range.end,
        config.extend_days,
        config.threads,
        config.storage.label(),
    );

    // With a state dir, the incremental engine owns the whole run: it
    // decides what to simulate and which passes to recompute, and hands
    // back the spliced documents.
    let (study, summary, md) = match args.state_dir {
        Some(ref dir) => {
            let run = match incremental::run(config, dir) {
                Ok(r) => r,
                Err(e) => run_failed(e),
            };
            eprintln!(
                "incremental: {} day(s) reused, {} computed in {:.3}s (state: {})",
                run.stats.days_reused,
                run.stats.days_computed,
                run.stats.extend_wall.as_secs_f64(),
                dir.display(),
            );
            (run.study, run.summary, run.markdown)
        }
        None => {
            let mut study = match Study::run(config) {
                Ok(s) => s,
                Err(e) => run_failed(e),
            };
            eprint!("{}", study.metrics().render());
            let t1 = Instant::now();
            let results = run_all(&mut study);
            eprintln!("analyses done in {:.1?}", t1.elapsed());
            let summary = render_summary(&results);
            let md = render_markdown(&results);
            (study, summary, md)
        }
    };
    if !study.faults().is_clean() {
        eprint!("{}", study.faults().render());
    }
    eprintln!(
        "simulation done: {} requests offered, {} retained, {} abusive accounts",
        study.datasets().offered,
        study.datasets().retained(),
        study.labels().len()
    );

    print!("{summary}");

    match std::fs::write(&output, &md) {
        Ok(()) => eprintln!("wrote {output}"),
        Err(e) => {
            eprintln!("failed to write {output}: {e}");
            std::process::exit(1);
        }
    }

    // The extended (beyond-paper) registry writes its own markdown next
    // to the main report; the default outputs above are byte-identical
    // with or without it.
    if extended {
        let t2 = Instant::now();
        let ext = run_extended(&study);
        eprintln!("extended analyses done in {:.1?}", t2.elapsed());
        print!("{}", render_summary(&ext));
        let ext_output = output
            .strip_suffix(".md")
            .map(|s| format!("{s}_extended.md"))
            .unwrap_or_else(|| format!("{output}.extended"));
        match std::fs::write(&ext_output, render_markdown(&ext)) {
            Ok(()) => eprintln!("wrote {ext_output}"),
            Err(e) => {
                eprintln!("failed to write {ext_output}: {e}");
                std::process::exit(1);
            }
        }
    }

    // The observability report rides along with every repro run.
    if study.report().enabled {
        match std::fs::write("BENCH_run.json", study.report().to_json_string()) {
            Ok(()) => eprintln!("wrote BENCH_run.json"),
            Err(e) => {
                eprintln!("failed to write BENCH_run.json: {e}");
                std::process::exit(1);
            }
        }
    }
}
