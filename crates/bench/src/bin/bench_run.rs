//! Instrumented benchmark entry point: runs a full study plus every
//! analysis pass and writes the run's observability report as
//! `BENCH_run.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ipv6-study-bench --bin bench_run -- \
//!     [scale] [--threads N|auto] [--analysis-threads N|auto] [--out PATH] \
//!     [--households N] [--storage memory|spill[:DIR]] [--segment-rows N] \
//!     [--disk-budget BYTES] [--extend-days N] [--state-dir DIR]
//! ```
//!
//! `scale` is one of `tiny`, `test`, `default` (the default) or `full`.
//! The JSON schema is documented in DESIGN.md and pinned by the
//! `tests/run_report.rs` golden test; timing values vary run to run, the
//! field set does not. The report echoes the storage mode, segment size,
//! and sampling plan, and carries `sim.peak_store_bytes` — the number
//! `--storage spill` keeps flat as `--households` grows. With
//! `--state-dir DIR` the run goes through the incremental engine
//! (DESIGN.md §14) and the schema-v7 `analysis.incremental` section
//! reports how many days were reused vs computed and the extension wall
//! (`extend_wall_secs`) — the number `bench_diff --max-extend-secs` gates.

use ipv6_study_bench::cli::{usage_exit, CommonArgs};
use ipv6_study_core::experiments::run_all;
use ipv6_study_core::{incremental, Study, StudyError};

const USAGE: &str = "usage: bench_run [tiny|test|default|full] [--threads N|auto] \
     [--analysis-threads N|auto] [--out PATH] [--households N] \
     [--storage memory|spill[:DIR]] [--segment-rows N] [--disk-budget BYTES] \
     [--extend-days N] [--state-dir DIR]";

fn main() {
    let args = CommonArgs::parse(std::env::args().skip(1), USAGE);
    let mut out_path = None;
    let mut rest = args.rest.iter();
    while let Some(arg) = rest.next() {
        if arg == "--out" {
            let Some(v) = rest.next() else {
                usage_exit(USAGE, "--out needs a value")
            };
            out_path = Some(v.clone());
        } else if let Some(v) = arg.strip_prefix("--out=") {
            out_path = Some(v.to_string());
        } else {
            usage_exit(USAGE, &format!("unexpected argument `{arg}`"));
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_run.json".into());
    let mut config = args.config(USAGE);
    config.instrument = true;

    let study = match args.state_dir {
        // Incremental route: the engine runs sim + analyses itself and
        // fills the v7 `analysis.incremental` section of the report.
        Some(ref dir) => match incremental::run(config, dir) {
            Ok(run) => {
                eprintln!(
                    "incremental: {} day(s) reused, {} computed in {:.3}s",
                    run.stats.days_reused,
                    run.stats.days_computed,
                    run.stats.extend_wall.as_secs_f64(),
                );
                run.study
            }
            Err(e @ StudyError::Config(_)) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
            Err(StudyError::ShardsFailed(report)) => {
                eprint!("{}", report.render());
                eprintln!("run failed: shard failures exceeded the failure policy");
                std::process::exit(1);
            }
            Err(e @ StudyError::Spill(_)) => {
                eprintln!("run failed: {e}");
                std::process::exit(1);
            }
        },
        None => {
            let mut study = match Study::run(config) {
                Ok(s) => s,
                Err(e @ StudyError::Config(_)) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
                Err(StudyError::ShardsFailed(report)) => {
                    eprint!("{}", report.render());
                    eprintln!("run failed: shard failures exceeded the failure policy");
                    std::process::exit(1);
                }
                Err(e @ StudyError::Spill(_)) => {
                    eprintln!("run failed: {e}");
                    std::process::exit(1);
                }
            };
            let _results = run_all(&mut study);
            study
        }
    };
    if !study.faults().is_clean() {
        eprint!("{}", study.faults().render());
    }
    eprint!("{}", study.report().render());

    match std::fs::write(&out_path, study.report().to_json_string()) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
