//! Shared command-line parsing for the `repro` and `bench_run` binaries.
//!
//! Both binaries accept the same run-shaping flags; this module owns them
//! so the two surfaces cannot drift:
//!
//! ```text
//! [tiny|test|default|full]        scale preset (positional)
//! --threads N|auto                sim worker threads
//! --analysis-threads N|auto       analysis worker threads (default: --threads)
//! --households N                  override the preset's household count
//! --storage memory|spill[:DIR]    where full-fidelity streams live mid-run
//! --segment-rows N                rows staged per family before a sorted
//!                                 run is spilled (spill mode only)
//! --disk-budget BYTES             hard cap on the spill session's on-disk
//!                                 bytes (spill mode only); exceeding it
//!                                 fails the offending shard with a typed
//!                                 budget error, handled per the failure
//!                                 policy
//! --extend-days N                 simulate N days past the preset's base
//!                                 window (the incremental engine's
//!                                 extension knob; output is byte-identical
//!                                 to a preset whose range is N days longer)
//! --state-dir DIR                 persist/resume frozen day deltas in DIR:
//!                                 a warm dir simulates only not-yet-covered
//!                                 days and re-runs only the passes whose
//!                                 windows reach them (see DESIGN.md §14)
//! ```
//!
//! Binary-specific arguments (`repro`'s output path, `bench_run`'s
//! `--out`) pass through in [`CommonArgs::rest`], in order. Invalid values
//! exit with status 2 and a usage line, mirroring the
//! [`ConfigError`]-style contract: bad input is rejected before any
//! simulation work starts.
//!
//! [`ConfigError`]: ipv6_study_core::ConfigError

use std::path::PathBuf;

use ipv6_study_core::{StorageMode, StudyConfig, DEFAULT_SEGMENT_ROWS};

/// The flags shared by `repro` and `bench_run`, plus the passed-through
/// remainder.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Scale preset (first bare positional); `None` means the binary's
    /// default (`default`).
    pub scale: Option<String>,
    /// Sim worker threads (defaults to 1 — determinism makes this purely
    /// a speed knob).
    pub threads: usize,
    /// Analysis worker threads; `None` follows `threads`.
    pub analysis_threads: Option<usize>,
    /// Household-count override.
    pub households: Option<u64>,
    /// Resolved storage mode (`--storage` + `--segment-rows`).
    pub storage: StorageMode,
    /// Spill disk budget in bytes (`--disk-budget`); `None` is unlimited.
    pub disk_budget_bytes: Option<u64>,
    /// Days simulated past the preset's base window (`--extend-days`).
    pub extend_days: u16,
    /// Incremental-engine state directory (`--state-dir`); `None` runs
    /// the plain batch pipeline.
    pub state_dir: Option<PathBuf>,
    /// Arguments this module did not consume, in original order.
    pub rest: Vec<String>,
}

/// Prints `msg` and the usage line, then exits with status 2.
pub fn usage_exit(usage: &str, msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("{usage}");
    std::process::exit(2);
}

fn parse_threads(usage: &str, arg: &str) -> usize {
    if arg == "auto" {
        return std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
    }
    match arg.parse() {
        Ok(n) => n,
        Err(_) => usage_exit(usage, &format!("bad thread count `{arg}`")),
    }
}

fn parse_storage(usage: &str, arg: &str) -> StorageMode {
    match arg {
        "memory" => StorageMode::InMemory,
        "spill" => StorageMode::spill(),
        _ => match arg.strip_prefix("spill:") {
            Some(dir) if !dir.is_empty() => StorageMode::Spill {
                dir: Some(PathBuf::from(dir)),
                segment_rows: DEFAULT_SEGMENT_ROWS,
            },
            _ => usage_exit(
                usage,
                &format!("bad storage mode `{arg}` (use memory|spill|spill:DIR)"),
            ),
        },
    }
}

impl CommonArgs {
    /// Parses `args` (without the program name). Shared flags are
    /// consumed; the first bare positional becomes the scale; everything
    /// else lands in [`CommonArgs::rest`] for the binary to interpret.
    pub fn parse(args: impl Iterator<Item = String>, usage: &str) -> Self {
        let mut out = Self {
            scale: None,
            threads: 1,
            analysis_threads: None,
            households: None,
            storage: StorageMode::InMemory,
            disk_budget_bytes: None,
            extend_days: 0,
            state_dir: None,
            rest: Vec::new(),
        };
        let mut segment_rows: Option<usize> = None;
        let args_vec: Vec<String> = args.collect();
        // Flags accept both `--flag value` and `--flag=value`.
        let take_value = |i: &mut usize, flag: &str| -> String {
            if let Some(v) = args_vec[*i].strip_prefix(&format!("{flag}=")) {
                return v.to_string();
            }
            *i += 1;
            match args_vec.get(*i) {
                Some(v) => v.clone(),
                None => usage_exit(usage, &format!("{flag} needs a value")),
            }
        };
        let mut i = 0usize;
        while i < args_vec.len() {
            let arg = args_vec[i].clone();
            if arg == "--threads" || arg.starts_with("--threads=") {
                let v = take_value(&mut i, "--threads");
                out.threads = parse_threads(usage, &v);
            } else if arg == "--analysis-threads" || arg.starts_with("--analysis-threads=") {
                let v = take_value(&mut i, "--analysis-threads");
                out.analysis_threads = Some(parse_threads(usage, &v));
            } else if arg == "--households" || arg.starts_with("--households=") {
                let v = take_value(&mut i, "--households");
                match v.parse() {
                    Ok(n) => out.households = Some(n),
                    Err(_) => usage_exit(usage, &format!("bad household count `{v}`")),
                }
            } else if arg == "--storage" || arg.starts_with("--storage=") {
                let v = take_value(&mut i, "--storage");
                out.storage = parse_storage(usage, &v);
            } else if arg == "--segment-rows" || arg.starts_with("--segment-rows=") {
                let v = take_value(&mut i, "--segment-rows");
                match v.parse() {
                    Ok(n) => segment_rows = Some(n),
                    Err(_) => usage_exit(usage, &format!("bad segment-rows `{v}`")),
                }
            } else if arg == "--disk-budget" || arg.starts_with("--disk-budget=") {
                let v = take_value(&mut i, "--disk-budget");
                match v.parse() {
                    Ok(n) if n > 0 => out.disk_budget_bytes = Some(n),
                    _ => usage_exit(usage, &format!("bad disk budget `{v}` (bytes, at least 1)")),
                }
            } else if arg == "--extend-days" || arg.starts_with("--extend-days=") {
                let v = take_value(&mut i, "--extend-days");
                match v.parse() {
                    Ok(n) => out.extend_days = n,
                    Err(_) => usage_exit(usage, &format!("bad extend-days `{v}` (days, 0-365)")),
                }
            } else if arg == "--state-dir" || arg.starts_with("--state-dir=") {
                let v = take_value(&mut i, "--state-dir");
                if v.is_empty() {
                    usage_exit(usage, "--state-dir needs a directory path");
                }
                out.state_dir = Some(PathBuf::from(v));
            } else if !arg.starts_with('-') && out.scale.is_none() && out.rest.is_empty() {
                out.scale = Some(arg);
            } else {
                out.rest.push(arg);
            }
            i += 1;
        }
        // --segment-rows modifies the spill mode; order with --storage
        // must not matter, so it merges after the loop.
        if let Some(rows) = segment_rows {
            match &mut out.storage {
                StorageMode::Spill { segment_rows, .. } => *segment_rows = rows,
                StorageMode::InMemory => {
                    usage_exit(usage, "--segment-rows requires --storage spill")
                }
            }
        }
        // Same order-independence for --disk-budget: it only modifies the
        // spill policy, so reject it against memory storage here rather
        // than deep in config validation.
        if out.disk_budget_bytes.is_some() && !out.storage.is_spill() {
            usage_exit(usage, "--disk-budget requires --storage spill");
        }
        out
    }

    /// Resolves the scale preset (`None` → `default`) into a
    /// [`StudyConfig`] and applies every shared flag to it. The config is
    /// *not* validated here — [`ipv6_study_core::Study::run`] does that
    /// and reports [`ConfigError`]s with full context.
    ///
    /// [`ConfigError`]: ipv6_study_core::ConfigError
    pub fn config(&self, usage: &str) -> StudyConfig {
        let scale = self.scale.as_deref().unwrap_or("default");
        let mut config = match scale {
            "tiny" => StudyConfig::tiny(),
            "test" => StudyConfig::test_scale(),
            "default" => StudyConfig::default_scale(),
            "full" => StudyConfig::full_scale(),
            other => usage_exit(
                usage,
                &format!("unknown scale `{other}` (use tiny|test|default|full)"),
            ),
        };
        config.threads = self.threads;
        config.analysis_threads = self.analysis_threads;
        config.storage = self.storage.clone();
        config.disk_budget_bytes = self.disk_budget_bytes;
        config.extend_days = self.extend_days;
        if let Some(hh) = self.households {
            config.households = hh;
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CommonArgs {
        CommonArgs::parse(args.iter().map(|s| s.to_string()), "usage")
    }

    #[test]
    fn defaults_are_memory_single_threaded() {
        let a = parse(&[]);
        assert_eq!(a.scale, None);
        assert_eq!(a.threads, 1);
        assert_eq!(a.analysis_threads, None);
        assert_eq!(a.households, None);
        assert_eq!(a.storage, StorageMode::InMemory);
        assert!(a.rest.is_empty());
    }

    #[test]
    fn shared_flags_parse_in_both_spellings() {
        let a = parse(&[
            "tiny",
            "--threads",
            "4",
            "--analysis-threads=2",
            "--households=500",
            "--storage=spill",
            "--segment-rows",
            "64",
        ]);
        assert_eq!(a.scale.as_deref(), Some("tiny"));
        assert_eq!(a.threads, 4);
        assert_eq!(a.analysis_threads, Some(2));
        assert_eq!(a.households, Some(500));
        assert_eq!(
            a.storage,
            StorageMode::Spill {
                dir: None,
                segment_rows: 64
            }
        );
    }

    #[test]
    fn segment_rows_merges_regardless_of_flag_order() {
        let a = parse(&["--segment-rows", "128", "--storage", "spill:/tmp/x"]);
        assert_eq!(
            a.storage,
            StorageMode::Spill {
                dir: Some(PathBuf::from("/tmp/x")),
                segment_rows: 128
            }
        );
    }

    #[test]
    fn unconsumed_args_pass_through_in_order() {
        let a = parse(&["test", "out.md", "--out", "x.json"]);
        assert_eq!(a.scale.as_deref(), Some("test"));
        assert_eq!(a.rest, ["out.md", "--out", "x.json"]);
    }

    #[test]
    fn config_applies_every_flag() {
        let a = parse(&[
            "tiny",
            "--threads=3",
            "--households=999",
            "--storage=spill",
            "--disk-budget=1048576",
        ]);
        let cfg = a.config("usage");
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.households, 999);
        assert!(cfg.storage.is_spill());
        assert_eq!(cfg.disk_budget_bytes, Some(1 << 20));
    }

    #[test]
    fn extend_days_and_state_dir_parse_and_apply() {
        let a = parse(&["tiny", "--extend-days", "3", "--state-dir=/tmp/state"]);
        assert_eq!(a.extend_days, 3);
        assert_eq!(a.state_dir, Some(PathBuf::from("/tmp/state")));
        let cfg = a.config("usage");
        assert_eq!(cfg.extend_days, 3);
        let b = parse(&["--extend-days=0"]);
        assert_eq!(b.extend_days, 0);
        assert_eq!(b.state_dir, None);
    }

    #[test]
    fn disk_budget_parses_in_both_spellings_and_any_order() {
        let a = parse(&["--disk-budget", "4096", "--storage", "spill"]);
        assert_eq!(a.disk_budget_bytes, Some(4096));
        let a = parse(&["--storage=spill", "--disk-budget=4096"]);
        assert_eq!(a.disk_budget_bytes, Some(4096));
    }
}
