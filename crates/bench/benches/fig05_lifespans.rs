//! Regenerates Figure 5 (address life spans) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    fig05_lifespans,
    "Figure 5 (address life spans)",
    ipv6_study_core::experiments::fig5_lifespans
);
