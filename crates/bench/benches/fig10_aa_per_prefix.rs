//! Regenerates Figure 10 (abuse per prefix) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    fig10_aa_per_prefix,
    "Figure 10 (abuse per prefix)",
    ipv6_study_core::experiments::fig10_aa_per_prefix
);
