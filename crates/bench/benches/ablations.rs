//! Ablation bench: remove one mechanism at a time and print which paper
//! shapes move (the design-choice attributions of DESIGN.md §5a), then
//! benchmark a full tiny-study simulation per ablation.

use ipv6_study_core::{experiments, Ablation, AnalysisCtx, Study, StudyConfig};

fn config(ablation: Ablation) -> StudyConfig {
    let mut cfg = StudyConfig::tiny();
    cfg.ablation = ablation;
    cfg
}

fn main() {
    println!("== ablations: which mechanism produces which shape ==");
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>14}",
        "ablation", "v6 newborn", "v6 wk median", "v4 >3 users", "AA day-1 catch"
    );
    for ablation in Ablation::ALL {
        let study = Study::run(config(ablation)).expect("valid preset");
        let ctx = AnalysisCtx::new(&study);
        let fig5 = experiments::fig5_lifespans(&ctx);
        let fig2 = experiments::fig2_addrs_per_user(&ctx);
        let fig7 = experiments::fig7_users_per_ip(&ctx);
        println!(
            "{:<16} {:>14.3} {:>14.1} {:>14.3} {:>14.3}",
            ablation.name(),
            fig5.get_stat("fig5.v6_newborn_share").unwrap_or(f64::NAN),
            fig2.get_stat("fig2.v6_week_median").unwrap_or(f64::NAN),
            fig7.get_stat("fig7.v4_day_gt3").unwrap_or(f64::NAN),
            study.labels().detected_within(0),
        );
    }

    ipv6_study_bench::time_fn("tiny_study_simulation", 10, || {
        Study::run(config(Ablation::Baseline)).expect("valid preset")
    });
}
