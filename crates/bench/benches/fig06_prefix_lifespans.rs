//! Regenerates Figure 6 (prefix life spans) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    fig06_prefix_lifespans,
    "Figure 6 (prefix life spans)",
    ipv6_study_core::experiments::fig6_prefix_lifespans
);
