//! Regenerates Section 7.2 (defense mechanisms) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    s72_defenses,
    "Section 7.2 (defense mechanisms)",
    ipv6_study_core::experiments::s72_defenses
);
