//! Regenerates Table 1 (top ASNs by IPv6 ratio) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    tab01_asn,
    "Table 1 (top ASNs by IPv6 ratio)",
    ipv6_study_core::experiments::tab1_asns
);
