//! Regenerates Figure 7 (users per address) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    fig07_users_per_ip,
    "Figure 7 (users per address)",
    ipv6_study_core::experiments::fig7_users_per_ip
);
