//! Regenerates Section 5.1.3 (outlier users) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    o51_user_outliers,
    "Section 5.1.3 (outlier users)",
    ipv6_study_core::experiments::o51_user_outliers
);
