//! Regenerates Figure 4 (prefixes per user) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    fig04_prefix_span,
    "Figure 4 (prefixes per user)",
    ipv6_study_core::experiments::fig4_prefix_span
);
