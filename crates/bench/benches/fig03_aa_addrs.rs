//! Regenerates Figure 3 (addresses per abusive account) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    fig03_aa_addrs,
    "Figure 3 (addresses per abusive account)",
    ipv6_study_core::experiments::fig3_aa_addrs
);
