//! Regenerates Section 6.1.3 (heavy addresses) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    o61_ip_outliers,
    "Section 6.1.3 (heavy addresses)",
    ipv6_study_core::experiments::o61_ip_outliers
);
