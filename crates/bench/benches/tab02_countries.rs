//! Regenerates Table 2 + Figure 12 (countries) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    tab02_countries,
    "Table 2 + Figure 12 (countries)",
    ipv6_study_core::experiments::tab2_countries
);
