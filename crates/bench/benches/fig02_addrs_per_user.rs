//! Regenerates Figure 2 (addresses per user) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    fig02_addrs_per_user,
    "Figure 2 (addresses per user)",
    ipv6_study_core::experiments::fig2_addrs_per_user
);
