//! Regenerates Figure 1 (daily IPv6 prevalence) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    fig01_prevalence,
    "Figure 1 (daily IPv6 prevalence)",
    ipv6_study_core::experiments::fig1_prevalence
);
