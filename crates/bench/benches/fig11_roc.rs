//! Regenerates Figure 11 (actioning ROC) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    fig11_roc,
    "Figure 11 (actioning ROC)",
    ipv6_study_core::experiments::fig11_roc
);
