//! Regenerates Figure 9 (users per prefix) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    fig09_users_per_prefix,
    "Figure 9 (users per prefix)",
    ipv6_study_core::experiments::fig9_users_per_prefix
);
