//! Regenerates Section 4.4 (client address patterns) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    c44_client_patterns,
    "Section 4.4 (client address patterns)",
    ipv6_study_core::experiments::c44_client_patterns
);
