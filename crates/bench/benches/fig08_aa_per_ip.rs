//! Regenerates Figure 8 (abuse per address) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    fig08_aa_per_ip,
    "Figure 8 (abuse per address)",
    ipv6_study_core::experiments::fig8_aa_per_ip
);
