//! Regenerates Section 6.2.3 (heavy prefixes) and benchmarks the analysis pass.

ipv6_study_bench::bench_experiment!(
    o62_prefix_outliers,
    "Section 6.2.3 (heavy prefixes)",
    ipv6_study_core::experiments::o62_prefix_outliers
);
