//! Sample-to-population extrapolation.
//!
//! The paper's datasets are deterministic 0.1% samples, and several findings
//! are phrased as extrapolations: *"addresses that have more than 10 users in
//! the user sample have in expectation more than 10K users in the full
//! dataset"* (§6.1.3), or prevalence ratios between IPv4 and IPv6 outliers
//! (§5.1.3). This module makes those inferences first-class: a
//! [`SampleScale`] captures the sampling design, and produces
//! [`PopulationEstimate`]s with binomial confidence intervals.

/// Describes a deterministic attribute sample: each population element was
/// included independently with probability `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleScale {
    /// Inclusion probability, e.g. `0.001` for the paper's 0.1% samples.
    pub rate: f64,
}

impl SampleScale {
    /// Creates a scale for the given inclusion probability.
    ///
    /// # Panics
    /// Panics unless `0 < rate <= 1`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
        Self { rate }
    }

    /// Point estimate of the population count behind `sample_count` observed
    /// elements.
    pub fn scale_count(&self, sample_count: u64) -> f64 {
        sample_count as f64 / self.rate
    }

    /// Population estimate with a Wilson-score 95% interval on the sampling
    /// proportion, translated to population counts.
    ///
    /// `universe` is the (known) population size the sample was drawn from.
    /// When the universe is unknown, use [`SampleScale::scale_count`]; the
    /// interval then has no meaning.
    pub fn estimate(&self, sample_count: u64, universe: u64) -> PopulationEstimate {
        let n = (universe as f64 * self.rate).max(1.0); // expected sample size
        let p_hat = sample_count as f64 / n;
        let (lo, hi) = wilson_interval(p_hat.clamp(0.0, 1.0), n, 1.959964);
        PopulationEstimate {
            point: self.scale_count(sample_count),
            lo: lo * universe as f64,
            hi: hi * universe as f64,
        }
    }

    /// Expected number of *sampled* elements for a population of `pop` — the
    /// inverse direction, used when predicting how many users a heavily
    /// populated address should contribute to the user sample.
    pub fn expected_in_sample(&self, pop: u64) -> f64 {
        pop as f64 * self.rate
    }
}

/// A population count inferred from a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationEstimate {
    /// Point estimate (sample count / rate).
    pub point: f64,
    /// Lower bound of the 95% interval.
    pub lo: f64,
    /// Upper bound of the 95% interval.
    pub hi: f64,
}

impl PopulationEstimate {
    /// Whether `value` falls inside the 95% interval.
    pub fn contains(&self, value: f64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }
}

/// Wilson score interval for a binomial proportion.
///
/// Preferred over the normal approximation because outlier counts are tiny
/// (often < 20 sampled elements), where Wald intervals collapse or go
/// negative.
fn wilson_interval(p_hat: f64, n: f64, z: f64) -> (f64, f64) {
    if n <= 0.0 {
        return (0.0, 1.0);
    }
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p_hat + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p_hat * (1.0 - p_hat) / n) + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Ratio of two prevalences with both sides extrapolated from (possibly
/// different-rate) samples.
///
/// Mirrors §5.1.3: *"the prevalence of IPv6 outliers … is only 1/12 of the
/// prevalence of IPv4 outliers"* — a ratio of (outliers / population) across
/// protocols.
pub fn prevalence_ratio(
    count_a: u64,
    population_a: u64,
    count_b: u64,
    population_b: u64,
) -> Option<f64> {
    if population_a == 0 || population_b == 0 || count_b == 0 {
        return None;
    }
    let pa = count_a as f64 / population_a as f64;
    let pb = count_b as f64 / population_b as f64;
    Some(pa / pb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_is_linear() {
        let s = SampleScale::new(0.001);
        assert_eq!(s.scale_count(10), 10_000.0);
        assert_eq!(s.scale_count(0), 0.0);
        assert_eq!(s.expected_in_sample(10_000), 10.0);
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn zero_rate_rejected() {
        SampleScale::new(0.0);
    }

    #[test]
    fn estimate_interval_contains_point() {
        let s = SampleScale::new(0.001);
        let e = s.estimate(50, 1_000_000);
        assert!(e.lo <= e.point && e.point <= e.hi, "{e:?}");
        assert!(e.contains(e.point));
        // 50 sampled at 0.1% → about 50k in population.
        assert!((e.point - 50_000.0).abs() < 1e-9);
    }

    #[test]
    fn wilson_handles_zero_successes() {
        let (lo, hi) = wilson_interval(0.0, 1000.0, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.01);
    }

    #[test]
    fn wilson_handles_all_successes() {
        let (lo, hi) = wilson_interval(1.0, 1000.0, 1.96);
        assert!(lo > 0.99 && lo < 1.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn prevalence_ratio_paper_shape() {
        // 114 IPv4 outliers among ~ N4 users vs 4 IPv6 outliers among ~ N6.
        // With N4 ≈ 2.6 * N6 (v4 users outnumber v6 users), ratio v6/v4 ≈ 1/12.
        let r = prevalence_ratio(4, 350_000, 114, 1_000_000).unwrap();
        assert!(r < 0.2 && r > 0.05, "ratio {r}");
        assert!(prevalence_ratio(1, 0, 1, 10).is_none());
        assert!(prevalence_ratio(1, 10, 0, 10).is_none());
    }
}
