//! Linear and logarithmic histograms for heavy-tailed count data.
//!
//! Users-per-address spans six orders of magnitude (one user on a typical
//! IPv6 address, ~10⁶ behind the largest IPv4 CGNs), so outlier analyses bin
//! logarithmically ([`Log2Histogram`]); per-day series such as Figure 1 use
//! fixed-width bins ([`Histogram`]).

/// A fixed-width histogram over `f64` samples in `[lo, hi)`.
///
/// Samples below `lo` land in the first bin; samples at or above `hi` land
/// in the last bin (saturating, never dropped), so totals always reconcile.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `n` equal-width bins covering `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid bounds"
        );
        Self {
            lo,
            hi,
            bins: vec![0; n],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        let idx = self.bin_index(x);
        self.bins[idx] += 1;
    }

    fn bin_index(&self, x: f64) -> usize {
        if !x.is_finite() || x < self.lo {
            return 0;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let i = ((x - self.lo) / w) as usize;
        i.min(self.bins.len() - 1)
    }

    /// Total sample count.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// The raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin_midpoint, count)` pairs — a plottable series.
    pub fn series(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * (i as f64 + 0.5), c))
            .collect()
    }
}

/// A base-2 logarithmic histogram over `u64` counts.
///
/// Bin `i` covers `[2^i, 2^(i+1))`; bin 0 additionally holds the value 0 and
/// 1 (i.e. everything below 2). With 64 bins it covers the full `u64` range.
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    bins: [u64; 64],
    max_seen: u64,
    total: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            bins: [0; 64],
            max_seen: 0,
            total: 0,
        }
    }

    /// Records one count observation.
    pub fn record(&mut self, x: u64) {
        let idx = if x < 2 {
            0
        } else {
            63 - x.leading_zeros() as usize
        };
        self.bins[idx] += 1;
        self.max_seen = self.max_seen.max(x);
        self.total += 1;
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest observation recorded.
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// Number of observations at or above `threshold`, computed exactly for
    /// power-of-two thresholds and conservatively (over the containing bin)
    /// otherwise.
    pub fn count_ge_pow2(&self, pow: u32) -> u64 {
        self.bins[pow.min(63) as usize..].iter().sum()
    }

    /// Non-empty `(bin_lower_bound, count)` pairs, ascending — tail tables
    /// like "addresses with ≥2^k users" fall straight out of this.
    pub fn series(&self) -> Vec<(u64, u64)> {
        self.bins
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_histogram_bins_and_saturation() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.99);
        h.record(10.0); // saturates into last bin
        h.record(-5.0); // clamps into first bin
        h.record(f64::NAN); // clamps into first bin, never dropped
        assert_eq!(h.total(), 5);
        assert_eq!(h.bins()[0], 3);
        assert_eq!(h.bins()[9], 2);
    }

    #[test]
    fn linear_histogram_series_midpoints() {
        let h = Histogram::new(0.0, 4.0, 4);
        let s = h.series();
        assert_eq!(s.len(), 4);
        assert!((s[0].0 - 0.5).abs() < 1e-12);
        assert!((s[3].0 - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn log2_bin_boundaries() {
        let mut h = Log2Histogram::new();
        for x in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(x);
        }
        assert_eq!(h.total(), 10);
        assert_eq!(h.max(), u64::MAX);
        // bin 0: {0,1}, bin 1: {2,3}, bin 2: {4,7}, bin 3: {8}, bin 9: {1023}
        let s = h.series();
        assert_eq!(s[0], (0, 2));
        assert_eq!(s[1], (2, 2));
        assert_eq!(s[2], (4, 2));
        assert_eq!(s[3], (8, 1));
        assert!(s.contains(&(512, 1)));
        assert!(s.contains(&(1024, 1)));
    }

    #[test]
    fn log2_tail_counts() {
        let mut h = Log2Histogram::new();
        for x in [1u64, 10, 100, 1000, 10_000, 100_000] {
            h.record(x);
        }
        // ≥ 2^10 = 1024: 10_000 and 100_000.
        assert_eq!(h.count_ge_pow2(10), 2);
        assert_eq!(h.count_ge_pow2(0), 6);
        assert_eq!(h.count_ge_pow2(63), 0);
    }
}
