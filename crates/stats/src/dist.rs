//! Hash-driven random variates.
//!
//! The simulator is designed as a *pure function* of `(seed, entity ids,
//! date)`: every stochastic choice is made by hashing the choice's identity
//! and mapping the 64-bit hash to a variate by inverse-CDF. This has two
//! payoffs over threading an RNG:
//!
//! 1. **Reproducibility by construction** — reordering the simulation loop,
//!    parallelizing it, or querying one user in isolation all yield
//!    identical draws, because a draw's value depends only on its identity.
//! 2. **Deterministic sampling for free** — the paper's hash-based attribute
//!    samplers (§3.1) are the same primitive.
//!
//! All functions take a pre-mixed `u64` hash (from [`crate::hash`]) and are
//! total: any input produces a valid variate.

/// Maps a hash to a uniform float in `[0, 1)` with 53 bits of precision.
#[inline]
pub fn uniform01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Bernoulli trial: true with probability `p`.
#[inline]
pub fn bernoulli(h: u64, p: f64) -> bool {
    uniform01(h) < p
}

/// Uniform integer in `[0, n)`. Returns 0 when `n == 0`.
///
/// Uses the 128-bit multiply reduction (Lemire), which is unbiased enough
/// for simulation purposes (bias < 2⁻⁶⁴).
#[inline]
pub fn uniform_range(h: u64, n: u64) -> u64 {
    ((u128::from(h) * u128::from(n)) >> 64) as u64
}

/// Geometric variate: number of failures before the first success, with
/// success probability `p` per trial. Returns 0 when `p >= 1`; capped at
/// `u32::MAX as u64` to stay finite for tiny `p`.
pub fn geometric(h: u64, p: f64) -> u64 {
    if p >= 1.0 {
        return 0;
    }
    let p = p.max(1e-12);
    let u = uniform01(h).max(f64::MIN_POSITIVE);
    let g = (u.ln() / (1.0 - p).ln()).floor();
    (g as u64).min(u64::from(u32::MAX))
}

/// Poisson variate by sequential inversion — exact for the small rates used
/// here (λ ≤ ~50: requests per session, attaches per day). For larger λ it
/// falls back to a normal approximation, which is fine at that scale.
pub fn poisson(h: u64, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 50.0 {
        // Normal approximation with continuity correction.
        let z = normal01(h);
        let x = lambda + z * lambda.sqrt() + 0.5;
        return x.max(0.0) as u64;
    }
    let u = uniform01(h);
    let mut cdf = (-lambda).exp();
    let mut pmf = cdf;
    let mut k = 0u64;
    while u > cdf && k < 500 {
        k += 1;
        pmf *= lambda / k as f64;
        cdf += pmf;
    }
    k
}

/// Exponential variate with the given `rate` (mean `1/rate`).
pub fn exponential(h: u64, rate: f64) -> f64 {
    let u = uniform01(h).max(f64::MIN_POSITIVE);
    -u.ln() / rate.max(1e-12)
}

/// Standard normal variate via the inverse-CDF (Acklam's rational
/// approximation, |ε| < 1.15e-9 — far below simulation noise).
#[allow(clippy::excessive_precision)] // coefficients kept exactly as published
pub fn normal01(h: u64) -> f64 {
    let p = uniform01(h).clamp(1e-15, 1.0 - 1e-15);
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Log-normal variate with the given parameters of the underlying normal.
pub fn lognormal(h: u64, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal01(h)).exp()
}

/// A precomputed discrete distribution for weighted choices (ISP market
/// shares, country populations, campaign sizes). Sampling is O(log n) by
/// binary search on the cumulative weights.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Builds from non-negative weights. Zero-weight entries are never
    /// selected.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(
                w >= 0.0 && w.is_finite(),
                "weights must be finite and non-negative"
            );
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        Self { cumulative }
    }

    /// Samples an index using the hash.
    pub fn sample(&self, h: u64) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let target = uniform01(h) * total;
        self.cumulative
            .partition_point(|&c| c <= target)
            .min(self.cumulative.len() - 1)
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false: construction rejects empty weight sets.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A Zipf-like (discrete power-law) distribution over ranks `0..n`, with
/// P(rank k) ∝ 1/(k+1)^s. Heavy-tailed choices — which CGN a user attaches
/// through, which hosting range a campaign rents — follow this shape.
#[derive(Debug, Clone)]
pub struct Zipf {
    index: WeightedIndex,
}

impl Zipf {
    /// Builds a Zipf table over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        let weights: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
        Self {
            index: WeightedIndex::new(&weights),
        }
    }

    /// Samples a rank in `[0, n)`.
    pub fn sample(&self, h: u64) -> usize {
        self.index.sample(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::stable_hash64;

    fn hashes(n: u64) -> impl Iterator<Item = u64> {
        (0..n).map(|i| stable_hash64(999, &i.to_le_bytes()))
    }

    #[test]
    fn uniform01_is_in_unit_interval_and_uniform() {
        let n = 100_000;
        let mean: f64 = hashes(n).map(uniform01).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for h in hashes(1000) {
            let u = uniform01(h);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bernoulli_rate() {
        let n = 100_000;
        let hits = hashes(n).filter(|&h| bernoulli(h, 0.25)).count();
        assert!((hits as f64 / n as f64 - 0.25).abs() < 0.01);
    }

    #[test]
    fn uniform_range_bounds_and_uniformity() {
        let mut counts = [0u32; 10];
        for h in hashes(100_000) {
            counts[uniform_range(h, 10) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
        assert_eq!(uniform_range(12345, 0), 0);
        assert_eq!(uniform_range(u64::MAX, 1), 0);
    }

    #[test]
    fn geometric_mean() {
        // Mean of Geometric(p) (failures before success) is (1-p)/p = 4 at p=0.2.
        let n = 100_000;
        let mean: f64 = hashes(n).map(|h| geometric(h, 0.2) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert_eq!(geometric(42, 1.0), 0);
    }

    #[test]
    fn poisson_small_lambda() {
        let n = 100_000;
        let lambda = 3.5;
        let samples: Vec<u64> = hashes(n).map(|h| poisson(h, lambda)).collect();
        let mean: f64 = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var: f64 = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
        assert!((var - lambda).abs() < 0.15, "var {var}");
        assert_eq!(poisson(7, 0.0), 0);
    }

    #[test]
    fn poisson_large_lambda_normal_path() {
        let n = 50_000;
        let lambda = 200.0;
        let mean: f64 = hashes(n).map(|h| poisson(h, lambda) as f64).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn exponential_mean() {
        let n = 100_000;
        let mean: f64 = hashes(n).map(|h| exponential(h, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal01_moments() {
        let n = 100_000;
        let samples: Vec<f64> = hashes(n).map(normal01).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| x * x).sum::<f64>() / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let w = WeightedIndex::new(&[1.0, 0.0, 3.0]);
        let mut counts = [0u32; 3];
        for h in hashes(40_000) {
            counts[w.sample(h)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight never sampled");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_index_rejects_empty() {
        WeightedIndex::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn weighted_index_rejects_all_zero() {
        WeightedIndex::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_is_head_heavy() {
        let z = Zipf::new(100, 1.2);
        let mut counts = [0u32; 100];
        for h in hashes(50_000) {
            counts[z.sample(h)] += 1;
        }
        assert!(counts[0] > counts[9], "rank 0 should dominate rank 9");
        assert!(counts[0] > 5 * counts[50].max(1), "heavy head expected");
    }

    #[test]
    fn lognormal_is_positive() {
        for h in hashes(1000) {
            assert!(lognormal(h, 0.0, 1.0) > 0.0);
        }
    }
}
