//! Empirical cumulative distribution functions over integer counts.
//!
//! Nearly every figure in the paper is a CDF of a small non-negative integer
//! quantity: addresses per user (Fig 2/3), users per address (Fig 7/8), users
//! per prefix (Fig 9/10), life-span days (Fig 5). These distributions are
//! heavily skewed — most mass at 1–10, with tails reaching millions — so the
//! representation here stores exact counts for every observed value in a
//! sorted table rather than binning.

/// An exact empirical CDF over `u64`-valued observations.
///
/// Construction is `O(n log n)`; queries are `O(log k)` for `k` distinct
/// values. Observations are weighted equally; use [`Ecdf::from_counts`] when
/// you already hold a value → multiplicity map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ecdf {
    /// Sorted distinct values.
    values: Vec<u64>,
    /// `cum[i]` = number of observations with value ≤ `values[i]`.
    cum: Vec<u64>,
}

impl Ecdf {
    /// Builds an ECDF from an iterator of raw observations.
    pub fn from_values<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut v: Vec<u64> = iter.into_iter().collect();
        v.sort_unstable();
        let mut values = Vec::new();
        let mut cum = Vec::new();
        let mut total = 0u64;
        let mut i = 0;
        while i < v.len() {
            let val = v[i];
            let mut j = i;
            while j < v.len() && v[j] == val {
                j += 1;
            }
            total += (j - i) as u64;
            values.push(val);
            cum.push(total);
            i = j;
        }
        Self { values, cum }
    }

    /// Builds an ECDF from `(value, count)` pairs. Pairs may repeat and come
    /// in any order; counts for equal values are summed.
    pub fn from_counts<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        let mut v: Vec<(u64, u64)> = iter.into_iter().filter(|&(_, c)| c > 0).collect();
        v.sort_unstable_by_key(|&(val, _)| val);
        let mut values = Vec::new();
        let mut cum = Vec::new();
        let mut total = 0u64;
        for (val, count) in v {
            total = total
                .checked_add(count)
                .expect("Ecdf::from_counts: total observation count overflows u64");
            if values.last() == Some(&val) {
                *cum.last_mut().expect("non-empty when last matches") = total;
            } else {
                values.push(val);
                cum.push(total);
            }
        }
        Self { values, cum }
    }

    /// Total number of observations.
    pub fn len(&self) -> u64 {
        self.cum.last().copied().unwrap_or(0)
    }

    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Number of observations with value ≤ `x`.
    pub fn count_le(&self, x: u64) -> u64 {
        match self.values.partition_point(|&v| v <= x) {
            0 => 0,
            i => self.cum[i - 1],
        }
    }

    /// Fraction of observations with value ≤ `x`, in `[0, 1]`.
    ///
    /// Returns 0 for an empty distribution (a deliberate convention: figures
    /// over empty slices render as all-zero series rather than NaN).
    pub fn fraction_le(&self, x: u64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.count_le(x) as f64 / self.len() as f64
    }

    /// Fraction of observations with value strictly greater than `x`.
    pub fn fraction_gt(&self, x: u64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        1.0 - self.fraction_le(x)
    }

    /// Number of observations with value strictly greater than `x`.
    pub fn count_gt(&self, x: u64) -> u64 {
        self.len() - self.count_le(x)
    }

    /// Smallest value `v` such that at least `q` (0 ≤ q ≤ 1) of the mass is
    /// ≤ `v` — i.e. the lower empirical quantile. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.len() as f64).ceil().max(1.0) as u64;
        let idx = self.cum.partition_point(|&c| c < target);
        Some(self.values[idx.min(self.values.len() - 1)])
    }

    /// The median observation.
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// Largest observed value.
    pub fn max(&self) -> Option<u64> {
        self.values.last().copied()
    }

    /// Smallest observed value.
    pub fn min(&self) -> Option<u64> {
        self.values.first().copied()
    }

    /// Mean of the observations.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let mut sum = 0.0;
        let mut prev = 0u64;
        for (i, &v) in self.values.iter().enumerate() {
            let count = self.cum[i] - prev;
            prev = self.cum[i];
            sum += v as f64 * count as f64;
        }
        Some(sum / self.len() as f64)
    }

    /// Evaluates the CDF at each point of `xs`, producing a plottable series
    /// of `(x, fraction ≤ x)` pairs — the exact form of the paper's figures.
    pub fn series(&self, xs: impl IntoIterator<Item = u64>) -> Vec<(u64, f64)> {
        xs.into_iter().map(|x| (x, self.fraction_le(x))).collect()
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter_counts(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut prev = 0u64;
        self.values
            .iter()
            .zip(self.cum.iter())
            .map(move |(&v, &c)| {
                let count = c - prev;
                prev = c;
                (v, count)
            })
    }

    /// The Kolmogorov–Smirnov statistic `sup_x |F_a(x) − F_b(x)|` between two
    /// ECDFs. Used to quantify "most similar" claims, e.g. the paper's
    /// finding that IPv4 addresses behave most like IPv6 /48s in Fig 9 and
    /// like /56s in Fig 10.
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 1.0;
        }
        let mut d: f64 = 0.0;
        for &x in self.values.iter().chain(other.values.iter()) {
            d = d.max((self.fraction_le(x) - other.fraction_le(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testgen::TestGen;

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn from_counts_panics_on_total_overflow() {
        let _ = Ecdf::from_counts([(1, u64::MAX), (2, 1)]);
    }

    #[test]
    fn basic_queries() {
        let e = Ecdf::from_values([1, 1, 2, 3, 9]);
        assert_eq!(e.len(), 5);
        assert_eq!(e.count_le(0), 0);
        assert_eq!(e.count_le(1), 2);
        assert_eq!(e.count_le(2), 3);
        assert_eq!(e.count_le(100), 5);
        assert_eq!(e.count_gt(2), 2);
        assert_eq!(e.median(), Some(2));
        assert_eq!(e.max(), Some(9));
        assert_eq!(e.min(), Some(1));
        assert!((e.mean().unwrap() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn from_counts_matches_from_values() {
        let a = Ecdf::from_values([5, 5, 5, 7, 9, 9]);
        let b = Ecdf::from_counts([(9, 2), (5, 3), (7, 1)]);
        assert_eq!(a, b);
        // Duplicate value keys are merged.
        let c = Ecdf::from_counts([(5, 1), (9, 2), (5, 2), (7, 1)]);
        assert_eq!(a, c);
    }

    #[test]
    fn empty_distribution_is_safe() {
        let e = Ecdf::from_values(std::iter::empty());
        assert!(e.is_empty());
        assert_eq!(e.fraction_le(10), 0.0);
        assert_eq!(e.median(), None);
        assert_eq!(e.mean(), None);
        assert_eq!(e.series(0..3), vec![(0, 0.0), (1, 0.0), (2, 0.0)]);
    }

    #[test]
    fn quantile_edges() {
        let e = Ecdf::from_values([10, 20, 30, 40]);
        assert_eq!(e.quantile(0.0), Some(10));
        assert_eq!(e.quantile(0.25), Some(10));
        assert_eq!(e.quantile(0.26), Some(20));
        assert_eq!(e.quantile(1.0), Some(40));
        // Out-of-range inputs clamp.
        assert_eq!(e.quantile(2.0), Some(40));
        assert_eq!(e.quantile(-1.0), Some(10));
    }

    #[test]
    fn ks_distance_identity_and_symmetry() {
        let a = Ecdf::from_values([1, 2, 3, 4, 5]);
        let b = Ecdf::from_values([3, 4, 5, 6, 7]);
        assert_eq!(a.ks_distance(&a), 0.0);
        assert!((a.ks_distance(&b) - b.ks_distance(&a)).abs() < 1e-12);
        assert!(a.ks_distance(&b) > 0.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut g = TestGen::new(0x4543_4401);
        for _ in 0..64 {
            let len = g.range_u64(1, 199) as usize;
            let vals = g.vec_of(len, |g| g.below(1000));
            let e = Ecdf::from_values(vals);
            let mut prev = 0.0;
            for x in 0..1000 {
                let f = e.fraction_le(x);
                assert!(f >= prev);
                assert!((0.0..=1.0).contains(&f));
                prev = f;
            }
            assert!((e.fraction_le(1000) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn count_le_plus_count_gt_is_total() {
        let mut g = TestGen::new(0x4543_4402);
        for _ in 0..256 {
            let len = g.below(100) as usize;
            let vals = g.vec_of(len, |g| g.below(100));
            let x = g.below(120);
            let e = Ecdf::from_values(vals);
            assert_eq!(e.count_le(x) + e.count_gt(x), e.len());
        }
    }

    #[test]
    fn median_is_between_min_and_max() {
        let mut g = TestGen::new(0x4543_4403);
        for _ in 0..256 {
            let len = g.range_u64(1, 99) as usize;
            let vals = g.vec_of(len, |g| g.below(10_000));
            let e = Ecdf::from_values(vals);
            let m = e.median().unwrap();
            assert!(e.min().unwrap() <= m && m <= e.max().unwrap());
            // At least half the mass is ≤ the median.
            assert!(e.fraction_le(m) >= 0.5);
        }
    }
}
