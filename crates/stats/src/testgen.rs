//! A tiny deterministic pseudo-random generator for tests.
//!
//! The workspace builds from a vendored, offline registry, so it cannot pull
//! in a property-testing framework. Randomized tests instead draw their cases
//! from this generator: a [splitmix64](https://prng.di.unimi.it/splitmix64.c)
//! stream seeded explicitly, so every "random" test is reproducible and any
//! failure can be replayed by seed. It lives in the library (not behind
//! `cfg(test)`) so every crate in the workspace can use it from its tests.

/// A splitmix64 pseudo-random stream for deterministic test-case generation.
#[derive(Debug, Clone)]
pub struct TestGen {
    state: u64,
}

impl TestGen {
    /// Creates a generator whose output is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 128 pseudo-random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// A value uniform in `[0, n)`. `n` must be nonzero; the slight modulo
    /// bias is irrelevant at test-case scale.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        self.next_u64() % n
    }

    /// A value uniform in `[lo, hi]` (inclusive bounds).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// A `u8` uniform in `[lo, hi]` (inclusive bounds).
    pub fn range_u8(&mut self, lo: u8, hi: u8) -> u8 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u8
    }

    /// A float uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A float uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// Six pseudo-random octets (e.g. a MAC address).
    pub fn octets6(&mut self) -> [u8; 6] {
        let v = self.next_u64().to_le_bytes();
        [v[0], v[1], v[2], v[3], v[4], v[5]]
    }

    /// A vector of `len` values drawn from `f`.
    pub fn vec_of<T>(&mut self, len: usize, mut f: impl FnMut(&mut Self) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let mut a = TestGen::new(7);
        let mut b = TestGen::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestGen::new(8);
        assert_ne!(TestGen::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn bounds_are_respected() {
        let mut g = TestGen::new(1);
        for _ in 0..1000 {
            let v = g.range_u64(10, 20);
            assert!((10..=20).contains(&v));
            let f = g.unit();
            assert!((0.0..1.0).contains(&f));
            let x = g.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn values_cover_the_range() {
        let mut g = TestGen::new(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[g.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }
}
