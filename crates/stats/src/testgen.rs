//! A tiny deterministic pseudo-random generator for tests.
//!
//! The workspace builds from a vendored, offline registry, so it cannot pull
//! in a property-testing framework. Randomized tests instead draw their cases
//! from this generator: a [splitmix64](https://prng.di.unimi.it/splitmix64.c)
//! stream seeded explicitly, so every "random" test is reproducible and any
//! failure can be replayed by seed. It lives in the library (not behind
//! `cfg(test)`) so every crate in the workspace can use it from its tests.

/// A splitmix64 pseudo-random stream for deterministic test-case generation.
#[derive(Debug, Clone)]
pub struct TestGen {
    state: u64,
}

impl TestGen {
    /// Creates a generator whose output is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 128 pseudo-random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// A value uniform in `[0, n)`. `n` must be nonzero; the slight modulo
    /// bias is irrelevant at test-case scale.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        self.next_u64() % n
    }

    /// A value uniform in `[lo, hi]` (inclusive bounds).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// A `u8` uniform in `[lo, hi]` (inclusive bounds).
    pub fn range_u8(&mut self, lo: u8, hi: u8) -> u8 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u8
    }

    /// A float uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A float uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// Six pseudo-random octets (e.g. a MAC address).
    pub fn octets6(&mut self) -> [u8; 6] {
        let v = self.next_u64().to_le_bytes();
        [v[0], v[1], v[2], v[3], v[4], v[5]]
    }

    /// A vector of `len` values drawn from `f`.
    pub fn vec_of<T>(&mut self, len: usize, mut f: impl FnMut(&mut Self) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }

    /// Flips one pseudo-random bit of one pseudo-random byte in
    /// `bytes[lo..]`, returning the chosen offset. `lo` protects a
    /// prefix (e.g. a file header) from mutation; `bytes` must extend
    /// past it. Chaos tests use this to simulate on-disk corruption at a
    /// seed-replayable position.
    pub fn flip_byte(&mut self, bytes: &mut [u8], lo: usize) -> usize {
        assert!(lo < bytes.len(), "no bytes past the protected prefix");
        let offset = lo + self.below((bytes.len() - lo) as u64) as usize;
        bytes[offset] ^= 1 << self.below(8);
        offset
    }

    /// Truncates `bytes` to a pseudo-random length in `[lo, len)`,
    /// returning the new length. Chaos tests use this to simulate a torn
    /// (partially persisted) write at a seed-replayable position.
    pub fn truncate_at(&mut self, bytes: &mut Vec<u8>, lo: usize) -> usize {
        assert!(lo < bytes.len(), "nothing left to truncate");
        let keep = lo + self.below((bytes.len() - lo) as u64) as usize;
        bytes.truncate(keep);
        keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let mut a = TestGen::new(7);
        let mut b = TestGen::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestGen::new(8);
        assert_ne!(TestGen::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn bounds_are_respected() {
        let mut g = TestGen::new(1);
        for _ in 0..1000 {
            let v = g.range_u64(10, 20);
            assert!((10..=20).contains(&v));
            let f = g.unit();
            assert!((0.0..1.0).contains(&f));
            let x = g.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn byte_mutations_are_deterministic_and_respect_the_prefix() {
        let original: Vec<u8> = (0u8..64).collect();

        let mut a = original.clone();
        let off_a = TestGen::new(11).flip_byte(&mut a, 20);
        let mut b = original.clone();
        let off_b = TestGen::new(11).flip_byte(&mut b, 20);
        assert_eq!(off_a, off_b, "same seed, same offset");
        assert_eq!(a, b, "same seed, same mutation");
        assert!(off_a >= 20, "protected prefix untouched");
        assert_eq!(a[..20], original[..20]);
        let flipped: Vec<usize> = (0..a.len()).filter(|&i| a[i] != original[i]).collect();
        assert_eq!(flipped, [off_a], "exactly one byte changed");
        assert_eq!(
            (a[off_a] ^ original[off_a]).count_ones(),
            1,
            "exactly one bit flipped"
        );

        let mut t = original.clone();
        let keep = TestGen::new(12).truncate_at(&mut t, 20);
        assert!((20..original.len()).contains(&keep));
        assert_eq!(t.len(), keep);
        assert_eq!(t[..], original[..keep]);
        let mut t2 = original.clone();
        assert_eq!(TestGen::new(12).truncate_at(&mut t2, 20), keep);
    }

    #[test]
    fn values_cover_the_range() {
        let mut g = TestGen::new(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[g.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }
}
