//! Statistical substrate for the IPv6 user-level behavior study.
//!
//! This crate provides the numerical building blocks that every analysis in
//! the study rests on. It is deliberately dependency-free so that results are
//! bit-for-bit reproducible across platforms:
//!
//! - [`hash`] — a stable 64-bit hash (an xxHash64 implementation) used by the
//!   deterministic attribute samplers described in §3.1 of the paper. Rust's
//!   `DefaultHasher` is explicitly *not* stable across releases, so we carry
//!   our own.
//! - [`ecdf`] — empirical CDFs over integer-valued observations, the workhorse
//!   behind Figures 2, 3, 5, 7, 8, 9 and 10.
//! - [`histogram`] — linear and log₂-binned histograms for heavy-tailed
//!   count distributions (users per address span five orders of magnitude).
//! - [`counter`] — "counts of counts" maps: e.g. *how many users had exactly
//!   k addresses*, plus top-k heavy-hitter tracking.
//! - [`roc`] — Receiver Operating Characteristic curves for the day-*n* →
//!   day-*n+1* actioning analysis of §7.1 (Figure 11).
//! - [`extrapolate`] — scaling sample statistics to population estimates with
//!   confidence intervals, mirroring the paper's "extrapolating from our
//!   sample" arguments (§5.1.3, §6.1.3).
//! - [`summary`] — scalar summaries (mean / median / quantiles / max).
//!
//! # Example
//!
//! ```
//! use ipv6_study_stats::ecdf::Ecdf;
//!
//! // Number of IPv6 addresses observed for five users in one day.
//! let ecdf = Ecdf::from_values([1u64, 1, 2, 3, 9]);
//! assert_eq!(ecdf.fraction_le(1), 0.4);   // 40% of users had one address
//! assert_eq!(ecdf.fraction_le(8), 0.8);
//! assert_eq!(ecdf.max(), Some(9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod dist;
pub mod ecdf;
pub mod extrapolate;
pub mod hash;
pub mod histogram;
pub mod roc;
pub mod summary;
pub mod testgen;

pub use counter::{CountOfCounts, TopK};
pub use ecdf::Ecdf;
pub use extrapolate::{PopulationEstimate, SampleScale};
pub use hash::{stable_hash64, SeededBuildHasher, StableHashMap, StableHashSet, StableHasher};
pub use histogram::{Histogram, Log2Histogram};
pub use roc::{RocCurve, RocPoint};
pub use summary::Summary;
pub use testgen::TestGen;
