//! Receiver Operating Characteristic curves.
//!
//! Section 7.1 of the paper evaluates IP-actioning policies as a binary
//! decision sweep: for every prefix observed on day *n* with abusive-account
//! ratio ≥ *t*, action it; measure on day *n+1* the true-positive rate (share
//! of abusive accounts caught) and false-positive rate (share of benign users
//! collaterally hit), then sweep *t* from 0% to 100% to trace Figure 11.
//!
//! This module provides the generic machinery: a [`RocCurve`] built from
//! per-decision-unit `(score, positives_hit, negatives_hit)` triples, where a
//! unit (an address or a prefix) is actioned whenever `score >= threshold`.

/// One operating point on a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold that produces this point (units actioned when
    /// `score >= threshold`).
    pub threshold: f64,
    /// True-positive rate in `[0, 1]`.
    pub tpr: f64,
    /// False-positive rate in `[0, 1]`.
    pub fpr: f64,
}

/// A ROC curve over weighted decision units.
///
/// Each unit carries a `score` (here: the abusive-account ratio on day *n*),
/// a positive weight (abusive accounts on the unit on day *n+1*) and a
/// negative weight (benign users on day *n+1*). Unlike the textbook
/// per-example ROC, weights let one unit contribute thousands of users —
/// matching how a single blocked CGN address harms everyone behind it.
#[derive(Debug, Clone, Default)]
pub struct RocCurve {
    /// `(score, positive_weight, negative_weight)` per decision unit.
    units: Vec<(f64, f64, f64)>,
}

impl RocCurve {
    /// Creates an empty curve builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one decision unit.
    pub fn push(&mut self, score: f64, positive_weight: f64, negative_weight: f64) {
        debug_assert!(score.is_finite() && positive_weight >= 0.0 && negative_weight >= 0.0);
        self.units.push((score, positive_weight, negative_weight));
    }

    /// Pools another curve's decision units into this one (e.g. the same
    /// experiment repeated over several day pairs).
    pub fn extend_from(&mut self, other: &RocCurve) {
        self.units.extend_from_slice(&other.units);
    }

    /// Total positive weight across all units (the day-*n+1* abusive mass).
    pub fn total_positive(&self) -> f64 {
        self.units.iter().map(|u| u.1).sum()
    }

    /// Total negative weight across all units.
    pub fn total_negative(&self) -> f64 {
        self.units.iter().map(|u| u.2).sum()
    }

    /// Evaluates the operating point at a single threshold.
    ///
    /// `total_negative_override` supports the paper's setting where the FPR
    /// denominator is the *entire* benign population (including users on
    /// never-observed units), not just users on scored units. Pass `None` to
    /// use the in-curve total.
    pub fn point_at(&self, threshold: f64, total_negative_override: Option<f64>) -> RocPoint {
        let mut tp = 0.0;
        let mut fp = 0.0;
        for &(score, pos, neg) in &self.units {
            if score >= threshold {
                tp += pos;
                fp += neg;
            }
        }
        let tot_p = self.total_positive();
        let tot_n = total_negative_override.unwrap_or_else(|| self.total_negative());
        RocPoint {
            threshold,
            tpr: if tot_p > 0.0 { tp / tot_p } else { 0.0 },
            fpr: if tot_n > 0.0 { fp / tot_n } else { 0.0 },
        }
    }

    /// Sweeps the given thresholds (descending TPR as threshold rises) into a
    /// plottable curve.
    pub fn sweep(&self, thresholds: &[f64], total_negative_override: Option<f64>) -> Vec<RocPoint> {
        thresholds
            .iter()
            .map(|&t| self.point_at(t, total_negative_override))
            .collect()
    }

    /// The TPR attained at the largest threshold whose FPR does not exceed
    /// `max_fpr` — "recall at a tolerable false-positive budget", the paper's
    /// preferred comparison ("for FPR values below 1%, IPv4's ROC curve is
    /// consistently below those of IPv6…"). Scans a fine threshold grid.
    pub fn tpr_at_fpr(&self, max_fpr: f64, total_negative_override: Option<f64>) -> f64 {
        let mut best = 0.0f64;
        for i in 0..=1000 {
            let t = i as f64 / 1000.0;
            let p = self.point_at(t, total_negative_override);
            if p.fpr <= max_fpr {
                best = best.max(p.tpr);
            }
        }
        best
    }

    /// Area under the curve via trapezoidal integration over a fine
    /// threshold grid. A scalar summary for regression tests and ablations.
    pub fn auc(&self, total_negative_override: Option<f64>) -> f64 {
        let mut pts: Vec<RocPoint> = (0..=1000)
            .map(|i| self.point_at(i as f64 / 1000.0, total_negative_override))
            .collect();
        pts.sort_by(|a, b| a.fpr.partial_cmp(&b.fpr).expect("finite rates"));
        let mut auc = 0.0;
        // Anchor the curve at (0,0) and (max_fpr, max_tpr) ... integrate the
        // observed envelope only; actioning curves need not reach (1,1).
        let mut prev = RocPoint {
            threshold: f64::NAN,
            tpr: 0.0,
            fpr: 0.0,
        };
        for p in pts {
            auc += (p.fpr - prev.fpr) * (p.tpr + prev.tpr) / 2.0;
            prev = p;
        }
        auc
    }

    /// Number of decision units recorded.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True when no units were recorded.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testgen::TestGen;

    fn sample_curve() -> RocCurve {
        let mut c = RocCurve::new();
        // unit: score, abusive next day, benign next day
        c.push(1.0, 10.0, 0.0); // purely abusive yesterday, clean hit
        c.push(0.5, 5.0, 5.0); // mixed
        c.push(0.1, 1.0, 100.0); // heavily benign
        c
    }

    #[test]
    fn threshold_zero_actions_everything() {
        let c = sample_curve();
        let p = c.point_at(0.0, None);
        assert!((p.tpr - 1.0).abs() < 1e-12);
        assert!((p.fpr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_one_actions_only_pure_units() {
        let c = sample_curve();
        let p = c.point_at(1.0, None);
        assert!((p.tpr - 10.0 / 16.0).abs() < 1e-12);
        assert!((p.fpr - 0.0).abs() < 1e-12);
    }

    #[test]
    fn fpr_denominator_override() {
        let c = sample_curve();
        // Pretend the full benign population is 10x the in-curve negatives.
        let p = c.point_at(0.0, Some(1050.0));
        assert!((p.fpr - 105.0 / 1050.0).abs() < 1e-12);
    }

    #[test]
    fn tpr_at_fpr_budget() {
        let c = sample_curve();
        // With zero FPR budget, only the pure unit may be actioned.
        assert!((c.tpr_at_fpr(0.0, None) - 10.0 / 16.0).abs() < 1e-12);
        // With unlimited budget the whole mass is reachable.
        assert!((c.tpr_at_fpr(1.0, None) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_curve_is_safe() {
        let c = RocCurve::new();
        let p = c.point_at(0.5, None);
        assert_eq!(p.tpr, 0.0);
        assert_eq!(p.fpr, 0.0);
        assert_eq!(c.auc(None), 0.0);
        assert!(c.is_empty());
    }

    /// A pseudo-random curve with 1–49 units of bounded mass.
    fn random_curve(g: &mut TestGen) -> RocCurve {
        let mut c = RocCurve::new();
        for _ in 0..g.range_u64(1, 49) {
            c.push(
                g.range_f64(0.0, 1.0),
                g.range_f64(0.0, 50.0),
                g.range_f64(0.0, 50.0),
            );
        }
        c
    }

    /// Raising the threshold can only shrink the actioned set, so both
    /// rates are monotone non-increasing in the threshold.
    #[test]
    fn rates_monotone_in_threshold() {
        let mut g = TestGen::new(0x524F_4301);
        for _ in 0..256 {
            let c = random_curve(&mut g);
            let mut prev = c.point_at(0.0, None);
            for i in 1..=20 {
                let cur = c.point_at(i as f64 / 20.0, None);
                assert!(cur.tpr <= prev.tpr + 1e-12);
                assert!(cur.fpr <= prev.fpr + 1e-12);
                prev = cur;
            }
        }
    }

    #[test]
    fn auc_is_a_probability() {
        let mut g = TestGen::new(0x524F_4302);
        for _ in 0..256 {
            let c = random_curve(&mut g);
            let auc = c.auc(None);
            assert!((0.0..=1.0 + 1e-9).contains(&auc));
        }
    }
}
