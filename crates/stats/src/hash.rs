//! A stable 64-bit hash for deterministic sampling.
//!
//! The study's datasets are built by *deterministic attribute sampling*
//! (§3.1): a request is in the "user random sample" iff
//! `hash(user_id) mod N == 0`, and likewise for IP addresses and prefixes.
//! For that to be reproducible the hash must be fixed for all time, across
//! platforms and Rust releases — which rules out `std`'s `DefaultHasher`
//! (documented as unstable). We implement **xxHash64**, a public, well-tested
//! non-cryptographic hash with excellent avalanche behavior, from its
//! specification.
//!
//! Only the streaming one-shot form is provided; all sampler keys in this
//! workspace are short (≤ 16 bytes), so throughput is irrelevant and
//! correctness + stability are everything.

const PRIME64_1: u64 = 0x9E3779B185EBCA87;
const PRIME64_2: u64 = 0xC2B2AE3D27D4EB4F;
const PRIME64_3: u64 = 0x165667B19E3779F9;
const PRIME64_4: u64 = 0x85EBCA77C2B2AE63;
const PRIME64_5: u64 = 0x27D4EB2F165667C5;

/// Computes the xxHash64 of `data` with the given `seed`.
///
/// The result is stable: it will never change between releases of this
/// workspace, and matches the reference xxHash64 vectors.
pub fn stable_hash64(seed: u64, data: &[u8]) -> u64 {
    let len = data.len() as u64;
    let mut h: u64;
    let mut rest = data;

    if rest.len() >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..8]));
            v2 = round(v2, read_u64(&rest[8..16]));
            v3 = round(v3, read_u64(&rest[16..24]));
            v4 = round(v4, read_u64(&rest[24..32]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len);

    while rest.len() >= 8 {
        let k1 = round(0, read_u64(&rest[0..8]));
        h ^= k1;
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        let k = u64::from(read_u32(&rest[0..4]));
        h ^= k.wrapping_mul(PRIME64_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &byte in rest {
        h ^= u64::from(byte).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
    }

    // Final avalanche.
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    let val = round(0, val);
    (acc ^ val).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("slice of length 8"))
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("slice of length 4"))
}

/// Convenience builder for hashing multiple fixed-width fields.
///
/// Samplers hash compound keys such as `(dataset tag, user id)`; this builder
/// concatenates fields into a small stack buffer and hashes once, avoiding
/// any ambiguity about field boundaries (every `write_*` call appends the
/// full fixed-width little-endian encoding).
#[derive(Debug, Clone)]
pub struct StableHasher {
    seed: u64,
    buf: Vec<u8>,
}

impl StableHasher {
    /// Creates a hasher with a domain-separation `seed`.
    ///
    /// Distinct samplers must use distinct seeds so that, e.g., the user
    /// sample and the IP sample are statistically independent.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            buf: Vec::with_capacity(24),
        }
    }

    /// Appends a `u64` field.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u128` field (e.g. a full IPv6 address).
    pub fn write_u128(&mut self, v: u128) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends raw bytes.
    pub fn write_bytes(&mut self, b: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(b);
        self
    }

    /// Finishes the hash, consuming nothing (the hasher can be reused after
    /// [`StableHasher::reset`]).
    pub fn finish(&self) -> u64 {
        stable_hash64(self.seed, &self.buf)
    }

    /// Clears accumulated bytes, keeping the seed.
    pub fn reset(&mut self) {
        self.buf.clear();
    }
}

/// A [`std::hash::BuildHasher`] over [`stable_hash64`], for hash maps on
/// analysis hot paths.
///
/// `std`'s default SipHash trades speed for HashDoS resistance we do not
/// need (all keys come from our own simulator), and its per-map random seed
/// makes iteration order vary between runs. This builder hashes with the
/// frozen xxHash64 under a fixed seed instead: faster on the short integer
/// keys the analyses use, stable across runs/platforms, and std-only.
///
/// Note that map *iteration* order, while now reproducible, is still an
/// implementation detail of `std`'s table layout — output paths must keep
/// sorting before emitting rows.
#[derive(Debug, Clone, Copy)]
pub struct SeededBuildHasher {
    seed: u64,
}

/// Domain-separation seed for [`SeededBuildHasher::default`], distinct from
/// every sampler seed in the workspace.
const DEFAULT_MAP_SEED: u64 = 0x4D41_5048_4153_4845; // "MAPHASHE"

impl SeededBuildHasher {
    /// Creates a builder hashing under `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Default for SeededBuildHasher {
    fn default() -> Self {
        Self::new(DEFAULT_MAP_SEED)
    }
}

impl std::hash::BuildHasher for SeededBuildHasher {
    type Hasher = SeededHasher;

    fn build_hasher(&self) -> SeededHasher {
        SeededHasher {
            seed: self.seed,
            buf: Vec::with_capacity(16),
        }
    }
}

/// The [`std::hash::Hasher`] produced by [`SeededBuildHasher`].
///
/// Buffers the key's bytes and runs one [`stable_hash64`] pass in `finish`
/// (keys here are at most a few machine words, so the buffer stays on one
/// small allocation). Integer writes are encoded little-endian explicitly so
/// the hash — and thus table layout — is identical on every platform.
#[derive(Debug, Clone)]
pub struct SeededHasher {
    seed: u64,
    buf: Vec<u8>,
}

impl std::hash::Hasher for SeededHasher {
    fn finish(&self) -> u64 {
        stable_hash64(self.seed, &self.buf)
    }

    fn write(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn write_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn write_usize(&mut self, v: usize) {
        // Widen to u64 so 32- and 64-bit platforms hash identically.
        self.write_u64(v as u64);
    }

    fn write_i8(&mut self, v: i8) {
        self.write_u8(v as u8);
    }

    fn write_i16(&mut self, v: i16) {
        self.write_u16(v as u16);
    }

    fn write_i32(&mut self, v: i32) {
        self.write_u32(v as u32);
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    fn write_i128(&mut self, v: i128) {
        self.write_u128(v as u128);
    }

    fn write_isize(&mut self, v: isize) {
        self.write_u64(v as u64);
    }
}

/// A `HashMap` keyed by the stable seeded hasher.
pub type StableHashMap<K, V> = std::collections::HashMap<K, V, SeededBuildHasher>;

/// A `HashSet` keyed by the stable seeded hasher.
pub type StableHashSet<K> = std::collections::HashSet<K, SeededBuildHasher>;

/// Returns true with probability `rate` (deterministically) for the given key.
///
/// This is the sampling primitive behind every dataset in the study: the
/// decision depends only on `(seed, key)`, so the *same* users / addresses /
/// prefixes are selected every day, exactly as in the paper's methodology
/// ("our sampling method is deterministic over time", §3.1).
pub fn sampled(seed: u64, key: u64, rate: f64) -> bool {
    debug_assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
    let h = stable_hash64(seed, &key.to_le_bytes());
    // Map the hash to [0, 1) with 53 bits of precision.
    let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit < rate
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical empty-input vector from the xxHash specification
    /// (<https://github.com/Cyan4973/xxHash/blob/dev/doc/xxhash_spec.md>).
    #[test]
    fn xxhash64_empty_input_vector() {
        assert_eq!(stable_hash64(0, b""), 0xEF46DB3751D8E999);
    }

    /// Published xxHash64 vectors for short ASCII inputs at seed 0 (widely
    /// reproduced from the reference implementation's sanity checks).
    #[test]
    fn xxhash64_ascii_vectors() {
        assert_eq!(stable_hash64(0, b"a"), 0xd24ec4f1a98c6e5b);
        assert_eq!(stable_hash64(0, b"abc"), 0x44bc2cf5ad770999);
    }

    /// Frozen golden vectors over every length class — empty, tail-only
    /// (<8, <4), word-tail, and the 32-byte four-lane stripe path — and over
    /// multiple seeds. These were cross-validated against the reference
    /// xxHash64 once and are now pinned: the sampled datasets depend on
    /// these exact values, so they must never change.
    #[test]
    fn xxhash64_matches_frozen_vectors() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        #[rustfmt::skip]
        let goldens: &[(u64, usize, u64)] = &[
            (0x0, 0, 0xef46db3751d8e999), (0x0, 1, 0xe934a84adb052768),
            (0x0, 3, 0xe5c7bb4533bc65dd), (0x0, 4, 0xffced8604453cc1e),
            (0x0, 7, 0x14cc643f630c72d2), (0x0, 8, 0x884a173614b81b8d),
            (0x0, 13, 0x13d17c4c779723a8), (0x0, 16, 0x44b6ef2fb84169f7),
            (0x0, 31, 0xc346d2b59b4d8ee1), (0x0, 32, 0xcbf59c5116ff32b4),
            (0x0, 33, 0x0c535d1acafb8ead), (0x0, 63, 0xe26aa9e2a95f8e4f),
            (0x0, 64, 0xf7c67301db6713f0), (0x0, 100, 0x6ac1e58032166597),
            (0x0, 255, 0x0f7d97507caad693), (0x0, 300, 0x4f1d6de0165b155a),
            (0x1, 0, 0xd5afba1336a3be4b), (0x1, 1, 0x771917c7f6ee2451),
            (0x1, 3, 0xa2168d89c582b451), (0x1, 4, 0x94506f8c7e5870a9),
            (0x1, 7, 0xaf4c5311c47c77b7), (0x1, 8, 0x9d2b7c7354fe4e23),
            (0x1, 13, 0xa8aa733c5ea6e3bb), (0x1, 16, 0xdd4230f47b0d28c1),
            (0x1, 31, 0xf031031d65977dfc), (0x1, 32, 0xd74e6766ce9dba94),
            (0x1, 33, 0xa371825f4210fe99), (0x1, 63, 0x5264ec0719e10595),
            (0x1, 64, 0x3ce5bdf7575926c0), (0x1, 100, 0x3d19a3a2098a7023),
            (0x1, 255, 0xec6164aa2e454f2b), (0x1, 300, 0xda1c9a4bf865135d),
            (0x9e3779b185ebca87, 0, 0x6ec6d05f61c7e7a7),
            (0x9e3779b185ebca87, 1, 0x60508b0ced72c717),
            (0x9e3779b185ebca87, 3, 0xa1552d556a299b24),
            (0x9e3779b185ebca87, 4, 0xd485946465317d49),
            (0x9e3779b185ebca87, 7, 0x0ff0ba621eec7a4e),
            (0x9e3779b185ebca87, 8, 0x5eb050a7cb134cae),
            (0x9e3779b185ebca87, 13, 0xed7609f72d314b2e),
            (0x9e3779b185ebca87, 16, 0xc633a2fb67580003),
            (0x9e3779b185ebca87, 31, 0xa3c5ec38a60b7ea1),
            (0x9e3779b185ebca87, 32, 0xbfb3e4ef6096c49c),
            (0x9e3779b185ebca87, 33, 0x702e2aa8b96740bd),
            (0x9e3779b185ebca87, 63, 0xb83be1f91b39104d),
            (0x9e3779b185ebca87, 64, 0x2006c268b7d34f54),
            (0x9e3779b185ebca87, 100, 0x00278bda0ee3f586),
            (0x9e3779b185ebca87, 255, 0x26d3f88ab2d2ce34),
            (0x9e3779b185ebca87, 300, 0x8ef4dbc1bd6f1daf),
            (0xffffffffffffffff, 0, 0x298f4c84b24f5380),
            (0xffffffffffffffff, 1, 0x8ba3328805e37c90),
            (0xffffffffffffffff, 3, 0x2766da80af982d5d),
            (0xffffffffffffffff, 4, 0x50ee1d0d77c6ca04),
            (0xffffffffffffffff, 7, 0x53899ea28b7375fc),
            (0xffffffffffffffff, 8, 0x367a57c649c7a5ac),
            (0xffffffffffffffff, 13, 0xdf16ce003b750916),
            (0xffffffffffffffff, 16, 0xb261c2ef4316cc29),
            (0xffffffffffffffff, 31, 0x208e0384ffffdb7a),
            (0xffffffffffffffff, 32, 0x35220dfdb7d4d7c9),
            (0xffffffffffffffff, 33, 0x5677d5193d356c20),
            (0xffffffffffffffff, 63, 0xc57c35bc58c8fe4a),
            (0xffffffffffffffff, 64, 0x79e8b8230306e25c),
            (0xffffffffffffffff, 100, 0x09a991a091c9f6d7),
            (0xffffffffffffffff, 255, 0xeee590888bb50713),
            (0xffffffffffffffff, 300, 0x1dc987251be347da),
        ];
        for &(seed, len, expect) in goldens {
            assert_eq!(
                stable_hash64(seed, &data[..len]),
                expect,
                "mismatch at seed={seed} len={len}"
            );
        }
    }

    #[test]
    fn long_input_uses_lane_mixing() {
        // >= 32 bytes exercises the four-lane path.
        let data: Vec<u8> = (0u8..100).collect();
        let h1 = stable_hash64(7, &data);
        let h2 = stable_hash64(7, &data);
        let h3 = stable_hash64(8, &data);
        assert_eq!(h1, h2);
        assert_ne!(h1, h3, "seed must matter");
    }

    #[test]
    fn sampler_rate_is_respected() {
        let n = 200_000u64;
        let rate = 0.001;
        let hits = (0..n).filter(|&k| sampled(42, k, rate)).count();
        let expected = (n as f64 * rate) as i64;
        // Binomial stddev ≈ sqrt(200) ≈ 14; allow 5σ.
        assert!(
            (hits as i64 - expected).abs() < 80,
            "hits={hits} expected≈{expected}"
        );
    }

    #[test]
    fn sampler_is_deterministic() {
        for k in 0..1000u64 {
            assert_eq!(sampled(1, k, 0.01), sampled(1, k, 0.01));
        }
    }

    #[test]
    fn sampler_monotone_in_rate() {
        // A key sampled at rate r must also be sampled at any rate r' > r.
        for k in 0..2000u64 {
            if sampled(3, k, 0.001) {
                assert!(sampled(3, k, 0.01));
                assert!(sampled(3, k, 1.0));
            }
        }
    }

    #[test]
    fn seeded_build_hasher_is_deterministic_and_usable() {
        use std::hash::BuildHasher;

        // Same key, two independently built hashers: identical output.
        let b = SeededBuildHasher::default();
        let hash_of = |v: u64| b.hash_one(v);
        assert_eq!(hash_of(42), hash_of(42));
        assert_ne!(hash_of(42), hash_of(43));

        // Distinct seeds produce distinct table layouts.
        assert_ne!(
            SeededBuildHasher::new(1).hash_one(7u64),
            SeededBuildHasher::new(2).hash_one(7u64)
        );

        // The aliases behave like plain maps/sets.
        let mut m: StableHashMap<u64, u64> = StableHashMap::default();
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m[&1], 10);
        let mut s: StableHashSet<u128> = StableHashSet::default();
        s.insert(5);
        assert!(s.contains(&5));
        assert!(!s.contains(&6));
    }

    #[test]
    fn seeded_hasher_integer_writes_are_width_stable() {
        use std::hash::{BuildHasher, Hasher};
        // usize must hash like the equivalent u64 on every platform.
        let b = SeededBuildHasher::default();
        let mut a = b.build_hasher();
        a.write_usize(99);
        let mut c = b.build_hasher();
        c.write_u64(99);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn builder_is_boundary_unambiguous() {
        let mut a = StableHasher::new(0);
        a.write_u64(0x0102030405060708).write_u64(1);
        let mut b = StableHasher::new(0);
        b.write_u64(0x0102030405060708).write_u64(2);
        assert_ne!(a.finish(), b.finish());

        let mut c = StableHasher::new(0);
        c.write_u128(55);
        let mut d = StableHasher::new(0);
        d.write_u64(55).write_u64(0);
        // Same bytes => same hash; u128 LE == two u64 LE words (lo, hi).
        assert_eq!(c.finish(), d.finish());
    }
}
