//! Counting utilities: counts-of-counts and heavy-hitter tracking.
//!
//! The study's tables repeatedly ask two kinds of question:
//!
//! 1. *"How many users had exactly / more than k addresses?"* — a
//!    **count-of-counts** over some per-entity tally ([`CountOfCounts`]).
//! 2. *"Which ASNs host the most heavily-populated addresses?"* — a
//!    **top-k** ranking over a keyed tally ([`TopK`]).

use std::collections::HashMap;
use std::hash::Hash;

use crate::ecdf::Ecdf;

/// Accumulates a per-key tally and answers distributional questions about it.
///
/// Typical use: key = user id, increment once per distinct address observed;
/// then ask for the ECDF of addresses-per-user (Figure 2) or the number of
/// outlier users above a threshold (§5.1.3).
#[derive(Debug, Clone, Default)]
pub struct CountOfCounts<K: Eq + Hash> {
    counts: HashMap<K, u64>,
}

impl<K: Eq + Hash> CountOfCounts<K> {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self {
            counts: HashMap::new(),
        }
    }

    /// Adds `n` to the tally for `key`.
    pub fn add(&mut self, key: K, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
    }

    /// Increments the tally for `key` by one.
    pub fn incr(&mut self, key: K) {
        self.add(key, 1);
    }

    /// Sets the tally for `key` to the maximum of its current value and `n`.
    pub fn max_with(&mut self, key: K, n: u64) {
        let e = self.counts.entry(key).or_insert(0);
        *e = (*e).max(n);
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.counts.len()
    }

    /// The tally for `key`, or 0 when absent.
    pub fn get(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Total across all keys.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of keys whose tally exceeds `threshold`.
    pub fn keys_above(&self, threshold: u64) -> usize {
        self.counts.values().filter(|&&c| c > threshold).count()
    }

    /// The largest tally, or 0 when empty.
    pub fn max_count(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Builds the ECDF of the per-key tallies (the distribution plotted in
    /// the paper's figures).
    pub fn ecdf(&self) -> Ecdf {
        Ecdf::from_values(self.counts.values().copied())
    }

    /// The `n` keys with the largest tallies, descending. Ties break on the
    /// key order when `K: Ord`, making output deterministic.
    pub fn top_n(&self, n: usize) -> Vec<(&K, u64)>
    where
        K: Ord,
    {
        let mut v: Vec<(&K, u64)> = self.counts.iter().map(|(k, &c)| (k, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.truncate(n);
        v
    }

    /// Iterates over `(key, tally)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &c)| (k, c))
    }

    /// Consumes the tally, returning the underlying map.
    pub fn into_map(self) -> HashMap<K, u64> {
        self.counts
    }
}

impl<K: Eq + Hash> FromIterator<K> for CountOfCounts<K> {
    fn from_iter<T: IntoIterator<Item = K>>(iter: T) -> Self {
        let mut c = Self::new();
        for k in iter {
            c.incr(k);
        }
        c
    }
}

/// Exact top-k tracking over a keyed tally, with deterministic ordering.
///
/// `TopK` keeps *all* keys (our simulations are bounded, so exactness is
/// affordable) and answers ranked queries; it exists as a named type so call
/// sites read as what they are — "the top ASNs by IPv6 ratio" — and so the
/// ranking policy (count desc, then key asc) lives in one place.
#[derive(Debug, Clone, Default)]
pub struct TopK<K: Eq + Hash + Ord + Clone> {
    counts: CountOfCounts<K>,
}

impl<K: Eq + Hash + Ord + Clone> TopK<K> {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self {
            counts: CountOfCounts::new(),
        }
    }

    /// Adds `n` to `key`'s tally.
    pub fn add(&mut self, key: K, n: u64) {
        self.counts.add(key, n);
    }

    /// Returns the top `n` `(key, count)` pairs, count-descending.
    pub fn ranked(&self, n: usize) -> Vec<(K, u64)> {
        self.counts
            .top_n(n)
            .into_iter()
            .map(|(k, c)| (k.clone(), c))
            .collect()
    }

    /// Fraction of the total tally captured by the top `n` keys — used for
    /// concentration statements like "the top 4 ASNs account for 61% of
    /// heavily-populated prefixes" (§6.2.3).
    pub fn concentration(&self, n: usize) -> f64 {
        let total = self.counts.total();
        if total == 0 {
            return 0.0;
        }
        let top: u64 = self.counts.top_n(n).iter().map(|&(_, c)| c).sum();
        top as f64 / total as f64
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.counts.num_keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_of_counts_basics() {
        let mut c = CountOfCounts::new();
        c.incr("a");
        c.incr("a");
        c.add("b", 5);
        assert_eq!(c.get(&"a"), 2);
        assert_eq!(c.get(&"b"), 5);
        assert_eq!(c.get(&"missing"), 0);
        assert_eq!(c.num_keys(), 2);
        assert_eq!(c.total(), 7);
        assert_eq!(c.keys_above(2), 1);
        assert_eq!(c.keys_above(0), 2);
        assert_eq!(c.max_count(), 5);
    }

    #[test]
    fn max_with_keeps_maximum() {
        let mut c = CountOfCounts::new();
        c.max_with("x", 3);
        c.max_with("x", 1);
        c.max_with("x", 7);
        assert_eq!(c.get(&"x"), 7);
    }

    #[test]
    fn top_n_is_deterministic_under_ties() {
        let mut c = CountOfCounts::new();
        c.add("b", 2);
        c.add("a", 2);
        c.add("z", 9);
        assert_eq!(c.top_n(3), vec![(&"z", 9), (&"a", 2), (&"b", 2)]);
        assert_eq!(c.top_n(1), vec![(&"z", 9)]);
    }

    #[test]
    fn ecdf_of_tallies() {
        let c: CountOfCounts<u32> = [1, 1, 1, 2, 3].into_iter().collect();
        // tallies: key1=3, key2=1, key3=1
        let e = c.ecdf();
        assert_eq!(e.len(), 3);
        assert_eq!(e.max(), Some(3));
        assert_eq!(e.count_le(1), 2);
    }

    #[test]
    fn topk_concentration() {
        let mut t = TopK::new();
        t.add(20057u32, 96);
        t.add(13335, 2);
        t.add(16276, 1);
        t.add(14061, 1);
        assert_eq!(t.ranked(1), vec![(20057, 96)]);
        assert!((t.concentration(1) - 0.96).abs() < 1e-12);
        assert!((t.concentration(4) - 1.0).abs() < 1e-12);
        assert_eq!(t.num_keys(), 4);
    }

    #[test]
    fn empty_trackers() {
        let c: CountOfCounts<u8> = CountOfCounts::new();
        assert_eq!(c.total(), 0);
        assert_eq!(c.max_count(), 0);
        assert!(c.ecdf().is_empty());
        let t: TopK<u8> = TopK::new();
        assert_eq!(t.concentration(5), 0.0);
        assert!(t.ranked(3).is_empty());
    }
}
