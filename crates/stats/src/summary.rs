//! Scalar summaries of `f64` samples.
//!
//! A small, exact (store-everything) summary type used for report tables and
//! calibration assertions. Simulation scales here are bounded (≤ a few
//! million samples per summary), so exactness beats sketching.

/// Collects samples and answers mean / quantile / extrema queries.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Non-finite samples are rejected with a panic in
    /// debug builds and silently dropped in release builds — a NaN in a
    /// report is always a bug upstream.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample");
        if x.is_finite() {
            self.samples.push(x);
            self.sorted = false;
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Population variance.
    pub fn variance(&self) -> Option<f64> {
        let m = self.mean()?;
        Some(
            self.samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.samples.len() as f64,
        )
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Lower empirical quantile (nearest-rank).
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// Median sample.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.min(x))))
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let mut s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.stddev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(s.median(), Some(4.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut s: Summary = (1..=10).map(|x| x as f64).collect();
        assert_eq!(s.quantile(0.1), Some(1.0));
        assert_eq!(s.quantile(0.5), Some(5.0));
        assert_eq!(s.quantile(0.91), Some(10.0));
        assert_eq!(s.quantile(1.0), Some(10.0));
    }

    #[test]
    fn empty_summary() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.median(), None);
        assert_eq!(s.variance(), None);
    }

    #[test]
    fn interleaved_record_and_quantile() {
        let mut s = Summary::new();
        s.record(5.0);
        assert_eq!(s.median(), Some(5.0));
        s.record(1.0);
        s.record(9.0);
        assert_eq!(s.median(), Some(5.0));
        s.record(0.0);
        assert_eq!(s.quantile(0.25), Some(0.0));
    }
}
