//! Plottable report types.
//!
//! The bench harness and the `repro` binary need one common currency for
//! "the rows/series the paper reports". A [`FigureReport`] is a set of
//! labeled series (CDFs or time series); a [`TableReport`] is a header plus
//! string rows. Both render to aligned plain text and to CSV.

use std::fmt::Write as _;

/// One labeled series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfSeries {
    /// Legend label, e.g. `"IPv6: 1 Day"`.
    pub label: String,
    /// The points, x ascending.
    pub points: Vec<(f64, f64)>,
}

impl CdfSeries {
    /// Builds a series from integer x-values.
    pub fn from_u64(label: impl Into<String>, pts: impl IntoIterator<Item = (u64, f64)>) -> Self {
        Self {
            label: label.into(),
            points: pts.into_iter().map(|(x, y)| (x as f64, y)).collect(),
        }
    }

    /// The y value at the largest x ≤ `x`, or 0 when the series is empty
    /// or starts after `x`.
    pub fn y_at(&self, x: f64) -> f64 {
        let mut y = 0.0;
        for &(px, py) in &self.points {
            if px <= x {
                y = py;
            } else {
                break;
            }
        }
        y
    }
}

/// A figure: id, caption, labeled series.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureReport {
    /// Paper artifact id, e.g. `"Figure 2"`.
    pub id: String,
    /// Short caption.
    pub caption: String,
    /// The series.
    pub series: Vec<CdfSeries>,
}

impl FigureReport {
    /// Creates a figure report.
    pub fn new(id: impl Into<String>, caption: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            caption: caption.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series, builder style.
    pub fn with(mut self, s: CdfSeries) -> Self {
        self.series.push(s);
        self
    }

    /// A series by label.
    pub fn series(&self, label: &str) -> Option<&CdfSeries> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders as CSV: `x,label1,label2,…` over the union of x values.
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();
        let mut out = String::from("x");
        for s in &self.series {
            let _ = write!(out, ",{}", s.label.replace(',', ";"));
        }
        out.push('\n');
        for x in xs {
            let _ = write!(out, "{x}");
            for s in &self.series {
                let _ = write!(out, ",{:.6}", s.y_at(x));
            }
            out.push('\n');
        }
        out
    }

    /// Renders a compact aligned-text view (series sampled at their own
    /// points, capped to `max_rows` rows) — what benches print.
    pub fn to_text(&self, max_rows: usize) -> String {
        let csv = self.to_csv();
        let mut lines = csv.lines();
        let mut out = format!("== {}: {} ==\n", self.id, self.caption);
        if let Some(h) = lines.next() {
            out.push_str(&h.replace(',', "\t"));
            out.push('\n');
        }
        let rest: Vec<&str> = lines.collect();
        let step = (rest.len() / max_rows.max(1)).max(1);
        for (i, l) in rest.iter().enumerate() {
            if i % step == 0 || i + 1 == rest.len() {
                out.push_str(&l.replace(',', "\t"));
                out.push('\n');
            }
        }
        out
    }
}

/// A table: id, headers, string rows.
#[derive(Debug, Clone, PartialEq)]
pub struct TableReport {
    /// Paper artifact id, e.g. `"Table 1"`.
    pub id: String,
    /// Short caption.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl TableReport {
    /// Creates a table report with the given headers.
    pub fn new(id: impl Into<String>, caption: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            id: id.into(),
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("== {}: {} ==\n", self.id, self.caption);
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_interpolation_is_step_wise() {
        let s = CdfSeries::from_u64("t", [(1, 0.25), (3, 0.75), (10, 1.0)]);
        assert_eq!(s.y_at(0.0), 0.0);
        assert_eq!(s.y_at(1.0), 0.25);
        assert_eq!(s.y_at(2.9), 0.25);
        assert_eq!(s.y_at(3.0), 0.75);
        assert_eq!(s.y_at(99.0), 1.0);
    }

    #[test]
    fn figure_csv_unions_x_values() {
        let f = FigureReport::new("Figure X", "test")
            .with(CdfSeries::from_u64("a", [(1, 0.5), (2, 1.0)]))
            .with(CdfSeries::from_u64("b", [(2, 0.4), (4, 1.0)]));
        let csv = f.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines.len(), 1 + 3); // x = 1, 2, 4
        assert!(lines[1].starts_with("1,0.5"));
        assert!(f.series("a").is_some() && f.series("missing").is_none());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TableReport::new("Table 1", "top ASNs", &["ASN", "Ratio"]);
        t.push_row(vec!["AS55836".into(), "0.96".into()]);
        t.push_row(vec!["AS21928".into(), "0.95".into()]);
        let text = t.to_text();
        assert!(text.contains("AS55836"));
        assert!(text.lines().count() == 4);
        let csv = t.to_csv();
        assert!(csv.starts_with("ASN,Ratio\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = TableReport::new("T", "c", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn text_rendering_caps_rows() {
        let f = FigureReport::new("F", "big").with(CdfSeries::from_u64(
            "s",
            (0..100).map(|i| (i, i as f64 / 100.0)),
        ));
        let text = f.to_text(10);
        assert!(text.lines().count() <= 14, "{}", text.lines().count());
    }
}
