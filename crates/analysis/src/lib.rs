//! The study's analyses: every figure and table, as pure functions over
//! request datasets.
//!
//! Each module mirrors a section of the paper:
//!
//! - [`characterize`] — §4 data characterization: the daily IPv6 prevalence
//!   series (Figure 1), the top-ASN and top-country tables (Tables 1–2,
//!   Figure 12's choropleth data), and the client address patterns of §4.4
//!   (transition protocols, EUI-64 embeddings, IID reuse).
//! - [`user_centric`] — §5: addresses per user (Figures 2–3), IPv6 prefixes
//!   per user (Figure 4), and IP/prefix life spans (Figures 5–6).
//! - [`ip_centric`] — §6: users per address (Figures 7–8) and users per
//!   IPv6 prefix (Figures 9–10).
//! - [`outliers`] — the outlier analyses of §5.1.3, §5.3.3, §6.1.3 and
//!   §6.2.3: heavy users, heavy addresses, heavy prefixes, their ASN
//!   concentration, and the gateway-signature predictability result.
//! - [`similarity`] — the "most similar prefix length" machinery behind the
//!   paper's claims that IPv4 addresses behave like IPv6 /48s (Figure 9) or
//!   /56s (Figure 10) depending on the lens.
//! - [`index`] — the shared [`index::DatasetIndex`]: one windowed record
//!   slice re-ordered by user and by address with run boundaries, so the
//!   group-by analyses are slice walks instead of per-pass hash grouping.
//! - [`report`] — plottable series/table types shared by the bench harness
//!   and the `repro` binary.
//! - [`instrument`] — the timing wrapper that reports each pass's wall
//!   clock and input cardinality to the observability layer.
//!
//! Group-by analyses take a pre-windowed [`index::DatasetIndex`]; series
//! and ratio analyses take plain `&[RequestRecord]` slices (pre-windowed by
//! [`RequestStore`](ipv6_study_telemetry::RequestStore)). Either way they
//! know nothing about the simulator, so they would run unchanged over real
//! platform telemetry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod index;
pub mod instrument;
pub mod ip_centric;
pub mod outliers;
pub mod report;
pub mod similarity;
pub mod user_centric;
pub mod windows;

pub use index::{DatasetIndex, IndexMode};
pub use instrument::timed_figure;
pub use report::{CdfSeries, FigureReport, TableReport};
