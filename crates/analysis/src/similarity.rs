//! "Most similar prefix length" comparisons.
//!
//! Several of the paper's recommendations hinge on nearest-behavior claims:
//! IPv4 addresses look most like IPv6 **/48s** in overall user population
//! (Figure 9, feeding the rate-limiting advice of §7.2), like **/64s** in
//! user life span (Figure 6a), and like **/56s** in abusive-account
//! population (Figure 10, feeding the blocklist-translation advice). This
//! module makes those claims computable: given a reference distribution and
//! a family of per-length distributions, find the length minimizing the
//! Kolmogorov–Smirnov distance.

use ipv6_study_stats::Ecdf;

/// The per-length KS distances to a reference distribution, with the
/// arg-min.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityResult {
    /// `(prefix length, KS distance)` for every candidate.
    pub distances: Vec<(u8, f64)>,
    /// The most similar length.
    pub best_len: u8,
    /// Its distance.
    pub best_distance: f64,
}

/// Finds the candidate ECDF most similar to `reference`.
///
/// # Panics
/// Panics when `candidates` is empty.
pub fn most_similar(reference: &Ecdf, candidates: &[(u8, Ecdf)]) -> SimilarityResult {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let distances: Vec<(u8, f64)> = candidates
        .iter()
        .map(|(len, e)| (*len, reference.ks_distance(e)))
        .collect();
    let (best_len, best_distance) = distances
        .iter()
        .copied()
        .min_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("finite distances")
                .then(a.0.cmp(&b.0))
        })
        .expect("non-empty");
    SimilarityResult {
        distances,
        best_len,
        best_distance,
    }
}

/// Scalar similarity between two step series sampled on a shared grid
/// (used for Figure 6's curve-shape comparisons, where the objects are
/// per-length fraction rows rather than ECDFs): mean absolute difference.
pub fn series_distance(a: &[(u8, f64)], b: &[(u8, f64)]) -> f64 {
    let bmap: std::collections::HashMap<u8, f64> = b.iter().copied().collect();
    let mut n = 0u32;
    let mut acc = 0.0;
    for &(x, ya) in a {
        if let Some(&yb) = bmap.get(&x) {
            acc += (ya - yb).abs();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        acc / f64::from(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_closest_distribution() {
        let reference = Ecdf::from_values([1u64, 1, 2, 2, 3, 5, 8]);
        let near = Ecdf::from_values([1u64, 1, 2, 3, 3, 5, 9]);
        let far = Ecdf::from_values([50u64, 60, 70, 80, 90, 100, 110]);
        let r = most_similar(&reference, &[(48, near), (64, far)]);
        assert_eq!(r.best_len, 48);
        assert!(r.best_distance < 0.3);
        assert_eq!(r.distances.len(), 2);
        assert!(r.distances.iter().any(|&(l, d)| l == 64 && d > 0.9));
    }

    #[test]
    fn identical_distribution_wins_with_zero() {
        let reference = Ecdf::from_values([1u64, 2, 3]);
        let same = Ecdf::from_values([1u64, 2, 3]);
        let r = most_similar(&reference, &[(56, same)]);
        assert_eq!(r.best_len, 56);
        assert_eq!(r.best_distance, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panic() {
        most_similar(&Ecdf::from_values([1u64]), &[]);
    }

    #[test]
    fn series_distance_basics() {
        let a = vec![(64u8, 0.5), (56, 0.7)];
        let b = vec![(64u8, 0.6), (56, 0.7), (48, 0.9)];
        assert!((series_distance(&a, &b) - 0.05).abs() < 1e-12);
        assert_eq!(series_distance(&a, &[]), 1.0);
    }
}
