//! A per-window dataset index: the same columns re-ordered for group-by.
//!
//! Every analysis in §4–§6 is a group-by over one windowed slice — per
//! user, per address, or per prefix. The index gathers a window's columns
//! into two key-sorted copies once per window, and the index is immutable
//! so the parallel analysis engine can share it across worker threads.
//!
//! # Layout
//!
//! The index holds the window's **columns** twice, re-ordered:
//!
//! - `by_user`: stable-sorted by dense user id, so each user's rows form
//!   one contiguous run, *in the original timestamp order within the run*;
//! - `by_ip`: stable-sorted by [`IpId`]. The id packing (family bit, then
//!   per-family ascending address index) makes the `u32` sort identical to
//!   sorting by full [`IpAddr`]: distinct addresses never share a run, and
//!   all v6 addresses under a common prefix are adjacent, so per-prefix
//!   analyses at any length are walks over consecutive runs — at the
//!   precomputed lengths (/64, /56, /48) they are walks over a precomputed
//!   prefix-id column.
//!
//! Run boundaries are precomputed (`*_starts`), and the distinct-user /
//! distinct-address tables fall out of the run keys for free. Groups are
//! served as [`ColumnSlice`] windows: column access for the hot passes, a
//! lazy [`records()`](ColumnSlice::records) cursor for the rest.
//!
//! # Determinism
//!
//! [`DatasetIndex::build`] (sort-based) and [`DatasetIndex::build_naive`]
//! (hash-group-then-sort-keys, the pre-index shape) produce byte-identical
//! indexes: both order groups by ascending key, and both preserve the
//! input (timestamp) order within a group. Because dense ids are assigned
//! in ascending raw-key order (see
//! [`ipv6_study_telemetry::EntityTables`]), ascending-dense
//! group order is exactly the ascending `UserId` / `IpAddr` order the
//! row-oriented index produced. The equivalence is pinned by a unit test
//! here and end-to-end by `tests/analysis_equivalence.rs`.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

use ipv6_study_telemetry::columns::{ColumnSlice, ColumnStore};
use ipv6_study_telemetry::intern::{EntityTables, IpId};
use ipv6_study_telemetry::kernels::radix_sort_perm_u32;
use ipv6_study_telemetry::{OwnedColumns, RequestRecord, UserId};

/// How a [`DatasetIndex`] groups records — functionally identical paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexMode {
    /// Stable sort by dense key (the fast production path).
    #[default]
    Sorted,
    /// Hash-map grouping, keys sorted afterwards (the pre-index shape;
    /// kept as the reference implementation for equivalence testing).
    Naive,
}

/// An immutable group-by index over one windowed column slice.
#[derive(Debug, Clone, Default)]
pub struct DatasetIndex {
    tables: Arc<EntityTables>,
    by_user: ColumnStore,
    users: Vec<UserId>,
    user_starts: Vec<usize>,
    by_ip: ColumnStore,
    ips: Vec<IpAddr>,
    ip_ids: Vec<IpId>,
    ip_starts: Vec<usize>,
}

/// Computes the permutation that stable-sorts a key column ascending —
/// kept as the comparison-sort reference the radix path is tested
/// against (see `sorted_radix_and_naive_perms_agree`).
#[cfg(test)]
fn sort_perm<K: Ord>(n: usize, key_at: impl Fn(usize) -> K) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_by_key(|&i| key_at(i as usize));
    perm
}

/// The reference permutation: hash-map buckets (append order = input
/// order), groups concatenated in ascending key order.
fn naive_perm<K: Ord + Eq + std::hash::Hash + Copy>(
    n: usize,
    key_at: impl Fn(usize) -> K,
) -> Vec<u32> {
    let mut groups: HashMap<K, Vec<u32>> = HashMap::new();
    for i in 0..n as u32 {
        groups.entry(key_at(i as usize)).or_default().push(i);
    }
    let mut keys: Vec<K> = groups.keys().copied().collect();
    keys.sort_unstable();
    let mut perm = Vec::with_capacity(n);
    for k in &keys {
        perm.extend_from_slice(&groups[k]);
    }
    perm
}

/// Gathers a window's columns through a permutation.
fn gather(cols: ColumnSlice<'_>, perm: &[u32]) -> ColumnStore {
    let at = |i: &u32| *i as usize;
    ColumnStore {
        ts: perm.iter().map(|i| cols.ts()[at(i)]).collect(),
        ip: perm.iter().map(|i| cols.ip_ids()[at(i)]).collect(),
        user: perm.iter().map(|i| cols.users_dense()[at(i)]).collect(),
        asn: perm.iter().map(|i| cols.asns()[at(i)]).collect(),
        country: perm.iter().map(|i| cols.countries()[at(i)]).collect(),
    }
}

/// Copies one gathered row across stores (all five columns).
fn push_row(out: &mut ColumnStore, src: &ColumnStore, i: usize) {
    out.ts.push(src.ts[i]);
    out.ip.push(src.ip[i]);
    out.user.push(src.user[i]);
    out.asn.push(src.asn[i]);
    out.country.push(src.country[i]);
}

/// Merges two key-sorted gathered column sets into one. On key ties the
/// whole of `a`'s run is taken before `b`'s — correct exactly when every
/// `b` row follows every `a` row in window order, which is the
/// append-a-newer-day contract of [`DatasetIndex::append_sorted_suffix`].
fn merge_sorted_by<K: Ord + Copy>(
    a: &ColumnStore,
    b: &ColumnStore,
    key: impl Fn(&ColumnStore, usize) -> K,
) -> ColumnStore {
    let mut out = ColumnStore::default();
    out.ts.reserve_exact(a.len() + b.len());
    out.ip.reserve_exact(a.len() + b.len());
    out.user.reserve_exact(a.len() + b.len());
    out.asn.reserve_exact(a.len() + b.len());
    out.country.reserve_exact(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if key(a, i) <= key(b, j) {
            push_row(&mut out, a, i);
            i += 1;
        } else {
            push_row(&mut out, b, j);
            j += 1;
        }
    }
    while i < a.len() {
        push_row(&mut out, a, i);
        i += 1;
    }
    while j < b.len() {
        push_row(&mut out, b, j);
        j += 1;
    }
    out
}

/// Finds run boundaries in a key-sorted column. Returns the run keys and
/// start offsets, with a trailing sentinel offset (`keys.len()`).
fn runs<K: PartialEq + Copy>(col: &[K]) -> (Vec<K>, Vec<usize>) {
    let mut keys = Vec::new();
    let mut starts = Vec::new();
    for (i, &k) in col.iter().enumerate() {
        if keys.last() != Some(&k) {
            keys.push(k);
            starts.push(i);
        }
    }
    starts.push(col.len());
    (keys, starts)
}

impl DatasetIndex {
    /// Builds the index with stable sorts (the production path).
    pub fn build(cols: ColumnSlice<'_>) -> Self {
        Self::with_mode(cols, IndexMode::Sorted)
    }

    /// Builds the index via hash-map grouping (the reference path).
    pub fn build_naive(cols: ColumnSlice<'_>) -> Self {
        Self::with_mode(cols, IndexMode::Naive)
    }

    /// Builds the index from a row slice by interning a local table set —
    /// the unit-test convenience path.
    pub fn from_records(records: &[RequestRecord]) -> Self {
        let owned = OwnedColumns::from_records(records);
        Self::build(owned.as_slice())
    }

    /// Builds the index using the given grouping mode.
    pub fn with_mode(cols: ColumnSlice<'_>, mode: IndexMode) -> Self {
        let n = cols.len();
        let user_col = cols.users_dense();
        let ip_col = cols.ip_ids();
        let (user_perm, ip_perm) = match mode {
            // Stable LSB radix over the packed u32 keys: identical
            // permutation to the old `perm.sort_by_key(|&i| col[i])`
            // (stability pinned by `sorted_radix_and_naive_perms_agree`),
            // at counting-sort cost.
            IndexMode::Sorted => (radix_sort_perm_u32(user_col), radix_sort_perm_u32(ip_col)),
            IndexMode::Naive => (naive_perm(n, |i| user_col[i]), naive_perm(n, |i| ip_col[i])),
        };
        let tables = cols.tables_arc();
        let by_user = gather(cols, &user_perm);
        let (user_keys, user_starts) = runs(&by_user.user);
        let users = user_keys.iter().map(|&d| tables.users.user(d)).collect();
        let by_ip = gather(cols, &ip_perm);
        let (ip_ids, ip_starts) = runs(&by_ip.ip);
        let ips = ip_ids.iter().map(|&id| tables.ips.addr(id)).collect();
        Self {
            tables,
            by_user,
            users,
            user_starts,
            by_ip,
            ips,
            ip_ids,
            ip_starts,
        }
    }

    /// Extends the index with a strictly-later slice of the same window —
    /// the incremental-engine path: when a simulated day is appended, the
    /// standing per-window index absorbs the one-day suffix by merging two
    /// key-sorted runs (`O(old + new)` copies) instead of re-sorting the
    /// whole grown window.
    ///
    /// Contract (asserted / relied upon):
    ///
    /// - `suffix` is encoded against the **same** intern tables as `self`
    ///   (same `Arc`) — after a timeline extension the caller re-encodes
    ///   stores against the union tables before slicing, so both operands
    ///   share one table set;
    /// - every suffix row follows every existing row in window
    ///   (timestamp) order, so on key ties the existing run is taken
    ///   whole before the suffix run — exactly the stable-sort order a
    ///   from-scratch [`DatasetIndex::build`] over the concatenated
    ///   window produces. The equivalence is pinned by
    ///   `append_sorted_suffix_equals_full_rebuild`.
    pub fn append_sorted_suffix(&self, suffix: ColumnSlice<'_>) -> Self {
        assert!(
            Arc::ptr_eq(&self.tables, &suffix.tables_arc()),
            "append_sorted_suffix: suffix must share the index's intern tables"
        );
        let sfx = Self::build(suffix);
        let by_user = merge_sorted_by(&self.by_user, &sfx.by_user, |c, i| c.user[i]);
        let (user_keys, user_starts) = runs(&by_user.user);
        let users = user_keys
            .iter()
            .map(|&d| self.tables.users.user(d))
            .collect();
        let by_ip = merge_sorted_by(&self.by_ip, &sfx.by_ip, |c, i| c.ip[i]);
        let (ip_ids, ip_starts) = runs(&by_ip.ip);
        let ips = ip_ids.iter().map(|&id| self.tables.ips.addr(id)).collect();
        Self {
            tables: Arc::clone(&self.tables),
            by_user,
            users,
            user_starts,
            by_ip,
            ips,
            ip_ids,
            ip_starts,
        }
    }

    /// Number of records in the window.
    pub fn len(&self) -> usize {
        self.by_user.len()
    }

    /// True when the window held no records.
    pub fn is_empty(&self) -> bool {
        self.by_user.is_empty()
    }

    /// The intern tables the window is encoded against.
    pub fn tables(&self) -> &EntityTables {
        &self.tables
    }

    /// The distinct users of the window, ascending (memoized).
    pub fn distinct_users(&self) -> &[UserId] {
        &self.users
    }

    /// The distinct source addresses of the window, ascending (memoized).
    pub fn distinct_ips(&self) -> &[IpAddr] {
        &self.ips
    }

    /// The distinct interned address ids of the window, ascending.
    pub fn distinct_ip_ids(&self) -> &[IpId] {
        &self.ip_ids
    }

    /// Iterates `(user, group)` in ascending user order; rows within a
    /// group keep the window's timestamp order.
    pub fn user_groups(&self) -> impl Iterator<Item = (UserId, ColumnSlice<'_>)> {
        self.users.iter().enumerate().map(|(i, &u)| {
            (
                u,
                self.by_user
                    .slice(self.user_starts[i]..self.user_starts[i + 1], &self.tables),
            )
        })
    }

    /// Iterates `(address, group)` in ascending [`IpAddr`] order; rows
    /// within a group keep the window's timestamp order.
    pub fn ip_groups(&self) -> impl Iterator<Item = (IpAddr, ColumnSlice<'_>)> {
        self.ips.iter().enumerate().map(|(i, &ip)| {
            (
                ip,
                self.by_ip
                    .slice(self.ip_starts[i]..self.ip_starts[i + 1], &self.tables),
            )
        })
    }

    /// Iterates `(address id, group)` in ascending [`IpId`] order — the
    /// column-native variant of [`DatasetIndex::ip_groups`] for passes
    /// that work over interned ids (prefix walks, radix tallies).
    pub fn ip_id_groups(&self) -> impl Iterator<Item = (IpId, ColumnSlice<'_>)> {
        self.ip_ids.iter().enumerate().map(|(i, &id)| {
            (
                id,
                self.by_ip
                    .slice(self.ip_starts[i]..self.ip_starts[i + 1], &self.tables),
            )
        })
    }

    /// Heap bytes held by the index's gathered columns and run tables
    /// (the `analysis.index_bytes` gauge; shared intern tables excluded).
    pub fn bytes(&self) -> usize {
        self.by_user.bytes()
            + self.by_ip.bytes()
            + self.users.len() * std::mem::size_of::<UserId>()
            + self.ips.len() * std::mem::size_of::<IpAddr>()
            + self.ip_ids.len() * std::mem::size_of::<IpId>()
            + (self.user_starts.len() + self.ip_starts.len()) * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_telemetry::{Asn, Country, SimDate};

    fn rec(user: u64, hour: u8, minute: u8, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: SimDate::ymd(4, 13).at(hour, minute, 0),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    fn window() -> Vec<RequestRecord> {
        // Interleaved users and addresses, in timestamp order.
        vec![
            rec(3, 1, 0, "2001:db8:1::a"),
            rec(1, 2, 0, "10.0.0.1"),
            rec(3, 3, 0, "10.0.0.1"),
            rec(2, 4, 0, "2001:db8:1::a"),
            rec(1, 5, 0, "2001:db8:2::b"),
            rec(3, 6, 0, "2001:db8:1::a"),
        ]
    }

    #[test]
    fn groups_are_key_ascending_with_input_order_inside() {
        let idx = DatasetIndex::from_records(&window());
        assert_eq!(idx.len(), 6);
        assert!(!idx.is_empty());
        assert_eq!(
            idx.distinct_users(),
            &[UserId(1), UserId(2), UserId(3)],
            "users ascend"
        );
        let groups: Vec<(UserId, usize)> = idx.user_groups().map(|(u, g)| (u, g.len())).collect();
        assert_eq!(groups, vec![(UserId(1), 2), (UserId(2), 1), (UserId(3), 3)]);
        // Within user 3's run, timestamps ascend (stable sort).
        let g3 = idx.user_groups().find(|(u, _)| *u == UserId(3)).unwrap().1;
        assert!(g3.ts().windows(2).all(|w| w[0] <= w[1]));
        // Groups rematerialize the original rows.
        let g3_users: Vec<UserId> = g3.records().map(|r| r.user).collect();
        assert_eq!(g3_users, vec![UserId(3); 3]);

        // IP groups: v4 sorts before v6 under IpAddr's order.
        let ips: Vec<IpAddr> = idx.ip_groups().map(|(ip, _)| ip).collect();
        assert_eq!(ips, idx.distinct_ips());
        assert_eq!(ips[0], "10.0.0.1".parse::<IpAddr>().unwrap());
        assert!(ips.windows(2).all(|w| w[0] < w[1]));
        // Id order matches address order.
        assert!(idx.distinct_ip_ids().windows(2).all(|w| w[0] < w[1]));
        let shared = idx
            .ip_groups()
            .find(|(ip, _)| *ip == "2001:db8:1::a".parse::<IpAddr>().unwrap())
            .unwrap();
        assert_eq!(shared.1.len(), 3);
        assert_eq!(idx.ip_id_groups().count(), idx.distinct_ips().len());
        assert!(idx.bytes() > 0);
    }

    #[test]
    fn naive_and_sorted_paths_are_identical() {
        let recs = window();
        let owned = OwnedColumns::from_records(&recs);
        let a = DatasetIndex::build(owned.as_slice());
        let b = DatasetIndex::build_naive(owned.as_slice());
        assert_eq!(a.by_user, b.by_user);
        assert_eq!(a.users, b.users);
        assert_eq!(a.user_starts, b.user_starts);
        assert_eq!(a.by_ip, b.by_ip);
        assert_eq!(a.ips, b.ips);
        assert_eq!(a.ip_starts, b.ip_starts);
    }

    /// Satellite: the three grouping paths — radix permutation (the
    /// production `Sorted` mode), the old comparison-sort permutation,
    /// and naive hash-grouping — must be byte-identical on seeded inputs
    /// with heavy key duplication (which is what makes this a stability
    /// check: within a duplicate run, all three must preserve input
    /// order), and on empty / single-row windows.
    #[test]
    fn sorted_radix_and_naive_perms_agree() {
        use ipv6_study_stats::testgen::TestGen;
        let mut g = TestGen::new(0x5241_4458); // "RADX"
        for n in [0usize, 1, 2, 63, 64, 65, 1000] {
            // Few distinct entities => long duplicate runs.
            let recs: Vec<RequestRecord> = g.vec_of(n, |g| {
                let v6 = g.below(2) == 1;
                let host = g.below(8);
                let ip = if v6 {
                    format!("2001:db8::{host:x}")
                } else {
                    format!("10.0.0.{host}")
                };
                rec(g.below(6), (g.below(24)) as u8, (g.below(60)) as u8, &ip)
            });
            let owned = OwnedColumns::from_records(&recs);
            let cols = owned.as_slice();

            // Permutation level: radix == stable comparison sort.
            let user_col = cols.users_dense();
            let ip_col = cols.ip_ids();
            assert_eq!(
                radix_sort_perm_u32(user_col),
                sort_perm(n, |i| user_col[i]),
                "user perm, n={n}"
            );
            assert_eq!(
                radix_sort_perm_u32(ip_col),
                sort_perm(n, |i| ip_col[i]),
                "ip perm, n={n}"
            );

            // Index level: Sorted (radix) == Naive (hash-group).
            let a = DatasetIndex::with_mode(cols, IndexMode::Sorted);
            let b = DatasetIndex::with_mode(cols, IndexMode::Naive);
            assert_eq!(a.by_user, b.by_user, "by_user columns, n={n}");
            assert_eq!(a.users, b.users);
            assert_eq!(a.user_starts, b.user_starts);
            assert_eq!(a.by_ip, b.by_ip, "by_ip columns, n={n}");
            assert_eq!(a.ips, b.ips);
            assert_eq!(a.ip_ids, b.ip_ids);
            assert_eq!(a.ip_starts, b.ip_starts);
        }
    }

    /// Asserts two indexes are identical field-for-field (tables aside).
    fn assert_same_index(a: &DatasetIndex, b: &DatasetIndex, ctx: &str) {
        assert_eq!(a.by_user, b.by_user, "by_user columns, {ctx}");
        assert_eq!(a.users, b.users, "users, {ctx}");
        assert_eq!(a.user_starts, b.user_starts, "user_starts, {ctx}");
        assert_eq!(a.by_ip, b.by_ip, "by_ip columns, {ctx}");
        assert_eq!(a.ips, b.ips, "ips, {ctx}");
        assert_eq!(a.ip_ids, b.ip_ids, "ip_ids, {ctx}");
        assert_eq!(a.ip_starts, b.ip_starts, "ip_starts, {ctx}");
    }

    /// Tentpole: appending a timestamp-later suffix to an existing index
    /// must be byte-identical to building the index from scratch over the
    /// concatenated window — at every split point of a hand-built window.
    #[test]
    fn append_sorted_suffix_equals_full_rebuild() {
        let recs = window();
        let owned = OwnedColumns::from_records(&recs);
        let cols = owned.as_slice();
        let full = DatasetIndex::build(cols);
        for split in 0..=recs.len() {
            let prefix = DatasetIndex::build(cols.slice(0..split));
            let merged = prefix.append_sorted_suffix(cols.slice(split..recs.len()));
            assert_same_index(&merged, &full, &format!("split={split}"));
        }
    }

    /// TestGen property: same equivalence over seeded windows with heavy
    /// key duplication (long duplicate runs make this a stability check —
    /// the merge must keep the existing run ahead of the suffix run on
    /// key ties), sorted by timestamp so every suffix row is later.
    #[test]
    fn append_sorted_suffix_property_matches_build() {
        use ipv6_study_stats::testgen::TestGen;
        let mut g = TestGen::new(0x4150_5058); // "APPX"
        for n in [1usize, 2, 64, 500] {
            let mut recs: Vec<RequestRecord> = g.vec_of(n, |g| {
                let host = g.below(6);
                let ip = if g.below(2) == 1 {
                    format!("2001:db8::{host:x}")
                } else {
                    format!("10.0.0.{host}")
                };
                rec(g.below(4), (g.below(24)) as u8, (g.below(60)) as u8, &ip)
            });
            recs.sort_by_key(|r| r.ts);
            let owned = OwnedColumns::from_records(&recs);
            let cols = owned.as_slice();
            let full = DatasetIndex::build(cols);
            for split in [0, 1, n / 3, n / 2, n - 1, n] {
                let prefix = DatasetIndex::build(cols.slice(0..split));
                let merged = prefix.append_sorted_suffix(cols.slice(split..n));
                assert_same_index(&merged, &full, &format!("n={n} split={split}"));
            }
        }
    }

    #[test]
    #[should_panic(expected = "intern tables")]
    fn append_sorted_suffix_rejects_foreign_tables() {
        let recs = window();
        let a = OwnedColumns::from_records(&recs);
        let b = OwnedColumns::from_records(&recs);
        let idx = DatasetIndex::build(a.as_slice());
        let _ = idx.append_sorted_suffix(b.as_slice());
    }

    #[test]
    fn empty_window_is_safe() {
        for mode in [IndexMode::Sorted, IndexMode::Naive] {
            let owned = OwnedColumns::from_records(&[]);
            let idx = DatasetIndex::with_mode(owned.as_slice(), mode);
            assert!(idx.is_empty());
            assert_eq!(idx.user_groups().count(), 0);
            assert_eq!(idx.ip_groups().count(), 0);
            assert!(idx.distinct_users().is_empty());
        }
    }
}
