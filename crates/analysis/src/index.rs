//! A per-window dataset index: the same records re-ordered for group-by.
//!
//! Every analysis in §4–§6 is a group-by over one windowed record slice —
//! per user, per address, or per prefix. Before this index existed each pass
//! rebuilt its own `HashMap<_, Vec<_>>` grouping over the same window;
//! building a [`DatasetIndex`] once per window turns all of those into plain
//! slice walks, and the index is immutable so the parallel analysis engine
//! can share it across worker threads.
//!
//! # Layout
//!
//! The index holds the window's records twice, re-ordered:
//!
//! - `by_user`: stable-sorted by user id, so each user's records form one
//!   contiguous run, *in the original timestamp order within the run*;
//! - `by_ip`: sorted by full source address ([`IpAddr`]'s total order:
//!   all v4 before all v6, numeric within each family), likewise contiguous
//!   per address with timestamp order preserved inside each run. Sorting by
//!   the full address — not the folded `ip_key` — means two properties hold:
//!   distinct addresses never share a run, and all v6 addresses under a
//!   common prefix are adjacent, so per-prefix analyses at any length are
//!   walks over consecutive runs.
//!
//! Run boundaries are precomputed (`*_starts`), and the distinct-user /
//! distinct-address tables fall out of the run keys for free.
//!
//! # Determinism
//!
//! [`DatasetIndex::build`] (sort-based) and [`DatasetIndex::build_naive`]
//! (hash-group-then-sort-keys, the shape the passes used before) produce
//! byte-identical indexes: both order groups by ascending key, and both
//! preserve the input (timestamp) order within a group — the stable sort by
//! construction, the naive path because records are appended to group
//! vectors in input order. The equivalence is pinned by a unit test here and
//! end-to-end by `tests/analysis_equivalence.rs`.

use std::collections::HashMap;
use std::net::IpAddr;

use ipv6_study_telemetry::{RequestRecord, UserId};

/// How a [`DatasetIndex`] groups records — functionally identical paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexMode {
    /// Stable sort by key (the fast production path).
    #[default]
    Sorted,
    /// Hash-map grouping, keys sorted afterwards (the pre-index shape;
    /// kept as the reference implementation for equivalence testing).
    Naive,
}

/// An immutable group-by index over one windowed record slice.
#[derive(Debug, Clone, Default)]
pub struct DatasetIndex {
    by_user: Vec<RequestRecord>,
    users: Vec<UserId>,
    user_starts: Vec<usize>,
    by_ip: Vec<RequestRecord>,
    ips: Vec<IpAddr>,
    ip_starts: Vec<usize>,
}

impl DatasetIndex {
    /// Builds the index with stable sorts (the production path).
    pub fn build(records: &[RequestRecord]) -> Self {
        Self::with_mode(records, IndexMode::Sorted)
    }

    /// Builds the index via hash-map grouping (the reference path).
    pub fn build_naive(records: &[RequestRecord]) -> Self {
        Self::with_mode(records, IndexMode::Naive)
    }

    /// Builds the index using the given grouping mode.
    pub fn with_mode(records: &[RequestRecord], mode: IndexMode) -> Self {
        match mode {
            IndexMode::Sorted => {
                let mut by_user = records.to_vec();
                by_user.sort_by_key(|r| r.user);
                let (users, user_starts) = runs(&by_user, |r| r.user);
                let mut by_ip = records.to_vec();
                by_ip.sort_by_key(|r| r.ip);
                let (ips, ip_starts) = runs(&by_ip, |r| r.ip);
                Self {
                    by_user,
                    users,
                    user_starts,
                    by_ip,
                    ips,
                    ip_starts,
                }
            }
            IndexMode::Naive => {
                let (by_user, users, user_starts) = naive(records, |r| r.user);
                let (by_ip, ips, ip_starts) = naive(records, |r| r.ip);
                Self {
                    by_user,
                    users,
                    user_starts,
                    by_ip,
                    ips,
                    ip_starts,
                }
            }
        }
    }

    /// Number of records in the window.
    pub fn len(&self) -> usize {
        self.by_user.len()
    }

    /// True when the window held no records.
    pub fn is_empty(&self) -> bool {
        self.by_user.is_empty()
    }

    /// The distinct users of the window, ascending (memoized).
    pub fn distinct_users(&self) -> &[UserId] {
        &self.users
    }

    /// The distinct source addresses of the window, ascending (memoized).
    pub fn distinct_ips(&self) -> &[IpAddr] {
        &self.ips
    }

    /// Iterates `(user, records)` groups in ascending user order; records
    /// within a group keep the window's timestamp order.
    pub fn user_groups(&self) -> impl Iterator<Item = (UserId, &[RequestRecord])> {
        self.users.iter().enumerate().map(|(i, &u)| {
            (
                u,
                &self.by_user[self.user_starts[i]..self.user_starts[i + 1]],
            )
        })
    }

    /// Iterates `(address, records)` groups in ascending [`IpAddr`] order;
    /// records within a group keep the window's timestamp order.
    pub fn ip_groups(&self) -> impl Iterator<Item = (IpAddr, &[RequestRecord])> {
        self.ips
            .iter()
            .enumerate()
            .map(|(i, &ip)| (ip, &self.by_ip[self.ip_starts[i]..self.ip_starts[i + 1]]))
    }
}

/// Finds run boundaries in a key-sorted record slice. Returns the run keys
/// and start offsets, with a trailing sentinel offset (`records.len()`).
fn runs<K: PartialEq + Copy>(
    records: &[RequestRecord],
    key_of: impl Fn(&RequestRecord) -> K,
) -> (Vec<K>, Vec<usize>) {
    let mut keys = Vec::new();
    let mut starts = Vec::new();
    for (i, r) in records.iter().enumerate() {
        let k = key_of(r);
        if keys.last() != Some(&k) {
            keys.push(k);
            starts.push(i);
        }
    }
    starts.push(records.len());
    (keys, starts)
}

/// The reference grouping: hash-map buckets (append order = input order),
/// then groups concatenated in ascending key order.
fn naive<K: Eq + std::hash::Hash + Ord + Copy>(
    records: &[RequestRecord],
    key_of: impl Fn(&RequestRecord) -> K,
) -> (Vec<RequestRecord>, Vec<K>, Vec<usize>) {
    let mut groups: HashMap<K, Vec<RequestRecord>> = HashMap::new();
    for r in records {
        groups.entry(key_of(r)).or_default().push(*r);
    }
    let mut keys: Vec<K> = groups.keys().copied().collect();
    keys.sort_unstable();
    let mut flat = Vec::with_capacity(records.len());
    let mut starts = Vec::with_capacity(keys.len() + 1);
    for k in &keys {
        starts.push(flat.len());
        flat.extend_from_slice(&groups[k]);
    }
    starts.push(flat.len());
    (flat, keys, starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_telemetry::{Asn, Country, SimDate};

    fn rec(user: u64, hour: u8, minute: u8, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: SimDate::ymd(4, 13).at(hour, minute, 0),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    fn window() -> Vec<RequestRecord> {
        // Interleaved users and addresses, in timestamp order.
        vec![
            rec(3, 1, 0, "2001:db8:1::a"),
            rec(1, 2, 0, "10.0.0.1"),
            rec(3, 3, 0, "10.0.0.1"),
            rec(2, 4, 0, "2001:db8:1::a"),
            rec(1, 5, 0, "2001:db8:2::b"),
            rec(3, 6, 0, "2001:db8:1::a"),
        ]
    }

    #[test]
    fn groups_are_key_ascending_with_input_order_inside() {
        let idx = DatasetIndex::build(&window());
        assert_eq!(idx.len(), 6);
        assert!(!idx.is_empty());
        assert_eq!(
            idx.distinct_users(),
            &[UserId(1), UserId(2), UserId(3)],
            "users ascend"
        );
        let groups: Vec<(UserId, usize)> = idx.user_groups().map(|(u, g)| (u, g.len())).collect();
        assert_eq!(groups, vec![(UserId(1), 2), (UserId(2), 1), (UserId(3), 3)]);
        // Within user 3's run, timestamps ascend (stable sort).
        let g3 = idx.user_groups().find(|(u, _)| *u == UserId(3)).unwrap().1;
        assert!(g3.windows(2).all(|w| w[0].ts <= w[1].ts));

        // IP groups: v4 sorts before v6 under IpAddr's order.
        let ips: Vec<IpAddr> = idx.ip_groups().map(|(ip, _)| ip).collect();
        assert_eq!(ips, idx.distinct_ips());
        assert_eq!(ips[0], "10.0.0.1".parse::<IpAddr>().unwrap());
        assert!(ips.windows(2).all(|w| w[0] < w[1]));
        let shared = idx
            .ip_groups()
            .find(|(ip, _)| *ip == "2001:db8:1::a".parse::<IpAddr>().unwrap())
            .unwrap();
        assert_eq!(shared.1.len(), 3);
    }

    #[test]
    fn naive_and_sorted_paths_are_identical() {
        let recs = window();
        let a = DatasetIndex::build(&recs);
        let b = DatasetIndex::build_naive(&recs);
        assert_eq!(a.by_user, b.by_user);
        assert_eq!(a.users, b.users);
        assert_eq!(a.user_starts, b.user_starts);
        assert_eq!(a.by_ip, b.by_ip);
        assert_eq!(a.ips, b.ips);
        assert_eq!(a.ip_starts, b.ip_starts);
    }

    #[test]
    fn empty_window_is_safe() {
        for mode in [IndexMode::Sorted, IndexMode::Naive] {
            let idx = DatasetIndex::with_mode(&[], mode);
            assert!(idx.is_empty());
            assert_eq!(idx.user_groups().count(), 0);
            assert_eq!(idx.ip_groups().count(), 0);
            assert!(idx.distinct_users().is_empty());
        }
    }
}
