//! The single source of truth for which analysis passes read which days.
//!
//! Window construction used to be duplicated — `AnalysisCtx` built the
//! focus day/week/lookback windows from calendar constants while the
//! driver and the Figure-11/§7.2/EC1 passes re-derived the "last four
//! days" pair window by hand. The incremental engine
//! (`ipv6_study_core::incremental`) needs one authoritative answer to
//! "which passes must rerun when the timeline grows by a day", so every
//! window recipe lives here, split into two kinds:
//!
//! - **anchored** windows are fixed calendar spans inside the base study
//!   range (the Apr 13–19 focus week, the 28-day lookback behind Apr 19,
//!   the Jan/Feb comparison weeks). Appending days after the base range
//!   never changes their contents, so passes that read only anchored
//!   windows are *not* invalidated by an extension.
//! - **end-relative** windows slide with the last simulated day (the
//!   four-day pair window behind Figure 11, the day-*n*/day-*n+1* pairs
//!   behind §7.2-ML and EC1, Figure 1's whole-timeline prevalence span).
//!   Passes reading them must rerun after every extension.
//!
//! All builders use [`SimDate::checked_days_since`]-style checked
//! arithmetic: a window that would underflow the 2020 calendar is a
//! configuration bug and panics with a description instead of silently
//! clamping to Jan 1 (see `SimDate::days_since`'s saturation trap).

use ipv6_study_telemetry::time::{
    focus_day_ip, focus_day_user, focus_week, prepandemic_week, DateRange, SimDate,
};

/// Days reaching *back* from a focus day in the §5.3 lifespan lookback
/// (the window is `LOOKBACK_DAYS + 1` = 28 days long, inclusive).
pub const LOOKBACK_DAYS: u16 = 27;

/// Days reaching back from the last simulated day in the full-population
/// pair window (the window is `PAIR_BACK_DAYS + 1` = 4 days long — three
/// consecutive day pairs for the Figure 11 ROC).
pub const PAIR_BACK_DAYS: u16 = 3;

/// A window ending at `end` and reaching `back` days behind it
/// (`back + 1` days long). Panics when the window would underflow the
/// 2020 calendar rather than silently clamping.
pub fn window_ending(end: SimDate, back: u16) -> DateRange {
    let start = end
        .checked_sub_days(back)
        .unwrap_or_else(|| panic!("window of {back} days behind {end} underflows the calendar"));
    DateRange::new(start, end)
}

/// The 28-day address/prefix-lifespan lookback behind `focus` (§5.3).
pub fn lookback_window(focus: SimDate) -> DateRange {
    window_ending(focus, LOOKBACK_DAYS)
}

/// The full-population pair window: the last four simulated days, whose
/// day pairs feed the Figure 11 actioning ROC. The driver routes every
/// record of these days into the pair store.
pub fn pair_window(sim_end: SimDate) -> DateRange {
    window_ending(sim_end, PAIR_BACK_DAYS)
}

/// The day-*n* / day-*n+1* pair scored by the §7.2 ML-transfer and EC1
/// entropy-blocklist passes: the last two simulated days.
pub fn ml_pair_days(sim_end: SimDate) -> (SimDate, SimDate) {
    (window_ending(sim_end, 1).start, sim_end)
}

/// The Jan 23–29 comparison week used by Table 2 (country ratios over
/// time).
pub fn comparison_week_jan() -> DateRange {
    DateRange::new(SimDate::ymd(1, 23), SimDate::ymd(1, 29))
}

/// The Apr 13 blocklist listing day of §7.2, plus its six evaluation
/// days: the rest of the focus week.
pub fn blocklist_window() -> DateRange {
    DateRange::new(focus_day_ip(), focus_day_ip() + 6)
}

/// The pre-pandemic lookback behind Feb 18 used by Appendix A.5's
/// lifespan comparison (27 days, matching the appendix's shorter span).
pub fn apx_lookback(focus: SimDate) -> DateRange {
    window_ending(focus, 26)
}

/// Everything one experiment pass reads, derived from the effective
/// simulated range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassReads {
    /// The day ranges the pass reads (anchored and end-relative alike),
    /// evaluated at a concrete `sim_range`.
    pub ranges: Vec<DateRange>,
    /// Whether any of those ranges is derived from the *end* of the
    /// simulated range (and therefore slides when the timeline grows).
    pub end_relative: bool,
}

impl PassReads {
    /// Whether the pass reads any day inside `days`.
    pub fn covers_any(&self, days: DateRange) -> bool {
        self.ranges
            .iter()
            .any(|r| r.start <= days.end && days.start <= r.end)
    }
}

/// The registry: what experiment `pass` reads when the simulation covers
/// `sim_range`. Returns `None` for an unregistered pass id — callers
/// must treat that conservatively (assume it reads everything).
///
/// Pass ids are the registry ids of
/// `ipv6_study_core::experiments::EXPERIMENTS` (plus the extended
/// registry); a core-side test pins that every registered pass is known
/// here, so the two lists cannot drift apart silently.
pub fn pass_reads(pass: &str, sim_range: DateRange) -> Option<PassReads> {
    let focus = focus_day_user();
    let single = DateRange::single;
    let (end_relative, ranges) = match pass {
        // Whole-timeline prevalence: every simulated day.
        "F1" => (true, vec![sim_range]),
        // Focus-week-only passes.
        "T1" | "C4.4" | "O5.1" | "F4" | "O6.1" | "F9" | "F10" => (false, vec![focus_week()]),
        "T2/F12" => (false, vec![comparison_week_jan(), focus_week()]),
        "F2" => (false, vec![single(focus), focus_week()]),
        "F3" => (false, vec![single(focus)]),
        "F5" | "F6" => (false, vec![lookback_window(focus)]),
        "F7" | "F8" => (false, vec![single(focus_day_ip()), focus_week()]),
        "O6.2" => (false, vec![focus_week()]),
        // The actioning ROC reads the sliding pair window.
        "F11" => (true, vec![pair_window(sim_range.end)]),
        // §7.2: anchored blocklist/rate-limit windows plus the sliding
        // ML day pair.
        "S7.2" => {
            let (d0, d1) = ml_pair_days(sim_range.end);
            (
                true,
                vec![blocklist_window(), focus_week(), DateRange::new(d0, d1)],
            )
        }
        "X8.1" => (
            false,
            vec![
                single(focus_day_ip()),
                single(focus),
                lookback_window(focus),
            ],
        ),
        "ApxA" => (
            false,
            vec![
                prepandemic_week(),
                focus_week(),
                apx_lookback(SimDate::ymd(2, 18)),
                apx_lookback(focus),
            ],
        ),
        // Extended registry: EC1 scores the sliding ML day pair.
        "EC1" => {
            let (d0, d1) = ml_pair_days(sim_range.end);
            (true, vec![DateRange::new(d0, d1)])
        }
        _ => return None,
    };
    Some(PassReads {
        ranges,
        end_relative,
    })
}

/// Whether `pass` must rerun after the simulated range grows from `old`
/// to `new` (same start, later end). True when the pass's read set
/// changed between the two ranges, when it covers any newly appended
/// day, or when the pass is unknown to the registry (conservative
/// default).
pub fn invalidated_by_extension(pass: &str, old: DateRange, new: DateRange) -> bool {
    debug_assert_eq!(old.start, new.start, "extension keeps the range start");
    debug_assert!(old.end <= new.end, "extension only appends days");
    let (Some(before), Some(after)) = (pass_reads(pass, old), pass_reads(pass, new)) else {
        return true;
    };
    if before != after {
        return true;
    }
    if old.end == new.end {
        return false;
    }
    after.covers_any(DateRange::new(old.end + 1, new.end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DateRange {
        DateRange::new(SimDate::ymd(4, 6), SimDate::ymd(4, 19))
    }

    #[test]
    fn window_shapes() {
        assert_eq!(lookback_window(focus_day_user()).num_days(), 28);
        assert_eq!(pair_window(focus_day_user()).num_days(), 4);
        assert_eq!(
            pair_window(SimDate::ymd(4, 19)).start,
            SimDate::ymd(4, 16),
            "pair window is the driver's routing window"
        );
        let (d0, d1) = ml_pair_days(SimDate::ymd(4, 20));
        assert_eq!(d0, SimDate::ymd(4, 19));
        assert_eq!(d1, SimDate::ymd(4, 20));
        assert_eq!(blocklist_window().num_days(), 7);
        assert_eq!(apx_lookback(SimDate::ymd(2, 18)).num_days(), 27);
    }

    #[test]
    #[should_panic(expected = "underflows the calendar")]
    fn underflowing_window_panics_instead_of_clamping() {
        let _ = window_ending(SimDate::ymd(1, 3), 10);
    }

    #[test]
    fn anchored_passes_survive_extension() {
        let old = base();
        let new = DateRange::new(old.start, old.end + 3);
        for pass in [
            "T1", "T2/F12", "C4.4", "F2", "F3", "O5.1", "F4", "F5", "F6", "F7", "F8", "O6.1", "F9",
            "F10", "O6.2", "X8.1", "ApxA",
        ] {
            assert!(
                !invalidated_by_extension(pass, old, new),
                "anchored pass {pass} must not rerun on extension"
            );
        }
    }

    #[test]
    fn end_relative_passes_rerun_on_extension() {
        let old = base();
        let new = DateRange::new(old.start, old.end + 1);
        for pass in ["F1", "F11", "S7.2", "EC1"] {
            assert!(
                pass_reads(pass, old).unwrap().end_relative,
                "{pass} is end-relative"
            );
            assert!(
                invalidated_by_extension(pass, old, new),
                "end-relative pass {pass} must rerun on extension"
            );
        }
    }

    #[test]
    fn zero_extension_invalidates_nothing() {
        let r = base();
        for pass in ["F1", "T1", "F11", "S7.2", "EC1", "ApxA"] {
            assert!(!invalidated_by_extension(pass, r, r), "{pass}");
        }
    }

    #[test]
    fn unknown_pass_is_conservatively_invalidated() {
        assert!(pass_reads("NOPE", base()).is_none());
        assert!(invalidated_by_extension(
            "NOPE",
            base(),
            DateRange::new(base().start, base().end + 1)
        ));
    }

    #[test]
    fn pair_window_covers_only_its_days() {
        let reads = pass_reads("F11", base()).unwrap();
        assert!(reads.covers_any(DateRange::single(SimDate::ymd(4, 16))));
        assert!(!reads.covers_any(DateRange::single(SimDate::ymd(4, 15))));
    }
}
