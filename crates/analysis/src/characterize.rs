//! §4 — data characterization: prevalence over time, by ASN, by country,
//! and client address patterns.
//!
//! The per-user analyses ([`client_patterns`], [`requests_per_user`]) walk a
//! [`DatasetIndex`]; the series and ratio tables take windowed
//! [`ColumnSlice`]s directly — they bucket by day or by ASN/country, which
//! the per-user/per-address index does not accelerate, and their inner
//! loops read the timestamp/key/id columns without rematerializing rows.

use std::collections::{HashMap, HashSet};
use std::net::Ipv6Addr;

use ipv6_study_netaddr::iid::iid;
use ipv6_study_netaddr::{EntropyProfile, IidClass};
use ipv6_study_stats::counter::CountOfCounts;
use ipv6_study_telemetry::{Asn, ColumnSlice, Country, DateRange, SimDate, UserId};

use crate::index::DatasetIndex;

/// One day of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrevalencePoint {
    /// The day.
    pub day: SimDate,
    /// Share of users making ≥1 IPv6 request that day.
    pub user_share: f64,
    /// Share of requests over IPv6 that day.
    pub request_share: f64,
}

/// Computes Figure 1: daily IPv6 prevalence among users (from the user
/// random sample) and among requests (from the request random sample).
pub fn prevalence_series(
    user_sample: ColumnSlice<'_>,
    request_sample: ColumnSlice<'_>,
    range: DateRange,
) -> Vec<PrevalencePoint> {
    // Pre-bucket by day to avoid re-scanning per day; users dedup on their
    // dense ids (bijective with `UserId`, so the counts are unchanged).
    let mut users_by_day: HashMap<SimDate, HashMap<u32, bool>> = HashMap::new();
    for ((&ts, &user), &ip) in user_sample
        .ts()
        .iter()
        .zip(user_sample.users_dense())
        .zip(user_sample.ip_ids())
    {
        let d = ts.date();
        if range.contains(d) {
            let e = users_by_day
                .entry(d)
                .or_default()
                .entry(user)
                .or_insert(false);
            *e |= ip.is_v6();
        }
    }
    let mut reqs_by_day: HashMap<SimDate, (u64, u64)> = HashMap::new();
    for (&ts, &ip) in request_sample.ts().iter().zip(request_sample.ip_ids()) {
        let d = ts.date();
        if range.contains(d) {
            let e = reqs_by_day.entry(d).or_default();
            e.0 += 1;
            if ip.is_v6() {
                e.1 += 1;
            }
        }
    }
    range
        .days()
        .map(|day| {
            let (u_total, u_v6) = users_by_day
                .get(&day)
                .map(|m| (m.len() as u64, m.values().filter(|&&v| v).count() as u64))
                .unwrap_or((0, 0));
            let (r_total, r_v6) = reqs_by_day.get(&day).copied().unwrap_or((0, 0));
            PrevalencePoint {
                day,
                user_share: if u_total == 0 {
                    0.0
                } else {
                    u_v6 as f64 / u_total as f64
                },
                request_share: if r_total == 0 {
                    0.0
                } else {
                    r_v6 as f64 / r_total as f64
                },
            }
        })
        .collect()
}

/// One row of Table 1 / Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioRow<K> {
    /// The key (ASN or country).
    pub key: K,
    /// Users observed on the key.
    pub users: u64,
    /// Share of those users seen on IPv6.
    pub ratio: f64,
}

fn ratio_rows<K: Eq + std::hash::Hash + Ord + Copy>(
    records: ColumnSlice<'_>,
    keys: &[K],
    min_users: u64,
) -> Vec<RatioRow<K>> {
    let mut total: HashMap<K, HashSet<u32>> = HashMap::new();
    let mut v6: HashMap<K, HashSet<u32>> = HashMap::new();
    for ((&k, &user), &ip) in keys.iter().zip(records.users_dense()).zip(records.ip_ids()) {
        total.entry(k).or_default().insert(user);
        if ip.is_v6() {
            v6.entry(k).or_default().insert(user);
        }
    }
    let mut rows: Vec<RatioRow<K>> = total
        .into_iter()
        .filter(|(_, users)| users.len() as u64 >= min_users)
        .map(|(k, users)| {
            let v6_users = v6.get(&k).map_or(0, |s| s.len() as u64);
            RatioRow {
                key: k,
                users: users.len() as u64,
                ratio: v6_users as f64 / users.len() as f64,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.ratio
            .partial_cmp(&a.ratio)
            .expect("finite ratios")
            .then(a.key.cmp(&b.key))
    });
    rows
}

/// Table 1: ASNs ranked by the share of their users on IPv6, considering
/// ASNs with at least `min_users` observed users.
pub fn asn_ratio_table(records: ColumnSlice<'_>, min_users: u64) -> Vec<RatioRow<Asn>> {
    ratio_rows(records, records.asns(), min_users)
}

/// Share of considered ASNs with zero IPv6 users and with <10% IPv6 users
/// (§4.2 reports 10.7% and 28.3%).
pub fn asn_low_v6_shares(rows: &[RatioRow<Asn>]) -> (f64, f64) {
    if rows.is_empty() {
        return (0.0, 0.0);
    }
    let zero = rows.iter().filter(|r| r.ratio == 0.0).count() as f64;
    let low = rows.iter().filter(|r| r.ratio < 0.10).count() as f64;
    (zero / rows.len() as f64, low / rows.len() as f64)
}

/// Table 2 / Figure 12: countries ranked by IPv6 user share.
pub fn country_ratio_table(records: ColumnSlice<'_>, min_users: u64) -> Vec<RatioRow<Country>> {
    ratio_rows(records, records.countries(), min_users)
}

/// §4.4 — client IPv6 address patterns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientPatterns {
    /// IPv6 users observed.
    pub v6_users: u64,
    /// Share of IPv6 users seen on a transition protocol (6to4/Teredo).
    pub transition_share: f64,
    /// Share of IPv6 users with a MAC-embedded (EUI-64) address.
    pub mac_embedded_share: f64,
    /// Among MAC-embedded users with ≥2 IPv6 addresses: share reusing one
    /// IID across all of them (static MAC).
    pub iid_reuse_share: f64,
    /// Mean nybble entropy (bits, max 4) of the observed IIDs — near 4 for
    /// an RFC 4941-randomized population (Entropy/IP-style measurement).
    pub iid_entropy_bits: f64,
}

/// Computes §4.4's statistics from the user random sample.
pub fn client_patterns(index: &DatasetIndex) -> ClientPatterns {
    let mut v6_users = 0u64;
    let mut transition = 0u64;
    let mut mac_embedded = 0u64;
    let mut multi = 0u64;
    let mut reused = 0u64;
    // The IID words (low 64 bits) of every user's distinct v6 addresses,
    // feeding the Entropy/IP-style nybble measurement.
    let mut iid_words: Vec<u64> = Vec::new();

    let ips = &index.tables().ips;
    for (_, group) in index.user_groups() {
        let mut addrs: Vec<u128> = Vec::new();
        let mut iids: Vec<u64> = Vec::new();
        let mut is_transition = false;
        let mut is_mac = false;
        for &id in group.ip_ids() {
            if id.is_v6() {
                let bits = ips.v6_bits(id);
                addrs.push(bits);
                let a = Ipv6Addr::from(bits);
                match IidClass::classify(a) {
                    IidClass::Teredo | IidClass::SixToFour => is_transition = true,
                    IidClass::MacEmbedded(_) => {
                        is_mac = true;
                        iids.push(iid(a));
                    }
                    _ => {}
                }
            }
        }
        addrs.sort_unstable();
        addrs.dedup();
        if addrs.is_empty() {
            continue; // not a v6 user in this window
        }
        v6_users += 1;
        iid_words.extend(addrs.iter().map(|&raw| raw as u64));
        if is_transition {
            transition += 1;
        }
        if is_mac {
            mac_embedded += 1;
            if addrs.len() >= 2 {
                multi += 1;
                iids.sort_unstable();
                iids.dedup();
                // All of the user's MAC-embedded addresses share one IID.
                if iids.len() == 1 {
                    reused += 1;
                }
            }
        }
    }
    let entropy = EntropyProfile::compute(iid_words);
    let n = v6_users.max(1) as f64;
    ClientPatterns {
        v6_users,
        transition_share: transition as f64 / n,
        mac_embedded_share: mac_embedded as f64 / n,
        iid_reuse_share: if multi == 0 {
            0.0
        } else {
            reused as f64 / multi as f64
        },
        iid_entropy_bits: entropy.map_or(0.0, |e| e.mean_bits()),
    }
}

/// Requests per user over a window (diagnostic used when characterizing
/// dataset volume, §3.1).
pub fn requests_per_user(index: &DatasetIndex) -> CountOfCounts<UserId> {
    let mut c = CountOfCounts::new();
    for (user, group) in index.user_groups() {
        c.add(user, group.len() as u64);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_telemetry::{OwnedColumns, RequestRecord};

    fn cols(recs: &[RequestRecord]) -> OwnedColumns {
        OwnedColumns::from_records(recs)
    }

    fn rec(user: u64, day: SimDate, ip: &str, asn: u32, cc: &str) -> RequestRecord {
        RequestRecord {
            ts: day.at(9, 0, 0),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(asn),
            country: Country::new(cc),
        }
    }

    fn d(m: u8, dd: u8) -> SimDate {
        SimDate::ymd(m, dd)
    }

    #[test]
    fn prevalence_counts_users_and_requests() {
        let day = d(4, 13);
        let user_sample = vec![
            rec(1, day, "2001:db8::1", 1, "US"),
            rec(1, day, "10.0.0.1", 1, "US"), // user 1 is dual-stack
            rec(2, day, "10.0.0.2", 1, "US"),
        ];
        let request_sample = vec![
            rec(3, day, "2001:db8::9", 1, "US"),
            rec(4, day, "10.0.0.9", 1, "US"),
            rec(5, day, "10.0.0.8", 1, "US"),
            rec(6, day, "10.0.0.7", 1, "US"),
        ];
        let (users, reqs) = (cols(&user_sample), cols(&request_sample));
        let pts = prevalence_series(users.as_slice(), reqs.as_slice(), DateRange::single(day));
        assert_eq!(pts.len(), 1);
        assert!(
            (pts[0].user_share - 0.5).abs() < 1e-12,
            "1 of 2 users on v6"
        );
        assert!((pts[0].request_share - 0.25).abs() < 1e-12);
    }

    #[test]
    fn prevalence_handles_empty_days() {
        let empty = cols(&[]);
        let pts = prevalence_series(
            empty.as_slice(),
            empty.as_slice(),
            DateRange::new(d(4, 13), d(4, 14)),
        );
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].user_share, 0.0);
    }

    #[test]
    fn asn_table_ranks_by_ratio() {
        let day = d(4, 13);
        let mut recs = Vec::new();
        // ASN 100: 3 users, all on v6. ASN 200: 3 users, one on v6.
        for u in 0..3 {
            recs.push(rec(u, day, "2001:db8::1", 100, "US"));
            recs.push(rec(10 + u, day, "10.0.0.1", 200, "US"));
        }
        recs.push(rec(10, day, "2001:db8::5", 200, "US"));
        let c = cols(&recs);
        let rows = asn_ratio_table(c.as_slice(), 3);
        assert_eq!(rows[0].key, Asn(100));
        assert!((rows[0].ratio - 1.0).abs() < 1e-12);
        assert_eq!(rows[1].key, Asn(200));
        assert!((rows[1].ratio - 1.0 / 3.0).abs() < 1e-12);
        // min_users filters.
        let rows_strict = asn_ratio_table(c.as_slice(), 4);
        assert!(rows_strict.is_empty());
        let (zero, low) = asn_low_v6_shares(&rows);
        assert_eq!(zero, 0.0);
        assert_eq!(low, 0.0);
    }

    #[test]
    fn country_table_counts_users_once() {
        let day = d(4, 13);
        let recs = vec![
            rec(1, day, "2001:db8::1", 1, "IN"),
            rec(1, day, "2001:db8::2", 1, "IN"), // same user twice
            rec(2, day, "10.0.0.1", 1, "IN"),
            rec(3, day, "10.0.0.2", 1, "US"),
        ];
        let c = cols(&recs);
        let rows = country_ratio_table(c.as_slice(), 1);
        let in_row = rows.iter().find(|r| r.key == Country::new("IN")).unwrap();
        assert_eq!(in_row.users, 2);
        assert!((in_row.ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn client_patterns_detects_classes() {
        let day = d(4, 13);
        let recs = vec![
            // EUI-64 user with the same IID on two addresses.
            rec(1, day, "2001:db8:1::211:22ff:fe33:4455", 1, "US"),
            rec(1, day, "2001:db8:2::211:22ff:fe33:4455", 1, "US"),
            // Teredo user.
            rec(2, day, "2001:0:1:2:3:4:5:6", 1, "US"),
            // Plain privacy-IID users.
            rec(3, day, "2001:db8::a1b2:c3d4:e5f6:1789", 1, "US"),
            rec(4, day, "2001:db8::ffff:c3d4:e5f6:2789", 1, "US"),
        ];
        let p = client_patterns(&DatasetIndex::from_records(&recs));
        assert_eq!(p.v6_users, 4);
        assert!((p.transition_share - 0.25).abs() < 1e-12);
        assert!((p.mac_embedded_share - 0.25).abs() < 1e-12);
        assert!((p.iid_reuse_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iid_reuse_detects_randomized_macs() {
        let day = d(4, 13);
        // Different MAC-embedded IIDs across addresses: no reuse.
        let recs = vec![
            rec(1, day, "2001:db8:1::211:22ff:fe33:4455", 1, "US"),
            rec(1, day, "2001:db8:2::aa11:22ff:fe33:9999", 1, "US"),
        ];
        let p = client_patterns(&DatasetIndex::from_records(&recs));
        assert_eq!(p.iid_reuse_share, 0.0);
    }

    #[test]
    fn requests_per_user_tallies() {
        let day = d(4, 13);
        let recs = vec![
            rec(1, day, "10.0.0.1", 1, "US"),
            rec(1, day, "10.0.0.1", 1, "US"),
            rec(2, day, "10.0.0.2", 1, "US"),
        ];
        let c = requests_per_user(&DatasetIndex::from_records(&recs));
        assert_eq!(c.get(&UserId(1)), 2);
        assert_eq!(c.total(), 3);
    }
}
