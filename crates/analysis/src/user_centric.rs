//! §5 — user-centric behavior: the spatial and temporal properties of the
//! addresses a user holds.
//!
//! All functions take a pre-windowed record slice (typically the user
//! random sample over one day or one week) and an account filter so the
//! same code computes the benign-user figures (2, 4a, 5, 6a) and the
//! abusive-account figures (3, 4b, 6b).

use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

use ipv6_study_netaddr::{Ipv4Prefix, Ipv6Prefix};
use ipv6_study_stats::Ecdf;
use ipv6_study_telemetry::{RequestRecord, SimDate, UserId};

/// Distinct-address counts per user, per protocol (Figures 2 and 3).
#[derive(Debug, Clone)]
pub struct AddrsPerUser {
    /// Distribution over users observed with ≥1 IPv4 address.
    pub v4: Ecdf,
    /// Distribution over users observed with ≥1 IPv6 address.
    pub v6: Ecdf,
    /// Per-user v4 counts (for outlier drill-downs).
    pub v4_counts: HashMap<UserId, u64>,
    /// Per-user v6 counts.
    pub v6_counts: HashMap<UserId, u64>,
}

/// Computes addresses-per-user over `records`, considering only users
/// accepted by `filter`.
pub fn addrs_per_user(records: &[RequestRecord], filter: impl Fn(UserId) -> bool) -> AddrsPerUser {
    let mut v4: HashMap<UserId, HashSet<IpAddr>> = HashMap::new();
    let mut v6: HashMap<UserId, HashSet<IpAddr>> = HashMap::new();
    for r in records {
        if !filter(r.user) {
            continue;
        }
        let m = if r.is_v6() { &mut v6 } else { &mut v4 };
        m.entry(r.user).or_default().insert(r.ip);
    }
    let v4_counts: HashMap<UserId, u64> =
        v4.into_iter().map(|(u, s)| (u, s.len() as u64)).collect();
    let v6_counts: HashMap<UserId, u64> =
        v6.into_iter().map(|(u, s)| (u, s.len() as u64)).collect();
    AddrsPerUser {
        v4: Ecdf::from_values(v4_counts.values().copied()),
        v6: Ecdf::from_values(v6_counts.values().copied()),
        v4_counts,
        v6_counts,
    }
}

/// One row of Figure 4: at prefix length `len`, the share of users whose
/// IPv6 addresses span at most 1, 2, 3 distinct prefixes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefixSpanRow {
    /// Prefix length.
    pub len: u8,
    /// Share of users with all addresses in one prefix.
    pub le1: f64,
    /// Share with addresses in at most two prefixes.
    pub le2: f64,
    /// Share with addresses in at most three prefixes.
    pub le3: f64,
}

/// Computes Figure 4 (per-user IPv6 prefix span) for the given lengths.
/// The population is users with ≥1 IPv6 address passing `filter`.
pub fn prefixes_per_user(
    records: &[RequestRecord],
    lengths: &[u8],
    filter: impl Fn(UserId) -> bool,
) -> Vec<PrefixSpanRow> {
    // Gather each user's distinct v6 addresses once.
    let mut addrs: HashMap<UserId, HashSet<u128>> = HashMap::new();
    for r in records {
        if let Some(a) = r.ipv6() {
            if filter(r.user) {
                addrs.entry(r.user).or_default().insert(u128::from(a));
            }
        }
    }
    lengths
        .iter()
        .map(|&len| {
            let mut le = [0u64; 3];
            let mut total = 0u64;
            for set in addrs.values() {
                total += 1;
                let distinct: HashSet<u128> =
                    set.iter().map(|&raw| raw & Ipv6Prefix::mask(len)).collect();
                let n = distinct.len();
                if n <= 1 {
                    le[0] += 1;
                }
                if n <= 2 {
                    le[1] += 1;
                }
                if n <= 3 {
                    le[2] += 1;
                }
            }
            let frac = |c: u64| {
                if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                }
            };
            PrefixSpanRow {
                len,
                le1: frac(le[0]),
                le2: frac(le[1]),
                le3: frac(le[2]),
            }
        })
        .collect()
}

/// The per-user distinct-prefix counts at one length (outlier drill-down
/// for §5.2.3).
pub fn prefix_counts_per_user(
    records: &[RequestRecord],
    len: u8,
    filter: impl Fn(UserId) -> bool,
) -> HashMap<UserId, u64> {
    let mut prefixes: HashMap<UserId, HashSet<u128>> = HashMap::new();
    for r in records {
        if let Some(a) = r.ipv6() {
            if filter(r.user) {
                prefixes
                    .entry(r.user)
                    .or_default()
                    .insert(u128::from(a) & Ipv6Prefix::mask(len));
            }
        }
    }
    prefixes
        .into_iter()
        .map(|(u, s)| (u, s.len() as u64))
        .collect()
}

/// Life spans of (user, address) pairs present on a focus day (Figure 5).
#[derive(Debug, Clone)]
pub struct LifespanCdfs {
    /// Days since first observation, across all (user, v4 address) pairs.
    pub v4_pairs: Ecdf,
    /// Same for IPv6 pairs.
    pub v6_pairs: Ecdf,
    /// Median life span per user, v4.
    pub v4_user_median: Ecdf,
    /// Median life span per user, v6.
    pub v6_user_median: Ecdf,
}

/// Computes Figure 5. `history` must cover `[focus − lookback, focus]`;
/// pairs observed on `focus` get a life span equal to days since their
/// first appearance in the history (0 = first seen on the focus day).
pub fn address_lifespans(
    history: &[RequestRecord],
    focus: SimDate,
    filter: impl Fn(UserId) -> bool,
) -> LifespanCdfs {
    // First-seen date per (user, ip).
    let mut first: HashMap<(UserId, IpAddr), SimDate> = HashMap::new();
    let mut on_focus: HashSet<(UserId, IpAddr)> = HashSet::new();
    for r in history {
        if !filter(r.user) {
            continue;
        }
        let d = r.ts.date();
        if d > focus {
            continue;
        }
        let key = (r.user, r.ip);
        first
            .entry(key)
            .and_modify(|e| *e = (*e).min(d))
            .or_insert(d);
        if d == focus {
            on_focus.insert(key);
        }
    }
    let mut v4_spans: HashMap<UserId, Vec<u64>> = HashMap::new();
    let mut v6_spans: HashMap<UserId, Vec<u64>> = HashMap::new();
    for key in &on_focus {
        let span = u64::from(focus.days_since(first[key]));
        let m = if matches!(key.1, IpAddr::V6(_)) {
            &mut v6_spans
        } else {
            &mut v4_spans
        };
        m.entry(key.0).or_default().push(span);
    }
    let pairs = |m: &HashMap<UserId, Vec<u64>>| {
        Ecdf::from_values(m.values().flat_map(|v| v.iter().copied()))
    };
    let medians = |m: &HashMap<UserId, Vec<u64>>| {
        Ecdf::from_values(m.values().map(|v| {
            let mut s = v.clone();
            s.sort_unstable();
            s[(s.len() - 1) / 2]
        }))
    };
    LifespanCdfs {
        v4_pairs: pairs(&v4_spans),
        v6_pairs: pairs(&v6_spans),
        v4_user_median: medians(&v4_spans),
        v6_user_median: medians(&v6_spans),
    }
}

/// One row of Figure 6: at a prefix length, the share of (user, prefix)
/// pairs first observed within the last 1, 2, 3 days.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefixLifespanRow {
    /// Prefix length.
    pub len: u8,
    /// Share of pairs ≤ 1 day old (first seen on the focus day).
    pub d1: f64,
    /// Share ≤ 2 days old.
    pub d2: f64,
    /// Share ≤ 3 days old.
    pub d3: f64,
}

/// Computes Figure 6 for one protocol. `lengths` are prefix lengths valid
/// for the protocol (≤32 for v4); `want_v6` selects the protocol.
pub fn prefix_lifespans(
    history: &[RequestRecord],
    focus: SimDate,
    lengths: &[u8],
    want_v6: bool,
    filter: impl Fn(UserId) -> bool,
) -> Vec<PrefixLifespanRow> {
    lengths
        .iter()
        .map(|&len| {
            let mut first: HashMap<(UserId, u128), SimDate> = HashMap::new();
            let mut on_focus: HashSet<(UserId, u128)> = HashSet::new();
            for r in history {
                if !filter(r.user) || r.is_v6() != want_v6 {
                    continue;
                }
                let d = r.ts.date();
                if d > focus {
                    continue;
                }
                let bits = match r.ip {
                    IpAddr::V6(a) => u128::from(a) & Ipv6Prefix::mask(len),
                    IpAddr::V4(a) => u128::from(u32::from(a) & Ipv4Prefix::mask(len.min(32))),
                };
                let key = (r.user, bits);
                first
                    .entry(key)
                    .and_modify(|e| *e = (*e).min(d))
                    .or_insert(d);
                if d == focus {
                    on_focus.insert(key);
                }
            }
            let total = on_focus.len() as f64;
            let mut d = [0u64; 3];
            for key in &on_focus {
                let age = focus.days_since(first[key]);
                if age == 0 {
                    d[0] += 1;
                }
                if age <= 1 {
                    d[1] += 1;
                }
                if age <= 2 {
                    d[2] += 1;
                }
            }
            let frac = |c: u64| if total == 0.0 { 0.0 } else { c as f64 / total };
            PrefixLifespanRow {
                len,
                d1: frac(d[0]),
                d2: frac(d[1]),
                d3: frac(d[2]),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_telemetry::{Asn, Country};

    fn rec(user: u64, day: SimDate, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: day.at(12, 0, 0),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    fn d(m: u8, dd: u8) -> SimDate {
        SimDate::ymd(m, dd)
    }

    #[test]
    fn addrs_per_user_counts_distinct_per_protocol() {
        let recs = vec![
            rec(1, d(4, 13), "2001:db8::1"),
            rec(1, d(4, 13), "2001:db8::1"), // duplicate
            rec(1, d(4, 13), "2001:db8::2"),
            rec(1, d(4, 13), "10.0.0.1"),
            rec(2, d(4, 13), "10.0.0.1"),
            rec(3, d(4, 13), "10.0.0.9"),
        ];
        let a = addrs_per_user(&recs, |_| true);
        assert_eq!(a.v6_counts[&UserId(1)], 2);
        assert_eq!(a.v4_counts[&UserId(1)], 1);
        assert_eq!(a.v6.len(), 1, "only user 1 has v6");
        assert_eq!(a.v4.len(), 3);
        // Filtering removes users entirely.
        let b = addrs_per_user(&recs, |u| u.raw() != 1);
        assert!(b.v6.is_empty());
        assert_eq!(b.v4.len(), 2);
    }

    #[test]
    fn prefix_span_shows_aggregation_at_64() {
        // One user with three addresses in the same /64: spans 3 /128s but
        // one /64.
        let recs = vec![
            rec(1, d(4, 13), "2001:db8:1:2::a"),
            rec(1, d(4, 13), "2001:db8:1:2::b"),
            rec(1, d(4, 13), "2001:db8:1:2::c"),
            // And one user spanning two /64s in the same /48.
            rec(2, d(4, 13), "2001:db8:9:1::a"),
            rec(2, d(4, 13), "2001:db8:9:2::a"),
        ];
        let rows = prefixes_per_user(&recs, &[128, 64, 48], |_| true);
        let at = |len: u8| rows.iter().find(|r| r.len == len).unwrap();
        assert!(at(128).le1 < 0.01, "nobody has one /128");
        assert_eq!(at(64).le1, 0.5, "user 1 collapses at /64");
        assert_eq!(at(48).le1, 1.0, "both collapse at /48");
        assert_eq!(at(128).le3, 1.0, "user 1 has exactly 3 addresses");
    }

    #[test]
    fn prefix_counts_report_raw_numbers() {
        let recs = vec![
            rec(1, d(4, 13), "2001:db8:1:2::a"),
            rec(1, d(4, 13), "2001:db8:2:2::a"),
            rec(1, d(4, 13), "2001:db8:3:2::a"),
        ];
        let counts = prefix_counts_per_user(&recs, 48, |_| true);
        assert_eq!(counts[&UserId(1)], 3);
        let counts32 = prefix_counts_per_user(&recs, 32, |_| true);
        assert_eq!(counts32[&UserId(1)], 1);
    }

    #[test]
    fn lifespans_measure_days_since_first_seen() {
        let recs = vec![
            rec(1, d(4, 10), "2001:db8::1"), // seen 9 days before focus
            rec(1, d(4, 19), "2001:db8::1"),
            rec(1, d(4, 19), "2001:db8::2"), // new on focus day
            rec(2, d(4, 1), "10.0.0.1"),
            rec(2, d(4, 19), "10.0.0.1"), // 18 days
            rec(3, d(4, 15), "10.0.0.2"), // not present on focus day
        ];
        let l = address_lifespans(&recs, d(4, 19), |_| true);
        // v6 pairs on focus: (1, ::1) age 9, (1, ::2) age 0.
        assert_eq!(l.v6_pairs.len(), 2);
        assert_eq!(l.v6_pairs.count_le(0), 1);
        assert_eq!(l.v6_pairs.max(), Some(9));
        // v4: only user 2's pair, age 18. User 3's address is absent on
        // the focus day, so it contributes nothing.
        assert_eq!(l.v4_pairs.len(), 1);
        assert_eq!(l.v4_pairs.max(), Some(18));
        // Per-user medians: user 1 median of {0, 9} -> lower median 0.
        assert_eq!(l.v6_user_median.len(), 1);
        assert_eq!(l.v6_user_median.max(), Some(0));
    }

    #[test]
    fn prefix_lifespans_aggregate_by_prefix() {
        // Address rotates daily within one /64: the /128 pair is new on
        // the focus day, but the /64 pair is 3 days old.
        let recs = vec![
            rec(1, d(4, 16), "2001:db8:1:2::a"),
            rec(1, d(4, 17), "2001:db8:1:2::b"),
            rec(1, d(4, 18), "2001:db8:1:2::c"),
            rec(1, d(4, 19), "2001:db8:1:2::d"),
        ];
        let rows = prefix_lifespans(&recs, d(4, 19), &[128, 64], true, |_| true);
        let at = |len: u8| rows.iter().find(|r| r.len == len).unwrap();
        assert_eq!(at(128).d1, 1.0, "the /128 is brand new");
        assert_eq!(at(64).d1, 0.0, "the /64 was first seen 3 days ago");
        assert_eq!(at(64).d3, 0.0);
        // v4 filter yields nothing here.
        let v4rows = prefix_lifespans(&recs, d(4, 19), &[24], false, |_| true);
        assert_eq!(v4rows[0].d1, 0.0);
    }

    #[test]
    fn empty_inputs_are_safe() {
        let l = address_lifespans(&[], d(4, 19), |_| true);
        assert!(l.v4_pairs.is_empty() && l.v6_pairs.is_empty());
        let rows = prefixes_per_user(&[], &[64], |_| true);
        assert_eq!(rows[0].le1, 0.0);
        let a = addrs_per_user(&[], |_| true);
        assert!(a.v4.is_empty());
    }
}
