//! §5 — user-centric behavior: the spatial and temporal properties of the
//! addresses a user holds.
//!
//! All functions take a pre-windowed [`DatasetIndex`] (typically built over
//! the user random sample for one day or one week) and an account filter so
//! the same code computes the benign-user figures (2, 4a, 5, 6a) and the
//! abusive-account figures (3, 4b, 6b). Groupings are walks over the
//! index's per-user runs, and the inner loops read interned id columns —
//! dedup and prefix masking happen on `u32`/`u128` ids and bits, never on
//! rematerialized records. Because id order is isomorphic to address
//! order, the results are value-identical to the row-oriented versions.

use ipv6_study_netaddr::{Ipv4Prefix, Ipv6Prefix};
use ipv6_study_stats::{Ecdf, StableHashMap, StableHashSet};
use ipv6_study_telemetry::{IpId, SimDate, UserId};

use crate::index::DatasetIndex;

/// Distinct-address counts per user, per protocol (Figures 2 and 3).
#[derive(Debug, Clone)]
pub struct AddrsPerUser {
    /// Distribution over users observed with ≥1 IPv4 address.
    pub v4: Ecdf,
    /// Distribution over users observed with ≥1 IPv6 address.
    pub v6: Ecdf,
    /// Per-user v4 counts (for outlier drill-downs).
    pub v4_counts: StableHashMap<UserId, u64>,
    /// Per-user v6 counts.
    pub v6_counts: StableHashMap<UserId, u64>,
}

/// Computes addresses-per-user over the window, considering only users
/// accepted by `filter`.
pub fn addrs_per_user(index: &DatasetIndex, filter: impl Fn(UserId) -> bool) -> AddrsPerUser {
    let mut v4_counts: StableHashMap<UserId, u64> = StableHashMap::default();
    let mut v6_counts: StableHashMap<UserId, u64> = StableHashMap::default();
    for (user, group) in index.user_groups() {
        if !filter(user) {
            continue;
        }
        let mut v4: Vec<IpId> = Vec::new();
        let mut v6: Vec<IpId> = Vec::new();
        for &id in group.ip_ids() {
            if id.is_v6() { &mut v6 } else { &mut v4 }.push(id);
        }
        for (addrs, counts) in [(&mut v4, &mut v4_counts), (&mut v6, &mut v6_counts)] {
            addrs.sort_unstable();
            addrs.dedup();
            if !addrs.is_empty() {
                counts.insert(user, addrs.len() as u64);
            }
        }
    }
    AddrsPerUser {
        v4: Ecdf::from_values(v4_counts.values().copied()),
        v6: Ecdf::from_values(v6_counts.values().copied()),
        v4_counts,
        v6_counts,
    }
}

/// One row of Figure 4: at prefix length `len`, the share of users whose
/// IPv6 addresses span at most 1, 2, 3 distinct prefixes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefixSpanRow {
    /// Prefix length.
    pub len: u8,
    /// Share of users with all addresses in one prefix.
    pub le1: f64,
    /// Share with addresses in at most two prefixes.
    pub le2: f64,
    /// Share with addresses in at most three prefixes.
    pub le3: f64,
}

/// Each qualifying user's distinct IPv6 addresses (the shared input of
/// Figure 4's per-length rows).
fn distinct_v6_addrs_per_user(
    index: &DatasetIndex,
    filter: impl Fn(UserId) -> bool,
) -> Vec<Vec<u128>> {
    let mut per_user = Vec::new();
    let ips = &index.tables().ips;
    for (user, group) in index.user_groups() {
        if !filter(user) {
            continue;
        }
        let mut addrs: Vec<u128> = group
            .ip_ids()
            .iter()
            .filter(|id| id.is_v6())
            .map(|&id| ips.v6_bits(id))
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        if !addrs.is_empty() {
            per_user.push(addrs);
        }
    }
    per_user
}

/// Computes Figure 4 (per-user IPv6 prefix span) for the given lengths.
/// The population is users with ≥1 IPv6 address passing `filter`.
pub fn prefixes_per_user(
    index: &DatasetIndex,
    lengths: &[u8],
    filter: impl Fn(UserId) -> bool,
) -> Vec<PrefixSpanRow> {
    let per_user = distinct_v6_addrs_per_user(index, filter);
    lengths
        .iter()
        .map(|&len| {
            let mut le = [0u64; 3];
            let total = per_user.len() as u64;
            for addrs in &per_user {
                let mut masked: Vec<u128> = addrs
                    .iter()
                    .map(|&raw| raw & Ipv6Prefix::mask(len))
                    .collect();
                masked.sort_unstable();
                masked.dedup();
                let n = masked.len();
                if n <= 1 {
                    le[0] += 1;
                }
                if n <= 2 {
                    le[1] += 1;
                }
                if n <= 3 {
                    le[2] += 1;
                }
            }
            let frac = |c: u64| {
                if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                }
            };
            PrefixSpanRow {
                len,
                le1: frac(le[0]),
                le2: frac(le[1]),
                le3: frac(le[2]),
            }
        })
        .collect()
}

/// The per-user distinct-prefix counts at one length (outlier drill-down
/// for §5.2.3).
pub fn prefix_counts_per_user(
    index: &DatasetIndex,
    len: u8,
    filter: impl Fn(UserId) -> bool,
) -> StableHashMap<UserId, u64> {
    let mut counts: StableHashMap<UserId, u64> = StableHashMap::default();
    let ips = &index.tables().ips;
    for (user, group) in index.user_groups() {
        if !filter(user) {
            continue;
        }
        let mut prefixes: Vec<u128> = group
            .ip_ids()
            .iter()
            .filter(|id| id.is_v6())
            .map(|&id| ips.v6_bits(id) & Ipv6Prefix::mask(len))
            .collect();
        prefixes.sort_unstable();
        prefixes.dedup();
        if !prefixes.is_empty() {
            counts.insert(user, prefixes.len() as u64);
        }
    }
    counts
}

/// Life spans of (user, address) pairs present on a focus day (Figure 5).
#[derive(Debug, Clone)]
pub struct LifespanCdfs {
    /// Days since first observation, across all (user, v4 address) pairs.
    pub v4_pairs: Ecdf,
    /// Same for IPv6 pairs.
    pub v6_pairs: Ecdf,
    /// Median life span per user, v4.
    pub v4_user_median: Ecdf,
    /// Median life span per user, v6.
    pub v6_user_median: Ecdf,
}

/// Computes Figure 5. `history` must cover `[focus − lookback, focus]`;
/// pairs observed on `focus` get a life span equal to days since their
/// first appearance in the history (0 = first seen on the focus day).
pub fn address_lifespans(
    history: &DatasetIndex,
    focus: SimDate,
    filter: impl Fn(UserId) -> bool,
) -> LifespanCdfs {
    let mut v4_pairs: Vec<u64> = Vec::new();
    let mut v6_pairs: Vec<u64> = Vec::new();
    let mut v4_medians: Vec<u64> = Vec::new();
    let mut v6_medians: Vec<u64> = Vec::new();
    for (user, group) in history.user_groups() {
        if !filter(user) {
            continue;
        }
        // First-seen date per address id of this user.
        let mut first: StableHashMap<IpId, SimDate> = StableHashMap::default();
        let mut on_focus: StableHashSet<IpId> = StableHashSet::default();
        for (&ts, &id) in group.ts().iter().zip(group.ip_ids()) {
            let d = ts.date();
            if d > focus {
                continue;
            }
            first
                .entry(id)
                .and_modify(|e| *e = (*e).min(d))
                .or_insert(d);
            if d == focus {
                on_focus.insert(id);
            }
        }
        let mut v4_spans: Vec<u64> = Vec::new();
        let mut v6_spans: Vec<u64> = Vec::new();
        for id in &on_focus {
            let span = u64::from(focus.days_since(first[id]));
            if id.is_v6() {
                v6_spans.push(span);
            } else {
                v4_spans.push(span);
            }
        }
        let take = |mut spans: Vec<u64>, pairs: &mut Vec<u64>, medians: &mut Vec<u64>| {
            if spans.is_empty() {
                return;
            }
            pairs.extend_from_slice(&spans);
            spans.sort_unstable();
            medians.push(spans[(spans.len() - 1) / 2]);
        };
        take(v4_spans, &mut v4_pairs, &mut v4_medians);
        take(v6_spans, &mut v6_pairs, &mut v6_medians);
    }
    LifespanCdfs {
        v4_pairs: Ecdf::from_values(v4_pairs),
        v6_pairs: Ecdf::from_values(v6_pairs),
        v4_user_median: Ecdf::from_values(v4_medians),
        v6_user_median: Ecdf::from_values(v6_medians),
    }
}

/// One row of Figure 6: at a prefix length, the share of (user, prefix)
/// pairs first observed within the last 1, 2, 3 days.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefixLifespanRow {
    /// Prefix length.
    pub len: u8,
    /// Share of pairs ≤ 1 day old (first seen on the focus day).
    pub d1: f64,
    /// Share ≤ 2 days old.
    pub d2: f64,
    /// Share ≤ 3 days old.
    pub d3: f64,
}

/// Computes Figure 6 for one protocol. `lengths` are prefix lengths valid
/// for the protocol (≤32 for v4); `want_v6` selects the protocol.
pub fn prefix_lifespans(
    history: &DatasetIndex,
    focus: SimDate,
    lengths: &[u8],
    want_v6: bool,
    filter: impl Fn(UserId) -> bool,
) -> Vec<PrefixLifespanRow> {
    let ips = &history.tables().ips;
    lengths
        .iter()
        .map(|&len| {
            let mut total = 0u64;
            let mut d = [0u64; 3];
            for (user, group) in history.user_groups() {
                if !filter(user) {
                    continue;
                }
                let mut first: StableHashMap<u128, SimDate> = StableHashMap::default();
                let mut on_focus: StableHashSet<u128> = StableHashSet::default();
                for (&ts, &id) in group.ts().iter().zip(group.ip_ids()) {
                    if id.is_v6() != want_v6 {
                        continue;
                    }
                    let day = ts.date();
                    if day > focus {
                        continue;
                    }
                    let bits = if id.is_v6() {
                        ips.v6_bits(id) & Ipv6Prefix::mask(len)
                    } else {
                        u128::from(ips.v4_bits(id) & Ipv4Prefix::mask(len.min(32)))
                    };
                    first
                        .entry(bits)
                        .and_modify(|e| *e = (*e).min(day))
                        .or_insert(day);
                    if day == focus {
                        on_focus.insert(bits);
                    }
                }
                for bits in &on_focus {
                    total += 1;
                    let age = focus.days_since(first[bits]);
                    if age == 0 {
                        d[0] += 1;
                    }
                    if age <= 1 {
                        d[1] += 1;
                    }
                    if age <= 2 {
                        d[2] += 1;
                    }
                }
            }
            let frac = |c: u64| {
                if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                }
            };
            PrefixLifespanRow {
                len,
                d1: frac(d[0]),
                d2: frac(d[1]),
                d3: frac(d[2]),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_telemetry::{Asn, Country, RequestRecord};

    fn rec(user: u64, day: SimDate, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: day.at(12, 0, 0),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    fn d(m: u8, dd: u8) -> SimDate {
        SimDate::ymd(m, dd)
    }

    fn idx(recs: &[RequestRecord]) -> DatasetIndex {
        DatasetIndex::from_records(recs)
    }

    #[test]
    fn addrs_per_user_counts_distinct_per_protocol() {
        let recs = vec![
            rec(1, d(4, 13), "2001:db8::1"),
            rec(1, d(4, 13), "2001:db8::1"), // duplicate
            rec(1, d(4, 13), "2001:db8::2"),
            rec(1, d(4, 13), "10.0.0.1"),
            rec(2, d(4, 13), "10.0.0.1"),
            rec(3, d(4, 13), "10.0.0.9"),
        ];
        let a = addrs_per_user(&idx(&recs), |_| true);
        assert_eq!(a.v6_counts[&UserId(1)], 2);
        assert_eq!(a.v4_counts[&UserId(1)], 1);
        assert_eq!(a.v6.len(), 1, "only user 1 has v6");
        assert_eq!(a.v4.len(), 3);
        // Filtering removes users entirely.
        let b = addrs_per_user(&idx(&recs), |u| u.raw() != 1);
        assert!(b.v6.is_empty());
        assert_eq!(b.v4.len(), 2);
    }

    #[test]
    fn prefix_span_shows_aggregation_at_64() {
        // One user with three addresses in the same /64: spans 3 /128s but
        // one /64.
        let recs = vec![
            rec(1, d(4, 13), "2001:db8:1:2::a"),
            rec(1, d(4, 13), "2001:db8:1:2::b"),
            rec(1, d(4, 13), "2001:db8:1:2::c"),
            // And one user spanning two /64s in the same /48.
            rec(2, d(4, 13), "2001:db8:9:1::a"),
            rec(2, d(4, 13), "2001:db8:9:2::a"),
        ];
        let rows = prefixes_per_user(&idx(&recs), &[128, 64, 48], |_| true);
        let at = |len: u8| rows.iter().find(|r| r.len == len).unwrap();
        assert!(at(128).le1 < 0.01, "nobody has one /128");
        assert_eq!(at(64).le1, 0.5, "user 1 collapses at /64");
        assert_eq!(at(48).le1, 1.0, "both collapse at /48");
        assert_eq!(at(128).le3, 1.0, "user 1 has exactly 3 addresses");
    }

    #[test]
    fn prefix_counts_report_raw_numbers() {
        let recs = vec![
            rec(1, d(4, 13), "2001:db8:1:2::a"),
            rec(1, d(4, 13), "2001:db8:2:2::a"),
            rec(1, d(4, 13), "2001:db8:3:2::a"),
        ];
        let counts = prefix_counts_per_user(&idx(&recs), 48, |_| true);
        assert_eq!(counts[&UserId(1)], 3);
        let counts32 = prefix_counts_per_user(&idx(&recs), 32, |_| true);
        assert_eq!(counts32[&UserId(1)], 1);
    }

    #[test]
    fn lifespans_measure_days_since_first_seen() {
        let recs = vec![
            rec(1, d(4, 10), "2001:db8::1"), // seen 9 days before focus
            rec(1, d(4, 19), "2001:db8::1"),
            rec(1, d(4, 19), "2001:db8::2"), // new on focus day
            rec(2, d(4, 1), "10.0.0.1"),
            rec(2, d(4, 19), "10.0.0.1"), // 18 days
            rec(3, d(4, 15), "10.0.0.2"), // not present on focus day
        ];
        let l = address_lifespans(&idx(&recs), d(4, 19), |_| true);
        // v6 pairs on focus: (1, ::1) age 9, (1, ::2) age 0.
        assert_eq!(l.v6_pairs.len(), 2);
        assert_eq!(l.v6_pairs.count_le(0), 1);
        assert_eq!(l.v6_pairs.max(), Some(9));
        // v4: only user 2's pair, age 18. User 3's address is absent on
        // the focus day, so it contributes nothing.
        assert_eq!(l.v4_pairs.len(), 1);
        assert_eq!(l.v4_pairs.max(), Some(18));
        // Per-user medians: user 1 median of {0, 9} -> lower median 0.
        assert_eq!(l.v6_user_median.len(), 1);
        assert_eq!(l.v6_user_median.max(), Some(0));
    }

    #[test]
    fn prefix_lifespans_aggregate_by_prefix() {
        // Address rotates daily within one /64: the /128 pair is new on
        // the focus day, but the /64 pair is 3 days old.
        let recs = vec![
            rec(1, d(4, 16), "2001:db8:1:2::a"),
            rec(1, d(4, 17), "2001:db8:1:2::b"),
            rec(1, d(4, 18), "2001:db8:1:2::c"),
            rec(1, d(4, 19), "2001:db8:1:2::d"),
        ];
        let rows = prefix_lifespans(&idx(&recs), d(4, 19), &[128, 64], true, |_| true);
        let at = |len: u8| rows.iter().find(|r| r.len == len).unwrap();
        assert_eq!(at(128).d1, 1.0, "the /128 is brand new");
        assert_eq!(at(64).d1, 0.0, "the /64 was first seen 3 days ago");
        assert_eq!(at(64).d3, 0.0);
        // v4 filter yields nothing here.
        let v4rows = prefix_lifespans(&idx(&recs), d(4, 19), &[24], false, |_| true);
        assert_eq!(v4rows[0].d1, 0.0);
    }

    #[test]
    fn empty_inputs_are_safe() {
        let empty = idx(&[]);
        let l = address_lifespans(&empty, d(4, 19), |_| true);
        assert!(l.v4_pairs.is_empty() && l.v6_pairs.is_empty());
        let rows = prefixes_per_user(&empty, &[64], |_| true);
        assert_eq!(rows[0].le1, 0.0);
        let a = addrs_per_user(&empty, |_| true);
        assert!(a.v4.is_empty());
    }
}
