//! §6 — IP-centric behavior: user populations per address and per prefix.
//!
//! These analyses answer the collateral-damage question behind IP-level
//! enforcement: *who else is on this address or prefix?* They consume the
//! IP random sample (Figures 7–8) and the IPv6 prefix random samples
//! (Figures 9–10), joined with abuse labels.

use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

use ipv6_study_netaddr::Ipv6Prefix;
use ipv6_study_stats::Ecdf;
use ipv6_study_telemetry::{AbuseLabels, RequestRecord, UserId};

/// Users per address, per protocol (Figure 7).
#[derive(Debug, Clone)]
pub struct UsersPerIp {
    /// Distribution of distinct users over IPv4 addresses.
    pub v4: Ecdf,
    /// Distribution over IPv6 addresses.
    pub v6: Ecdf,
    /// Raw per-address user counts (for outlier drill-downs).
    pub counts: HashMap<IpAddr, u64>,
}

/// Computes users-per-address over `records`.
pub fn users_per_ip(records: &[RequestRecord]) -> UsersPerIp {
    let mut users: HashMap<IpAddr, HashSet<UserId>> = HashMap::new();
    for r in records {
        users.entry(r.ip).or_default().insert(r.user);
    }
    let counts: HashMap<IpAddr, u64> = users
        .into_iter()
        .map(|(ip, s)| (ip, s.len() as u64))
        .collect();
    let split = |want_v6: bool| {
        Ecdf::from_values(
            counts
                .iter()
                .filter(|(ip, _)| matches!(ip, IpAddr::V6(_)) == want_v6)
                .map(|(_, &c)| c),
        )
    };
    UsersPerIp {
        v4: split(false),
        v6: split(true),
        counts,
    }
}

/// Populations on addresses hosting at least one abusive account (Fig 8).
#[derive(Debug, Clone)]
pub struct AbusePerIp {
    /// Abusive accounts per such IPv4 address.
    pub aa_v4: Ecdf,
    /// Abusive accounts per such IPv6 address.
    pub aa_v6: Ecdf,
    /// Benign users per such IPv4 address.
    pub benign_v4: Ecdf,
    /// Benign users per such IPv6 address.
    pub benign_v6: Ecdf,
}

impl AbusePerIp {
    /// Share of abusive-hosting v6 addresses with zero benign users — the
    /// paper's isolation statistic ("63% of addresses only had abusive
    /// accounts and no benign users in a day", §6.1.2).
    pub fn v6_isolated_share(&self) -> f64 {
        self.benign_v6.fraction_le(0)
    }

    /// Same for IPv4 (paper: 3.4%).
    pub fn v4_isolated_share(&self) -> f64 {
        self.benign_v4.fraction_le(0)
    }
}

/// Computes Figure 8 over `records` with the label set.
pub fn abuse_per_ip(records: &[RequestRecord], labels: &AbuseLabels) -> AbusePerIp {
    let mut aa: HashMap<IpAddr, HashSet<UserId>> = HashMap::new();
    let mut benign: HashMap<IpAddr, HashSet<UserId>> = HashMap::new();
    for r in records {
        if labels.is_abusive(r.user) {
            aa.entry(r.ip).or_default().insert(r.user);
        } else {
            benign.entry(r.ip).or_default().insert(r.user);
        }
    }
    let mut aa_v4 = Vec::new();
    let mut aa_v6 = Vec::new();
    let mut benign_v4 = Vec::new();
    let mut benign_v6 = Vec::new();
    for (ip, accounts) in &aa {
        let benign_count = benign.get(ip).map_or(0, |s| s.len() as u64);
        if matches!(ip, IpAddr::V6(_)) {
            aa_v6.push(accounts.len() as u64);
            benign_v6.push(benign_count);
        } else {
            aa_v4.push(accounts.len() as u64);
            benign_v4.push(benign_count);
        }
    }
    AbusePerIp {
        aa_v4: Ecdf::from_values(aa_v4),
        aa_v6: Ecdf::from_values(aa_v6),
        benign_v4: Ecdf::from_values(benign_v4),
        benign_v6: Ecdf::from_values(benign_v6),
    }
}

/// Users per IPv6 prefix at one length (one curve of Figure 9), plus the
/// raw counts for outlier analysis.
#[derive(Debug, Clone)]
pub struct UsersPerPrefix {
    /// Prefix length.
    pub len: u8,
    /// Distribution of distinct users per prefix.
    pub ecdf: Ecdf,
    /// Raw counts.
    pub counts: HashMap<Ipv6Prefix, u64>,
}

/// Computes users-per-prefix at `len` over the v6 records in `records`.
pub fn users_per_prefix(records: &[RequestRecord], len: u8) -> UsersPerPrefix {
    let mut users: HashMap<Ipv6Prefix, HashSet<UserId>> = HashMap::new();
    for r in records {
        if let Some(p) = r.v6_prefix(len) {
            users.entry(p).or_default().insert(r.user);
        }
    }
    let counts: HashMap<Ipv6Prefix, u64> = users
        .into_iter()
        .map(|(p, s)| (p, s.len() as u64))
        .collect();
    UsersPerPrefix {
        len,
        ecdf: Ecdf::from_values(counts.values().copied()),
        counts,
    }
}

/// Populations in prefixes hosting abusive accounts (Figure 10) at one
/// length.
#[derive(Debug, Clone)]
pub struct AbusePerPrefix {
    /// Prefix length.
    pub len: u8,
    /// Abusive accounts per prefix-with-abuse.
    pub aa: Ecdf,
    /// Benign users per prefix-with-abuse.
    pub benign: Ecdf,
}

/// Computes Figure 10 at `len`.
pub fn abuse_per_prefix(
    records: &[RequestRecord],
    labels: &AbuseLabels,
    len: u8,
) -> AbusePerPrefix {
    let mut aa: HashMap<Ipv6Prefix, HashSet<UserId>> = HashMap::new();
    let mut benign: HashMap<Ipv6Prefix, HashSet<UserId>> = HashMap::new();
    for r in records {
        if let Some(p) = r.v6_prefix(len) {
            if labels.is_abusive(r.user) {
                aa.entry(p).or_default().insert(r.user);
            } else {
                benign.entry(p).or_default().insert(r.user);
            }
        }
    }
    let mut aa_counts = Vec::new();
    let mut benign_counts = Vec::new();
    for (p, accounts) in &aa {
        aa_counts.push(accounts.len() as u64);
        benign_counts.push(benign.get(p).map_or(0, |s| s.len() as u64));
    }
    AbusePerPrefix {
        len,
        aa: Ecdf::from_values(aa_counts),
        benign: Ecdf::from_values(benign_counts),
    }
}

/// IPv4 analogues of the per-prefix views, used as the reference series in
/// Figures 9 and 10 ("IPv4" curve = users per full IPv4 address).
pub fn users_per_v4_addr(records: &[RequestRecord]) -> Ecdf {
    let mut users: HashMap<IpAddr, HashSet<UserId>> = HashMap::new();
    for r in records {
        if !r.is_v6() {
            users.entry(r.ip).or_default().insert(r.user);
        }
    }
    Ecdf::from_values(users.values().map(|s| s.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_telemetry::{AbuseInfo, Asn, Country, SimDate};

    fn rec(user: u64, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: SimDate::ymd(4, 13).at(10, 0, 0),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    fn labels_for(ids: &[u64]) -> AbuseLabels {
        ids.iter()
            .map(|&u| {
                (
                    UserId(u),
                    AbuseInfo {
                        created: SimDate::ymd(4, 12),
                        detected: SimDate::ymd(4, 13),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn users_per_ip_separates_protocols() {
        let recs = vec![
            rec(1, "10.0.0.1"),
            rec(2, "10.0.0.1"),
            rec(3, "10.0.0.1"),
            rec(1, "2001:db8::1"),
            rec(1, "2001:db8::2"),
            rec(2, "2001:db8::2"),
        ];
        let u = users_per_ip(&recs);
        assert_eq!(u.v4.len(), 1);
        assert_eq!(u.v4.max(), Some(3));
        assert_eq!(u.v6.len(), 2);
        assert_eq!(u.v6.fraction_le(1), 0.5);
        assert_eq!(u.counts[&"10.0.0.1".parse::<IpAddr>().unwrap()], 3);
    }

    #[test]
    fn abuse_per_ip_isolation_statistics() {
        let labels = labels_for(&[100, 101]);
        let recs = vec![
            // v6 address with only an abusive account.
            rec(100, "2001:db8::a"),
            // v6 address shared by an abusive account and a benign user.
            rec(101, "2001:db8::b"),
            rec(1, "2001:db8::b"),
            // v4 address with an AA and two benign users.
            rec(100, "10.0.0.1"),
            rec(1, "10.0.0.1"),
            rec(2, "10.0.0.1"),
            // Purely benign address: must not appear in the AA view.
            rec(3, "10.0.0.99"),
        ];
        let a = abuse_per_ip(&recs, &labels);
        assert_eq!(a.aa_v6.len(), 2);
        assert_eq!(a.v6_isolated_share(), 0.5);
        assert_eq!(a.aa_v4.len(), 1);
        assert_eq!(a.v4_isolated_share(), 0.0);
        assert_eq!(a.benign_v4.max(), Some(2));
    }

    #[test]
    fn users_per_prefix_aggregates() {
        let recs = vec![
            rec(1, "2001:db8:1:1::a"),
            rec(2, "2001:db8:1:2::b"),
            rec(3, "2001:db8:2:1::c"),
        ];
        let p64 = users_per_prefix(&recs, 64);
        assert_eq!(p64.ecdf.len(), 3);
        assert_eq!(p64.ecdf.max(), Some(1));
        let p48 = users_per_prefix(&recs, 48);
        assert_eq!(p48.ecdf.len(), 2);
        assert_eq!(p48.ecdf.max(), Some(2), "users 1,2 share 2001:db8:1::/48");
        let p32 = users_per_prefix(&recs, 32);
        assert_eq!(p32.ecdf.max(), Some(3));
    }

    #[test]
    fn abuse_per_prefix_counts_cohabitation() {
        let labels = labels_for(&[100]);
        let recs = vec![
            rec(100, "2001:db8:1:1::a"),
            rec(1, "2001:db8:1:2::b"),
            rec(2, "2001:db8:1:3::c"),
            rec(3, "2001:db9::1"), // different /48, no AA
        ];
        let a = abuse_per_prefix(&recs, &labels, 48);
        assert_eq!(a.aa.len(), 1);
        assert_eq!(a.benign.max(), Some(2));
        let a64 = abuse_per_prefix(&recs, &labels, 64);
        assert_eq!(a64.benign.max(), Some(0), "AA is alone in its /64");
    }

    #[test]
    fn v4_reference_series() {
        let recs = vec![
            rec(1, "10.0.0.1"),
            rec(2, "10.0.0.1"),
            rec(1, "2001:db8::1"),
        ];
        let e = users_per_v4_addr(&recs);
        assert_eq!(e.len(), 1);
        assert_eq!(e.max(), Some(2));
    }

    #[test]
    fn empty_inputs() {
        let u = users_per_ip(&[]);
        assert!(u.v4.is_empty() && u.v6.is_empty());
        let a = abuse_per_ip(&[], &AbuseLabels::new());
        assert!(a.aa_v4.is_empty());
        assert_eq!(a.v6_isolated_share(), 0.0);
    }
}
