//! §6 — IP-centric behavior: user populations per address and per prefix.
//!
//! These analyses answer the collateral-damage question behind IP-level
//! enforcement: *who else is on this address or prefix?* They consume the
//! IP random sample (Figures 7–8) and the IPv6 prefix random samples
//! (Figures 9–10), joined with abuse labels.
//!
//! All functions walk a [`DatasetIndex`]'s per-address runs. Because the
//! index orders address ids by [`IpAddr`]'s total order (numeric within
//! each family), every set of v6 addresses sharing a prefix is a
//! *consecutive* range of runs — the per-prefix analyses aggregate
//! neighboring runs over the intern table's **precomputed** /64 /56 /48
//! prefix-id columns instead of building a per-prefix hash map, and user
//! dedup happens on dense `u32` ids.

use std::net::IpAddr;

use ipv6_study_netaddr::Ipv6Prefix;
use ipv6_study_stats::{Ecdf, StableHashMap};
use ipv6_study_telemetry::{AbuseLabels, ColumnSlice, UserId};

use crate::index::DatasetIndex;

/// The distinct users of one address run (records keep one address).
fn distinct_users_of(group: ColumnSlice<'_>) -> u64 {
    let mut users: Vec<u32> = group.users_dense().to_vec();
    users.sort_unstable();
    users.dedup();
    users.len() as u64
}

/// Users per address, per protocol (Figure 7).
#[derive(Debug, Clone)]
pub struct UsersPerIp {
    /// Distribution of distinct users over IPv4 addresses.
    pub v4: Ecdf,
    /// Distribution over IPv6 addresses.
    pub v6: Ecdf,
    /// Raw per-address user counts (for outlier drill-downs).
    pub counts: StableHashMap<IpAddr, u64>,
}

/// Computes users-per-address over the window.
pub fn users_per_ip(index: &DatasetIndex) -> UsersPerIp {
    let mut counts: StableHashMap<IpAddr, u64> = StableHashMap::default();
    let mut v4: Vec<u64> = Vec::new();
    let mut v6: Vec<u64> = Vec::new();
    for (ip, group) in index.ip_groups() {
        let c = distinct_users_of(group);
        counts.insert(ip, c);
        if matches!(ip, IpAddr::V6(_)) {
            v6.push(c);
        } else {
            v4.push(c);
        }
    }
    UsersPerIp {
        v4: Ecdf::from_values(v4),
        v6: Ecdf::from_values(v6),
        counts,
    }
}

/// Populations on addresses hosting at least one abusive account (Fig 8).
#[derive(Debug, Clone)]
pub struct AbusePerIp {
    /// Abusive accounts per such IPv4 address.
    pub aa_v4: Ecdf,
    /// Abusive accounts per such IPv6 address.
    pub aa_v6: Ecdf,
    /// Benign users per such IPv4 address.
    pub benign_v4: Ecdf,
    /// Benign users per such IPv6 address.
    pub benign_v6: Ecdf,
}

impl AbusePerIp {
    /// Share of abusive-hosting v6 addresses with zero benign users — the
    /// paper's isolation statistic ("63% of addresses only had abusive
    /// accounts and no benign users in a day", §6.1.2).
    pub fn v6_isolated_share(&self) -> f64 {
        self.benign_v6.fraction_le(0)
    }

    /// Same for IPv4 (paper: 3.4%).
    pub fn v4_isolated_share(&self) -> f64 {
        self.benign_v4.fraction_le(0)
    }
}

/// Splits one run's users into (abusive, benign) distinct counts.
fn split_users(group: ColumnSlice<'_>, labels: &AbuseLabels) -> (u64, u64) {
    let mut users: Vec<u32> = group.users_dense().to_vec();
    users.sort_unstable();
    users.dedup();
    let user_table = &group.tables().users;
    let aa = users
        .iter()
        .filter(|&&d| labels.is_abusive(user_table.user(d)))
        .count() as u64;
    (aa, users.len() as u64 - aa)
}

/// Computes Figure 8 over the window with the label set.
pub fn abuse_per_ip(index: &DatasetIndex, labels: &AbuseLabels) -> AbusePerIp {
    let mut aa_v4 = Vec::new();
    let mut aa_v6 = Vec::new();
    let mut benign_v4 = Vec::new();
    let mut benign_v6 = Vec::new();
    for (ip, group) in index.ip_groups() {
        let (aa, benign) = split_users(group, labels);
        if aa == 0 {
            continue; // address hosts no abusive account
        }
        if matches!(ip, IpAddr::V6(_)) {
            aa_v6.push(aa);
            benign_v6.push(benign);
        } else {
            aa_v4.push(aa);
            benign_v4.push(benign);
        }
    }
    AbusePerIp {
        aa_v4: Ecdf::from_values(aa_v4),
        aa_v6: Ecdf::from_values(aa_v6),
        benign_v4: Ecdf::from_values(benign_v4),
        benign_v6: Ecdf::from_values(benign_v6),
    }
}

/// Users per IPv6 prefix at one length (one curve of Figure 9), plus the
/// raw counts for outlier analysis.
#[derive(Debug, Clone)]
pub struct UsersPerPrefix {
    /// Prefix length.
    pub len: u8,
    /// Distribution of distinct users per prefix.
    pub ecdf: Ecdf,
    /// Raw counts.
    pub counts: StableHashMap<Ipv6Prefix, u64>,
}

/// Walks the index's v6 address runs aggregated into per-prefix runs at
/// `len`, calling `emit(prefix, users_of_prefix)` once per prefix. The
/// user list handed to `emit` is sorted and deduplicated.
fn walk_prefix_runs(index: &DatasetIndex, len: u8, mut emit: impl FnMut(Ipv6Prefix, &[UserId])) {
    let tables = index.tables();
    let ips = &tables.ips;
    // At the precomputed lengths the prefix bits come straight out of the
    // per-entry prefix-id columns; other lengths mask the stored bits.
    let bits_of = |id: ipv6_study_telemetry::IpId| -> u128 {
        match len {
            64 => ips.p64_bits(ips.p64_id(id)),
            56 => ips.p56_bits(ips.p56_id(id)),
            48 => ips.p48_bits(ips.p48_id(id)),
            _ => ips.v6_bits(id) & Ipv6Prefix::mask(len),
        }
    };
    // Dense user ids ascend exactly as raw `UserId`s do, so the sorted
    // dedup below hands `emit` the same sorted user list as before.
    let mut flush = |bits: u128, mut dense: Vec<u32>| {
        dense.sort_unstable();
        dense.dedup();
        let users: Vec<UserId> = dense.iter().map(|&d| tables.users.user(d)).collect();
        emit(Ipv6Prefix::from_bits(bits, len), &users);
    };
    let mut cur: Option<(u128, Vec<u32>)> = None;
    for (id, group) in index.ip_id_groups() {
        if !id.is_v6() {
            continue;
        }
        let bits = bits_of(id);
        match &mut cur {
            Some((cb, users)) if *cb == bits => users.extend_from_slice(group.users_dense()),
            _ => {
                if let Some((cb, users)) = cur.take() {
                    flush(cb, users);
                }
                cur = Some((bits, group.users_dense().to_vec()));
            }
        }
    }
    if let Some((cb, users)) = cur.take() {
        flush(cb, users);
    }
}

/// Computes users-per-prefix at `len` over the window's v6 records.
pub fn users_per_prefix(index: &DatasetIndex, len: u8) -> UsersPerPrefix {
    let mut counts: StableHashMap<Ipv6Prefix, u64> = StableHashMap::default();
    walk_prefix_runs(index, len, |p, users| {
        counts.insert(p, users.len() as u64);
    });
    UsersPerPrefix {
        len,
        ecdf: Ecdf::from_values(counts.values().copied()),
        counts,
    }
}

/// Populations in prefixes hosting abusive accounts (Figure 10) at one
/// length.
#[derive(Debug, Clone)]
pub struct AbusePerPrefix {
    /// Prefix length.
    pub len: u8,
    /// Abusive accounts per prefix-with-abuse.
    pub aa: Ecdf,
    /// Benign users per prefix-with-abuse.
    pub benign: Ecdf,
}

/// Computes Figure 10 at `len`.
pub fn abuse_per_prefix(index: &DatasetIndex, labels: &AbuseLabels, len: u8) -> AbusePerPrefix {
    let mut aa_counts = Vec::new();
    let mut benign_counts = Vec::new();
    walk_prefix_runs(index, len, |_, users| {
        let aa = users.iter().filter(|&&u| labels.is_abusive(u)).count() as u64;
        if aa == 0 {
            return; // prefix hosts no abusive account
        }
        aa_counts.push(aa);
        benign_counts.push(users.len() as u64 - aa);
    });
    AbusePerPrefix {
        len,
        aa: Ecdf::from_values(aa_counts),
        benign: Ecdf::from_values(benign_counts),
    }
}

/// IPv4 analogues of the per-prefix views, used as the reference series in
/// Figures 9 and 10 ("IPv4" curve = users per full IPv4 address).
pub fn users_per_v4_addr(index: &DatasetIndex) -> Ecdf {
    Ecdf::from_values(
        index
            .ip_groups()
            .filter(|(ip, _)| matches!(ip, IpAddr::V4(_)))
            .map(|(_, group)| distinct_users_of(group)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_telemetry::{AbuseInfo, Asn, Country, RequestRecord, SimDate};

    fn rec(user: u64, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: SimDate::ymd(4, 13).at(10, 0, 0),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    fn idx(recs: &[RequestRecord]) -> DatasetIndex {
        DatasetIndex::from_records(recs)
    }

    fn labels_for(ids: &[u64]) -> AbuseLabels {
        ids.iter()
            .map(|&u| {
                (
                    UserId(u),
                    AbuseInfo {
                        created: SimDate::ymd(4, 12),
                        detected: SimDate::ymd(4, 13),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn users_per_ip_separates_protocols() {
        let recs = vec![
            rec(1, "10.0.0.1"),
            rec(2, "10.0.0.1"),
            rec(3, "10.0.0.1"),
            rec(1, "2001:db8::1"),
            rec(1, "2001:db8::2"),
            rec(2, "2001:db8::2"),
        ];
        let u = users_per_ip(&idx(&recs));
        assert_eq!(u.v4.len(), 1);
        assert_eq!(u.v4.max(), Some(3));
        assert_eq!(u.v6.len(), 2);
        assert_eq!(u.v6.fraction_le(1), 0.5);
        assert_eq!(u.counts[&"10.0.0.1".parse::<IpAddr>().unwrap()], 3);
    }

    #[test]
    fn abuse_per_ip_isolation_statistics() {
        let labels = labels_for(&[100, 101]);
        let recs = vec![
            // v6 address with only an abusive account.
            rec(100, "2001:db8::a"),
            // v6 address shared by an abusive account and a benign user.
            rec(101, "2001:db8::b"),
            rec(1, "2001:db8::b"),
            // v4 address with an AA and two benign users.
            rec(100, "10.0.0.1"),
            rec(1, "10.0.0.1"),
            rec(2, "10.0.0.1"),
            // Purely benign address: must not appear in the AA view.
            rec(3, "10.0.0.99"),
        ];
        let a = abuse_per_ip(&idx(&recs), &labels);
        assert_eq!(a.aa_v6.len(), 2);
        assert_eq!(a.v6_isolated_share(), 0.5);
        assert_eq!(a.aa_v4.len(), 1);
        assert_eq!(a.v4_isolated_share(), 0.0);
        assert_eq!(a.benign_v4.max(), Some(2));
    }

    #[test]
    fn users_per_prefix_aggregates() {
        let recs = vec![
            rec(1, "2001:db8:1:1::a"),
            rec(2, "2001:db8:1:2::b"),
            rec(3, "2001:db8:2:1::c"),
        ];
        let p64 = users_per_prefix(&idx(&recs), 64);
        assert_eq!(p64.ecdf.len(), 3);
        assert_eq!(p64.ecdf.max(), Some(1));
        let p48 = users_per_prefix(&idx(&recs), 48);
        assert_eq!(p48.ecdf.len(), 2);
        assert_eq!(p48.ecdf.max(), Some(2), "users 1,2 share 2001:db8:1::/48");
        let p32 = users_per_prefix(&idx(&recs), 32);
        assert_eq!(p32.ecdf.max(), Some(3));
    }

    #[test]
    fn abuse_per_prefix_counts_cohabitation() {
        let labels = labels_for(&[100]);
        let recs = vec![
            rec(100, "2001:db8:1:1::a"),
            rec(1, "2001:db8:1:2::b"),
            rec(2, "2001:db8:1:3::c"),
            rec(3, "2001:db9::1"), // different /48, no AA
        ];
        let a = abuse_per_prefix(&idx(&recs), &labels, 48);
        assert_eq!(a.aa.len(), 1);
        assert_eq!(a.benign.max(), Some(2));
        let a64 = abuse_per_prefix(&idx(&recs), &labels, 64);
        assert_eq!(a64.benign.max(), Some(0), "AA is alone in its /64");
    }

    #[test]
    fn v4_reference_series() {
        let recs = vec![
            rec(1, "10.0.0.1"),
            rec(2, "10.0.0.1"),
            rec(1, "2001:db8::1"),
        ];
        let e = users_per_v4_addr(&idx(&recs));
        assert_eq!(e.len(), 1);
        assert_eq!(e.max(), Some(2));
    }

    #[test]
    fn empty_inputs() {
        let empty = idx(&[]);
        let u = users_per_ip(&empty);
        assert!(u.v4.is_empty() && u.v6.is_empty());
        let a = abuse_per_ip(&empty, &AbuseLabels::new());
        assert!(a.aa_v4.is_empty());
        assert_eq!(a.v6_isolated_share(), 0.0);
    }
}
