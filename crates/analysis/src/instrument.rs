//! Timing wrapper for analysis passes.
//!
//! Every figure/table regeneration reports two things to the run's
//! observability layer: how long the pass took and how many records it
//! read. [`timed_figure`] measures both around an arbitrary closure and
//! hands back the obs-layer [`FigureStat`], so the experiment registry
//! can append it to the run's `RunReport` without owning any timing
//! logic itself.

use std::time::Instant;

use ipv6_study_obs::FigureStat;

/// Runs one analysis pass, measuring its wall clock.
///
/// `id` is the experiment identifier (e.g. `"F2"`); `input_records` is
/// the pass's input cardinality, reported by the closure alongside its
/// result (the pass itself knows which dataset slices it read).
pub fn timed_figure<T>(id: &str, f: impl FnOnce() -> (T, u64)) -> (T, FigureStat) {
    let t0 = Instant::now();
    let (value, input_records) = f();
    let stat = FigureStat {
        id: id.to_string(),
        wall: t0.elapsed(),
        input_records,
    };
    (value, stat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_value_and_cardinality() {
        let (value, stat) = timed_figure("F9", || ("result", 321));
        assert_eq!(value, "result");
        assert_eq!(stat.id, "F9");
        assert_eq!(stat.input_records, 321);
    }
}
