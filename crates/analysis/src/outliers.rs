//! Outlier analyses (§5.1.3, §5.3.3, §6.1.3, §6.2.3).
//!
//! The paper's outlier findings are the operationally interesting ones:
//! IPv4 outliers (users with thousands of addresses, addresses with
//! hundreds of thousands of users) are *prevalent, diverse and
//! unpredictable*; IPv6 outliers are *rare, concentrated in a few ASNs,
//! and structurally fingerprintable*. These functions extract exactly the
//! statistics the paper quotes, plus the extrapolation machinery used to
//! scale sample counts to population statements.

use std::collections::HashMap;
use std::hash::BuildHasher;
use std::net::IpAddr;

use ipv6_study_netaddr::{IidClass, Ipv6Prefix};
use ipv6_study_stats::counter::TopK;
use ipv6_study_stats::extrapolate::prevalence_ratio;
use ipv6_study_stats::StableHashMap;
use ipv6_study_telemetry::{Asn, ColumnSlice, UserId};

use crate::index::DatasetIndex;

/// Tail statistics of a per-entity count map.
#[derive(Debug, Clone, PartialEq)]
pub struct TailStats {
    /// Entities in the population.
    pub total: u64,
    /// Entities whose count exceeds each queried threshold, with the
    /// threshold. Sorted by threshold ascending.
    pub above: Vec<(u64, u64)>,
    /// The largest count.
    pub max: u64,
    /// The largest counts, descending (up to 20).
    pub top: Vec<u64>,
}

/// Computes tail statistics at the given thresholds.
pub fn tail_stats<K, S: BuildHasher>(counts: &HashMap<K, u64, S>, thresholds: &[u64]) -> TailStats {
    let mut top: Vec<u64> = counts.values().copied().collect();
    top.sort_unstable_by(|a, b| b.cmp(a));
    let above = thresholds
        .iter()
        .map(|&t| (t, top.iter().filter(|&&c| c > t).count() as u64))
        .collect();
    TailStats {
        total: counts.len() as u64,
        above,
        max: top.first().copied().unwrap_or(0),
        top: top.into_iter().take(20).collect(),
    }
}

impl TailStats {
    /// Entities above a threshold (must be one of the queried thresholds).
    pub fn above(&self, threshold: u64) -> u64 {
        self.above
            .iter()
            .find(|&&(t, _)| t == threshold)
            .map(|&(_, c)| c)
            .unwrap_or_else(|| panic!("threshold {threshold} was not queried"))
    }
}

/// §5.1.3's headline comparison: the prevalence of outlier users (above
/// `threshold` addresses) among each protocol's user population, as the
/// ratio v6-prevalence / v4-prevalence (the paper reports 1/12).
pub fn outlier_user_prevalence_ratio<S: BuildHasher>(
    v4_counts: &HashMap<UserId, u64, S>,
    v6_counts: &HashMap<UserId, u64, S>,
    threshold: u64,
) -> Option<f64> {
    let v4_out = v4_counts.values().filter(|&&c| c > threshold).count() as u64;
    let v6_out = v6_counts.values().filter(|&&c| c > threshold).count() as u64;
    prevalence_ratio(
        v6_out,
        v6_counts.len() as u64,
        v4_out,
        v4_counts.len() as u64,
    )
}

/// ASN concentration of heavy entities (addresses or prefixes): which ASNs
/// own the entities whose count exceeds `threshold`, and what share the top
/// ASN and top-4 ASNs hold (§6.1.3: one carrier owns 96% of heavy v6
/// addresses; §6.2.3: M247 holds 21% of heavy /64s, top-4 hold 61%).
#[derive(Debug, Clone)]
pub struct AsnConcentration {
    /// Heavy entities per ASN, ranked.
    pub ranked: Vec<(Asn, u64)>,
    /// Number of distinct ASNs with heavy entities.
    pub asns: usize,
    /// Share held by the top ASN.
    pub top1_share: f64,
    /// Share held by the top 4 ASNs.
    pub top4_share: f64,
}

/// Computes ASN concentration for heavy addresses.
///
/// `counts` gives users per address; the index supplies the address→ASN
/// mapping (each address is attributed to the ASN of its first record in
/// timestamp order — run heads, since runs preserve timestamp order).
pub fn heavy_ip_asn_concentration<S: BuildHasher>(
    index: &DatasetIndex,
    counts: &HashMap<IpAddr, u64, S>,
    threshold: u64,
    want_v6: bool,
) -> AsnConcentration {
    let mut topk: TopK<u32> = TopK::new();
    for (ip, group) in index.ip_groups() {
        if matches!(ip, IpAddr::V6(_)) != want_v6 {
            continue;
        }
        if counts.get(&ip).is_some_and(|&c| c > threshold) {
            topk.add(group.asns()[0].0, 1);
        }
    }
    let ranked: Vec<(Asn, u64)> = topk
        .ranked(usize::MAX)
        .into_iter()
        .map(|(a, c)| (Asn(a), c))
        .collect();
    AsnConcentration {
        asns: topk.num_keys(),
        top1_share: topk.concentration(1),
        top4_share: topk.concentration(4),
        ranked,
    }
}

/// Same concentration analysis for heavy IPv6 prefixes.
///
/// Stays window-order based: a prefix's attributed ASN is the one of its
/// first record in timestamp order, which a per-address walk cannot recover
/// when equal-timestamp records of one prefix span several addresses. The
/// scan reads the id and ASN columns in window (timestamp) order.
pub fn heavy_prefix_asn_concentration<S: BuildHasher>(
    records: ColumnSlice<'_>,
    counts: &HashMap<Ipv6Prefix, u64, S>,
    threshold: u64,
) -> AsnConcentration {
    let mut asn_of: StableHashMap<Ipv6Prefix, Asn> = StableHashMap::default();
    let len = counts.keys().next().map_or(64, |p| p.len());
    let ips = &records.tables().ips;
    for (&id, &asn) in records.ip_ids().iter().zip(records.asns()) {
        if id.is_v6() {
            let p = Ipv6Prefix::from_bits(ips.v6_bits(id), len);
            asn_of.entry(p).or_insert(asn);
        }
    }
    let mut topk: TopK<u32> = TopK::new();
    for (p, &c) in counts {
        if c > threshold {
            if let Some(asn) = asn_of.get(p) {
                topk.add(asn.0, 1);
            }
        }
    }
    let ranked: Vec<(Asn, u64)> = topk
        .ranked(usize::MAX)
        .into_iter()
        .map(|(a, c)| (Asn(a), c))
        .collect();
    AsnConcentration {
        asns: topk.num_keys(),
        top1_share: topk.concentration(1),
        top4_share: topk.concentration(4),
        ranked,
    }
}

/// §6.1.3's predictability result: the share of heavy IPv6 addresses whose
/// IID matches the gateway signature (all-zero except the low 16 bits),
/// versus the same share among non-heavy addresses. A large gap means the
/// outliers are structurally fingerprintable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignaturePredictability {
    /// Heavy addresses carrying the signature / all heavy addresses.
    pub heavy_signature_share: f64,
    /// Light addresses carrying the signature / all light addresses.
    pub light_signature_share: f64,
}

/// Computes signature predictability over v6 address user-counts.
pub fn signature_predictability<S: BuildHasher>(
    counts: &HashMap<IpAddr, u64, S>,
    threshold: u64,
) -> SignaturePredictability {
    let mut heavy = (0u64, 0u64); // (signature, total)
    let mut light = (0u64, 0u64);
    for (ip, &c) in counts {
        if let IpAddr::V6(a) = ip {
            let sig = IidClass::classify(*a).is_gateway_signature();
            let slot = if c > threshold {
                &mut heavy
            } else {
                &mut light
            };
            slot.1 += 1;
            if sig {
                slot.0 += 1;
            }
        }
    }
    let share = |(s, t): (u64, u64)| if t == 0 { 0.0 } else { s as f64 / t as f64 };
    SignaturePredictability {
        heavy_signature_share: share(heavy),
        light_signature_share: share(light),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_telemetry::{Country, OwnedColumns, RequestRecord, SimDate};

    fn rec(user: u64, ip: &str, asn: u32) -> RequestRecord {
        RequestRecord {
            ts: SimDate::ymd(4, 13).at(8, 0, 0),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(asn),
            country: Country::new("US"),
        }
    }

    #[test]
    fn tail_stats_thresholds() {
        let counts: HashMap<u32, u64> =
            [(1, 5), (2, 50), (3, 500), (4, 5000)].into_iter().collect();
        let t = tail_stats(&counts, &[10, 100, 1000]);
        assert_eq!(t.total, 4);
        assert_eq!(t.above(10), 3);
        assert_eq!(t.above(100), 2);
        assert_eq!(t.above(1000), 1);
        assert_eq!(t.max, 5000);
        assert_eq!(t.top[0], 5000);
    }

    #[test]
    #[should_panic(expected = "was not queried")]
    fn tail_stats_unknown_threshold_panics() {
        let counts: HashMap<u32, u64> = [(1, 5)].into_iter().collect();
        tail_stats(&counts, &[10]).above(42);
    }

    #[test]
    fn prevalence_ratio_matches_paper_shape() {
        // 100 v4 users, 10 outliers; 100 v6 users, 1 outlier → ratio 0.1.
        let v4: HashMap<UserId, u64> = (0..100)
            .map(|u| (UserId(u), if u < 10 { 2000 } else { 3 }))
            .collect();
        let v6: HashMap<UserId, u64> = (0..100)
            .map(|u| (UserId(u + 1000), if u == 0 { 2000 } else { 3 }))
            .collect();
        let r = outlier_user_prevalence_ratio(&v4, &v6, 1000).unwrap();
        assert!((r - 0.1).abs() < 1e-12);
    }

    #[test]
    fn asn_concentration_ranks() {
        let records = vec![
            rec(1, "2001:db8::1", 20057),
            rec(2, "2001:db8::2", 20057),
            rec(3, "2001:db8::3", 9009),
            rec(4, "2001:db8::4", 13335),
        ];
        let counts: HashMap<IpAddr, u64> = [
            ("2001:db8::1", 5000u64),
            ("2001:db8::2", 4000),
            ("2001:db8::3", 3000),
            ("2001:db8::4", 10), // light
        ]
        .into_iter()
        .map(|(s, c)| (s.parse().unwrap(), c))
        .collect();
        let c =
            heavy_ip_asn_concentration(&DatasetIndex::from_records(&records), &counts, 1000, true);
        assert_eq!(c.asns, 2);
        assert_eq!(c.ranked[0], (Asn(20057), 2));
        assert!((c.top1_share - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.top4_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_concentration() {
        let records = vec![
            rec(1, "2001:db8:1::1", 9009),
            rec(2, "2001:db8:2::1", 20057),
        ];
        let counts: HashMap<Ipv6Prefix, u64> =
            [("2001:db8:1::/48", 20_000u64), ("2001:db8:2::/48", 15_000)]
                .into_iter()
                .map(|(s, c)| (s.parse().unwrap(), c))
                .collect();
        let owned = OwnedColumns::from_records(&records);
        let c = heavy_prefix_asn_concentration(owned.as_slice(), &counts, 10_000);
        assert_eq!(c.asns, 2);
        assert!((c.top1_share - 0.5).abs() < 1e-12);
    }

    #[test]
    fn signature_separates_heavy_from_light() {
        let counts: HashMap<IpAddr, u64> = [
            // Heavy gateway addresses: low-16-bit IIDs.
            ("2600:380:1:2::ab1", 50_000u64),
            ("2600:380:1:2::c44", 42_000),
            // Light privacy addresses.
            ("2001:db8::a1b2:c3d4:e5f6:1111", 1),
            ("2001:db8::b2c3:d4e5:f6a7:2222", 2),
        ]
        .into_iter()
        .map(|(s, c)| (s.parse().unwrap(), c))
        .collect();
        let p = signature_predictability(&counts, 10_000);
        assert_eq!(p.heavy_signature_share, 1.0);
        assert_eq!(p.light_signature_share, 0.0);
    }
}
