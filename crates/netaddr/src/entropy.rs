//! Nybble-entropy analysis of interface identifiers.
//!
//! Entropy/IP (Foremski, Plonka & Berger, IMC 2016 — related work the paper
//! builds on) showed that per-nybble Shannon entropy exposes the structure
//! of IPv6 address populations: randomized (RFC 4941) IIDs run near the
//! 4-bit/nybble maximum everywhere, while structured allocations (EUI-64,
//! low-counter gateways, server numbering) leave low-entropy positions.
//! This module implements that analysis over 64-bit IIDs, backing the §4.4
//! observation that "most clients likely use randomized IIDs" with a
//! measurable statistic.

/// Per-nybble entropy profile of a population of 64-bit IIDs.
#[derive(Debug, Clone, PartialEq)]
pub struct EntropyProfile {
    /// Shannon entropy in bits (0–4) for each of the 16 nybbles, most
    /// significant first.
    pub bits: [f64; 16],
    /// Number of IIDs analyzed.
    pub samples: u64,
}

impl EntropyProfile {
    /// Computes the profile. Returns `None` for an empty population.
    pub fn compute(iids: impl IntoIterator<Item = u64>) -> Option<EntropyProfile> {
        let mut counts = [[0u64; 16]; 16];
        let mut n = 0u64;
        for iid in iids {
            n += 1;
            for (pos, row) in counts.iter_mut().enumerate() {
                let nybble = ((iid >> (60 - 4 * pos)) & 0xF) as usize;
                row[nybble] += 1;
            }
        }
        if n == 0 {
            return None;
        }
        let mut bits = [0.0f64; 16];
        for (pos, row) in counts.iter().enumerate() {
            let mut h = 0.0;
            for &c in row {
                if c > 0 {
                    let p = c as f64 / n as f64;
                    h -= p * p.log2();
                }
            }
            bits[pos] = h;
        }
        Some(EntropyProfile { bits, samples: n })
    }

    /// Mean entropy across all 16 nybbles (bits/nybble, max 4).
    pub fn mean_bits(&self) -> f64 {
        self.bits.iter().sum::<f64>() / 16.0
    }

    /// Mean entropy of the low 4 nybbles (the counter positions in
    /// structured allocations).
    pub fn low16_bits(&self) -> f64 {
        self.bits[12..].iter().sum::<f64>() / 4.0
    }

    /// Heuristic: does this population look RFC 4941-randomized? True when
    /// the mean entropy is close to the sample-size-limited maximum.
    ///
    /// With `n` samples the observable entropy is capped near `log2(n)`;
    /// we require 80% of `min(4, log2(n))` on average.
    pub fn looks_randomized(&self) -> bool {
        let cap = (self.samples.max(2) as f64).log2().min(4.0);
        self.mean_bits() >= 0.8 * cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_stats::hash::stable_hash64;

    #[test]
    fn empty_population() {
        assert_eq!(EntropyProfile::compute(std::iter::empty()), None);
    }

    #[test]
    fn constant_iids_have_zero_entropy() {
        let p = EntropyProfile::compute(std::iter::repeat_n(0xDEAD_BEEF_0000_0001, 100)).unwrap();
        assert_eq!(p.samples, 100);
        assert!(p.mean_bits() < 1e-12);
        assert!(!p.looks_randomized());
    }

    #[test]
    fn random_iids_have_high_entropy_everywhere() {
        let p = EntropyProfile::compute((0..5000u64).map(|i| stable_hash64(7, &i.to_le_bytes())))
            .unwrap();
        assert!(p.mean_bits() > 3.8, "mean {}", p.mean_bits());
        assert!(p.looks_randomized());
        for (i, &b) in p.bits.iter().enumerate() {
            assert!(b > 3.5, "nybble {i}: {b}");
        }
    }

    #[test]
    fn gateway_signature_population_is_structured() {
        // Low-16-bit-only IIDs: the §6.1.3 outlier structure. High 12
        // nybbles are constant zero; only the low 4 carry entropy.
        let p = EntropyProfile::compute(
            (0..5000u64).map(|i| stable_hash64(9, &i.to_le_bytes()) & 0xFFFF),
        )
        .unwrap();
        assert!(p.bits[..12].iter().all(|&b| b < 1e-12));
        assert!(p.low16_bits() > 3.0, "low nybbles carry the counter");
        assert!(!p.looks_randomized());
    }

    #[test]
    fn eui64_population_shows_the_fffe_plateau() {
        use crate::mac::MacAddr;
        // EUI-64 IIDs share the ff:fe marker in nybbles 6..10 and the OUI
        // in the first nybbles.
        let p = EntropyProfile::compute((0..2000u64).map(|i| {
            MacAddr::new([0x00, 0x1b, 0x63, (i >> 8) as u8, i as u8, (i >> 4) as u8])
                .to_modified_eui64()
        }))
        .unwrap();
        // The ff:fe marker nybbles (positions 6–9) are constant.
        for pos in 6..10 {
            assert!(p.bits[pos] < 1e-9, "marker nybble {pos}: {}", p.bits[pos]);
        }
        assert!(!p.looks_randomized());
    }

    #[test]
    fn small_samples_use_the_entropy_cap() {
        // 4 random samples can show at most 2 bits/nybble; the randomized
        // heuristic must not reject them for that.
        let p = EntropyProfile::compute((0..4u64).map(|i| stable_hash64(11, &i.to_le_bytes())))
            .unwrap();
        assert!(p.looks_randomized(), "mean {} of cap 2", p.mean_bits());
    }
}
