//! Prefix aggregation: minimal covering sets of CIDR prefixes.
//!
//! Operational blocklists grow one /128 or /64 at a time; shipping them to
//! enforcement points (or a threat exchange) wants the *minimal equivalent
//! set*: drop prefixes covered by shorter ones, and merge sibling pairs into
//! their parent. This module implements exact aggregation for both families.
//!
//! The algorithm is the classic two-phase CIDR aggregation:
//!
//! 1. sort by (bits, len) and drop any prefix contained in a kept
//!    predecessor (containment pruning — a single linear scan, because a
//!    covering prefix always sorts immediately before everything it covers);
//! 2. repeatedly merge *sibling* pairs (same length, differing only in
//!    their last network bit) into their parent, re-checking newly formed
//!    parents against their own siblings (stack-based, amortized linear).
//!
//! The result covers exactly the same address set as the input.

use crate::prefix::{Ipv4Prefix, Ipv6Prefix};
use crate::trie::TrieKey;

/// Aggregates a set of prefixes into the minimal equivalent set.
///
/// The output is sorted by (bits, length) and covers exactly the union of
/// the inputs. Duplicates are tolerated.
pub fn aggregate<K: TrieKey>(prefixes: &[K]) -> Vec<K> {
    let mut items: Vec<(u128, u8)> = prefixes
        .iter()
        .map(|p| (p.key_bits(), p.key_len()))
        .collect();
    items.sort_unstable();
    // Phase 1: containment pruning. After sorting, any prefix contained in
    // an earlier-kept prefix is adjacent in order to it (its bits share the
    // keeper's prefix and sort within the keeper's span).
    let mut kept: Vec<(u128, u8)> = Vec::with_capacity(items.len());
    for (bits, len) in items {
        if let Some(&(pb, pl)) = kept.last() {
            if len >= pl && covers(pb, pl, bits) {
                continue; // already covered
            }
        }
        kept.push((bits, len));
    }
    // Phase 2: sibling merging, stack-based.
    let mut stack: Vec<(u128, u8)> = Vec::with_capacity(kept.len());
    for item in kept {
        let mut cur = item;
        loop {
            match stack.last() {
                Some(&(tb, tl)) if tl == cur.1 && cur.1 > 0 && siblings(tb, cur.0, cur.1) => {
                    stack.pop();
                    // Parent: one bit shorter, low sibling's bits.
                    cur = (tb, cur.1 - 1);
                }
                // A parent formed by merging can also newly cover later…
                // it cannot — later items sort after; but the parent may
                // itself be the low sibling of the next input, which the
                // loop handles when that input arrives.
                _ => break,
            }
        }
        stack.push(cur);
    }
    stack.into_iter().map(|(b, l)| K::from_key(b, l)).collect()
}

#[inline]
fn covers(parent_bits: u128, parent_len: u8, child_bits: u128) -> bool {
    let mask = if parent_len == 0 {
        0
    } else {
        u128::MAX << (128 - parent_len)
    };
    child_bits & mask == parent_bits
}

#[inline]
fn siblings(a_bits: u128, b_bits: u128, len: u8) -> bool {
    debug_assert!(len > 0);
    let flip = 1u128 << (128 - len);
    a_bits ^ b_bits == flip
}

/// Convenience: aggregate IPv6 prefixes.
pub fn aggregate_v6(prefixes: &[Ipv6Prefix]) -> Vec<Ipv6Prefix> {
    aggregate(prefixes)
}

/// Convenience: aggregate IPv4 prefixes.
pub fn aggregate_v4(prefixes: &[Ipv4Prefix]) -> Vec<Ipv4Prefix> {
    aggregate(prefixes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::PrefixSet;
    use ipv6_study_stats::testgen::TestGen;
    use std::net::Ipv6Addr;

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn drops_covered_prefixes() {
        let out = aggregate_v6(&[
            p6("2001:db8::/32"),
            p6("2001:db8:1::/48"),
            p6("2001:db8::/64"),
        ]);
        assert_eq!(out, vec![p6("2001:db8::/32")]);
    }

    #[test]
    fn merges_siblings_recursively() {
        // Four /66 quarters merge all the way to the /64.
        let out = aggregate_v6(&[
            Ipv6Prefix::from_bits(0x2001_0db8 << 96, 66),
            Ipv6Prefix::from_bits((0x2001_0db8 << 96) | (1 << 62), 66),
            Ipv6Prefix::from_bits((0x2001_0db8 << 96) | (2 << 62), 66),
            Ipv6Prefix::from_bits((0x2001_0db8 << 96) | (3 << 62), 66),
        ]);
        assert_eq!(out, vec![Ipv6Prefix::from_bits(0x2001_0db8 << 96, 64)]);
    }

    #[test]
    fn non_siblings_do_not_merge() {
        // …:0:0::/64 and …:1:0::/64 under different /63s? 0x...0 and 0x...1
        // in the fourth hextet ARE siblings; 1 and 2 are not.
        let a = p6("2001:db8:0:1::/64");
        let b = p6("2001:db8:0:2::/64");
        let out = aggregate_v6(&[a, b]);
        assert_eq!(out, vec![a, b]);
        let c = p6("2001:db8:0:3::/64");
        let merged = aggregate_v6(&[b, c]);
        assert_eq!(merged, vec![p6("2001:db8:0:2::/63")]);
    }

    #[test]
    fn duplicates_and_empty() {
        assert!(aggregate_v6(&[]).is_empty());
        let out = aggregate_v6(&[p6("::/0"), p6("::/0")]);
        assert_eq!(out, vec![p6("::/0")]);
        let out = aggregate_v6(&[p6("2001:db8::/32"), p6("2001:db8::/32")]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn v4_aggregation() {
        let out = aggregate_v4(&[
            "10.0.0.0/24".parse().unwrap(),
            "10.0.1.0/24".parse().unwrap(),
            "10.0.2.0/24".parse().unwrap(),
        ]);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&"10.0.0.0/23".parse().unwrap()));
        assert!(out.contains(&"10.0.2.0/24".parse().unwrap()));
    }

    /// Aggregation preserves coverage exactly, on both sides.
    #[test]
    fn coverage_is_preserved() {
        let mut g = TestGen::new(0x4147_4701);
        for _ in 0..64 {
            let n = g.range_u64(1, 49) as usize;
            let prefixes: Vec<Ipv6Prefix> = g.vec_of(n, |g| {
                // Short random spans in a narrow length band force overlap.
                Ipv6Prefix::from_bits(g.next_u128(), g.range_u8(48, 68))
            });
            let aggregated = aggregate_v6(&prefixes);
            assert!(aggregated.len() <= prefixes.len());

            let before: PrefixSet<Ipv6Prefix> = prefixes.iter().copied().collect();
            let after: PrefixSet<Ipv6Prefix> = aggregated.iter().copied().collect();
            // Probe random addresses plus every input boundary.
            let mut addrs: Vec<Ipv6Addr> = g.vec_of(50, |g| Ipv6Addr::from(g.next_u128()));
            for p in &prefixes {
                addrs.push(p.network());
                addrs.push(p.last_addr());
            }
            for a in addrs {
                assert_eq!(before.covers_addr(a), after.covers_addr(a), "probe {}", a);
            }
        }
    }

    /// Aggregated output has no internally redundant prefixes.
    #[test]
    fn output_is_irredundant() {
        let mut g = TestGen::new(0x4147_4702);
        for _ in 0..64 {
            let n = g.range_u64(1, 39) as usize;
            let prefixes: Vec<Ipv6Prefix> = g.vec_of(n, |g| {
                Ipv6Prefix::from_bits(g.next_u128(), g.range_u8(40, 64))
            });
            let out = aggregate_v6(&prefixes);
            for (i, a) in out.iter().enumerate() {
                for (j, b) in out.iter().enumerate() {
                    if i != j {
                        assert!(!a.contains(b), "{a} contains {b}");
                    }
                }
            }
            // Idempotent.
            assert_eq!(aggregate_v6(&out), out);
        }
    }
}
