//! Prefix aggregation: minimal covering sets of CIDR prefixes, and the
//! level-compressed counting trie behind the one-pass granularity sweep.
//!
//! Operational blocklists grow one /128 or /64 at a time; shipping them to
//! enforcement points (or a threat exchange) wants the *minimal equivalent
//! set*: drop prefixes covered by shorter ones, and merge sibling pairs into
//! their parent. This module implements exact aggregation for both families.
//!
//! The algorithm is the classic two-phase CIDR aggregation:
//!
//! 1. sort by (bits, len) and drop any prefix contained in a kept
//!    predecessor (containment pruning — a single linear scan, because a
//!    covering prefix always sorts immediately before everything it covers);
//! 2. repeatedly merge *sibling* pairs (same length, differing only in
//!    their last network bit) into their parent, re-checking newly formed
//!    parents against their own siblings (stack-based, amortized linear).
//!
//! The result covers exactly the same address set as the input.
//!
//! The second half of the module is [`AggregationTrie`]: a path-compressed
//! binary trie over a day's distinct `(user, address)` pairs that carries
//! exact distinct-user abusive/benign counts on *every* node, so that the
//! per-granularity tallies of the Figure-11 ROC sweep — and arbitrary
//! variable-length cuts — read off one shared structure instead of
//! re-sorting the record set per prefix length. See DESIGN.md §11.

use crate::entropy::EntropyProfile;
use crate::prefix::{Ipv4Prefix, Ipv6Prefix};
use crate::trie::TrieKey;

/// Aggregates a set of prefixes into the minimal equivalent set.
///
/// The output is sorted by (bits, length) and covers exactly the union of
/// the inputs. Duplicates are tolerated.
pub fn aggregate<K: TrieKey>(prefixes: &[K]) -> Vec<K> {
    let mut items: Vec<(u128, u8)> = prefixes
        .iter()
        .map(|p| (p.key_bits(), p.key_len()))
        .collect();
    items.sort_unstable();
    // Phase 1: containment pruning. After sorting, any prefix contained in
    // an earlier-kept prefix is adjacent in order to it (its bits share the
    // keeper's prefix and sort within the keeper's span).
    let mut kept: Vec<(u128, u8)> = Vec::with_capacity(items.len());
    for (bits, len) in items {
        if let Some(&(pb, pl)) = kept.last() {
            if len >= pl && covers(pb, pl, bits) {
                continue; // already covered
            }
        }
        kept.push((bits, len));
    }
    // Phase 2: sibling merging, stack-based.
    let mut stack: Vec<(u128, u8)> = Vec::with_capacity(kept.len());
    for item in kept {
        let mut cur = item;
        loop {
            match stack.last() {
                Some(&(tb, tl)) if tl == cur.1 && cur.1 > 0 && siblings(tb, cur.0, cur.1) => {
                    stack.pop();
                    // Parent: one bit shorter, low sibling's bits.
                    cur = (tb, cur.1 - 1);
                }
                // A parent formed by merging can also newly cover later…
                // it cannot — later items sort after; but the parent may
                // itself be the low sibling of the next input, which the
                // loop handles when that input arrives.
                _ => break,
            }
        }
        stack.push(cur);
    }
    stack.into_iter().map(|(b, l)| K::from_key(b, l)).collect()
}

#[inline]
fn covers(parent_bits: u128, parent_len: u8, child_bits: u128) -> bool {
    let mask = if parent_len == 0 {
        0
    } else {
        u128::MAX << (128 - parent_len)
    };
    child_bits & mask == parent_bits
}

#[inline]
fn siblings(a_bits: u128, b_bits: u128, len: u8) -> bool {
    debug_assert!(len > 0);
    let flip = 1u128 << (128 - len);
    a_bits ^ b_bits == flip
}

/// Convenience: aggregate IPv6 prefixes.
pub fn aggregate_v6(prefixes: &[Ipv6Prefix]) -> Vec<Ipv6Prefix> {
    aggregate(prefixes)
}

/// Convenience: aggregate IPv4 prefixes.
pub fn aggregate_v4(prefixes: &[Ipv4Prefix]) -> Vec<Ipv4Prefix> {
    aggregate(prefixes)
}

const NO_PARENT: u32 = u32::MAX;

/// Prefix mask for a left-aligned key of `len` network bits.
#[inline]
fn key_mask(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len)
    }
}

/// One node of an [`AggregationTrie`].
///
/// Path compression means a node stands for the whole run of single-child
/// trie levels between its parent's branching depth and its own: the node's
/// distinct-user counts are the counts of *every* cut length `l` with
/// `parent_depth < l <= depth` (the compression invariant — no user set
/// changes along an unbranched path).
#[derive(Debug, Clone)]
pub struct AggNode {
    /// Left-aligned key bits, masked to `depth` bits.
    pub bits: u128,
    /// Prefix length of this node (`MAX_LEN` for leaves).
    pub depth: u8,
    /// Prefix length of the parent node (0 for the root).
    pub parent_depth: u8,
    /// Distinct abusive users with at least one address in this subtree.
    pub abusive: u64,
    /// Distinct benign users with at least one address in this subtree.
    pub benign: u64,
    parent: u32,
    subtree_end: u32,
}

/// A variable-length cut unit produced by
/// [`AggregationTrie::entropy_cuts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggCut {
    /// Left-aligned key bits, masked to `len` bits.
    pub bits: u128,
    /// The entropy-chosen cut length of this unit.
    pub len: u8,
    /// Distinct abusive users under the cut prefix.
    pub abusive: u64,
    /// Distinct benign users under the cut prefix.
    pub benign: u64,
}

/// A path-compressed binary trie over one day's distinct `(user, address)`
/// pairs, with exact distinct-user abusive/benign counts on every node.
///
/// Built once in `O(pairs log pairs)` (one sort), the trie answers the
/// per-prefix-length tallies of every granularity in `O(nodes)` each —
/// replacing the per-granularity sort-and-dedup of the naive tally. The
/// counts are *distinct users*, not requests: a user appearing under a
/// prefix through ten addresses counts once.
///
/// The construction is deterministic: node order, counts and cut choices
/// depend only on the input pair set, never on thread count or hash-map
/// iteration order.
#[derive(Debug, Clone, Default)]
pub struct AggregationTrie {
    max_len: u8,
    nodes: Vec<AggNode>,
}

impl AggregationTrie {
    /// Builds the trie from `(bits, user, is_abusive)` pairs that are
    /// strictly sorted by `(user, bits)` with duplicates removed. Address
    /// bits must be left-aligned (IPv4 callers shift by 96) and carry no
    /// payload beyond `max_len` bits.
    ///
    /// Counting works by inclusion–exclusion on the sorted pair stream:
    /// each pair deposits `+1` at its leaf, and each *consecutive* pair of
    /// the same user deposits `-1` at the two addresses' lowest common
    /// ancestor (the branching node at their common-prefix depth, which
    /// the construction always materializes). A bottom-up subtree sum then
    /// leaves every node with exactly its distinct-user count: inside any
    /// subtree, a user with `k` addresses contributes `k` leaves and
    /// `k - 1` ancestors-of-consecutive-pairs, netting one.
    pub fn from_sorted_pairs(max_len: u8, pairs: &[(u128, u32, bool)]) -> Self {
        assert!(
            (1..=128).contains(&max_len),
            "max_len {max_len} out of range"
        );
        debug_assert!(
            pairs
                .windows(2)
                .all(|w| (w[0].1, w[0].0) < (w[1].1, w[1].0)),
            "pairs must be strictly sorted by (user, bits)"
        );
        debug_assert!(
            pairs.iter().all(|p| p.0 & !key_mask(max_len) == 0),
            "address bits beyond max_len"
        );

        // Distinct leaves, in address order.
        let mut leaves: Vec<u128> = pairs.iter().map(|p| p.0).collect();
        leaves.sort_unstable();
        leaves.dedup();
        if leaves.is_empty() {
            return Self {
                max_len,
                nodes: Vec::new(),
            };
        }

        // Single left-to-right pass over the sorted leaves with a stack of
        // the open rightmost path (strictly increasing depths). Each new
        // leaf closes every open node deeper than its common-prefix depth
        // with its predecessor, linking the closed chain to the branching
        // node at that depth (created on demand).
        let lcp = |a: u128, b: u128| -> u8 { (a ^ b).leading_zeros() as u8 };
        let mut nodes: Vec<AggNode> = Vec::with_capacity(2 * leaves.len());
        let push_node = |nodes: &mut Vec<AggNode>, bits: u128, depth: u8| -> u32 {
            nodes.push(AggNode {
                bits,
                depth,
                parent_depth: 0,
                abusive: 0,
                benign: 0,
                parent: NO_PARENT,
                subtree_end: 0,
            });
            (nodes.len() - 1) as u32
        };
        let mut stack: Vec<u32> = Vec::new();
        stack.push(push_node(&mut nodes, leaves[0], max_len));
        for i in 1..leaves.len() {
            let d = lcp(leaves[i - 1], leaves[i]);
            debug_assert!(d < max_len, "duplicate leaves survived dedup");
            let mut child = NO_PARENT;
            while let Some(&top) = stack.last() {
                if nodes[top as usize].depth <= d {
                    break;
                }
                stack.pop();
                if child != NO_PARENT {
                    nodes[child as usize].parent = top;
                }
                child = top;
            }
            debug_assert_ne!(child, NO_PARENT, "previous leaf is always deeper");
            let attach = match stack.last() {
                Some(&top) if nodes[top as usize].depth == d => top,
                _ => {
                    let n = push_node(&mut nodes, leaves[i] & key_mask(d), d);
                    stack.push(n);
                    n
                }
            };
            nodes[child as usize].parent = attach;
            stack.push(push_node(&mut nodes, leaves[i], max_len));
        }
        let mut child = NO_PARENT;
        while let Some(top) = stack.pop() {
            if child != NO_PARENT {
                nodes[child as usize].parent = top;
            }
            child = top;
        }

        // Preorder layout: sorting by (bits, depth) puts every parent
        // before its children and keeps each subtree contiguous, which is
        // what makes the per-length read-off emit units in key order.
        let mut order: Vec<u32> = (0..nodes.len() as u32).collect();
        order.sort_unstable_by_key(|&i| {
            let n = &nodes[i as usize];
            (n.bits, n.depth)
        });
        let mut rank = vec![0u32; nodes.len()];
        for (new_i, &old_i) in order.iter().enumerate() {
            rank[old_i as usize] = new_i as u32;
        }
        let mut sorted: Vec<AggNode> = order
            .iter()
            .map(|&old_i| {
                let mut n = nodes[old_i as usize].clone();
                if n.parent != NO_PARENT {
                    n.parent = rank[n.parent as usize];
                }
                n
            })
            .collect();
        for i in 0..sorted.len() {
            sorted[i].parent_depth = if sorted[i].parent == NO_PARENT {
                0
            } else {
                debug_assert!((sorted[i].parent as usize) < i, "preorder parent link");
                sorted[sorted[i].parent as usize].depth
            };
        }

        // Deposit the inclusion–exclusion deltas, then sum bottom-up.
        // Intermediate values can go negative at branching nodes (they
        // hold only `-1`s before their subtrees are added), so accumulate
        // in i64.
        let find = |sorted: &[AggNode], bits: u128, depth: u8| -> usize {
            sorted
                .binary_search_by(|n| (n.bits, n.depth).cmp(&(bits, depth)))
                .expect("delta target node exists by construction")
        };
        let mut abusive = vec![0i64; sorted.len()];
        let mut benign = vec![0i64; sorted.len()];
        let mut prev: Option<(u32, u128)> = None;
        for &(bits, user, is_abusive) in pairs {
            let counts = if is_abusive {
                &mut abusive
            } else {
                &mut benign
            };
            counts[find(&sorted, bits, max_len)] += 1;
            if let Some((prev_user, prev_bits)) = prev {
                if prev_user == user {
                    let d = lcp(prev_bits, bits);
                    counts[find(&sorted, bits & key_mask(d), d)] -= 1;
                }
            }
            prev = Some((user, bits));
        }
        for (i, node) in sorted.iter_mut().enumerate() {
            node.subtree_end = i as u32;
        }
        for i in (1..sorted.len()).rev() {
            let p = sorted[i].parent as usize;
            abusive[p] += abusive[i];
            benign[p] += benign[i];
            sorted[p].subtree_end = sorted[p].subtree_end.max(sorted[i].subtree_end);
        }
        for (i, node) in sorted.iter_mut().enumerate() {
            debug_assert!(abusive[i] >= 0 && benign[i] >= 0, "negative subtree sum");
            node.abusive = abusive[i] as u64;
            node.benign = benign[i] as u64;
        }
        Self {
            max_len,
            nodes: sorted,
        }
    }

    /// Builds from unsorted `(bits, user)` pairs and a per-user label
    /// function (convenience for tests and one-off callers; hot paths
    /// pre-sort dense ids and use [`Self::from_sorted_pairs`]).
    pub fn from_pairs(
        max_len: u8,
        pairs: &[(u128, u32)],
        is_abusive: impl Fn(u32) -> bool,
    ) -> Self {
        let mut sorted: Vec<(u32, u128)> = pairs.iter().map(|&(b, u)| (u, b)).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let labeled: Vec<(u128, u32, bool)> = sorted
            .into_iter()
            .map(|(u, b)| (b, u, is_abusive(u)))
            .collect();
        Self::from_sorted_pairs(max_len, &labeled)
    }

    /// The family's maximum prefix length (32 or 128).
    pub fn max_len(&self) -> u8 {
        self.max_len
    }

    /// Number of trie nodes (leaves plus branching nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// True when the trie holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The preorder node array (sorted by `(bits, depth)`).
    pub fn nodes(&self) -> &[AggNode] {
        &self.nodes
    }

    /// Whether `node` represents the cut at `len`: by the compression
    /// invariant a node owns every length in `(parent_depth, depth]`.
    #[inline]
    fn owns_cut(node: &AggNode, len: u8) -> bool {
        node.parent_depth < len && len <= node.depth
    }

    /// The distinct-user units at cut length `len`, as
    /// `(masked_bits, abusive, benign)` in ascending key order. `len`
    /// clamps to the family's maximum; `len == 0` yields the single
    /// whole-space unit. Each call is one `O(nodes)` scan.
    pub fn units_at(&self, len: u8) -> impl Iterator<Item = (u128, u64, u64)> + '_ {
        let len = len.min(self.max_len);
        let root = if len == 0 && !self.nodes.is_empty() {
            Some((0u128, self.nodes[0].abusive, self.nodes[0].benign))
        } else {
            None
        };
        let mask = key_mask(len);
        // `owns_cut(_, 0)` is never true, so the root special case above
        // is the only len == 0 emitter.
        let rest = self
            .nodes
            .iter()
            .filter(move |n| Self::owns_cut(n, len))
            .map(move |n| (n.bits & mask, n.abusive, n.benign));
        root.into_iter().chain(rest)
    }

    /// Number of units at cut length `len` (the count [`Self::units_at`]
    /// would yield).
    pub fn unit_count(&self, len: u8) -> usize {
        let len = len.min(self.max_len);
        if len == 0 {
            return usize::from(!self.nodes.is_empty());
        }
        self.nodes.iter().filter(|n| Self::owns_cut(n, len)).count()
    }

    /// Distinct-user `(abusive, benign)` counts under the prefix
    /// `(bits, len)`, or `None` when no address of the day falls inside
    /// it. Logarithmic: a binary search for the first node at or after
    /// `bits`, then a short walk up the open path.
    pub fn counts_under(&self, bits: u128, len: u8) -> Option<(u64, u64)> {
        let len = len.min(self.max_len);
        if self.nodes.is_empty() {
            return None;
        }
        if len == 0 {
            return Some((self.nodes[0].abusive, self.nodes[0].benign));
        }
        let bits = bits & key_mask(len);
        // The owning node, if present, is the first node in preorder whose
        // (bits, depth) >= (bits, len) and which still covers `bits`.
        let idx = self
            .nodes
            .partition_point(|n| (n.bits, n.depth) < (bits, len));
        let n = self.nodes.get(idx)?;
        (n.bits & key_mask(len) == bits && Self::owns_cut(n, len)).then_some((n.abusive, n.benign))
    }

    /// Entropy-guided variable-length cuts, in the spirit of entropy
    /// clustering of announced IPv6 space: within every base unit at
    /// `base_len`, the cut deepens by one nybble (4 bits) for each leading
    /// nybble of the per-subtree [`EntropyProfile`] whose entropy is at or
    /// below `threshold` bits, up to `base_len + 64` (and the family
    /// maximum). Structured subnets (low nybble entropy) thus aggregate
    /// deep; randomized space stays at the base cut. Units come back in
    /// ascending key order.
    pub fn entropy_cuts(&self, base_len: u8, threshold: f64) -> Vec<AggCut> {
        assert!(
            base_len >= 1 && base_len <= self.max_len,
            "base_len {base_len} out of range"
        );
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < self.nodes.len() {
            if !Self::owns_cut(&self.nodes[i], base_len) {
                i += 1;
                continue;
            }
            // One base unit: its subtree is the contiguous preorder run.
            let end = self.nodes[i].subtree_end as usize;
            let profile = EntropyProfile::compute(
                self.nodes[i..=end]
                    .iter()
                    .filter(|n| n.depth == self.max_len)
                    .map(|n| ((n.bits << base_len) >> 64) as u64),
            );
            let mut cut = base_len;
            if let Some(p) = &profile {
                for &nybble_bits in p.bits.iter() {
                    if cut >= self.max_len || cut >= base_len.saturating_add(64) {
                        break;
                    }
                    if nybble_bits > threshold {
                        break;
                    }
                    cut += 4;
                }
            }
            let cut = cut.min(self.max_len);
            let mask = key_mask(cut);
            out.extend(
                self.nodes[i..=end]
                    .iter()
                    .filter(|n| Self::owns_cut(n, cut))
                    .map(|n| AggCut {
                        bits: n.bits & mask,
                        len: cut,
                        abusive: n.abusive,
                        benign: n.benign,
                    }),
            );
            i = end + 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::PrefixSet;
    use ipv6_study_stats::testgen::TestGen;
    use std::net::Ipv6Addr;

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn drops_covered_prefixes() {
        let out = aggregate_v6(&[
            p6("2001:db8::/32"),
            p6("2001:db8:1::/48"),
            p6("2001:db8::/64"),
        ]);
        assert_eq!(out, vec![p6("2001:db8::/32")]);
    }

    #[test]
    fn merges_siblings_recursively() {
        // Four /66 quarters merge all the way to the /64.
        let out = aggregate_v6(&[
            Ipv6Prefix::from_bits(0x2001_0db8 << 96, 66),
            Ipv6Prefix::from_bits((0x2001_0db8 << 96) | (1 << 62), 66),
            Ipv6Prefix::from_bits((0x2001_0db8 << 96) | (2 << 62), 66),
            Ipv6Prefix::from_bits((0x2001_0db8 << 96) | (3 << 62), 66),
        ]);
        assert_eq!(out, vec![Ipv6Prefix::from_bits(0x2001_0db8 << 96, 64)]);
    }

    #[test]
    fn non_siblings_do_not_merge() {
        // …:0:0::/64 and …:1:0::/64 under different /63s? 0x...0 and 0x...1
        // in the fourth hextet ARE siblings; 1 and 2 are not.
        let a = p6("2001:db8:0:1::/64");
        let b = p6("2001:db8:0:2::/64");
        let out = aggregate_v6(&[a, b]);
        assert_eq!(out, vec![a, b]);
        let c = p6("2001:db8:0:3::/64");
        let merged = aggregate_v6(&[b, c]);
        assert_eq!(merged, vec![p6("2001:db8:0:2::/63")]);
    }

    #[test]
    fn duplicates_and_empty() {
        assert!(aggregate_v6(&[]).is_empty());
        let out = aggregate_v6(&[p6("::/0"), p6("::/0")]);
        assert_eq!(out, vec![p6("::/0")]);
        let out = aggregate_v6(&[p6("2001:db8::/32"), p6("2001:db8::/32")]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn v4_aggregation() {
        let out = aggregate_v4(&[
            "10.0.0.0/24".parse().unwrap(),
            "10.0.1.0/24".parse().unwrap(),
            "10.0.2.0/24".parse().unwrap(),
        ]);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&"10.0.0.0/23".parse().unwrap()));
        assert!(out.contains(&"10.0.2.0/24".parse().unwrap()));
    }

    /// Aggregation preserves coverage exactly, on both sides.
    #[test]
    fn coverage_is_preserved() {
        let mut g = TestGen::new(0x4147_4701);
        for _ in 0..64 {
            let n = g.range_u64(1, 49) as usize;
            let prefixes: Vec<Ipv6Prefix> = g.vec_of(n, |g| {
                // Short random spans in a narrow length band force overlap.
                Ipv6Prefix::from_bits(g.next_u128(), g.range_u8(48, 68))
            });
            let aggregated = aggregate_v6(&prefixes);
            assert!(aggregated.len() <= prefixes.len());

            let before: PrefixSet<Ipv6Prefix> = prefixes.iter().copied().collect();
            let after: PrefixSet<Ipv6Prefix> = aggregated.iter().copied().collect();
            // Probe random addresses plus every input boundary.
            let mut addrs: Vec<Ipv6Addr> = g.vec_of(50, |g| Ipv6Addr::from(g.next_u128()));
            for p in &prefixes {
                addrs.push(p.network());
                addrs.push(p.last_addr());
            }
            for a in addrs {
                assert_eq!(before.covers_addr(a), after.covers_addr(a), "probe {}", a);
            }
        }
    }

    /// Naive reference tally: mask, dedup `(user, unit)`, count per unit
    /// by label — the sort-and-dedup the trie replaces.
    fn naive_units(
        pairs: &[(u128, u32)],
        is_abusive: impl Fn(u32) -> bool,
        len: u8,
    ) -> Vec<(u128, u64, u64)> {
        let mask = if len == 0 {
            0
        } else {
            u128::MAX << (128 - len)
        };
        let mut units: Vec<(u128, u32)> = pairs.iter().map(|&(b, u)| (b & mask, u)).collect();
        units.sort_unstable();
        units.dedup();
        let mut out: Vec<(u128, u64, u64)> = Vec::new();
        for (key, user) in units {
            match out.last_mut() {
                Some(last) if last.0 == key => {
                    if is_abusive(user) {
                        last.1 += 1;
                    } else {
                        last.2 += 1;
                    }
                }
                _ => {
                    let ab = u64::from(is_abusive(user));
                    out.push((key, ab, 1 - ab));
                }
            }
        }
        out
    }

    /// Random population of users with clustered addresses, exercising
    /// shared prefixes, multi-address users and duplicate pairs.
    fn random_population(g: &mut TestGen) -> Vec<(u128, u32)> {
        let users = g.range_u64(1, 30) as u32;
        let n = g.range_u64(1, 200) as usize;
        g.vec_of(n, |g| {
            let user = g.range_u64(0, u64::from(users)) as u32;
            // Cluster addresses: a shared /48, a per-user /64, random IID.
            let site = u128::from(g.range_u64(0, 4)) << 80;
            let subnet = u128::from(user) << 64;
            let iid = u128::from(g.next_u64() >> g.range_u8(0, 63));
            (site | subnet | iid, user)
        })
    }

    #[test]
    fn trie_counts_a_tiny_population_exactly() {
        let abusive = |u: u32| u == 1;
        // User 0 (benign): two addresses in one /64. User 1 (abusive):
        // one of those plus a distant /64.
        let a = 0x2001_0db8_0000_0001u128 << 64 | 0x1;
        let b = 0x2001_0db8_0000_0001u128 << 64 | 0x2;
        let c = 0x2001_0db8_0000_0002u128 << 64 | 0x1;
        let t = AggregationTrie::from_pairs(128, &[(a, 0), (b, 0), (b, 1), (c, 1)], abusive);
        let at = |len| t.units_at(len).collect::<Vec<_>>();
        assert_eq!(at(128), vec![(a, 0, 1), (b, 1, 1), (c, 1, 0)]);
        // At /64 user 0 dedups to one unit; user 1 spans both units.
        assert_eq!(
            at(64),
            vec![(a & (u128::MAX << 64), 1, 1), (c & (u128::MAX << 64), 1, 0)]
        );
        assert_eq!(at(48), vec![(a & (u128::MAX << 80), 1, 1)]);
        assert_eq!(at(0), vec![(0, 1, 1)]);
        assert_eq!(t.counts_under(a, 64), Some((1, 1)));
        assert_eq!(t.counts_under(1u128 << 127, 1), None);
    }

    /// The tentpole property: per-length trie read-off equals the naive
    /// sort-and-dedup tally, for every studied length plus the clamps.
    #[test]
    fn trie_units_match_naive_tally_on_random_populations() {
        let mut g = TestGen::new(0x4147_5401);
        for _ in 0..48 {
            let pairs = random_population(&mut g);
            let abusive = |u: u32| u.is_multiple_of(3);
            let t = AggregationTrie::from_pairs(128, &pairs, abusive);
            let distinct: std::collections::HashSet<u128> = pairs.iter().map(|p| p.0).collect();
            assert!(
                t.node_count() < 2 * distinct.len().max(1),
                "compression bound violated"
            );
            for len in [0u8, 1, 32, 47, 48, 56, 63, 64, 65, 127, 128, 200] {
                let got: Vec<_> = t.units_at(len).collect();
                assert_eq!(got.len(), t.unit_count(len));
                assert_eq!(got, naive_units(&pairs, abusive, len.min(128)), "len {len}");
                for &(key, ab, be) in &got {
                    assert_eq!(t.counts_under(key, len), Some((ab, be)), "len {len}");
                }
            }
        }
    }

    /// Entropy cuts partition each base unit: disjoint prefixes covering
    /// every leaf, each with exact distinct-user counts.
    #[test]
    fn entropy_cuts_partition_the_space_with_exact_counts() {
        let mut g = TestGen::new(0x4147_5402);
        for _ in 0..32 {
            let pairs = random_population(&mut g);
            let abusive = |u: u32| u.is_multiple_of(2);
            let t = AggregationTrie::from_pairs(128, &pairs, abusive);
            let cuts = t.entropy_cuts(32, 2.0);
            // Sorted, disjoint, counts agree with direct lookups.
            for w in cuts.windows(2) {
                assert!(w[0].bits < w[1].bits || w[0].len != w[1].len);
            }
            for c in &cuts {
                assert!(c.len >= 32 && c.len <= 128);
                assert_eq!(t.counts_under(c.bits, c.len), Some((c.abusive, c.benign)));
            }
            // Every leaf is covered by exactly one cut.
            for &(addr, _) in &pairs {
                let covering = cuts
                    .iter()
                    .filter(|c| {
                        let mask = u128::MAX << (128 - c.len);
                        addr & mask == c.bits
                    })
                    .count();
                assert_eq!(covering, 1, "leaf covered by {covering} cuts");
            }
        }
    }

    /// Structured space (low nybble entropy past the base) aggregates
    /// deeper than randomized space.
    #[test]
    fn entropy_cuts_deepen_on_structured_space() {
        // One /32 with everything in a single /64 (fully structured
        // beyond the base): cut deepens past the base.
        let structured: Vec<(u128, u32)> = (0..64u128)
            .map(|i| ((0x2001_0db8u128 << 96) | i, i as u32))
            .collect();
        let t = AggregationTrie::from_pairs(128, &structured, |_| false);
        let cuts = t.entropy_cuts(32, 2.0);
        assert!(cuts.iter().all(|c| c.len > 32), "structured stays shallow");

        // Randomized high nybbles right after the base keep the base cut.
        let mut g = TestGen::new(0x4147_5403);
        let randomized: Vec<(u128, u32)> = (0..256u32)
            .map(|i| {
                (
                    (0x2001_0db8u128 << 96) | (u128::from(g.next_u64()) << 32),
                    i,
                )
            })
            .collect();
        let t = AggregationTrie::from_pairs(128, &randomized, |_| false);
        let cuts = t.entropy_cuts(32, 2.0);
        assert_eq!(cuts.len(), 1, "randomized space collapses to the base");
        assert_eq!(cuts[0].len, 32);
    }

    #[test]
    fn empty_and_v4_tries() {
        let t = AggregationTrie::from_pairs(128, &[], |_| false);
        assert!(t.is_empty());
        assert_eq!(t.units_at(64).count(), 0);
        assert_eq!(t.counts_under(0, 0), None);

        // IPv4 uses left-aligned 32-bit keys.
        let pairs: Vec<(u128, u32)> = vec![
            (u128::from(0x0a00_0001u32) << 96, 0),
            (u128::from(0x0a00_0002u32) << 96, 1),
        ];
        let t = AggregationTrie::from_pairs(32, &pairs, |u| u == 1);
        assert_eq!(
            t.units_at(32).collect::<Vec<_>>(),
            vec![
                (u128::from(0x0a00_0001u32) << 96, 0, 1),
                (u128::from(0x0a00_0002u32) << 96, 1, 0)
            ]
        );
        // Lengths beyond the family maximum clamp.
        assert_eq!(t.units_at(64).count(), 2);
        assert_eq!(t.units_at(24).count(), 1);
    }

    /// Aggregated output has no internally redundant prefixes.
    #[test]
    fn output_is_irredundant() {
        let mut g = TestGen::new(0x4147_4702);
        for _ in 0..64 {
            let n = g.range_u64(1, 39) as usize;
            let prefixes: Vec<Ipv6Prefix> = g.vec_of(n, |g| {
                Ipv6Prefix::from_bits(g.next_u128(), g.range_u8(40, 64))
            });
            let out = aggregate_v6(&prefixes);
            for (i, a) in out.iter().enumerate() {
                for (j, b) in out.iter().enumerate() {
                    if i != j {
                        assert!(!a.contains(b), "{a} contains {b}");
                    }
                }
            }
            // Idempotent.
            assert_eq!(aggregate_v6(&out), out);
        }
    }
}
