//! Interface-identifier (IID) classification for IPv6 client addresses.
//!
//! §4.4 and §6.1.3 of the paper analyze the structure of the low 64 bits of
//! client addresses:
//!
//! * **MAC-embedded (modified EUI-64)** IIDs carry `ff:fe` in the middle —
//!   ~2.5% of the paper's users (RFC 7707 calls these out as a
//!   reconnaissance aid).
//! * **Transition protocols**: Teredo addresses live in `2001:0::/32`
//!   (RFC 4380) and 6to4 in `2002::/16` (RFC 3056) — together <0.01% of
//!   users.
//! * **Gateway signature**: the heavily populated outlier addresses of
//!   §6.1.3 have IIDs that are all zero except the low 16 bits, a structure
//!   distinctive enough to predict heavy population ("making creating
//!   signatures for heavily populated IP addresses feasible").
//! * **Opaque** (randomized / unclassified) IIDs — the RFC 4941 privacy
//!   extension default, the vast majority of clients.

use std::net::Ipv6Addr;

use crate::mac::MacAddr;

/// The Teredo service prefix, `2001:0::/32` (RFC 4380).
pub const TEREDO_PREFIX_BITS: u128 = 0x2001_0000 << 96;
/// The 6to4 relay prefix, `2002::/16` (RFC 3056).
pub const SIX_TO_FOUR_PREFIX_BITS: u128 = 0x2002u128 << 112;

/// Extracts the 64-bit interface identifier (the low 64 bits) of an address.
pub fn iid(addr: Ipv6Addr) -> u64 {
    u128::from(addr) as u64
}

/// Extracts the 64-bit network portion (the high 64 bits) of an address.
pub fn network64(addr: Ipv6Addr) -> u64 {
    (u128::from(addr) >> 64) as u64
}

/// Structural classification of an IPv6 client address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IidClass {
    /// Teredo tunnel address (`2001:0::/32`). Classified on the *network*
    /// portion; takes precedence over IID structure.
    Teredo,
    /// 6to4 tunnel address (`2002::/16`). Also a network-portion class.
    SixToFour,
    /// Modified EUI-64 IID with an embedded MAC address.
    MacEmbedded(MacAddr),
    /// IID is zero except its low 16 bits — the heavily-populated-gateway
    /// signature from §6.1.3 (observed on one mobile carrier's egress
    /// addresses). The payload is the low-16-bit value.
    LowBits16(u16),
    /// Anything else: randomized (RFC 4941 privacy) or otherwise opaque.
    Opaque,
}

impl IidClass {
    /// Classifies an address. Transition-protocol prefixes are checked
    /// first (they define *where* the address lives), then IID structure.
    pub fn classify(addr: Ipv6Addr) -> Self {
        let raw = u128::from(addr);
        if raw & (u128::MAX << 96) == TEREDO_PREFIX_BITS {
            return IidClass::Teredo;
        }
        if raw & (u128::MAX << 112) == SIX_TO_FOUR_PREFIX_BITS {
            return IidClass::SixToFour;
        }
        let iid = raw as u64;
        if let Some(mac) = MacAddr::from_modified_eui64(iid) {
            return IidClass::MacEmbedded(mac);
        }
        if iid != 0 && iid <= u64::from(u16::MAX) {
            return IidClass::LowBits16(iid as u16);
        }
        IidClass::Opaque
    }

    /// Whether this address came through an IPv4→IPv6 transition protocol.
    pub fn is_transition(self) -> bool {
        matches!(self, IidClass::Teredo | IidClass::SixToFour)
    }

    /// Whether the IID leaks a hardware identifier.
    pub fn is_mac_embedded(self) -> bool {
        matches!(self, IidClass::MacEmbedded(_))
    }

    /// Whether the IID matches the heavily-populated-gateway signature.
    pub fn is_gateway_signature(self) -> bool {
        matches!(self, IidClass::LowBits16(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_stats::testgen::TestGen;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn iid_and_network_split() {
        let a = addr("2001:db8:1:2:3:4:5:6");
        assert_eq!(iid(a), 0x0003_0004_0005_0006);
        assert_eq!(network64(a), 0x2001_0db8_0001_0002);
    }

    #[test]
    fn classify_teredo() {
        assert_eq!(
            IidClass::classify(addr("2001:0:4136:e378:8000:63bf:3fff:fdd2")),
            IidClass::Teredo
        );
        // 2001:db8 is NOT Teredo (third hextet differs).
        assert_ne!(IidClass::classify(addr("2001:db8::1")), IidClass::Teredo);
        assert!(IidClass::Teredo.is_transition());
    }

    #[test]
    fn classify_6to4() {
        assert_eq!(
            IidClass::classify(addr("2002:c000:0204::1")),
            IidClass::SixToFour
        );
        assert!(IidClass::SixToFour.is_transition());
        assert_ne!(IidClass::classify(addr("2003::1")), IidClass::SixToFour);
    }

    #[test]
    fn classify_mac_embedded() {
        // RFC 4291 example MAC 34-56-78-9A-BC-DE.
        let a = addr("2001:db8::3656:78ff:fe9a:bcde");
        match IidClass::classify(a) {
            IidClass::MacEmbedded(mac) => {
                assert_eq!(mac, MacAddr::new([0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde]));
            }
            other => panic!("expected MacEmbedded, got {other:?}"),
        }
        assert!(IidClass::classify(a).is_mac_embedded());
    }

    #[test]
    fn classify_gateway_signature() {
        assert_eq!(
            IidClass::classify(addr("2600:380:1:2::ab1")),
            IidClass::LowBits16(0xab1)
        );
        assert!(IidClass::classify(addr("2600:380:1:2::ab1")).is_gateway_signature());
        // All-zero IID (a subnet-router anycast) is NOT the signature.
        assert_eq!(IidClass::classify(addr("2600:380:1:2::")), IidClass::Opaque);
        // 17 bits set is not the signature.
        assert_eq!(
            IidClass::classify(addr("2600:380:1:2::1:ab1")),
            IidClass::Opaque
        );
    }

    #[test]
    fn classify_opaque_random() {
        assert_eq!(
            IidClass::classify(addr("2001:db8::a1b2:c3d4:e5f6:789a")),
            IidClass::Opaque
        );
    }

    #[test]
    fn transition_takes_precedence_over_iid_structure() {
        // A Teredo address whose IID happens to look EUI-64-ish must still
        // classify as Teredo.
        let a = addr("2001:0:1:2:0211:22ff:fe33:4455");
        assert_eq!(IidClass::classify(a), IidClass::Teredo);
    }

    #[test]
    fn every_address_classifies() {
        let mut g = TestGen::new(0x4949_4401);
        for _ in 0..4096 {
            // Total function: no panic, and the class is self-consistent.
            let a = Ipv6Addr::from(g.next_u128());
            let c = IidClass::classify(a);
            if let IidClass::MacEmbedded(mac) = c {
                assert_eq!(mac.to_modified_eui64(), iid(a));
            }
            if let IidClass::LowBits16(v) = c {
                assert_eq!(u64::from(v), iid(a));
                assert!(v != 0);
            }
        }
    }

    #[test]
    fn mac_embedding_always_detected() {
        let mut g = TestGen::new(0x4949_4402);
        for _ in 0..2048 {
            let mac = MacAddr::new(g.octets6());
            let raw = (u128::from(g.next_u64()) << 64) | u128::from(mac.to_modified_eui64());
            let a = Ipv6Addr::from(raw);
            let c = IidClass::classify(a);
            // Unless the network part collides with a transition prefix,
            // the MAC must be recovered.
            if !c.is_transition() {
                assert_eq!(c, IidClass::MacEmbedded(mac));
            }
        }
    }
}
