//! 48-bit MAC addresses and EUI-64 conversion.
//!
//! §4.4 of the paper identifies clients that embed their MAC address in the
//! IPv6 interface identifier via the modified EUI-64 scheme (RFC 4291
//! Appendix A): split the MAC in half, insert `ff:fe`, and flip the
//! universal/local bit. About 2.5% of the paper's IPv6 users show this
//! pattern; 83% of those reuse the same IID across addresses (static MAC),
//! the rest look like MAC randomization. This module implements the encoding
//! and its inverse so both the simulator and the classifier share one
//! definition.

use std::fmt;

/// A 48-bit IEEE MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// Builds a MAC from raw octets.
    pub fn new(octets: [u8; 6]) -> Self {
        Self(octets)
    }

    /// Builds a MAC from the low 48 bits of `v` (big-endian octet order).
    pub fn from_u64(v: u64) -> Self {
        let b = v.to_be_bytes();
        Self([b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// The MAC as a u64 (high 16 bits zero).
    pub fn to_u64(self) -> u64 {
        let o = self.0;
        u64::from_be_bytes([0, 0, o[0], o[1], o[2], o[3], o[4], o[5]])
    }

    /// The IEEE OUI (first three octets), identifying the vendor.
    pub fn oui(self) -> [u8; 3] {
        [self.0[0], self.0[1], self.0[2]]
    }

    /// Whether the locally-administered bit is set — the telltale of MAC
    /// randomization (randomized MACs set this bit per IEEE 802).
    pub fn is_locally_administered(self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Encodes this MAC as a modified EUI-64 interface identifier
    /// (RFC 4291 Appendix A): `aa:bb:cc:dd:ee:ff` becomes
    /// `a8bb:ccff:fedd:eeff` — `ff:fe` spliced into the middle and the
    /// universal/local bit (bit 1 of the first octet) inverted.
    pub fn to_modified_eui64(self) -> u64 {
        let o = self.0;
        u64::from_be_bytes([o[0] ^ 0x02, o[1], o[2], 0xff, 0xfe, o[3], o[4], o[5]])
    }

    /// Decodes a modified EUI-64 IID back to a MAC, if the `ff:fe` marker is
    /// present.
    pub fn from_modified_eui64(iid: u64) -> Option<Self> {
        let b = iid.to_be_bytes();
        if b[3] == 0xff && b[4] == 0xfe {
            Some(Self([b[0] ^ 0x02, b[1], b[2], b[5], b[6], b[7]]))
        } else {
            None
        }
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_stats::testgen::TestGen;

    #[test]
    fn rfc4291_appendix_a_example() {
        // RFC 4291: MAC 34-56-78-9A-BC-DE -> IID 3656:78ff:fe9a:bcde.
        let mac = MacAddr::new([0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde]);
        assert_eq!(mac.to_modified_eui64(), 0x3656_78ff_fe9a_bcde);
    }

    #[test]
    fn eui64_round_trip() {
        let mac = MacAddr::new([0x00, 0x1b, 0x21, 0x0a, 0x0b, 0x0c]);
        let iid = mac.to_modified_eui64();
        assert_eq!(MacAddr::from_modified_eui64(iid), Some(mac));
    }

    #[test]
    fn non_eui64_iid_rejected() {
        assert_eq!(MacAddr::from_modified_eui64(0x1234_5678_9abc_def0), None);
        // ff:fe must be exactly in the middle.
        assert_eq!(MacAddr::from_modified_eui64(0xfffe_0000_0000_0000), None);
    }

    #[test]
    fn locally_administered_bit() {
        assert!(!MacAddr::new([0x00, 0, 0, 0, 0, 0]).is_locally_administered());
        assert!(MacAddr::new([0x02, 0, 0, 0, 0, 0]).is_locally_administered());
        assert!(MacAddr::new([0x06, 0, 0, 0, 0, 0]).is_locally_administered());
    }

    #[test]
    fn u64_round_trip_and_display() {
        let mac = MacAddr::from_u64(0x0000_a1b2_c3d4_e5f6);
        assert_eq!(mac.to_u64(), 0x0000_a1b2_c3d4_e5f6);
        assert_eq!(mac.to_string(), "a1:b2:c3:d4:e5:f6");
        assert_eq!(mac.oui(), [0xa1, 0xb2, 0xc3]);
    }

    #[test]
    fn eui64_round_trips_for_random_macs() {
        let mut g = TestGen::new(0x4D41_4301);
        for _ in 0..2048 {
            let mac = MacAddr::new(g.octets6());
            assert_eq!(
                MacAddr::from_modified_eui64(mac.to_modified_eui64()),
                Some(mac)
            );
        }
    }

    #[test]
    fn from_u64_masks_high_bits() {
        let mut g = TestGen::new(0x4D41_4302);
        for _ in 0..2048 {
            let v = g.next_u64();
            let mac = MacAddr::from_u64(v);
            assert_eq!(mac.to_u64(), v & 0x0000_ffff_ffff_ffff);
        }
    }
}
