//! A binary radix (Patricia-style) trie keyed by CIDR prefixes.
//!
//! The trie is the lookup engine behind two things in this workspace:
//!
//! 1. **Blocklists** (§7.2): given an address, find the longest (most
//!    specific) actioned prefix covering it.
//! 2. **Aggregation audits**: walk all inserted prefixes under a covering
//!    prefix (e.g. all /64s inside a routing /32).
//!
//! The implementation is a plain binary trie with one bit per level and
//! path-free nodes (no edge compression). At the study's scales — at most a
//! few million inserted prefixes, ≤128 levels — this is simple, robust and
//! fast enough, in keeping with the smoltcp design ethos of simplicity over
//! cleverness. Nodes live in a flat `Vec` arena; no unsafe, no pointers.

use crate::prefix::{Ipv4Prefix, Ipv6Prefix};

/// Abstraction over the two prefix families so one trie serves both.
pub trait TrieKey: Copy {
    /// Maximum prefix length for the family (32 or 128).
    const MAX_LEN: u8;
    /// The prefix's bits, left-aligned in a `u128`.
    fn key_bits(&self) -> u128;
    /// The prefix length.
    fn key_len(&self) -> u8;
    /// Rebuilds a prefix from left-aligned bits and a length.
    fn from_key(bits: u128, len: u8) -> Self;
}

impl TrieKey for Ipv6Prefix {
    const MAX_LEN: u8 = 128;
    fn key_bits(&self) -> u128 {
        self.bits()
    }
    fn key_len(&self) -> u8 {
        self.len()
    }
    fn from_key(bits: u128, len: u8) -> Self {
        Ipv6Prefix::from_bits(bits, len)
    }
}

impl TrieKey for Ipv4Prefix {
    const MAX_LEN: u8 = 32;
    fn key_bits(&self) -> u128 {
        // Left-align the 32-bit key in the u128 working width.
        u128::from(self.bits()) << 96
    }
    fn key_len(&self) -> u8 {
        self.len()
    }
    fn from_key(bits: u128, len: u8) -> Self {
        Ipv4Prefix::from_bits((bits >> 96) as u32, len)
    }
}

const NO_NODE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<V> {
    children: [u32; 2],
    value: Option<V>,
}

impl<V> Node<V> {
    fn new() -> Self {
        Self {
            children: [NO_NODE; 2],
            value: None,
        }
    }
}

/// A map from CIDR prefixes to values with longest-prefix-match lookup.
#[derive(Debug, Clone)]
pub struct PrefixTrie<K: TrieKey, V> {
    nodes: Vec<Node<V>>,
    len: usize,
    _marker: std::marker::PhantomData<K>,
}

impl<K: TrieKey, V> Default for PrefixTrie<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: TrieKey, V> PrefixTrie<K, V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::new()],
            len: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bit_at(bits: u128, depth: u8) -> usize {
        ((bits >> (127 - depth)) & 1) as usize
    }

    /// Inserts `key` with `value`, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let bits = key.key_bits();
        let len = key.key_len();
        let mut node = 0usize;
        for depth in 0..len {
            let b = Self::bit_at(bits, depth);
            let child = self.nodes[node].children[b];
            node = if child == NO_NODE {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::new());
                self.nodes[node].children[b] = idx;
                idx as usize
            } else {
                child as usize
            };
        }
        let prev = self.nodes[node].value.replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Exact lookup of a stored prefix.
    pub fn get(&self, key: &K) -> Option<&V> {
        let bits = key.key_bits();
        let len = key.key_len();
        let mut node = 0usize;
        for depth in 0..len {
            let b = Self::bit_at(bits, depth);
            let child = self.nodes[node].children[b];
            if child == NO_NODE {
                return None;
            }
            node = child as usize;
        }
        self.nodes[node].value.as_ref()
    }

    /// Mutable exact lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let bits = key.key_bits();
        let len = key.key_len();
        let mut node = 0usize;
        for depth in 0..len {
            let b = Self::bit_at(bits, depth);
            let child = self.nodes[node].children[b];
            if child == NO_NODE {
                return None;
            }
            node = child as usize;
        }
        self.nodes[node].value.as_mut()
    }

    /// Removes a stored prefix, returning its value. Nodes are not pruned;
    /// the arena only grows, which is fine for the bounded workloads here.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let bits = key.key_bits();
        let len = key.key_len();
        let mut node = 0usize;
        for depth in 0..len {
            let b = Self::bit_at(bits, depth);
            let child = self.nodes[node].children[b];
            if child == NO_NODE {
                return None;
            }
            node = child as usize;
        }
        let prev = self.nodes[node].value.take();
        if prev.is_some() {
            self.len -= 1;
        }
        prev
    }

    /// Longest-prefix match: the most specific stored prefix containing the
    /// full-length key `addr_key` (pass a host prefix, /32 or /128), with
    /// its value. Returns `None` when no stored prefix covers the address.
    pub fn longest_match(&self, addr_key: &K) -> Option<(K, &V)> {
        let bits = addr_key.key_bits();
        let len = addr_key.key_len();
        let mut node = 0usize;
        let mut best: Option<(u8, usize)> = self.nodes[0].value.as_ref().map(|_| (0u8, 0usize));
        for depth in 0..len {
            let b = Self::bit_at(bits, depth);
            let child = self.nodes[node].children[b];
            if child == NO_NODE {
                break;
            }
            node = child as usize;
            if self.nodes[node].value.is_some() {
                best = Some((depth + 1, node));
            }
        }
        best.map(|(l, n)| {
            let mask = if l == 0 { 0 } else { u128::MAX << (128 - l) };
            (
                K::from_key(bits & mask, l),
                self.nodes[n].value.as_ref().expect("recorded as present"),
            )
        })
    }

    /// Whether any stored prefix covers `addr_key`.
    pub fn covers(&self, addr_key: &K) -> bool {
        self.longest_match(addr_key).is_some()
    }

    /// Every stored `(prefix, value)` covering `addr_key`, shortest first.
    /// Needed whenever per-entry state (e.g. an expiry) decides whether a
    /// cover *counts*: the most specific entry may be stale while a
    /// broader one is still live.
    pub fn covering(&self, addr_key: &K) -> Vec<(K, &V)> {
        let bits = addr_key.key_bits();
        let len = addr_key.key_len();
        let mut out = Vec::new();
        let mut node = 0usize;
        if let Some(v) = self.nodes[0].value.as_ref() {
            out.push((K::from_key(0, 0), v));
        }
        for depth in 0..len {
            let b = Self::bit_at(bits, depth);
            let child = self.nodes[node].children[b];
            if child == NO_NODE {
                break;
            }
            node = child as usize;
            if let Some(v) = self.nodes[node].value.as_ref() {
                let l = depth + 1;
                let mask = u128::MAX << (128 - l);
                out.push((K::from_key(bits & mask, l), v));
            }
        }
        out
    }

    /// Iterates all stored `(prefix, value)` pairs in lexicographic
    /// (bitwise) order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        // Depth-first, left child first => lexicographic order.
        let mut out = Vec::new();
        let mut stack: Vec<(usize, u128, u8)> = vec![(0, 0, 0)];
        while let Some((node, bits, depth)) = stack.pop() {
            if let Some(v) = self.nodes[node].value.as_ref() {
                out.push((K::from_key(bits, depth), v));
            }
            // Push right first so left pops first.
            let right = self.nodes[node].children[1];
            if right != NO_NODE {
                stack.push((right as usize, bits | (1u128 << (127 - depth)), depth + 1));
            }
            let left = self.nodes[node].children[0];
            if left != NO_NODE {
                stack.push((left as usize, bits, depth + 1));
            }
        }
        out.sort_by(|a, b| {
            a.0.key_bits()
                .cmp(&b.0.key_bits())
                .then(a.0.key_len().cmp(&b.0.key_len()))
        });
        out.into_iter()
    }

    /// All stored `(prefix, value)` pairs contained within `cover`, in
    /// lexicographic (bits, length) order — the same order [`Self::iter`]
    /// yields. Walks only the covered subtree: descend the cover's path,
    /// then enumerate below it, so the cost scales with the subtree, not
    /// the whole trie.
    pub fn descendants(&self, cover: &K) -> Vec<(K, &V)> {
        let cbits = cover.key_bits();
        let clen = cover.key_len();
        let mut node = 0usize;
        for depth in 0..clen {
            let b = Self::bit_at(cbits, depth);
            let child = self.nodes[node].children[b];
            if child == NO_NODE {
                return Vec::new();
            }
            node = child as usize;
        }
        let mut out = Vec::new();
        let mut stack: Vec<(usize, u128, u8)> = vec![(node, cbits, clen)];
        while let Some((node, bits, depth)) = stack.pop() {
            if let Some(v) = self.nodes[node].value.as_ref() {
                out.push((K::from_key(bits, depth), v));
            }
            let right = self.nodes[node].children[1];
            if right != NO_NODE {
                stack.push((right as usize, bits | (1u128 << (127 - depth)), depth + 1));
            }
            let left = self.nodes[node].children[0];
            if left != NO_NODE {
                stack.push((left as usize, bits, depth + 1));
            }
        }
        out.sort_by(|a, b| {
            a.0.key_bits()
                .cmp(&b.0.key_bits())
                .then(a.0.key_len().cmp(&b.0.key_len()))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_stats::testgen::TestGen;
    use std::net::Ipv6Addr;

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn host(s: &str) -> Ipv6Prefix {
        Ipv6Prefix::host(s.parse::<Ipv6Addr>().unwrap())
    }

    #[test]
    fn insert_get_remove() {
        let mut t: PrefixTrie<Ipv6Prefix, u32> = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p6("2001:db8::/32"), 1), None);
        assert_eq!(t.insert(p6("2001:db8::/32"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p6("2001:db8::/32")), Some(&2));
        assert_eq!(t.get(&p6("2001:db8::/48")), None);
        assert_eq!(t.remove(&p6("2001:db8::/32")), Some(2));
        assert_eq!(t.remove(&p6("2001:db8::/32")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t: PrefixTrie<Ipv6Prefix, &str> = PrefixTrie::new();
        t.insert(p6("2001:db8::/32"), "routing");
        t.insert(p6("2001:db8:1::/48"), "site");
        t.insert(p6("2001:db8:1:2::/64"), "lan");

        let (k, v) = t.longest_match(&host("2001:db8:1:2::99")).unwrap();
        assert_eq!((k, *v), (p6("2001:db8:1:2::/64"), "lan"));

        let (k, v) = t.longest_match(&host("2001:db8:1:3::1")).unwrap();
        assert_eq!((k, *v), (p6("2001:db8:1::/48"), "site"));

        let (k, v) = t.longest_match(&host("2001:db8:ffff::1")).unwrap();
        assert_eq!((k, *v), (p6("2001:db8::/32"), "routing"));

        assert!(t.longest_match(&host("2600::1")).is_none());
        assert!(t.covers(&host("2001:db8::1")));
        assert!(!t.covers(&host("3000::1")));
    }

    #[test]
    fn covering_lists_every_cover_shortest_first() {
        let mut t: PrefixTrie<Ipv6Prefix, u8> = PrefixTrie::new();
        t.insert(p6("::/0"), 0);
        t.insert(p6("2001:db8::/32"), 1);
        t.insert(p6("2001:db8:1:2::/64"), 2);
        t.insert(p6("2001:db9::/32"), 3); // off-path
        let covers = t.covering(&host("2001:db8:1:2::9"));
        let got: Vec<(String, u8)> = covers.iter().map(|(k, &v)| (k.to_string(), v)).collect();
        assert_eq!(
            got,
            vec![
                ("::/0".to_string(), 0),
                ("2001:db8::/32".to_string(), 1),
                ("2001:db8:1:2::/64".to_string(), 2)
            ]
        );
        assert!(
            t.covering(&host("3000::1")).len() == 1,
            "only the root covers"
        );
    }

    #[test]
    fn root_prefix_matches_everything() {
        let mut t: PrefixTrie<Ipv6Prefix, &str> = PrefixTrie::new();
        t.insert(p6("::/0"), "default");
        let (k, v) = t.longest_match(&host("1234::1")).unwrap();
        assert_eq!((k, *v), (p6("::/0"), "default"));
    }

    #[test]
    fn v4_trie_works() {
        let mut t: PrefixTrie<Ipv4Prefix, i32> = PrefixTrie::new();
        t.insert("10.0.0.0/8".parse().unwrap(), 8);
        t.insert("10.1.0.0/16".parse().unwrap(), 16);
        let addr: Ipv4Prefix = "10.1.2.3/32".parse().unwrap();
        let (k, v) = t.longest_match(&addr).unwrap();
        assert_eq!(k, "10.1.0.0/16".parse().unwrap());
        assert_eq!(*v, 16);
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let mut t: PrefixTrie<Ipv6Prefix, u8> = PrefixTrie::new();
        let keys = [
            "2001:db8::/32",
            "2001:db8::/48",
            "::/0",
            "ff00::/8",
            "2001:db8:0:1::/64",
        ];
        for (i, k) in keys.iter().enumerate() {
            t.insert(p6(k), i as u8);
        }
        let collected: Vec<Ipv6Prefix> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(collected.len(), keys.len());
        let mut sorted = collected.clone();
        sorted.sort_by(|a, b| a.bits().cmp(&b.bits()).then(a.len().cmp(&b.len())));
        assert_eq!(collected, sorted);
    }

    #[test]
    fn descendants_filters_by_cover() {
        let mut t: PrefixTrie<Ipv6Prefix, u8> = PrefixTrie::new();
        t.insert(p6("2001:db8:1:1::/64"), 1);
        t.insert(p6("2001:db8:1:2::/64"), 2);
        t.insert(p6("2001:db8:2:1::/64"), 3);
        t.insert(p6("2001:db8:1::/48"), 4);
        let d = t.descendants(&p6("2001:db8:1::/48"));
        let keys: Vec<String> = d.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(
            keys,
            vec!["2001:db8:1::/48", "2001:db8:1:1::/64", "2001:db8:1:2::/64"]
        );
    }

    /// The subtree walk agrees with the old iterate-then-filter reference
    /// on large random tries, including empty covers, the root cover, and
    /// covers equal to stored prefixes.
    #[test]
    fn descendants_match_iter_filter_on_large_tries() {
        let mut g = TestGen::new(0x5452_4903);
        for _ in 0..16 {
            let n = g.range_u64(200, 800) as usize;
            let mut t: PrefixTrie<Ipv6Prefix, usize> = PrefixTrie::new();
            let mut prefixes = Vec::new();
            for i in 0..n {
                // Zeroed high bits force dense prefix sharing.
                let bits = g.next_u128() & (u128::MAX >> 6);
                let p = Ipv6Prefix::from_bits(bits, g.range_u8(0, 128));
                t.insert(p, i);
                prefixes.push(p);
            }
            let mut covers = vec![
                Ipv6Prefix::from_bits(0, 0),
                Ipv6Prefix::from_bits(g.next_u128(), 128),
            ];
            covers.extend((0..8).map(|_| Ipv6Prefix::from_bits(g.next_u128(), g.range_u8(0, 64))));
            covers.extend(prefixes.iter().take(8).copied());
            for cover in covers {
                let got: Vec<(Ipv6Prefix, usize)> = t
                    .descendants(&cover)
                    .into_iter()
                    .map(|(k, &v)| (k, v))
                    .collect();
                let mask = if cover.len() == 0 {
                    0
                } else {
                    u128::MAX << (128 - cover.len())
                };
                let naive: Vec<(Ipv6Prefix, usize)> = t
                    .iter()
                    .filter(|(k, _)| {
                        k.key_len() >= cover.len() && k.key_bits() & mask == cover.bits()
                    })
                    .map(|(k, &v)| (k, v))
                    .collect();
                assert_eq!(got, naive, "cover {cover}");
            }
        }
    }

    /// Longest-prefix match agrees with a naive scan over all entries.
    #[test]
    fn lpm_matches_naive() {
        let mut g = TestGen::new(0x5452_4901);
        for _ in 0..128 {
            let n = g.range_u64(1, 59) as usize;
            let mut t: PrefixTrie<Ipv6Prefix, usize> = PrefixTrie::new();
            let mut prefixes = Vec::new();
            for i in 0..n {
                let p = Ipv6Prefix::from_bits(g.next_u128(), g.range_u8(0, 128));
                t.insert(p, i);
                prefixes.push(p);
            }
            // Probe a random address plus every entry's own network address
            // (random probes alone almost never land inside long prefixes).
            let mut addrs = vec![Ipv6Addr::from(g.next_u128())];
            addrs.extend(prefixes.iter().map(|p| p.network()));
            for addr in addrs {
                let naive = prefixes
                    .iter()
                    .filter(|p| p.contains_addr(addr))
                    .max_by_key(|p| p.len())
                    .copied();
                let got = t.longest_match(&Ipv6Prefix::host(addr)).map(|(k, _)| k);
                assert_eq!(got, naive);
            }
        }
    }

    /// Everything inserted is found exactly, and iteration yields each
    /// distinct prefix once.
    #[test]
    fn insert_then_get_all() {
        let mut g = TestGen::new(0x5452_4902);
        for _ in 0..128 {
            let n = g.range_u64(1, 59) as usize;
            let mut t: PrefixTrie<Ipv6Prefix, u8> = PrefixTrie::new();
            let mut distinct = std::collections::HashSet::new();
            for _ in 0..n {
                let p = Ipv6Prefix::from_bits(g.next_u128(), g.range_u8(0, 128));
                t.insert(p, 0);
                distinct.insert(p);
            }
            assert_eq!(t.len(), distinct.len());
            for p in &distinct {
                assert!(t.get(p).is_some());
            }
            assert_eq!(t.iter().count(), distinct.len());
        }
    }
}
