//! IP address and prefix substrate for the IPv6 user-level study.
//!
//! Everything in the study is keyed by addresses and prefixes: the paper
//! aggregates IPv6 addresses at /112, /96, /80, /76, /72, /68, /64, /60, /56,
//! /52, /48, /44, /40, /36 and /32 (§3.1), classifies interface identifiers
//! (§4.4), and fingerprints outlier address structures (§6.1.3). This crate
//! provides those primitives:
//!
//! - [`prefix`] — [`Ipv4Prefix`] / [`Ipv6Prefix`]: masked, canonical CIDR
//!   prefixes with containment and aggregation arithmetic.
//! - [`trie`] — a binary radix trie keyed by prefixes, supporting exact and
//!   longest-prefix lookups; the engine behind blocklists and prefix
//!   aggregation.
//! - [`set`] — [`set::PrefixSet`]: membership of addresses in a
//!   collection of prefixes (the blocklist data structure of §7.2).
//! - [`mod@aggregate`] — minimal covering sets of prefixes (blocklist and
//!   threat-feed compression), plus [`AggregationTrie`]: the
//!   path-compressed counting trie behind the one-pass Figure-11
//!   granularity sweep and entropy-guided variable-length cuts.
//! - [`entropy`] — Entropy/IP-style nybble-entropy profiling of IID
//!   populations (randomized vs structured).
//! - [`iid`] — interface-identifier classification: EUI-64 `ff:fe` MAC
//!   embeddings (RFC 7707), Teredo (RFC 4380), 6to4 (RFC 3056), the
//!   low-bits-only gateway signature of §6.1.3, and randomized IIDs
//!   (RFC 4941).
//! - [`mac`] — 48-bit MAC addresses and EUI-64 conversion in both directions.
//!
//! # Example
//!
//! ```
//! use ipv6_study_netaddr::{Ipv6Prefix, iid::IidClass};
//! use std::net::Ipv6Addr;
//!
//! let addr: Ipv6Addr = "2001:db8:1:2:3:4:5:6".parse().unwrap();
//! let p64 = Ipv6Prefix::containing(addr, 64);
//! assert_eq!(p64.to_string(), "2001:db8:1:2::/64");
//! assert!(p64.contains_addr(addr));
//!
//! // A low-entropy structured IID is not classified as MAC-embedded.
//! assert_eq!(IidClass::classify(addr), IidClass::Opaque);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod entropy;
pub mod iid;
pub mod mac;
pub mod prefix;
pub mod set;
pub mod trie;

pub use aggregate::{aggregate, aggregate_v4, aggregate_v6, AggCut, AggNode, AggregationTrie};
pub use entropy::EntropyProfile;
pub use iid::IidClass;
pub use mac::MacAddr;
pub use prefix::{Ipv4Prefix, Ipv6Prefix, PrefixParseError};
pub use set::PrefixSet;
pub use trie::PrefixTrie;

/// The IPv6 prefix lengths sampled by the study's "IPv6 prefix random
/// sample" dataset (§3.1), longest to shortest, plus /128 (the full address)
/// which several figures plot as a reference series.
pub const STUDY_PREFIX_LENGTHS: [u8; 16] = [
    128, 112, 96, 80, 76, 72, 68, 64, 60, 56, 52, 48, 44, 40, 36, 32,
];
