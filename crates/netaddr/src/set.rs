//! Prefix sets: membership of addresses in a collection of CIDR blocks.
//!
//! A thin, purpose-named wrapper over [`PrefixTrie`] used wherever the study
//! treats prefixes as a *set* rather than a map — most prominently the
//! blocklists of §7.2, where the question is simply "is this client address
//! covered by any actioned prefix?".

use std::net::{Ipv4Addr, Ipv6Addr};

use crate::prefix::{Ipv4Prefix, Ipv6Prefix};
use crate::trie::{PrefixTrie, TrieKey};

/// A set of CIDR prefixes with O(address-length) cover queries.
#[derive(Debug, Clone, Default)]
pub struct PrefixSet<K: TrieKey> {
    trie: PrefixTrie<K, ()>,
}

impl<K: TrieKey> PrefixSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self {
            trie: PrefixTrie::new(),
        }
    }

    /// Inserts a prefix; returns true if it was newly added.
    pub fn insert(&mut self, prefix: K) -> bool {
        self.trie.insert(prefix, ()).is_none()
    }

    /// Removes a prefix; returns true if it was present.
    pub fn remove(&mut self, prefix: &K) -> bool {
        self.trie.remove(prefix).is_some()
    }

    /// Exact membership of a prefix (not cover).
    pub fn contains(&self, prefix: &K) -> bool {
        self.trie.get(prefix).is_some()
    }

    /// Whether any member prefix covers the full-length key.
    pub fn covers_key(&self, addr_key: &K) -> bool {
        self.trie.covers(addr_key)
    }

    /// The most specific member prefix covering the full-length key.
    pub fn longest_cover(&self, addr_key: &K) -> Option<K> {
        self.trie.longest_match(addr_key).map(|(k, _)| k)
    }

    /// Number of member prefixes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Iterates the member prefixes in bitwise order.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        self.trie.iter().map(|(k, _)| k)
    }
}

impl PrefixSet<Ipv6Prefix> {
    /// Whether any member prefix covers the IPv6 address.
    pub fn covers_addr(&self, addr: Ipv6Addr) -> bool {
        self.covers_key(&Ipv6Prefix::host(addr))
    }
}

impl PrefixSet<Ipv4Prefix> {
    /// Whether any member prefix covers the IPv4 address.
    pub fn covers_addr(&self, addr: Ipv4Addr) -> bool {
        self.covers_key(&Ipv4Prefix::host(addr))
    }
}

impl<K: TrieKey> FromIterator<K> for PrefixSet<K> {
    fn from_iter<T: IntoIterator<Item = K>>(iter: T) -> Self {
        let mut s = Self::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics() {
        let mut s: PrefixSet<Ipv6Prefix> = PrefixSet::new();
        let p: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        assert!(s.insert(p));
        assert!(!s.insert(p), "second insert is not new");
        assert_eq!(s.len(), 1);
        assert!(s.contains(&p));
        assert!(s.remove(&p));
        assert!(!s.remove(&p));
        assert!(s.is_empty());
    }

    #[test]
    fn cover_queries_v6() {
        let s: PrefixSet<Ipv6Prefix> = ["2001:db8::/32", "2600:380::/28"]
            .iter()
            .map(|x| x.parse().unwrap())
            .collect();
        assert!(s.covers_addr("2001:db8:1::1".parse().unwrap()));
        assert!(s.covers_addr("2600:380:ffff::1".parse().unwrap()));
        assert!(!s.covers_addr("2a00::1".parse().unwrap()));
        assert_eq!(
            s.longest_cover(&Ipv6Prefix::host("2001:db8::5".parse().unwrap())),
            Some("2001:db8::/32".parse().unwrap())
        );
    }

    #[test]
    fn cover_queries_v4() {
        let s: PrefixSet<Ipv4Prefix> = ["10.0.0.0/8", "192.0.2.0/24"]
            .iter()
            .map(|x| x.parse().unwrap())
            .collect();
        assert!(s.covers_addr("10.255.0.1".parse().unwrap()));
        assert!(s.covers_addr("192.0.2.200".parse().unwrap()));
        assert!(!s.covers_addr("192.0.3.1".parse().unwrap()));
    }

    #[test]
    fn exact_membership_is_not_cover() {
        let mut s: PrefixSet<Ipv6Prefix> = PrefixSet::new();
        s.insert("2001:db8::/32".parse().unwrap());
        let narrower: Ipv6Prefix = "2001:db8::/48".parse().unwrap();
        assert!(!s.contains(&narrower));
        assert!(s.covers_key(&narrower.parent(32).clone()) || s.covers_key(&narrower));
    }

    #[test]
    fn iteration_lists_members() {
        let s: PrefixSet<Ipv6Prefix> = ["ff00::/8", "::/0", "2001:db8::/32"]
            .iter()
            .map(|x| x.parse().unwrap())
            .collect();
        let got: Vec<String> = s.iter().map(|p| p.to_string()).collect();
        assert_eq!(got, vec!["::/0", "2001:db8::/32", "ff00::/8"]);
    }
}
