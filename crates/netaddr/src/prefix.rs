//! CIDR prefixes for IPv4 and IPv6 with containment and aggregation math.
//!
//! Prefixes are stored *canonically*: host bits below the prefix length are
//! always zero, so two prefixes are equal iff they denote the same address
//! block, and `HashMap<Ipv6Prefix, _>` keys behave correctly. This is the
//! invariant the study's aggregation analyses (Figures 4, 6, 9, 10) rely on
//! when they re-key the same request stream at fifteen different prefix
//! lengths.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// Error returned when parsing a textual CIDR prefix fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError {
    msg: &'static str,
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.msg)
    }
}

impl std::error::Error for PrefixParseError {}

impl PrefixParseError {
    fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

macro_rules! define_prefix {
    (
        $(#[$doc:meta])*
        $name:ident, $addr:ty, $bits:ty, $maxlen:expr
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name {
            bits: $bits,
            len: u8,
        }

        impl $name {
            /// Number of bits in an address of this family.
            pub const MAX_LEN: u8 = $maxlen;

            /// Creates the prefix of the given length containing `addr`,
            /// zeroing host bits.
            ///
            /// # Panics
            /// Panics if `len > Self::MAX_LEN`.
            pub fn containing(addr: $addr, len: u8) -> Self {
                assert!(len <= Self::MAX_LEN, "prefix length out of range");
                let raw: $bits = addr.into();
                Self { bits: raw & Self::mask(len), len }
            }

            /// Creates a prefix directly from raw bits (host bits are
            /// masked off) and a length.
            ///
            /// # Panics
            /// Panics if `len > Self::MAX_LEN`.
            pub fn from_bits(bits: $bits, len: u8) -> Self {
                assert!(len <= Self::MAX_LEN, "prefix length out of range");
                Self { bits: bits & Self::mask(len), len }
            }

            /// The network mask for a prefix of length `len`.
            #[inline]
            pub fn mask(len: u8) -> $bits {
                if len == 0 {
                    0
                } else {
                    <$bits>::MAX << (Self::MAX_LEN - len)
                }
            }

            /// The masked network bits of the length-`len` prefix containing
            /// an address given as raw bits — the precompute primitive behind
            /// interned prefix-id columns, equal to
            /// `Self::containing(addr, len).bits()` without constructing the
            /// prefix value.
            ///
            /// # Panics
            /// Panics if `len > Self::MAX_LEN`.
            #[inline]
            pub fn bits_containing(raw: $bits, len: u8) -> $bits {
                assert!(len <= Self::MAX_LEN, "prefix length out of range");
                raw & Self::mask(len)
            }

            /// Prefix length in bits.
            #[inline]
            #[allow(clippy::len_without_is_empty)] // bit length, not a container
            pub fn len(&self) -> u8 {
                self.len
            }

            /// The (masked) network bits.
            #[inline]
            pub fn bits(&self) -> $bits {
                self.bits
            }

            /// The network address (lowest address in the block).
            pub fn network(&self) -> $addr {
                <$addr>::from(self.bits)
            }

            /// The highest address in the block.
            pub fn last_addr(&self) -> $addr {
                <$addr>::from(self.bits | !Self::mask(self.len))
            }

            /// Whether `addr` lies inside this prefix.
            pub fn contains_addr(&self, addr: $addr) -> bool {
                let raw: $bits = addr.into();
                raw & Self::mask(self.len) == self.bits
            }

            /// Whether `other` is fully contained in (or equal to) `self`.
            pub fn contains(&self, other: &Self) -> bool {
                other.len >= self.len && (other.bits & Self::mask(self.len)) == self.bits
            }

            /// The enclosing prefix of length `len`.
            ///
            /// # Panics
            /// Panics if `len > self.len()` (that would be a *narrowing*,
            /// not a parent) or `len > MAX_LEN`.
            pub fn parent(&self, len: u8) -> Self {
                assert!(len <= self.len, "parent must be shorter than child");
                Self { bits: self.bits & Self::mask(len), len }
            }

            /// Length of the longest common prefix of the two blocks'
            /// network bits, capped at the shorter of the two lengths.
            pub fn common_prefix_len(&self, other: &Self) -> u8 {
                let diff = self.bits ^ other.bits;
                let common = diff.leading_zeros() as u8;
                common.min(self.len).min(other.len)
            }

            /// Number of addresses in the block as a float (blocks can
            /// exceed `u64` for short IPv6 prefixes).
            pub fn size(&self) -> f64 {
                2f64.powi((Self::MAX_LEN - self.len) as i32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}/{}", self.network(), self.len)
            }
        }

        impl FromStr for $name {
            type Err = PrefixParseError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let (addr_s, len_s) = s
                    .split_once('/')
                    .ok_or_else(|| PrefixParseError::new("missing '/'"))?;
                let addr: $addr = addr_s
                    .parse()
                    .map_err(|_| PrefixParseError::new("bad address"))?;
                let len: u8 = len_s
                    .parse()
                    .map_err(|_| PrefixParseError::new("bad length"))?;
                if len > Self::MAX_LEN {
                    return Err(PrefixParseError::new("length out of range"));
                }
                Ok(Self::containing(addr, len))
            }
        }
    };
}

define_prefix!(
    /// An IPv6 CIDR prefix (`2001:db8::/32`), stored canonically.
    Ipv6Prefix,
    Ipv6Addr,
    u128,
    128
);

define_prefix!(
    /// An IPv4 CIDR prefix (`192.0.2.0/24`), stored canonically.
    Ipv4Prefix,
    Ipv4Addr,
    u32,
    32
);

impl Ipv6Prefix {
    /// The /128 prefix denoting a single address.
    pub fn host(addr: Ipv6Addr) -> Self {
        Self::containing(addr, 128)
    }
}

impl Ipv4Prefix {
    /// The /32 prefix denoting a single address.
    pub fn host(addr: Ipv4Addr) -> Self {
        Self::containing(addr, 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_stats::testgen::TestGen;

    #[test]
    fn canonical_masking() {
        let a: Ipv6Addr = "2001:db8:aaaa:bbbb:cccc:dddd:eeee:ffff".parse().unwrap();
        let p = Ipv6Prefix::containing(a, 64);
        assert_eq!(p.to_string(), "2001:db8:aaaa:bbbb::/64");
        assert_eq!(
            p.network(),
            "2001:db8:aaaa:bbbb::".parse::<Ipv6Addr>().unwrap()
        );
        assert_eq!(
            p.last_addr(),
            "2001:db8:aaaa:bbbb:ffff:ffff:ffff:ffff"
                .parse::<Ipv6Addr>()
                .unwrap()
        );
        // Two addresses in the same /64 yield the same (hashable) key.
        let b: Ipv6Addr = "2001:db8:aaaa:bbbb:1:2:3:4".parse().unwrap();
        assert_eq!(p, Ipv6Prefix::containing(b, 64));
    }

    #[test]
    fn zero_length_prefix_contains_everything() {
        let p = Ipv6Prefix::from_bits(u128::MAX, 0);
        assert_eq!(p.bits(), 0);
        assert!(p.contains_addr("::1".parse().unwrap()));
        assert!(p.contains_addr("ffff::".parse().unwrap()));
        let v4 = Ipv4Prefix::from_bits(u32::MAX, 0);
        assert!(v4.contains_addr("8.8.8.8".parse().unwrap()));
    }

    #[test]
    fn full_length_prefix_is_a_host() {
        let a: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let p = Ipv6Prefix::host(a);
        assert_eq!(p.len(), 128);
        assert!(p.contains_addr(a));
        assert!(!p.contains_addr("2001:db8::2".parse().unwrap()));
        assert_eq!(p.size(), 1.0);
    }

    #[test]
    fn containment_hierarchy() {
        let p32: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        let p64: Ipv6Prefix = "2001:db8:1:2::/64".parse().unwrap();
        let other: Ipv6Prefix = "2001:db9::/64".parse().unwrap();
        assert!(p32.contains(&p64));
        assert!(!p64.contains(&p32));
        assert!(p32.contains(&p32));
        assert!(!p32.contains(&other));
    }

    #[test]
    fn parent_and_common_prefix() {
        let p: Ipv6Prefix = "2001:db8:1:2::/64".parse().unwrap();
        assert_eq!(p.parent(48).to_string(), "2001:db8:1::/48");
        assert_eq!(p.parent(0).to_string(), "::/0");
        let q: Ipv6Prefix = "2001:db8:1:3::/64".parse().unwrap();
        // 0x0002 and 0x0003 differ only in the last bit of the fourth
        // hextet (bit 63), so 63 leading bits agree.
        assert_eq!(p.common_prefix_len(&q), 63);
        assert_eq!(p.common_prefix_len(&p), 64);
    }

    #[test]
    #[should_panic(expected = "parent must be shorter")]
    fn parent_cannot_narrow() {
        let p: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        let _ = p.parent(48);
    }

    #[test]
    fn parsing_round_trip_and_errors() {
        for s in ["::/0", "2001:db8::/32", "fe80::1/128", "2002::/16"] {
            let p: Ipv6Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
        for s in ["10.0.0.0/8", "192.0.2.0/24", "8.8.8.8/32", "0.0.0.0/0"] {
            let p: Ipv4Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert!("2001:db8::".parse::<Ipv6Prefix>().is_err()); // no '/'
        assert!("2001:db8::/129".parse::<Ipv6Prefix>().is_err());
        assert!("notanaddr/64".parse::<Ipv6Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn v4_masking() {
        let a: Ipv4Addr = "192.0.2.130".parse().unwrap();
        let p = Ipv4Prefix::containing(a, 24);
        assert_eq!(p.to_string(), "192.0.2.0/24");
        assert!(p.contains_addr(a));
        assert!(!p.contains_addr("192.0.3.1".parse().unwrap()));
        assert_eq!(p.size(), 256.0);
    }

    #[test]
    fn containing_always_contains() {
        let mut g = TestGen::new(0x5046_5801);
        for _ in 0..1024 {
            let addr = Ipv6Addr::from(g.next_u128());
            let len = g.range_u8(0, 128);
            let p = Ipv6Prefix::containing(addr, len);
            assert!(p.contains_addr(addr));
            assert_eq!(p.len(), len);
            // Canonical: rebuilding from the network address is identity.
            assert_eq!(Ipv6Prefix::containing(p.network(), len), p);
        }
    }

    #[test]
    fn parent_contains_child() {
        let mut g = TestGen::new(0x5046_5802);
        for _ in 0..1024 {
            let len = g.range_u8(0, 128);
            let child = Ipv6Prefix::from_bits(g.next_u128(), len);
            let plen = g.range_u8(0, 128).min(len);
            let parent = child.parent(plen);
            assert!(parent.contains(&child));
            assert!(parent.contains_addr(child.network()));
        }
    }

    #[test]
    fn containment_is_transitive() {
        let mut g = TestGen::new(0x5046_5803);
        for _ in 0..1024 {
            let mut lens = [g.range_u8(0, 128), g.range_u8(0, 128), g.range_u8(0, 128)];
            lens.sort_unstable();
            let c = Ipv6Prefix::from_bits(g.next_u128(), lens[2]);
            let b = c.parent(lens[1]);
            let a = b.parent(lens[0]);
            assert!(a.contains(&b) && b.contains(&c) && a.contains(&c));
        }
    }

    #[test]
    fn display_parse_round_trip() {
        let mut g = TestGen::new(0x5046_5804);
        for _ in 0..512 {
            let p = Ipv6Prefix::from_bits(g.next_u128(), g.range_u8(0, 128));
            let back: Ipv6Prefix = p.to_string().parse().unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn v4_display_parse_round_trip() {
        let mut g = TestGen::new(0x5046_5805);
        for _ in 0..512 {
            let p = Ipv4Prefix::from_bits(g.next_u64() as u32, g.range_u8(0, 32));
            let back: Ipv4Prefix = p.to_string().parse().unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn bits_containing_matches_containing() {
        let mut g = TestGen::new(0x5046_5807);
        for _ in 0..1024 {
            let raw = g.next_u128();
            let len = g.range_u8(0, 128);
            assert_eq!(
                Ipv6Prefix::bits_containing(raw, len),
                Ipv6Prefix::containing(Ipv6Addr::from(raw), len).bits()
            );
            let raw4 = g.next_u64() as u32;
            let len4 = g.range_u8(0, 32);
            assert_eq!(
                Ipv4Prefix::bits_containing(raw4, len4),
                Ipv4Prefix::containing(Ipv4Addr::from(raw4), len4).bits()
            );
        }
        // Edge addresses at edge lengths.
        for raw in [0u128, u128::MAX] {
            assert_eq!(Ipv6Prefix::bits_containing(raw, 0), 0);
            assert_eq!(Ipv6Prefix::bits_containing(raw, 128), raw);
        }
    }

    #[test]
    fn common_prefix_len_is_symmetric_and_bounded() {
        let mut g = TestGen::new(0x5046_5806);
        for _ in 0..1024 {
            let (la, lb) = (g.range_u8(0, 128), g.range_u8(0, 128));
            let pa = Ipv6Prefix::from_bits(g.next_u128(), la);
            let pb = Ipv6Prefix::from_bits(g.next_u128(), lb);
            let c = pa.common_prefix_len(&pb);
            assert_eq!(c, pb.common_prefix_len(&pa));
            assert!(c <= la.min(lb));
        }
    }
}
