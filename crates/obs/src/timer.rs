//! RAII phase timers.
//!
//! A phase is one named step of a run (`plan`, `sim`, `merge`, `sort`,
//! …). The guard records its wall clock into a `Vec<PhaseStat>` on drop,
//! so every exit path of a phase — including early returns and `?` — is
//! timed without explicit stop calls.

use std::time::{Duration, Instant};

/// One completed phase: name and wall clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name, e.g. `"sim"`.
    pub name: String,
    /// Wall clock the phase took.
    pub wall: Duration,
}

/// An RAII guard that appends a [`PhaseStat`] to its sink on drop.
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    sink: &'a mut Vec<PhaseStat>,
    name: &'static str,
    t0: Instant,
}

impl<'a> PhaseGuard<'a> {
    /// Starts timing a phase; the measurement lands in `sink` when the
    /// guard drops.
    pub fn start(sink: &'a mut Vec<PhaseStat>, name: &'static str) -> Self {
        Self {
            sink,
            name,
            t0: Instant::now(),
        }
    }
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        self.sink.push(PhaseStat {
            name: self.name.to_string(),
            wall: self.t0.elapsed(),
        });
    }
}

/// Runs `f` as a named phase, recording its wall clock into `sink`.
pub fn time_phase<R>(sink: &mut Vec<PhaseStat>, name: &'static str, f: impl FnOnce() -> R) -> R {
    let _guard = PhaseGuard::start(sink, name);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop() {
        let mut phases = Vec::new();
        {
            let _g = PhaseGuard::start(&mut phases, "plan");
        }
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].name, "plan");
    }

    #[test]
    fn time_phase_returns_the_closure_value() {
        let mut phases = Vec::new();
        let v = time_phase(&mut phases, "sim", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(phases[0].name, "sim");
    }

    #[test]
    fn early_exit_paths_are_still_timed() {
        fn fallible(sink: &mut Vec<PhaseStat>, fail: bool) -> Result<(), ()> {
            let _g = PhaseGuard::start(sink, "merge");
            if fail {
                return Err(());
            }
            Ok(())
        }
        let mut phases = Vec::new();
        let _ = fallible(&mut phases, true);
        let _ = fallible(&mut phases, false);
        assert_eq!(phases.len(), 2);
        assert!(phases.iter().all(|p| p.name == "merge"));
    }
}
