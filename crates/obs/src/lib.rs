//! Observability for the study pipeline: metrics, phase timers, and the
//! machine-readable run report.
//!
//! The ROADMAP's contract is that every PR makes a hot path *measurably*
//! faster — which requires the pipeline to emit machine-readable metrics
//! in the first place. This crate is that substrate, kept deliberately
//! std-only (the workspace builds fully offline):
//!
//! - [`metrics`] — a small registry of monotonic [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s, and [`metrics::DurationHisto`]s with fixed
//!   log-scale buckets (power-of-two microseconds), ordered
//!   deterministically for stable serialization;
//! - [`timer`] — RAII phase timers ([`timer::PhaseGuard`]) that record a
//!   wall-clock [`timer::PhaseStat`] on drop, so a phase cannot forget to
//!   stop its clock on early return;
//! - [`report`] — [`report::RunReport`], the aggregate a completed run
//!   hands to callers: simulation phases and per-shard throughput,
//!   per-figure analysis timings, per-granularity actioning timings, and
//!   the registry, all rendering to text and to JSON;
//! - [`json`] — a hand-rolled [`json::Json`] value with a serializer that
//!   never emits `Infinity` or `NaN` (non-finite numbers become `null`),
//!   because the report's consumers are JSON parsers with no tolerance
//!   for IEEE special values.
//!
//! Instrumentation is passive: timers and counters observe the pipeline
//! but never feed back into it, so enabling them cannot change simulated
//! output (the serial-vs-parallel byte-equivalence contract is tested
//! with instrumentation both on and off).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod report;
pub mod timer;

pub use json::Json;
pub use metrics::{Counter, DurationHisto, Gauge, Registry, ValueHisto};
pub use report::{
    ActioningStat, FaultStat, FigureStat, IncrementalStat, RunReport, ShardStat, SweepStat,
};
pub use timer::{PhaseGuard, PhaseStat};
