//! A minimal JSON value and serializer.
//!
//! The workspace builds with no external dependencies, so the run report
//! carries its own serializer. Object keys keep insertion order (a `Vec`
//! of pairs, not a map), which makes the rendered output deterministic
//! and diff-friendly. Non-finite floats serialize as `null`: JSON has no
//! `Infinity`/`NaN`, and a report that emits them silently poisons every
//! downstream parser.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (rendered without a decimal point).
    UInt(u64),
    /// A finite float. Construct through [`Json::num`], which maps
    /// non-finite inputs to [`Json::Null`].
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number value; non-finite inputs become `null` so the rendered
    /// document never contains `Infinity` or `NaN`.
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object, builder-style.
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Sets a field on an object (appending; keys are not deduplicated —
    /// callers control the schema).
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Looks up a field of an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(v) => {
                // Constructors guarantee finiteness, but render defensively:
                // a hand-built Json::Num(NaN) still must not poison output.
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// The set of field paths in this document, sorted and deduplicated —
    /// the document's *schema*. Array elements all contribute under a
    /// `[]` segment, so the path set is independent of array lengths and
    /// of every leaf value. Used by the golden report test, which pins
    /// the schema while ignoring timing values.
    pub fn schema_paths(&self) -> Vec<String> {
        let mut paths = Vec::new();
        self.collect_paths("$", &mut paths);
        paths.sort();
        paths.dedup();
        paths
    }

    fn collect_paths(&self, prefix: &str, paths: &mut Vec<String>) {
        match self {
            Json::Arr(items) => {
                for item in items {
                    item.collect_paths(&format!("{prefix}[]"), paths);
                }
                if items.is_empty() {
                    paths.push(format!("{prefix}[]"));
                }
            }
            Json::Obj(fields) => {
                for (k, v) in fields {
                    v.collect_paths(&format!("{prefix}.{k}"), paths);
                }
                if fields.is_empty() {
                    paths.push(prefix.to_string());
                }
            }
            _ => paths.push(prefix.to_string()),
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::num(2.5).render(), "2.5");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        assert_eq!(Json::num(f64::NEG_INFINITY), Json::Null);
        assert_eq!(Json::num(f64::NAN), Json::Null);
        // Even a hand-built Num renders defensively.
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape_specials() {
        assert_eq!(
            Json::str("a\"b\\c\nd\te\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn objects_keep_insertion_order() {
        let j = Json::obj()
            .with("z", Json::UInt(1))
            .with("a", Json::Arr(vec![Json::UInt(2), Json::num(0.5)]));
        assert_eq!(j.render(), "{\"z\":1,\"a\":[2,0.5]}");
        assert_eq!(j.get("z"), Some(&Json::UInt(1)));
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn pretty_rendering_indents() {
        let j = Json::obj().with("a", Json::Arr(vec![Json::UInt(1)]));
        assert_eq!(j.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn schema_paths_ignore_values_and_array_lengths() {
        let a = Json::obj().with(
            "shards",
            Json::Arr(vec![
                Json::obj()
                    .with("label", Json::str("x"))
                    .with("n", Json::UInt(1)),
                Json::obj()
                    .with("label", Json::str("y"))
                    .with("n", Json::UInt(9)),
            ]),
        );
        let b = Json::obj().with(
            "shards",
            Json::Arr(vec![Json::obj()
                .with("label", Json::str("z"))
                .with("n", Json::UInt(7))]),
        );
        assert_eq!(a.schema_paths(), b.schema_paths());
        assert_eq!(
            a.schema_paths(),
            vec!["$.shards[].label".to_string(), "$.shards[].n".to_string()]
        );
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_on_non_object_panics() {
        Json::UInt(1).with("a", Json::Null);
    }
}
