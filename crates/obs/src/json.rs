//! A minimal JSON value and serializer.
//!
//! The workspace builds with no external dependencies, so the run report
//! carries its own serializer. Object keys keep insertion order (a `Vec`
//! of pairs, not a map), which makes the rendered output deterministic
//! and diff-friendly. Non-finite floats serialize as `null`: JSON has no
//! `Infinity`/`NaN`, and a report that emits them silently poisons every
//! downstream parser.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (rendered without a decimal point).
    UInt(u64),
    /// A finite float. Construct through [`Json::num`], which maps
    /// non-finite inputs to [`Json::Null`].
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number value; non-finite inputs become `null` so the rendered
    /// document never contains `Infinity` or `NaN`.
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object, builder-style.
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Sets a field on an object (appending; keys are not deduplicated —
    /// callers control the schema).
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Looks up a field of an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(v) => {
                // Constructors guarantee finiteness, but render defensively:
                // a hand-built Json::Num(NaN) still must not poison output.
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the inverse of [`Json::render`]).
    ///
    /// Supports everything this module emits: objects, arrays, strings
    /// with the standard escapes, numbers, booleans and `null`. Integral
    /// non-negative numbers without a fraction or exponent parse as
    /// [`Json::UInt`]; everything else numeric parses as [`Json::Num`].
    /// Used by the `bench_diff` binary to compare committed
    /// `BENCH_run.json` baselines against fresh runs.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// The set of field paths in this document, sorted and deduplicated —
    /// the document's *schema*. Array elements all contribute under a
    /// `[]` segment, so the path set is independent of array lengths and
    /// of every leaf value. Used by the golden report test, which pins
    /// the schema while ignoring timing values.
    pub fn schema_paths(&self) -> Vec<String> {
        let mut paths = Vec::new();
        self.collect_paths("$", &mut paths);
        paths.sort();
        paths.dedup();
        paths
    }

    fn collect_paths(&self, prefix: &str, paths: &mut Vec<String>) {
        match self {
            Json::Arr(items) => {
                for item in items {
                    item.collect_paths(&format!("{prefix}[]"), paths);
                }
                if items.is_empty() {
                    paths.push(format!("{prefix}[]"));
                }
            }
            Json::Obj(fields) => {
                for (k, v) in fields {
                    v.collect_paths(&format!("{prefix}.{k}"), paths);
                }
                if fields.is_empty() {
                    paths.push(prefix.to_string());
                }
            }
            _ => paths.push(prefix.to_string()),
        }
    }
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// A recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    /// Consumes a keyword (`true`/`false`/`null`) if it is next.
    fn keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.keyword("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not emitted by this module's
                            // serializer; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !fractional && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

/// Byte length of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::num(2.5).render(), "2.5");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        assert_eq!(Json::num(f64::NEG_INFINITY), Json::Null);
        assert_eq!(Json::num(f64::NAN), Json::Null);
        // Even a hand-built Num renders defensively.
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape_specials() {
        assert_eq!(
            Json::str("a\"b\\c\nd\te\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn objects_keep_insertion_order() {
        let j = Json::obj()
            .with("z", Json::UInt(1))
            .with("a", Json::Arr(vec![Json::UInt(2), Json::num(0.5)]));
        assert_eq!(j.render(), "{\"z\":1,\"a\":[2,0.5]}");
        assert_eq!(j.get("z"), Some(&Json::UInt(1)));
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn pretty_rendering_indents() {
        let j = Json::obj().with("a", Json::Arr(vec![Json::UInt(1)]));
        assert_eq!(j.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn schema_paths_ignore_values_and_array_lengths() {
        let a = Json::obj().with(
            "shards",
            Json::Arr(vec![
                Json::obj()
                    .with("label", Json::str("x"))
                    .with("n", Json::UInt(1)),
                Json::obj()
                    .with("label", Json::str("y"))
                    .with("n", Json::UInt(9)),
            ]),
        );
        let b = Json::obj().with(
            "shards",
            Json::Arr(vec![Json::obj()
                .with("label", Json::str("z"))
                .with("n", Json::UInt(7))]),
        );
        assert_eq!(a.schema_paths(), b.schema_paths());
        assert_eq!(
            a.schema_paths(),
            vec!["$.shards[].label".to_string(), "$.shards[].n".to_string()]
        );
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_on_non_object_panics() {
        Json::UInt(1).with("a", Json::Null);
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj()
            .with("uint", Json::UInt(42))
            .with("num", Json::num(2.5))
            .with("neg", Json::Num(-0.125))
            .with("str", Json::str("a\"b\\c\nd\te\u{1}é"))
            .with("null", Json::Null)
            .with(
                "flags",
                Json::Arr(vec![Json::Bool(true), Json::Bool(false)]),
            )
            .with("empty_obj", Json::obj())
            .with("empty_arr", Json::Arr(vec![]))
            .with(
                "nested",
                Json::Arr(vec![Json::obj().with("k", Json::UInt(7))]),
            );
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_number_types() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("0.5").unwrap(), Json::Num(0.5));
        assert_eq!(Json::parse("-3").unwrap(), Json::Num(-3.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "parsed {bad:?}");
        }
        let err = Json::parse("{\"a\":!}").unwrap_err();
        assert!(err.to_string().contains("parse error"), "{err}");
    }
}
