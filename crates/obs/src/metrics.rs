//! The metrics registry: counters, gauges, and duration histograms.
//!
//! Names are free-form dotted strings (`sim.records_total`); the registry
//! stores them in `BTreeMap`s so iteration — and therefore serialized
//! output — is deterministic. All types are plain owned values mutated
//! through `&mut`: the pipeline's hot paths are single-writer per shard,
//! so no atomics or locks are needed (and none of their cost is paid).

use std::collections::BTreeMap;
use std::time::Duration;

use crate::json::Json;

/// A monotonic event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds to the counter, saturating at `u64::MAX` (a counter that
    /// wraps silently would corrupt every rate derived from it).
    pub fn add(&mut self, by: u64) {
        self.0 = self.0.saturating_add(by);
    }

    /// The current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A last-value-wins instantaneous measurement.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    /// Sets the gauge. Non-finite values are stored as `0.0` — the JSON
    /// export has no representation for them and a poisoned gauge must
    /// not poison the report.
    pub fn set(&mut self, v: f64) {
        self.0 = if v.is_finite() { v } else { 0.0 };
    }

    /// The current value.
    pub fn get(self) -> f64 {
        self.0
    }
}

/// Number of log-scale histogram buckets: bucket `i` counts durations
/// `< 1µs << i`, so 32 buckets cover up to ~71 minutes, with a final
/// overflow bucket above that.
const HISTO_BUCKETS: usize = 32;

/// A duration histogram with fixed log-scale (power-of-two microsecond)
/// buckets.
///
/// Fixed buckets mean recording is O(1) with no allocation — cheap enough
/// for per-shard and per-figure hot paths — and bucket boundaries are
/// identical across runs, so exported histograms are directly comparable
/// between PRs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurationHisto {
    buckets: [u64; HISTO_BUCKETS + 1],
    count: u64,
    total: Duration,
    max: Duration,
}

impl Default for DurationHisto {
    fn default() -> Self {
        Self {
            buckets: [0; HISTO_BUCKETS + 1],
            count: 0,
            total: Duration::ZERO,
            max: Duration::ZERO,
        }
    }
}

impl DurationHisto {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, d: Duration) {
        let micros = d.as_micros();
        let idx = (u128::BITS - micros.leading_zeros()) as usize; // 0 for 0µs
        self.buckets[idx.min(HISTO_BUCKETS)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(d);
        self.max = self.max.max(d);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Largest observation.
    pub fn max(&self) -> Duration {
        self.max
    }

    /// `(upper_bound_seconds, count)` for each non-empty bucket; the
    /// overflow bucket reports an upper bound of `None`.
    pub fn nonzero_buckets(&self) -> Vec<(Option<f64>, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let bound = if i >= HISTO_BUCKETS {
                    None
                } else {
                    // Bucket i counts durations < 2^i µs (bucket 0: exactly 0).
                    Some((1u64 << i) as f64 * 1e-6)
                };
                (bound, c)
            })
            .collect()
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .with("count", Json::UInt(self.count))
            .with("total_secs", Json::num(self.total.as_secs_f64()))
            .with("max_secs", Json::num(self.max.as_secs_f64()))
            .with(
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(le, c)| {
                            Json::obj()
                                .with("le_secs", le.map_or(Json::Null, Json::num))
                                .with("count", Json::UInt(c))
                        })
                        .collect(),
                ),
            )
    }
}

/// Number of log-scale value buckets: bucket `i` counts values `< 1 << i`
/// (bucket 0: exactly 0), so 64 buckets plus the top slot cover all of
/// `u64`.
const VALUE_BUCKETS: usize = 64;

/// A histogram of unitless integer observations (retry counts, batch
/// sizes) with fixed power-of-two buckets — the integer sibling of
/// [`DurationHisto`], with the same O(1)/no-allocation recording and
/// run-to-run comparable bucket bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueHisto {
    buckets: [u64; VALUE_BUCKETS + 1],
    count: u64,
    total: u64,
    max: u64,
}

impl Default for ValueHisto {
    fn default() -> Self {
        Self {
            buckets: [0; VALUE_BUCKETS + 1],
            count: 0,
            total: 0,
            max: 0,
        }
    }
}

impl ValueHisto {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        let idx = (u64::BITS - v.leading_zeros()) as usize; // 0 for 0
        self.buckets[idx.min(VALUE_BUCKETS)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `(exclusive_upper_bound, count)` for each non-empty bucket; the top
    /// bucket (values ≥ 2^63) reports an upper bound of `None`.
    pub fn nonzero_buckets(&self) -> Vec<(Option<u64>, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let bound = if i >= VALUE_BUCKETS {
                    None
                } else {
                    Some(1u64 << i)
                };
                (bound, c)
            })
            .collect()
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .with("count", Json::UInt(self.count))
            .with("total", Json::UInt(self.total))
            .with("max", Json::UInt(self.max))
            .with(
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(lt, c)| {
                            Json::obj()
                                .with("lt", lt.map_or(Json::Null, Json::UInt))
                                .with("count", Json::UInt(c))
                        })
                        .collect(),
                ),
            )
    }
}

/// A named collection of counters, gauges, and duration/value histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histos: BTreeMap<String, DurationHisto>,
    value_histos: BTreeMap<String, ValueHisto>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a counter (creating it at zero on first use).
    pub fn inc(&mut self, name: &str, by: u64) {
        self.counters.entry(name.to_string()).or_default().add(by);
    }

    /// The value of a counter (zero when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or_default().get()
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.entry(name.to_string()).or_default().set(v);
    }

    /// The value of a gauge (zero when never set).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or_default().get()
    }

    /// Records a duration observation into a named histogram.
    pub fn record_duration(&mut self, name: &str, d: Duration) {
        self.histos.entry(name.to_string()).or_default().record(d);
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&DurationHisto> {
        self.histos.get(name)
    }

    /// Records an integer observation into a named value histogram.
    pub fn record_value(&mut self, name: &str, v: u64) {
        self.value_histos
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// A value histogram by name.
    pub fn value_histogram(&self, name: &str) -> Option<&ValueHisto> {
        self.value_histos.get(name)
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histos.is_empty()
            && self.value_histos.is_empty()
    }

    /// Serializes the registry (name order, hence output, is stable).
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (name, c) in &self.counters {
            counters.set(name, Json::UInt(c.get()));
        }
        let mut gauges = Json::obj();
        for (name, g) in &self.gauges {
            gauges.set(name, Json::num(g.get()));
        }
        let mut histos = Json::obj();
        for (name, h) in &self.histos {
            histos.set(name, h.to_json());
        }
        let mut value_histos = Json::obj();
        for (name, h) in &self.value_histos {
            value_histos.set(name, h.to_json());
        }
        Json::obj()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", histos)
            .with("value_histograms", value_histos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_saturating() {
        let mut r = Registry::new();
        r.inc("a.b", 2);
        r.inc("a.b", 3);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("missing"), 0);
        let mut c = Counter::default();
        c.add(u64::MAX);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauges_sanitize_non_finite() {
        let mut r = Registry::new();
        r.set_gauge("g", 1.5);
        assert_eq!(r.gauge("g"), 1.5);
        r.set_gauge("g", f64::INFINITY);
        assert_eq!(r.gauge("g"), 0.0);
        r.set_gauge("g", f64::NAN);
        assert_eq!(r.gauge("g"), 0.0);
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        let mut h = DurationHisto::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_micros(1)); // < 2µs bucket
        h.record(Duration::from_micros(3)); // < 4µs bucket
        h.record(Duration::from_millis(5)); // < 8192µs bucket
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), Duration::from_millis(5));
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 4);
        // Every bucket bound is a power-of-two number of microseconds.
        for (bound, count) in &buckets {
            assert_eq!(*count, 1);
            if let Some(b) = bound {
                let micros = b * 1e6;
                assert_eq!(micros, micros.round());
                assert_eq!((micros as u64).count_ones(), 1);
            }
        }
    }

    #[test]
    fn histogram_overflow_bucket_has_no_bound() {
        let mut h = DurationHisto::new();
        h.record(Duration::from_secs(100_000)); // > 71 min: overflow
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(None, 1)]);
        assert!(h.to_json().render().contains("\"le_secs\":null"));
    }

    #[test]
    fn value_histogram_buckets_are_log_scale() {
        let mut h = ValueHisto::new();
        h.record(0);
        h.record(1); // < 2
        h.record(3); // < 4
        h.record(1000); // < 1024
        assert_eq!(h.count(), 4);
        assert_eq!(h.total(), 1004);
        assert_eq!(h.max(), 1000);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 4);
        for (bound, count) in &buckets {
            assert_eq!(*count, 1);
            if let Some(b) = bound {
                assert_eq!(b.count_ones(), 1, "power-of-two bound");
            }
        }
        // Top bucket has no bound.
        let mut top = ValueHisto::new();
        top.record(u64::MAX);
        assert_eq!(top.nonzero_buckets(), vec![(None, 1)]);
        assert!(top.to_json().render().contains("\"lt\":null"));
    }

    #[test]
    fn registry_json_is_deterministic() {
        let mut r = Registry::new();
        r.inc("z", 1);
        r.inc("a", 2);
        r.set_gauge("m", 0.25);
        r.record_duration("d", Duration::from_micros(10));
        r.record_value("v", 3);
        assert_eq!(r.value_histogram("v").map(ValueHisto::count), Some(1));
        assert!(r.to_json().render().contains("\"value_histograms\""));
        let a = r.to_json().render();
        let b = r.to_json().render();
        assert_eq!(a, b);
        // BTreeMap ordering: "a" before "z".
        assert!(a.find("\"a\":2").unwrap() < a.find("\"z\":1").unwrap());
        assert!(!r.is_empty());
        assert!(Registry::new().is_empty());
    }
}
