//! [`RunReport`] — everything a completed run measured, in one value.
//!
//! The report is the unit of the repo's perf trajectory: the `repro` and
//! `bench_run` binaries serialize it to `BENCH_run.json`, and each PR's
//! numbers are compared against the previous ones. The JSON schema is
//! pinned by a golden test (field *presence* is asserted; timing values
//! are free to vary), so a PR that drops a section breaks visibly.

use std::fmt::Write as _;
use std::time::Duration;

use crate::json::Json;
use crate::metrics::Registry;
use crate::timer::PhaseStat;

/// Schema version of the serialized report; bump on breaking changes.
/// v2 added the memory-footprint fields: `sim.store_bytes`,
/// `sim.bytes_per_record`, and `analysis.index_bytes`. v3 added
/// `sim.peak_store_bytes` — the sim-phase high-water of mutable row bytes,
/// the number the spill storage mode bounds. v4 added `actioning_sweep` —
/// the one-pass Figure-11 sweep's trie-build and per-cut read walls
/// (`build_wall_secs`, `read_wall_secs`, `total_wall_secs`, `days`,
/// `trie_nodes`), the wall `bench_diff` gates. v5 added the storage
/// fault fields: `faults.io_retries`, `faults.checksum_failures`,
/// `faults.failed_shards[].kind`, and `sim.spill_bytes_verified`. v6
/// added the analysis-throughput fields the CI throughput floors gate:
/// `analysis.scanned_records`, `analysis.records_per_sec`,
/// `analysis.index_records`, and `analysis.index_records_per_sec`. v7
/// added the incremental-engine section `analysis.incremental.{
/// days_reused, days_computed, extend_wall_secs}` — always present: a
/// from-scratch run reports every simulated day as computed and none
/// reused.
pub const SCHEMA_VERSION: u64 = 7;

/// Throughput over a wall-clock window, `0.0` for an empty window.
///
/// A shard (or phase) whose wall clock rounds to zero has no measurable
/// rate; returning `0.0` instead of `f64::INFINITY` keeps every derived
/// value JSON-representable.
pub fn rate_per_sec(items: u64, wall: Duration) -> f64 {
    let s = wall.as_secs_f64();
    if s > 0.0 {
        items as f64 / s
    } else {
        0.0
    }
}

/// Timing and throughput of one simulation shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStat {
    /// Human-readable shard description, e.g. `benign hh 0..312`.
    pub label: String,
    /// Records emitted by the shard (before sampling).
    pub records: u64,
    /// Wall clock the shard took on its worker.
    pub wall: Duration,
}

impl ShardStat {
    /// Emission throughput in records per second (`0.0` when the wall
    /// clock rounds to zero).
    pub fn records_per_sec(&self) -> f64 {
        rate_per_sec(self.records, self.wall)
    }
}

/// One shard that failed at least once during the run, as exported in the
/// report's `faults` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultStat {
    /// Plan index of the shard.
    pub shard: u64,
    /// Human-readable shard description, e.g. `benign hh 0..312`.
    pub label: String,
    /// Attempts made (first try plus retries).
    pub attempts: u64,
    /// Retries consumed (`attempts - 1`).
    pub retries: u64,
    /// Whether the shard was ultimately dropped (degraded run) rather
    /// than recovered.
    pub dropped: bool,
    /// Records the last failed attempt had produced before it failed —
    /// work the unwind discarded.
    pub records_lost: u64,
    /// How the last failed attempt failed: `"panic"`, `"io"`,
    /// `"corrupt"`, or `"budget"`.
    pub kind: String,
    /// The captured panic message (or typed-error message) of the last
    /// failed attempt.
    pub panic_msg: String,
}

/// Timing of one analysis pass (one figure/table of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigureStat {
    /// Experiment id, e.g. `"F2"`.
    pub id: String,
    /// Wall clock of the whole pass.
    pub wall: Duration,
    /// Input cardinality: records the pass read across its dataset
    /// slices.
    pub input_records: u64,
}

/// Timing of one actioning-ROC evaluation (one Figure 11 granularity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActioningStat {
    /// Granularity label, e.g. `"/64"`.
    pub granularity: String,
    /// Wall clock of tallying and curve construction.
    pub wall: Duration,
    /// Decision units scored on day *n*.
    pub units_scored: u64,
    /// Decision units evaluated on day *n+1*.
    pub units_evaluated: u64,
}

/// Timing of the one-pass Figure-11 granularity sweep: the per-day
/// aggregation-trie builds plus every granularity's count reads. Zero
/// (`days == 0`) until the sweep runs; serialized with a fixed key set
/// either way so the schema is run-independent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepStat {
    /// Wall clock of building the shared per-day counting tries.
    pub build_wall: Duration,
    /// Summed wall clock of the per-granularity read-offs.
    pub read_wall: Duration,
    /// Day slices tries were built for.
    pub days: u64,
    /// Total trie nodes across the per-day tries (both families).
    pub trie_nodes: u64,
}

impl SweepStat {
    /// Build plus read wall — the sweep's total, the number `bench_diff`
    /// gates as `actioning_sweep.total_wall_secs`.
    pub fn total_wall(&self) -> Duration {
        self.build_wall + self.read_wall
    }
}

/// What the incremental engine reused versus recomputed on one run —
/// the `analysis.incremental` section of the v7 schema. Always
/// serialized: a from-scratch run reports every simulated day as
/// computed (`days_reused == 0`), and `extend_wall` is the wall clock of
/// the extension path alone (zero on batch runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStat {
    /// Simulated days reconstructed from frozen deltas (not re-run).
    pub days_reused: u64,
    /// Simulated days actually executed by the driver this run.
    pub days_computed: u64,
    /// Wall clock of the timeline-extension path (suffix simulation plus
    /// union re-freeze plus selective pass re-run).
    pub extend_wall: Duration,
}

/// The aggregated observability output of one study run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Whether instrumentation was enabled; a disabled report stays
    /// empty (and serializes with the same schema, all sections bare).
    pub enabled: bool,
    /// Run configuration echo (seed, scale, threads, …), set by the
    /// driver's caller.
    pub config: Vec<(String, Json)>,
    /// Worker threads the simulation used.
    pub threads: u64,
    /// Pipeline phases in execution order (`plan`, `sim`, `merge`,
    /// `sort`, then analysis/total entries appended by later stages).
    pub phases: Vec<PhaseStat>,
    /// Per-shard simulation stats, in plan (= merge) order.
    pub shards: Vec<ShardStat>,
    /// Per-figure analysis stats, in experiment order.
    pub figures: Vec<FigureStat>,
    /// Per-granularity actioning stats (Figure 11).
    pub actioning: Vec<ActioningStat>,
    /// One-pass granularity-sweep timing (Figure 11); default-zero until
    /// the sweep runs.
    pub actioning_sweep: SweepStat,
    /// Analysis-engine phases in execution order (`index` — building the
    /// shared dataset indexes, `passes` — running the experiment registry,
    /// `total`), recorded by the experiment registry. Empty until the
    /// analyses run (the serialized `analysis.phases` object still carries
    /// all three keys, zero-valued, so the schema is run-independent).
    pub analysis_phases: Vec<PhaseStat>,
    /// The failure policy the run executed under (`"abort"`, `"retry"`,
    /// or `"degrade"`; empty when the caller never set it).
    pub failure_policy: String,
    /// Shards that failed at least once (recovered or dropped); empty on
    /// a clean run.
    pub faults: Vec<FaultStat>,
    /// Op-level I/O retries the spill layer absorbed without failing a
    /// shard attempt (`faults.io_retries` in the JSON).
    pub io_retries: u64,
    /// Spill runs that failed checksum or framing verification
    /// (`faults.checksum_failures` in the JSON).
    pub checksum_failures: u64,
    /// Spill payload bytes that passed checksum verification across both
    /// read passes (`sim.spill_bytes_verified`); zero in memory mode.
    pub spill_bytes_verified: u64,
    /// Peak heap bytes of the frozen telemetry stores (all column stores
    /// plus the shared intern tables, counted once). Zero when
    /// uninstrumented. Serialized as `sim.store_bytes` — a plain field
    /// (not only a gauge) so `bench_diff`'s dotted-path lookup can
    /// address it.
    pub store_bytes: u64,
    /// `store_bytes` per stored record (`0.0` on an empty run).
    pub bytes_per_record: f64,
    /// High-water mark of mutable row bytes held in memory during the sim
    /// phase (shard-local stores plus spill staging buffers). This is the
    /// number the spill storage mode keeps flat as the run scales;
    /// serialized as `sim.peak_store_bytes` so `bench_diff` can gate it.
    /// Zero when uninstrumented.
    pub peak_store_bytes: u64,
    /// Heap bytes of the shared analysis indexes (`analysis.index_bytes`
    /// in the JSON). Zero until the analyses run.
    pub index_bytes: u64,
    /// Records indexed during the analysis-engine index phase (the sum of
    /// the shared per-window index cardinalities;
    /// `analysis.index_records` in the JSON). Zero until the analyses
    /// run.
    pub index_records: u64,
    /// Incremental-engine accounting (`analysis.incremental` in the
    /// JSON); a from-scratch run reports all days computed, none reused.
    pub incremental: IncrementalStat,
    /// Free-form counters/gauges/histograms recorded along the way.
    pub registry: Registry,
}

impl RunReport {
    /// An empty report; `enabled` gates whether later stages record into
    /// it.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            ..Self::default()
        }
    }

    /// Adds a config echo entry.
    pub fn set_config(&mut self, key: &str, value: Json) {
        self.config.push((key.to_string(), value));
    }

    /// Wall clock of a phase by name (first match).
    pub fn phase_wall(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|p| p.name == name).map(|p| p.wall)
    }

    /// Total records emitted across all shards.
    pub fn total_records(&self) -> u64 {
        self.shards.iter().map(|s| s.records).sum()
    }

    /// Aggregate simulation throughput (records per second over the
    /// `sim` phase; `0.0` when unmeasured).
    pub fn records_per_sec(&self) -> f64 {
        rate_per_sec(
            self.total_records(),
            self.phase_wall("sim").unwrap_or(Duration::ZERO),
        )
    }

    /// Total analysis wall clock across figures.
    pub fn analysis_wall(&self) -> Duration {
        self.figures.iter().map(|f| f.wall).sum()
    }

    /// Records scanned across every analysis pass (sum of per-figure
    /// input cardinalities; passes sharing a window each count their own
    /// scan — this measures scan *work*, not distinct rows).
    pub fn analysis_scanned_records(&self) -> u64 {
        self.figures.iter().map(|f| f.input_records).sum()
    }

    /// Wall clock of one analysis-engine phase by name.
    fn analysis_phase_wall(&self, name: &str) -> Duration {
        self.analysis_phases
            .iter()
            .find(|p| p.name == name)
            .map_or(Duration::ZERO, |p| p.wall)
    }

    /// Aggregate analysis scan throughput: scanned records over the
    /// engine's `total` phase wall — the number the 10× CI lane floors
    /// with `bench_diff --min-records-per-sec` (`0.0` when unmeasured).
    pub fn analysis_records_per_sec(&self) -> f64 {
        rate_per_sec(
            self.analysis_scanned_records(),
            self.analysis_phase_wall("total"),
        )
    }

    /// Index-build throughput: records indexed over the engine's `index`
    /// phase wall (`0.0` when unmeasured).
    pub fn index_records_per_sec(&self) -> f64 {
        rate_per_sec(self.index_records, self.analysis_phase_wall("index"))
    }

    /// Serializes the report. Every number is finite by construction —
    /// non-finite values would render as `null`, never as `Infinity` or
    /// `NaN`.
    pub fn to_json(&self) -> Json {
        let mut config = Json::obj();
        for (k, v) in &self.config {
            config.set(k, v.clone());
        }
        let mut phases = Json::obj();
        for p in &self.phases {
            phases.set(&p.name, Json::num(p.wall.as_secs_f64()));
        }
        let shards = Json::Arr(
            self.shards
                .iter()
                .map(|s| {
                    Json::obj()
                        .with("label", Json::str(&*s.label))
                        .with("records", Json::UInt(s.records))
                        .with("wall_secs", Json::num(s.wall.as_secs_f64()))
                        .with("records_per_sec", Json::num(s.records_per_sec()))
                })
                .collect(),
        );
        let figures = Json::Arr(
            self.figures
                .iter()
                .map(|f| {
                    Json::obj()
                        .with("id", Json::str(&*f.id))
                        .with("wall_secs", Json::num(f.wall.as_secs_f64()))
                        .with("input_records", Json::UInt(f.input_records))
                })
                .collect(),
        );
        let actioning = Json::Arr(
            self.actioning
                .iter()
                .map(|a| {
                    Json::obj()
                        .with("granularity", Json::str(&*a.granularity))
                        .with("wall_secs", Json::num(a.wall.as_secs_f64()))
                        .with("units_scored", Json::UInt(a.units_scored))
                        .with("units_evaluated", Json::UInt(a.units_evaluated))
                })
                .collect(),
        );
        // Fixed key set regardless of what was recorded, so the schema is
        // identical on instrumented, uninstrumented, and analysis-free runs.
        let mut analysis_phases = Json::obj();
        for name in ["index", "passes", "total"] {
            let wall = self
                .analysis_phases
                .iter()
                .find(|p| p.name == name)
                .map_or(0.0, |p| p.wall.as_secs_f64());
            analysis_phases.set(name, Json::num(wall));
        }
        let failed_shards = Json::Arr(
            self.faults
                .iter()
                .map(|f| {
                    Json::obj()
                        .with("shard", Json::UInt(f.shard))
                        .with("label", Json::str(&*f.label))
                        .with("attempts", Json::UInt(f.attempts))
                        .with("retries", Json::UInt(f.retries))
                        .with("dropped", Json::Bool(f.dropped))
                        .with("records_lost", Json::UInt(f.records_lost))
                        .with("kind", Json::str(&*f.kind))
                        .with("panic_msg", Json::str(&*f.panic_msg))
                })
                .collect(),
        );
        let faults = Json::obj()
            .with("policy", Json::str(&*self.failure_policy))
            .with("failed_shards", failed_shards)
            .with(
                "retries_total",
                Json::UInt(self.faults.iter().map(|f| f.retries).sum()),
            )
            .with(
                "dropped_shards",
                Json::UInt(self.faults.iter().filter(|f| f.dropped).count() as u64),
            )
            .with(
                "records_lost",
                Json::UInt(self.faults.iter().map(|f| f.records_lost).sum()),
            )
            .with("io_retries", Json::UInt(self.io_retries))
            .with("checksum_failures", Json::UInt(self.checksum_failures));
        Json::obj()
            .with("schema_version", Json::UInt(SCHEMA_VERSION))
            .with("enabled", Json::Bool(self.enabled))
            .with("config", config)
            .with(
                "sim",
                Json::obj()
                    .with("threads", Json::UInt(self.threads))
                    .with("phases", phases)
                    .with("shards", shards)
                    .with("total_records", Json::UInt(self.total_records()))
                    .with("records_per_sec", Json::num(self.records_per_sec()))
                    .with("store_bytes", Json::UInt(self.store_bytes))
                    .with("bytes_per_record", Json::num(self.bytes_per_record))
                    .with("peak_store_bytes", Json::UInt(self.peak_store_bytes))
                    .with(
                        "spill_bytes_verified",
                        Json::UInt(self.spill_bytes_verified),
                    ),
            )
            .with(
                "analysis",
                Json::obj()
                    .with("figures", figures)
                    .with("phases", analysis_phases)
                    .with(
                        "total_wall_secs",
                        Json::num(self.analysis_wall().as_secs_f64()),
                    )
                    .with("index_bytes", Json::UInt(self.index_bytes))
                    .with(
                        "scanned_records",
                        Json::UInt(self.analysis_scanned_records()),
                    )
                    .with(
                        "records_per_sec",
                        Json::num(self.analysis_records_per_sec()),
                    )
                    .with("index_records", Json::UInt(self.index_records))
                    .with(
                        "index_records_per_sec",
                        Json::num(self.index_records_per_sec()),
                    )
                    .with(
                        "incremental",
                        Json::obj()
                            .with("days_reused", Json::UInt(self.incremental.days_reused))
                            .with("days_computed", Json::UInt(self.incremental.days_computed))
                            .with(
                                "extend_wall_secs",
                                Json::num(self.incremental.extend_wall.as_secs_f64()),
                            ),
                    ),
            )
            .with("actioning", actioning)
            .with(
                "actioning_sweep",
                Json::obj()
                    .with(
                        "build_wall_secs",
                        Json::num(self.actioning_sweep.build_wall.as_secs_f64()),
                    )
                    .with(
                        "read_wall_secs",
                        Json::num(self.actioning_sweep.read_wall.as_secs_f64()),
                    )
                    .with(
                        "total_wall_secs",
                        Json::num(self.actioning_sweep.total_wall().as_secs_f64()),
                    )
                    .with("days", Json::UInt(self.actioning_sweep.days))
                    .with("trie_nodes", Json::UInt(self.actioning_sweep.trie_nodes)),
            )
            .with("faults", faults)
            .with("metrics", self.registry.to_json())
    }

    /// The pretty-printed JSON document written to `BENCH_run.json`.
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// A compact human-readable summary (phases, throughput, slowest
    /// figures).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "run report: {} thread(s);", self.threads);
        for p in &self.phases {
            let _ = write!(out, " {} {:.2?}", p.name, p.wall);
        }
        let _ = writeln!(
            out,
            "; {} records ({:.0} rec/s), {} shards",
            self.total_records(),
            self.records_per_sec(),
            self.shards.len()
        );
        if !self.figures.is_empty() {
            let mut by_wall: Vec<&FigureStat> = self.figures.iter().collect();
            by_wall.sort_by_key(|f| std::cmp::Reverse(f.wall));
            let _ = writeln!(
                out,
                "analysis: {} passes in {:.2?}; slowest:",
                self.figures.len(),
                self.analysis_wall()
            );
            for f in by_wall.iter().take(5) {
                let _ = writeln!(
                    out,
                    "  {:10} {:>10.2?}  {:>10} input records",
                    f.id, f.wall, f.input_records
                );
            }
        }
        if !self.analysis_phases.is_empty() {
            let _ = write!(out, "analysis phases:");
            for p in &self.analysis_phases {
                let _ = write!(out, " {} {:.2?}", p.name, p.wall);
            }
            let _ = writeln!(out);
        }
        for a in &self.actioning {
            let _ = writeln!(
                out,
                "actioning {:6} {:>10.2?}  {} -> {} units",
                a.granularity, a.wall, a.units_scored, a.units_evaluated
            );
        }
        if self.actioning_sweep.days > 0 {
            let s = &self.actioning_sweep;
            let _ = writeln!(
                out,
                "actioning sweep: build {:.2?} + reads {:.2?} over {} day trie(s), {} nodes",
                s.build_wall, s.read_wall, s.days, s.trie_nodes
            );
        }
        if !self.faults.is_empty() {
            let retries: u64 = self.faults.iter().map(|f| f.retries).sum();
            let dropped = self.faults.iter().filter(|f| f.dropped).count();
            let _ = writeln!(
                out,
                "faults ({}): {} failed shard(s), {} retries, {} dropped",
                self.failure_policy,
                self.faults.len(),
                retries,
                dropped
            );
            for f in &self.faults {
                let _ = writeln!(
                    out,
                    "  shard {:3} {:<24} {} attempt(s){}  {}: {}",
                    f.shard,
                    f.label,
                    f.attempts,
                    if f.dropped { ", dropped" } else { "" },
                    f.kind,
                    f.panic_msg
                );
            }
        }
        if self.io_retries > 0 || self.checksum_failures > 0 {
            let _ = writeln!(
                out,
                "storage: {} io retry(ies) absorbed, {} checksum failure(s), {} bytes verified",
                self.io_retries, self.checksum_failures, self.spill_bytes_verified
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut r = RunReport::new(true);
        r.threads = 2;
        r.set_config("seed", Json::UInt(42));
        r.phases = vec![
            PhaseStat {
                name: "plan".into(),
                wall: Duration::from_micros(3),
            },
            PhaseStat {
                name: "sim".into(),
                wall: Duration::from_millis(80),
            },
            PhaseStat {
                name: "merge".into(),
                wall: Duration::from_millis(4),
            },
            PhaseStat {
                name: "sort".into(),
                wall: Duration::from_millis(2),
            },
        ];
        r.shards.push(ShardStat {
            label: "benign hh 0..64".into(),
            records: 4000,
            wall: Duration::from_millis(40),
        });
        r.shards.push(ShardStat {
            label: "abuse camp 0..4".into(),
            records: 1000,
            wall: Duration::from_millis(10),
        });
        r.figures.push(FigureStat {
            id: "F2".into(),
            wall: Duration::from_millis(7),
            input_records: 1234,
        });
        r.actioning.push(ActioningStat {
            granularity: "/64".into(),
            wall: Duration::from_millis(1),
            units_scored: 10,
            units_evaluated: 12,
        });
        r.actioning_sweep = SweepStat {
            build_wall: Duration::from_millis(2),
            read_wall: Duration::from_millis(1),
            days: 4,
            trie_nodes: 77,
        };
        r.analysis_phases = vec![
            PhaseStat {
                name: "index".into(),
                wall: Duration::from_millis(3),
            },
            PhaseStat {
                name: "passes".into(),
                wall: Duration::from_millis(9),
            },
            PhaseStat {
                name: "total".into(),
                wall: Duration::from_millis(12),
            },
        ];
        r.registry.inc("sim.records_total", 5000);
        r.store_bytes = 90_000;
        r.bytes_per_record = 18.0;
        r.peak_store_bytes = 120_000;
        r.index_bytes = 40_000;
        r.index_records = 2500;
        r.failure_policy = "retry".into();
        r.faults.push(FaultStat {
            shard: 1,
            label: "abuse camp 0..4".into(),
            attempts: 2,
            retries: 1,
            dropped: false,
            records_lost: 37,
            kind: "panic".into(),
            panic_msg: "injected fault: shard 1 attempt 0 after 1 day(s)".into(),
        });
        r.io_retries = 3;
        r.checksum_failures = 1;
        r.spill_bytes_verified = 70_000;
        r
    }

    #[test]
    fn zero_duration_rates_are_zero_not_infinite() {
        assert_eq!(rate_per_sec(1000, Duration::ZERO), 0.0);
        let s = ShardStat {
            label: "benign hh 0..1".into(),
            records: 1000,
            wall: Duration::ZERO,
        };
        assert_eq!(s.records_per_sec(), 0.0);
        let mut r = RunReport::new(true);
        r.shards.push(s);
        assert_eq!(r.records_per_sec(), 0.0, "no sim phase recorded");
        assert!(!r.to_json().render().contains("null"));
    }

    #[test]
    fn totals_and_lookups() {
        let r = sample();
        assert_eq!(r.total_records(), 5000);
        assert_eq!(r.phase_wall("sim"), Some(Duration::from_millis(80)));
        assert_eq!(r.phase_wall("nope"), None);
        assert!((r.records_per_sec() - 5000.0 / 0.080).abs() < 1e-6);
        assert_eq!(r.analysis_wall(), Duration::from_millis(7));
        // v6 throughput fields: scanned records over the engine's total
        // phase, indexed records over the index phase.
        assert_eq!(r.analysis_scanned_records(), 1234);
        assert!((r.analysis_records_per_sec() - 1234.0 / 0.012).abs() < 1e-6);
        assert!((r.index_records_per_sec() - 2500.0 / 0.003).abs() < 1e-6);
        let bare = RunReport::new(true);
        assert_eq!(bare.analysis_records_per_sec(), 0.0, "unmeasured is 0.0");
        assert_eq!(bare.index_records_per_sec(), 0.0);
    }

    #[test]
    fn json_has_every_section_and_no_specials() {
        let text = sample().to_json_string();
        for key in [
            "\"schema_version\"",
            "\"config\"",
            "\"sim\"",
            "\"plan\"",
            "\"merge\"",
            "\"sort\"",
            "\"shards\"",
            "\"records_per_sec\"",
            "\"store_bytes\"",
            "\"bytes_per_record\"",
            "\"peak_store_bytes\"",
            "\"index_bytes\"",
            "\"analysis\"",
            "\"phases\"",
            "\"index\"",
            "\"passes\"",
            "\"input_records\"",
            "\"scanned_records\"",
            "\"index_records\"",
            "\"index_records_per_sec\"",
            "\"incremental\"",
            "\"days_reused\"",
            "\"days_computed\"",
            "\"extend_wall_secs\"",
            "\"actioning\"",
            "\"units_scored\"",
            "\"actioning_sweep\"",
            "\"build_wall_secs\"",
            "\"read_wall_secs\"",
            "\"total_wall_secs\"",
            "\"trie_nodes\"",
            "\"faults\"",
            "\"failed_shards\"",
            "\"retries_total\"",
            "\"dropped_shards\"",
            "\"records_lost\"",
            "\"kind\"",
            "\"panic_msg\"",
            "\"io_retries\"",
            "\"checksum_failures\"",
            "\"spill_bytes_verified\"",
            "\"metrics\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        assert!(!text.contains("Infinity"));
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn disabled_report_serializes_with_the_same_top_level_schema() {
        let on = sample().to_json();
        let off = RunReport::new(false).to_json();
        let tops = |j: &Json| match j {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            _ => panic!("report is an object"),
        };
        assert_eq!(tops(&on), tops(&off));
    }

    #[test]
    fn render_mentions_phases_and_slowest_figures() {
        let text = sample().render();
        assert!(text.contains("plan"));
        assert!(text.contains("sort"));
        assert!(text.contains("analysis phases: index"));
        assert!(text.contains("passes"));
        assert!(text.contains("F2"));
        assert!(text.contains("/64"));
        assert!(text.contains("actioning sweep: build"));
        assert!(text.contains("faults (retry)"));
        assert!(text.contains("abuse camp 0..4"));
        assert!(text.contains("panic: injected fault"));
        assert!(text.contains("storage: 3 io retry(ies)"));
    }
}
