//! The deterministic sharded simulation driver.
//!
//! The simulation is embarrassingly parallel in two dimensions: benign
//! households never interact (each household's requests are a pure
//! function of the seed and its index), and attacker campaigns never
//! interact. The driver exploits this by partitioning the run into
//! **shards** — contiguous household ranges plus contiguous campaign
//! ranges — and simulating each shard's *entire* study window into
//! shard-local accumulators on a pool of worker threads.
//!
//! # Determinism
//!
//! Output must be byte-identical at any thread count, so nothing about
//! the partition may depend on the thread count:
//!
//! 1. the shard plan is a function of the *config only* (household and
//!    campaign counts), never of `threads`;
//! 2. workers claim shard indices from a shared queue — claiming order
//!    is racy, but each shard's output is entirely local;
//! 3. the merge walks shards in plan order, so the merged insertion
//!    order ("shard-major": benign shards ascending, then campaign
//!    shards ascending) is a constant of the config.
//!
//! [`RequestStore`] sorts records by timestamp with a *stable* sort, so
//! equal-timestamp ties resolve by that insertion order — identical in
//! every run. A `threads = 1` run executes the same plan on one worker
//! and produces the same bytes.
//!
//! # Fault tolerance
//!
//! Every shard attempt runs behind `std::panic::catch_unwind`, so a
//! panicking shard unwinds into a captured payload instead of poisoning
//! the merge mutex or killing sibling workers; its half-filled local
//! buffers are dropped with the unwind. Failed shards are re-enqueued up
//! to `max_shard_retries` extra attempts (a retry of a pure function
//! reproduces the exact bytes, so determinism survives), and what
//! happens after exhaustion is the [`FailurePolicy`]'s call: `Abort` and
//! `Retry` fail the run with a [`FaultReport`], `Degrade` drops the
//! shard and completes on the survivors. See [`crate::faults`].

use std::collections::BTreeMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use ipv6_study_analysis::windows;
use ipv6_study_behavior::abuse::AbuseSim;
use ipv6_study_behavior::emit::emit_user_day;
use ipv6_study_behavior::population::Population;
use ipv6_study_behavior::schedule::day_plan;
use ipv6_study_netmodel::World;
use ipv6_study_obs::report::rate_per_sec;
use ipv6_study_obs::timer::{time_phase, PhaseStat};
use ipv6_study_telemetry::spill::{merge_into_frozen, KeyCollector};
use ipv6_study_telemetry::{
    DateRange, EntityTables, FamilyPayload, FrozenDatasets, FrozenStore, MemGauge, RequestSink,
    RequestStore, RunManifest, Samplers, ShardPayload, ShardSink, SimDate, SinkStorage, SpillError,
    SpillSession, SpillStats, StorageMode, StudyDatasets,
};

use crate::config::StudyConfig;
use crate::faults::{
    FailurePolicy, FaultDecision, FaultKind, FaultReport, ShardFailure, StudyError,
};

/// Target number of benign shards (the plan clamps so small runs still
/// get meaningfully sized shards).
const TARGET_BENIGN_SHARDS: u64 = 64;
/// Minimum households per benign shard.
const MIN_HOUSEHOLDS_PER_SHARD: u64 = 64;
/// Target number of abuse shards.
const TARGET_ABUSE_SHARDS: u32 = 16;
/// Minimum campaigns per abuse shard.
const MIN_CAMPAIGNS_PER_SHARD: u32 = 4;

/// One unit of schedulable work.
#[derive(Debug, Clone)]
enum ShardWork {
    /// Simulate a contiguous household range over the whole window.
    Benign(Range<u64>),
    /// Simulate a contiguous campaign range over the whole window.
    Abuse(Range<u32>),
}

/// Human-readable shard description, e.g. `benign hh 0..312`.
fn shard_label(work: &ShardWork) -> String {
    match work {
        ShardWork::Benign(r) => format!("benign hh {}..{}", r.start, r.end),
        ShardWork::Abuse(r) => format!("abuse camp {}..{}", r.start, r.end),
    }
}

/// Everything one shard produced.
struct ShardOutput {
    payload: ShardPayload,
    /// Distinct users this (benign) shard enumerated on the first study
    /// day — the denominator of the realized user-sample rate.
    users_seen: u64,
    /// How many of those the user sampler selected.
    users_sampled: u64,
    wall: Duration,
}

/// Timing and throughput for one shard.
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Human-readable shard description, e.g. `benign hh 0..312`.
    pub label: String,
    /// Records emitted by this shard (before sampling).
    pub records: u64,
    /// Wall-clock the shard's simulation took on its worker.
    pub wall: Duration,
}

impl ShardMetrics {
    /// Emission throughput in records per second. A shard whose wall
    /// clock rounds to zero has no measurable rate and reports `0.0`
    /// (never `f64::INFINITY`, which JSON cannot represent).
    pub fn records_per_sec(&self) -> f64 {
        rate_per_sec(self.records, self.wall)
    }
}

/// Per-phase timing for a completed run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Worker threads the run used.
    pub threads: usize,
    /// Per-shard timings of the shards that made it into the merge, in
    /// plan (= merge) order. Shards dropped under
    /// [`FailurePolicy::Degrade`] appear in the run's [`FaultReport`]
    /// instead.
    pub shards: Vec<ShardMetrics>,
    /// Wall-clock of the shard-planning phase.
    pub plan_wall: Duration,
    /// Wall-clock of the parallel simulation phase.
    pub sim_wall: Duration,
    /// Wall-clock of the in-order merge phase.
    pub merge_wall: Duration,
    /// Wall-clock of the final timestamp sort of the merged stores.
    pub sort_wall: Duration,
    /// Wall-clock of the whole [`crate::Study::run`], set by the caller.
    pub total_wall: Duration,
    /// High-water mark of mutable row bytes held in memory during the sim
    /// phase (shard-local stores plus spill staging buffers; frozen
    /// columns, intern tables, and merge cursors excluded). This is the
    /// number [`StorageMode::Spill`] bounds.
    ///
    /// [`StorageMode::Spill`]: ipv6_study_telemetry::StorageMode::Spill
    pub peak_store_bytes: u64,
}

impl RunMetrics {
    /// Total records emitted across all merged shards.
    pub fn total_records(&self) -> u64 {
        self.shards.iter().map(|s| s.records).sum()
    }

    /// Aggregate simulation throughput in records per second (`0.0`
    /// when the sim phase's wall clock rounds to zero — JSON has no
    /// `Infinity`).
    pub fn records_per_sec(&self) -> f64 {
        rate_per_sec(self.total_records(), self.sim_wall)
    }

    /// The driver phases in execution order, as obs phase stats.
    pub fn phases(&self) -> Vec<PhaseStat> {
        [
            ("plan", self.plan_wall),
            ("sim", self.sim_wall),
            ("merge", self.merge_wall),
            ("sort", self.sort_wall),
            ("total", self.total_wall),
        ]
        .into_iter()
        .map(|(name, wall)| PhaseStat {
            name: name.to_string(),
            wall,
        })
        .collect()
    }

    /// Renders the run report: one header line, one line per shard, and
    /// the phase totals.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "simulation: {} thread(s), {} shards, {} records in {:.2?} ({:.0} rec/s)",
            self.threads,
            self.shards.len(),
            self.total_records(),
            self.sim_wall,
            self.records_per_sec(),
        );
        for (i, s) in self.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "  shard {i:3} {:<24} {:>9} records  {:>9.2?}  {:>10.0} rec/s",
                s.label,
                s.records,
                s.wall,
                s.records_per_sec(),
            );
        }
        let _ = writeln!(
            out,
            "plan: {:.2?}; merge: {:.2?}; sort: {:.2?}; total: {:.2?}; peak store: {} bytes",
            self.plan_wall, self.merge_wall, self.sort_wall, self.total_wall, self.peak_store_bytes
        );
        out
    }
}

/// The driver's result: merged datasets, stores, metrics, and the fault
/// report (clean on a run with no shard failures).
pub(crate) struct DriverOutput {
    pub datasets: FrozenDatasets,
    pub abuse_store: FrozenStore,
    pub pair_store: FrozenStore,
    pub metrics: RunMetrics,
    pub faults: FaultReport,
    /// The spill session's storage counters (all zero in memory mode).
    pub spill_stats: SpillStats,
    /// Distinct benign users enumerated on the first study day, summed
    /// over the merged shards.
    pub users_seen: u64,
    /// How many of those the user sampler selected — the numerator of the
    /// realized user-sample rate.
    pub users_sampled: u64,
}

/// Builds the shard plan. Depends only on the config (see the module
/// docs); benign shards come first, campaign shards after.
fn plan_shards(config: &StudyConfig) -> Vec<ShardWork> {
    let mut plan = Vec::new();
    let hh_size = (config.households / TARGET_BENIGN_SHARDS).max(MIN_HOUSEHOLDS_PER_SHARD);
    let mut lo = 0u64;
    while lo < config.households {
        let hi = (lo + hh_size).min(config.households);
        plan.push(ShardWork::Benign(lo..hi));
        lo = hi;
    }
    let c_size = (config.campaigns / TARGET_ABUSE_SHARDS).max(MIN_CAMPAIGNS_PER_SHARD);
    let mut lo = 0u32;
    while lo < config.campaigns {
        let hi = (lo + c_size).min(config.campaigns);
        plan.push(ShardWork::Abuse(lo..hi));
        lo = hi;
    }
    plan
}

/// The read-only context every shard attempt runs against (bundled so
/// [`run_shard`] stays under the argument-count lint and worker closures
/// capture one reference).
struct ShardEnv<'a> {
    config: &'a StudyConfig,
    world: &'a World,
    pop: &'a Population<'a>,
    abuse: &'a AbuseSim<'a>,
    samplers: &'a Samplers,
    /// The days this run actually simulates — the full `sim_range()` on
    /// a batch run, only the appended suffix on an incremental extension
    /// (every day's emission is a pure function of `(config, day)`, so a
    /// suffix run reproduces exactly the rows a full run emits there).
    days: DateRange,
    pair_start: SimDate,
    /// The run's spill session when `config.storage` is `Spill`.
    spill: Option<&'a SpillSession>,
    /// Rows staged per family before a sorted run is spilled (unused in
    /// memory mode).
    segment_rows: usize,
    /// Run-wide mutable-row-bytes high-water gauge.
    gauge: &'a MemGauge,
}

/// Simulates one shard attempt through one [`ShardSink`] that applies the
/// §3.1 samplers in-stream and retains each family per the configured
/// storage mode.
///
/// `progress` is updated with the running record count at every day
/// boundary; when the attempt fails (injected or real), the caller reads
/// it to learn how much work was discarded. `published` is the
/// attempt's slice of the memory gauge, released by the caller on
/// failure. `fault` is the injector's decision for this attempt —
/// [`FaultDecision::default`] when injection is off.
///
/// Storage faults surface as a typed `Err(SpillError)`: the sink latches
/// the first writer error, this loop polls it at every day boundary to
/// stop simulating into a dead sink, and `into_payload` refuses partial
/// data at the end.
fn run_shard(
    env: &ShardEnv<'_>,
    work: &ShardWork,
    shard: usize,
    attempt: u32,
    fault: FaultDecision,
    progress: &AtomicU64,
    published: &AtomicU64,
) -> Result<ShardOutput, SpillError> {
    let t0 = Instant::now();
    let storage = match env.spill {
        Some(session) => SinkStorage::Spill {
            session,
            shard,
            attempt,
            segment_rows: env.segment_rows,
        },
        None => SinkStorage::Memory,
    };
    let collect_abuse = matches!(work, ShardWork::Abuse(_));
    let mut sink = ShardSink::new(
        env.samplers.clone(),
        &env.config.prefix_lengths,
        collect_abuse,
        storage,
        Some((env.gauge, published)),
    );
    let mut users_seen = 0u64;
    let mut users_sampled = 0u64;
    let mut days_done = 0u16;

    for day in env.days.days() {
        if fault.panic_after_days == Some(days_done) {
            // The injected failure: mid-shard, with partially filled
            // local buffers on the stack — exactly what a real panic in
            // the emitters would leave behind for the unwind to discard.
            panic!("injected fault: shard {shard} attempt {attempt} after {days_done} day(s)");
        }
        let dense = env.config.is_dense(day);
        let first_day = day == env.config.full_range.start;
        sink.set_pair_routing(day >= env.pair_start);
        match work {
            ShardWork::Benign(households) => {
                for hh in households.clone() {
                    let hprof = env.pop.household(hh);
                    for uid in env.pop.member_ids(&hprof) {
                        // The first day enumerates every member before the
                        // panel skip, so these counters are exact distinct
                        // counts over the shard's population — the
                        // realized user-sample rate's inputs.
                        if first_day {
                            users_seen += 1;
                            users_sampled += u64::from(env.samplers.user_sampled(uid));
                        }
                        // Panel phase: only user-sample panel members.
                        if !dense && !env.samplers.user_sampled(uid) {
                            continue;
                        }
                        let profile = env.pop.user(uid);
                        let plan = day_plan(env.world, &profile, day);
                        if plan.contexts.is_empty() {
                            continue;
                        }
                        emit_user_day(env.world, &profile, day, &plan, &mut sink);
                    }
                }
            }
            ShardWork::Abuse(campaigns) => {
                env.abuse
                    .emit_day_campaigns(env.pop, day, campaigns.clone(), &mut sink);
            }
        }
        days_done += 1;
        sink.flush_segment();
        progress.store(sink.records(), Ordering::Relaxed);
        if let Some(e) = sink.io_error() {
            return Err(e.clone());
        }
    }

    sink.finish();
    Ok(ShardOutput {
        payload: sink.into_payload()?,
        users_seen,
        users_sampled,
        wall: t0.elapsed(),
    })
}

/// The shared work queue: a cursor over fresh shards, a retry queue for
/// failed ones, and the run-level completion/abort state.
///
/// Claim order is racy by design — it cannot affect output, because every
/// shard's result lands in its own plan-indexed slot and the merge walks
/// slots in plan order.
struct WorkQueue {
    /// Cursor over not-yet-claimed plan indices.
    next: AtomicUsize,
    /// Number of plan entries.
    total: usize,
    /// Failed shards awaiting another attempt, as `(shard, attempt)`.
    retries: Mutex<Vec<(usize, u32)>>,
    /// Shards not yet resolved (succeeded or permanently failed).
    outstanding: AtomicUsize,
    /// Set when the failure policy decides the run is lost; workers stop
    /// claiming and drain out.
    aborted: AtomicBool,
}

impl WorkQueue {
    fn new(total: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            total,
            retries: Mutex::new(Vec::new()),
            outstanding: AtomicUsize::new(total),
            aborted: AtomicBool::new(false),
        }
    }

    /// Claims a retry if one is queued, else the next fresh shard.
    fn claim(&self) -> Option<(usize, u32)> {
        // Poison recovery is sound here (and on every mutex below): a
        // panicking shard unwinds *outside* any lock — all shard state is
        // attempt-local — so a poisoned mutex can only mean some holder
        // panicked between lock and unlock of these tiny critical
        // sections, which touch plain Vec/BTreeMap state that every
        // operation leaves consistent.
        if let Some(job) = self
            .retries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
        {
            return Some(job);
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some((i, 0))
    }

    /// Re-enqueues a failed shard for another attempt.
    fn requeue(&self, shard: usize, attempt: u32) {
        self.retries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((shard, attempt));
    }

    /// Marks one shard resolved (merged output or permanent failure).
    fn resolve(&self) {
        self.outstanding.fetch_sub(1, Ordering::Release);
    }

    /// True when every shard is resolved.
    fn done(&self) -> bool {
        self.outstanding.load(Ordering::Acquire) == 0
    }

    fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
    }

    fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The merge phase's output before the sort phase: either the shard
/// payloads concatenated into mutable in-memory stores, or the on-disk run
/// manifests concatenated per family in plan order.
enum MergedStreams {
    Memory {
        datasets: StudyDatasets,
        abuse: RequestStore,
        pair: RequestStore,
    },
    Spill {
        offered: u64,
        request: Vec<RunManifest>,
        user: Vec<RunManifest>,
        ip: Vec<RunManifest>,
        prefixes: BTreeMap<u8, Vec<RunManifest>>,
        abuse: Vec<RunManifest>,
        pair: Vec<RunManifest>,
    },
}

/// Unwraps a memory-mode family payload.
fn expect_rows(p: FamilyPayload) -> RequestStore {
    match p {
        FamilyPayload::Rows(rows) => rows,
        FamilyPayload::Runs(_) => unreachable!("memory-mode shard produced a spill manifest"),
    }
}

/// Unwraps a spill-mode family payload.
fn expect_runs(p: FamilyPayload) -> RunManifest {
    match p {
        FamilyPayload::Runs(runs) => runs,
        FamilyPayload::Rows(_) => unreachable!("spill-mode shard produced in-memory rows"),
    }
}

/// Runs the sharded simulation and merges shard outputs in plan order.
///
/// `spill` is the run's spill session when `config.storage` is `Spill`
/// (the caller owns it so the directory outlives the frozen columns it
/// feeds); `None` keeps every shard's output in memory exactly as before.
/// Both modes produce byte-identical frozen datasets: the spill path's
/// per-run stable sort plus `(ts, run-index)` k-way merge reproduces the
/// in-memory path's stable sort of the plan-order concatenation.
///
/// Returns `Err(StudyError::ShardsFailed)` when shard failures exceed
/// what `config.failure_policy` tolerates and `Err(StudyError::Spill)`
/// when the storage layer fails during the merge itself; otherwise the
/// output's `faults` field records any recovered (or, under `Degrade`,
/// dropped) shards.
pub(crate) fn execute(
    config: &StudyConfig,
    world: &World,
    pop: &Population<'_>,
    abuse: &AbuseSim<'_>,
    samplers: &Samplers,
    spill: Option<&SpillSession>,
) -> Result<DriverOutput, StudyError> {
    execute_days(
        config,
        world,
        pop,
        abuse,
        samplers,
        spill,
        config.sim_range(),
    )
}

/// [`execute`] restricted to a contiguous day range — the incremental
/// engine's entry point: it simulates only the days a checkpoint does
/// not already cover. The shard plan, samplers, and campaign placement
/// are unchanged (config-derived), so for any day the restricted run
/// emits exactly the rows the full run would.
pub(crate) fn execute_days(
    config: &StudyConfig,
    world: &World,
    pop: &Population<'_>,
    abuse: &AbuseSim<'_>,
    samplers: &Samplers,
    spill: Option<&SpillSession>,
    days: DateRange,
) -> Result<DriverOutput, StudyError> {
    // Figure 11's full-population day pairs: the last four *effective*
    // days. Routing is anchored on the run's final end — not on the
    // restricted `days` — so a suffix run routes each day exactly like
    // the full run does.
    let pair_start = windows::pair_window(config.sim_end()).start;
    let mut phases: Vec<PhaseStat> = Vec::new();
    let plan = time_phase(&mut phases, "plan", || plan_shards(config));
    let workers = config.threads.min(plan.len()).max(1);
    let policy = config.failure_policy;
    // Abort never retries: the first failure already decides the run.
    let max_retries = match policy {
        FailurePolicy::Abort => 0,
        FailurePolicy::Retry | FailurePolicy::Degrade => config.max_shard_retries,
    };
    let injector = config.faults.as_ref();
    let segment_rows = match &config.storage {
        StorageMode::Spill { segment_rows, .. } => *segment_rows,
        StorageMode::InMemory => usize::MAX,
    };
    let gauge = MemGauge::new();
    let env = ShardEnv {
        config,
        world,
        pop,
        abuse,
        samplers,
        days,
        pair_start,
        spill,
        segment_rows,
        gauge: &gauge,
    };

    let t0 = Instant::now();
    let queue = WorkQueue::new(plan.len());
    let slots: Vec<Mutex<Option<ShardOutput>>> = plan.iter().map(|_| Mutex::new(None)).collect();
    let failures: Mutex<BTreeMap<usize, ShardFailure>> = Mutex::new(BTreeMap::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if queue.is_aborted() {
                    break;
                }
                let Some((i, attempt)) = queue.claim() else {
                    if queue.done() {
                        break;
                    }
                    // All remaining work is in flight on other workers
                    // (and may yet be re-enqueued); stay available.
                    std::thread::yield_now();
                    continue;
                };
                let work = &plan[i];
                let fault = injector.map_or_else(FaultDecision::default, |f| {
                    f.decide(config.seed, i, attempt)
                });
                if !fault.delay.is_zero() {
                    std::thread::sleep(fault.delay);
                }
                let progress = AtomicU64::new(0);
                let published = AtomicU64::new(0);
                // AssertUnwindSafe: on Err every value the closure touched
                // mutably (the shard-local accumulators) is dropped by the
                // unwind; the shared inputs are `&`-borrows.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    run_shard(&env, work, i, attempt, fault, &progress, &published)
                }));
                let (kind, msg) = match result {
                    Ok(Ok(out)) => {
                        if attempt > 0 {
                            // A recovered retry: count the successful
                            // attempt so `attempts` = first try + retries.
                            failures
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .entry(i)
                                .and_modify(|f| f.attempts = attempt + 1);
                        }
                        // See WorkQueue::claim for why poison recovery is
                        // sound: failed shards' buffers are discarded with
                        // the unwind, never written through this mutex.
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                        queue.resolve();
                        continue;
                    }
                    Ok(Err(e)) => (FaultKind::from_spill(&e), e.to_string()),
                    Err(payload) => (FaultKind::Panic, panic_message(payload)),
                };
                // The failed attempt's buffers are gone (dropped by the
                // unwind, or never handed over by the typed-error return);
                // give back its gauge slice and delete any segment files
                // the attempt spilled so a retry starts from nothing.
                gauge.release(&published);
                if let Some(session) = spill {
                    session.remove_attempt(i, attempt);
                }
                // Corrupt and Budget failures never retry: re-running the
                // same pure work cannot repair bit rot or shrink the
                // budget, so burning the retry budget would only delay the
                // verdict.
                let exhausted = attempt >= max_retries || !kind.is_retryable();
                {
                    let mut failed = failures.lock().unwrap_or_else(PoisonError::into_inner);
                    let entry = failed.entry(i).or_insert_with(|| ShardFailure {
                        shard: i,
                        label: shard_label(work),
                        attempts: 0,
                        kind: FaultKind::Panic,
                        panic_msg: String::new(),
                        dropped: false,
                        records_lost: 0,
                    });
                    entry.attempts = attempt + 1;
                    entry.kind = kind;
                    entry.panic_msg = msg;
                    entry.records_lost = progress.load(Ordering::Relaxed);
                    if exhausted && policy == FailurePolicy::Degrade {
                        entry.dropped = true;
                    }
                }
                if !exhausted {
                    queue.requeue(i, attempt + 1);
                } else {
                    queue.resolve();
                    if policy != FailurePolicy::Degrade {
                        queue.abort();
                    }
                }
            });
        }
    });
    let sim_wall = t0.elapsed();
    let peak_store_bytes = gauge.peak();

    let failures: Vec<ShardFailure> = failures
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_values()
        .collect();
    let spill_counters =
        |spill: Option<&SpillSession>| spill.map(SpillSession::stats).unwrap_or_default();
    let sim_stats = spill_counters(spill);
    let mut faults = FaultReport {
        policy,
        failures,
        io_retries: sim_stats.io_retries,
        checksum_failures: sim_stats.checksum_failures,
    };
    if queue.is_aborted() {
        return Err(StudyError::ShardsFailed(faults));
    }

    // Merge phase: walk the slots in plan order. In memory mode this
    // concatenates shard rows into one mutable store per family; in spill
    // mode no record moves — the per-shard run manifests are concatenated
    // per family, which is all "merge" means out of core.
    let t1 = Instant::now();
    let mut shards = Vec::with_capacity(plan.len());
    let mut users_seen = 0u64;
    let mut users_sampled = 0u64;
    let mut payloads: Vec<ShardPayload> = Vec::with_capacity(plan.len());
    for (i, (work, slot)) in plan.iter().zip(slots).enumerate() {
        // Poison recovery (see WorkQueue::claim); an empty slot is a shard
        // dropped under Degrade — it must be in the fault report.
        let Some(out) = slot.into_inner().unwrap_or_else(PoisonError::into_inner) else {
            debug_assert!(
                faults.dropped().any(|f| f.shard == i),
                "unfilled slot {i} without a dropped-shard record"
            );
            continue;
        };
        shards.push(ShardMetrics {
            label: shard_label(work),
            records: out.payload.records,
            wall: out.wall,
        });
        users_seen += out.users_seen;
        users_sampled += out.users_sampled;
        payloads.push(out.payload);
    }
    let merged = if spill.is_some() {
        let mut offered = 0u64;
        let mut request = Vec::new();
        let mut user = Vec::new();
        let mut ip = Vec::new();
        let mut prefixes: BTreeMap<u8, Vec<RunManifest>> = BTreeMap::new();
        let mut abuse_runs = Vec::new();
        let mut pair = Vec::new();
        for p in payloads {
            offered += p.offered;
            request.push(expect_runs(p.request));
            user.push(expect_runs(p.user));
            ip.push(expect_runs(p.ip));
            for (len, fam) in p.prefixes {
                prefixes.entry(len).or_default().push(expect_runs(fam));
            }
            if let Some(a) = p.abuse {
                abuse_runs.push(expect_runs(a));
            }
            pair.push(expect_runs(p.pair));
        }
        MergedStreams::Spill {
            offered,
            request,
            user,
            ip,
            prefixes,
            abuse: abuse_runs,
            pair,
        }
    } else {
        let mut datasets =
            StudyDatasets::with_prefix_lengths(samplers.clone(), &config.prefix_lengths);
        let mut abuse_store = RequestStore::new();
        let mut pair_store = RequestStore::new();
        for p in payloads {
            datasets.offered += p.offered;
            datasets.request_sample.extend_from(expect_rows(p.request));
            datasets.user_sample.extend_from(expect_rows(p.user));
            datasets.ip_sample.extend_from(expect_rows(p.ip));
            for (len, fam) in p.prefixes {
                datasets
                    .prefix_samples
                    .get_mut(&len)
                    .expect("shard sinks route exactly the configured prefix lengths")
                    .extend_from(expect_rows(fam));
            }
            if let Some(a) = p.abuse {
                abuse_store.extend_from(expect_rows(a));
            }
            pair_store.extend_from(expect_rows(p.pair));
        }
        MergedStreams::Memory {
            datasets,
            abuse: abuse_store,
            pair: pair_store,
        }
    };
    let merge_wall = t1.elapsed();

    // Sort phase: the merged stores sort lazily on first query; doing it
    // here makes the cost a measured driver phase instead of a surprise
    // inside the first analysis. One global intern-table set is built over
    // every store's records, then the streams freeze into immutable
    // columnar datasets encoded against those shared tables, so analysis
    // passes can query them concurrently through `&self` and cross-store
    // joins agree on ids. In spill mode the tables come from a streaming
    // key sweep over the manifests (bit-identical to the in-memory build —
    // both sort-and-dedup the same key sets) and each family's sorted runs
    // k-way merge straight into frozen columns.
    let t2 = Instant::now();
    let (datasets, abuse_store, pair_store) = match merged {
        MergedStreams::Memory {
            datasets,
            abuse: abuse_store,
            pair: pair_store,
        } => {
            let tables = Arc::new(EntityTables::build(
                datasets
                    .iter_unordered()
                    .chain(abuse_store.iter_unordered())
                    .chain(pair_store.iter_unordered()),
            ));
            (
                datasets.freeze_with(tables.clone()),
                abuse_store.freeze_with(tables.clone()),
                pair_store.freeze_with(tables),
            )
        }
        MergedStreams::Spill {
            offered,
            request,
            user,
            ip,
            prefixes,
            abuse: abuse_runs,
            pair,
        } => {
            let mut keys = KeyCollector::new();
            for m in request
                .iter()
                .chain(&user)
                .chain(&ip)
                .chain(prefixes.values().flatten())
                .chain(&abuse_runs)
                .chain(&pair)
            {
                keys.add_manifest(m)?;
            }
            let tables = Arc::new(keys.into_tables());
            let datasets = FrozenDatasets {
                samplers: samplers.clone(),
                request_sample: merge_into_frozen(&request, &tables)?,
                user_sample: merge_into_frozen(&user, &tables)?,
                ip_sample: merge_into_frozen(&ip, &tables)?,
                prefix_samples: {
                    let mut samples = std::collections::HashMap::new();
                    for (len, runs) in &prefixes {
                        samples.insert(*len, merge_into_frozen(runs, &tables)?);
                    }
                    samples
                },
                offered,
            };
            (
                datasets,
                merge_into_frozen(&abuse_runs, &tables)?,
                merge_into_frozen(&pair, &tables)?,
            )
        }
    };
    let sort_wall = t2.elapsed();

    // The merge's read passes verify every run checksum; fold the final
    // storage counters into the report and output.
    let spill_stats = spill_counters(spill);
    faults.io_retries = spill_stats.io_retries;
    faults.checksum_failures = spill_stats.checksum_failures;

    Ok(DriverOutput {
        datasets,
        abuse_store,
        pair_store,
        metrics: RunMetrics {
            threads: workers,
            shards,
            plan_wall: phases
                .iter()
                .find(|p| p.name == "plan")
                .map_or(Duration::ZERO, |p| p.wall),
            sim_wall,
            merge_wall,
            sort_wall,
            total_wall: Duration::ZERO,
            peak_store_bytes,
        },
        faults,
        spill_stats,
        users_seen,
        users_sampled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_depends_on_config_not_threads() {
        let mut a = StudyConfig::tiny();
        let mut b = StudyConfig::tiny();
        a.threads = 1;
        b.threads = 8;
        let pa: Vec<String> = plan_shards(&a).iter().map(|w| format!("{w:?}")).collect();
        let pb: Vec<String> = plan_shards(&b).iter().map(|w| format!("{w:?}")).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn shard_plan_covers_everything_once() {
        for cfg in [
            StudyConfig::tiny(),
            StudyConfig::test_scale(),
            StudyConfig::default_scale(),
        ] {
            let plan = plan_shards(&cfg);
            let mut next_hh = 0u64;
            let mut next_camp = 0u32;
            for work in &plan {
                match work {
                    ShardWork::Benign(r) => {
                        assert_eq!(r.start, next_hh, "household shards contiguous");
                        assert!(r.end > r.start);
                        next_hh = r.end;
                    }
                    ShardWork::Abuse(r) => {
                        assert_eq!(r.start, next_camp, "campaign shards contiguous");
                        assert!(r.end > r.start);
                        next_camp = r.end;
                    }
                }
            }
            assert_eq!(next_hh, cfg.households);
            assert_eq!(next_camp, cfg.campaigns);
            // Benign shards strictly precede abuse shards in merge order.
            let first_abuse = plan
                .iter()
                .position(|w| matches!(w, ShardWork::Abuse(_)))
                .expect("abuse shards exist");
            assert!(plan[..first_abuse]
                .iter()
                .all(|w| matches!(w, ShardWork::Benign(_))));
        }
    }

    #[test]
    fn work_queue_retries_before_fresh_claims_and_terminates() {
        let q = WorkQueue::new(3);
        assert_eq!(q.claim(), Some((0, 0)));
        q.requeue(0, 1);
        assert_eq!(q.claim(), Some((0, 1)), "retries take priority");
        assert_eq!(q.claim(), Some((1, 0)));
        assert_eq!(q.claim(), Some((2, 0)));
        assert_eq!(q.claim(), None);
        assert!(!q.done(), "claimed but unresolved shards keep the run open");
        q.resolve();
        q.resolve();
        q.resolve();
        assert!(q.done());
        assert!(!q.is_aborted());
        q.abort();
        assert!(q.is_aborted());
    }

    #[test]
    fn panic_payloads_are_stringified() {
        let p = catch_unwind(|| panic!("static message")).unwrap_err();
        assert_eq!(panic_message(p), "static message");
        let p = catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(p), "formatted 7");
        let p = catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(p), "non-string panic payload");
    }

    #[test]
    fn metrics_render_mentions_every_phase() {
        let m = RunMetrics {
            threads: 2,
            shards: vec![ShardMetrics {
                label: "benign hh 0..64".into(),
                records: 1000,
                wall: Duration::from_millis(10),
            }],
            plan_wall: Duration::from_micros(5),
            sim_wall: Duration::from_millis(12),
            merge_wall: Duration::from_millis(1),
            sort_wall: Duration::from_millis(2),
            total_wall: Duration::from_millis(20),
            peak_store_bytes: 40_000,
        };
        let text = m.render();
        assert!(text.contains("2 thread(s)"));
        assert!(text.contains("benign hh 0..64"));
        assert!(text.contains("plan:"));
        assert!(text.contains("merge:"));
        assert!(text.contains("sort:"));
        assert_eq!(m.total_records(), 1000);
        assert!(m.records_per_sec() > 0.0);
        let phases: Vec<String> = m.phases().into_iter().map(|p| p.name).collect();
        assert_eq!(phases, ["plan", "sim", "merge", "sort", "total"]);
    }

    #[test]
    fn zero_duration_throughput_is_zero_not_infinite() {
        // A shard fast enough to round to a zero wall clock must report a
        // zero rate: f64::INFINITY has no JSON representation and would
        // poison the exported metrics.
        let s = ShardMetrics {
            label: "benign hh 0..64".into(),
            records: 1000,
            wall: Duration::ZERO,
        };
        assert_eq!(s.records_per_sec(), 0.0);

        let m = RunMetrics {
            threads: 1,
            shards: vec![s],
            plan_wall: Duration::ZERO,
            sim_wall: Duration::ZERO,
            merge_wall: Duration::ZERO,
            sort_wall: Duration::ZERO,
            total_wall: Duration::ZERO,
            peak_store_bytes: 0,
        };
        assert_eq!(m.records_per_sec(), 0.0);
        assert!(m.records_per_sec().is_finite());
    }
}
