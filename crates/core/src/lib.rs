//! The study pipeline: configuration, simulation driver, experiment
//! registry, and report rendering.
//!
//! This crate ties the workspace together. [`Study::run`] builds the world
//! (`ipv6-study-netmodel`), generates the population and attacker request
//! streams (`ipv6-study-behavior`), routes them through the deterministic
//! samplers into the four dataset families (`ipv6-study-telemetry`), and
//! exposes everything the analyses need. [`experiments`] then regenerates
//! every table and figure in the paper from those datasets.
//!
//! # Quickstart
//!
//! ```
//! use ipv6_study_core::Study;
//!
//! use ipv6_study_core::experiments::AnalysisCtx;
//!
//! let study = Study::builder().tiny().run().unwrap();
//! let ctx = AnalysisCtx::new(&study);
//! let fig2 = ipv6_study_core::experiments::fig2_addrs_per_user(&ctx);
//! assert_eq!(fig2.figures[0].id, "Figure 2");
//! ```
//!
//! # Simulation phases
//!
//! The driver runs in two phases for tractability, mirroring what each
//! dataset actually needs:
//!
//! 1. **Panel phase** (study start → day before the dense window): only
//!    users in the user-sample panel are simulated. This feeds the
//!    longitudinal analyses — Figure 1's daily series and the 28-day
//!    life-span lookbacks — which are all computed on the user sample.
//! 2. **Dense phase** (the dense window, ending Apr 19): every user is
//!    simulated and offered to all samplers, feeding the IP-centric
//!    analyses (IP and prefix random samples) and the day-pair actioning
//!    ROC.
//!
//! Abusive accounts are simulated on *all* days and additionally retained
//! in a complete `abuse_store` (the label join of §3.1 — feasible because
//! abusive accounts are a small population).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod config;
pub mod driver;
pub mod experiments;
pub mod faults;
pub mod incremental;
pub mod paper;
pub mod report;
pub mod study;

pub use ablation::Ablation;
pub use config::{ConfigError, SamplingPlan, StudyBuilder, StudyConfig};
pub use driver::{RunMetrics, ShardMetrics};
pub use experiments::{AnalysisCtx, ExperimentOutput};
pub use faults::{
    FailurePolicy, FaultInjector, FaultKind, FaultReport, IoFaultSpec, ShardFailure, StudyError,
    StudyOutcome,
};
pub use incremental::IncrementalRun;
pub use ipv6_study_obs::{IncrementalStat, RunReport};
pub use ipv6_study_telemetry::{SpillError, StorageMode, DEFAULT_SEGMENT_ROWS};
pub use study::Study;
