//! Fault tolerance for the sharded driver: failure policies, the fault
//! report, and a seeded fault-injection harness.
//!
//! The driver (see [`crate::driver`]) isolates every shard attempt behind
//! `std::panic::catch_unwind`, so a panicking shard never poisons the
//! merge mutex or kills sibling workers. What happens *next* is governed
//! by the [`FailurePolicy`]:
//!
//! - [`FailurePolicy::Abort`] — any shard failure fails the run (after
//!   in-flight shards finish their current attempt). This is the default:
//!   a deterministic simulation that panics has hit a bug, and retrying a
//!   pure function of `(seed, shard)` would reproduce the same panic.
//! - [`FailurePolicy::Retry`] — failed shards are re-enqueued up to
//!   `max_shard_retries` extra attempts; a shard that exhausts its
//!   retries fails the run. Because each shard is a pure function of the
//!   config, a successful retry produces the *exact bytes* the first
//!   attempt would have, so the byte-identical-at-any-thread-count
//!   guarantee survives transient (environmental or injected) faults.
//! - [`FailurePolicy::Degrade`] — shards that exhaust their retries are
//!   dropped; the run completes on the surviving shards and the
//!   [`FaultReport`] records exactly what was lost.
//!
//! Every failure path is testable in CI through the [`FaultInjector`]: a
//! deterministic harness that panics or delays chosen shard attempts,
//! keyed off `(seed, shard index, attempt)` through the workspace's
//! stable hash — no wall-clock or OS randomness anywhere, so a chaos test
//! reproduces bit-for-bit.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use ipv6_study_stats::dist::uniform01;
use ipv6_study_stats::hash::StableHasher;

use crate::config::ConfigError;

/// What the driver does when a shard attempt panics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Fail the run on the first shard failure (the default).
    #[default]
    Abort,
    /// Re-enqueue failed shards up to `max_shard_retries` extra attempts;
    /// fail the run if any shard exhausts them.
    Retry,
    /// Retry like [`FailurePolicy::Retry`], but drop shards that exhaust
    /// their retries and complete the run on the survivors.
    Degrade,
}

impl FailurePolicy {
    /// Stable lowercase name, used in reports and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            FailurePolicy::Abort => "abort",
            FailurePolicy::Retry => "retry",
            FailurePolicy::Degrade => "degrade",
        }
    }

    /// Parses a policy name as written by [`FailurePolicy::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "abort" => Some(FailurePolicy::Abort),
            "retry" => Some(FailurePolicy::Retry),
            "degrade" => Some(FailurePolicy::Degrade),
            _ => None,
        }
    }
}

impl fmt::Display for FailurePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A scripted fault for one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardFault {
    /// The first `fail_attempts` attempts of the shard panic
    /// (`u32::MAX` = every attempt, for unrecoverable-shard tests).
    pub fail_attempts: u32,
    /// Delay injected before each attempt's simulation, in microseconds.
    /// Delays reorder *scheduling* (which worker finishes when) without
    /// touching output bytes — exactly the nondeterminism the merge must
    /// be immune to.
    pub delay_micros: u64,
    /// How many simulated days a panicking attempt completes before it
    /// panics. Nonzero values leave partially filled shard-local buffers
    /// behind, proving the unwind discards them cleanly.
    pub panic_after_days: u16,
}

/// The injector's decision for one `(shard, attempt)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// Sleep this long before starting the attempt.
    pub delay: Duration,
    /// `Some(n)`: panic after simulating `n` days (0 = before any work).
    pub panic_after_days: Option<u16>,
}

/// Deterministic fault-injection harness (off by default: the
/// `StudyConfig::faults` field is `None`).
///
/// Faults come in two flavors, both pure functions of
/// `(seed, shard, attempt)`:
///
/// - **scripted** — [`FaultInjector::fail_shard`] /
///   [`FaultInjector::delay_shard`] target explicit shard indices;
/// - **probabilistic** — [`FaultInjector::with_panic_rate`] panics each
///   attempt with probability `rate`, drawn from the stable hash of the
///   attempt key (so "random" chaos is still replayable from the seed).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultInjector {
    scripted: BTreeMap<usize, ShardFault>,
    /// Probability in `[0, 1]` that any given attempt panics.
    pub panic_rate: f64,
}

impl FaultInjector {
    /// An injector that does nothing until faults are scripted.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scripts the first `attempts` attempts of shard `shard` to panic
    /// after one simulated day of work.
    pub fn fail_shard(mut self, shard: usize, attempts: u32) -> Self {
        let f = self.scripted.entry(shard).or_default();
        f.fail_attempts = attempts;
        if f.panic_after_days == 0 {
            f.panic_after_days = 1;
        }
        self
    }

    /// Scripts *every* attempt of shard `shard` to panic — the shard is
    /// unrecoverable under any retry budget.
    pub fn always_fail_shard(self, shard: usize) -> Self {
        self.fail_shard(shard, u32::MAX)
    }

    /// Scripts a pre-attempt delay for shard `shard` (all attempts).
    pub fn delay_shard(mut self, shard: usize, micros: u64) -> Self {
        self.scripted.entry(shard).or_default().delay_micros = micros;
        self
    }

    /// Sets the probabilistic panic rate (validated by
    /// `StudyConfig::validate` to be in `[0, 1]`).
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// True when no fault can ever fire.
    pub fn is_inert(&self) -> bool {
        self.panic_rate <= 0.0
            && self
                .scripted
                .values()
                .all(|f| f.fail_attempts == 0 && f.delay_micros == 0)
    }

    /// Validates the injector's parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.panic_rate) || self.panic_rate.is_nan() {
            return Err(ConfigError::FaultRateOutOfRange(self.panic_rate));
        }
        Ok(())
    }

    /// The deterministic decision for one attempt of one shard.
    pub fn decide(&self, seed: u64, shard: usize, attempt: u32) -> FaultDecision {
        let mut d = FaultDecision::default();
        if let Some(f) = self.scripted.get(&shard) {
            d.delay = Duration::from_micros(f.delay_micros);
            if attempt < f.fail_attempts {
                d.panic_after_days = Some(f.panic_after_days);
            }
        }
        if d.panic_after_days.is_none() && self.panic_rate > 0.0 {
            let mut h = StableHasher::new(0x4641_554C); // "FAUL"
            h.write_u64(seed)
                .write_u64(shard as u64)
                .write_u64(u64::from(attempt));
            if uniform01(h.finish()) < self.panic_rate {
                d.panic_after_days = Some(1);
            }
        }
        d
    }
}

/// One shard that failed at least one attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// Index of the shard in the plan (= merge) order.
    pub shard: usize,
    /// Human-readable shard description, e.g. `benign hh 0..312`.
    pub label: String,
    /// Total attempts made (first try + retries).
    pub attempts: u32,
    /// Panic payload of the last failed attempt.
    pub panic_msg: String,
    /// Whether the shard was permanently dropped (only under
    /// [`FailurePolicy::Degrade`] after exhausting retries).
    pub dropped: bool,
    /// Records the last failed attempt had emitted by its final completed
    /// day boundary — the partial progress the unwind discarded. For a
    /// recovered shard this measures wasted work, not lost data.
    pub records_lost: u64,
}

impl ShardFailure {
    /// Retries beyond the first attempt.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// Everything that went wrong (and was recovered or dropped) in one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// The policy the run executed under.
    pub policy: FailurePolicy,
    /// Per-shard failures, ascending by shard index. A shard appears here
    /// iff at least one of its attempts panicked — including shards that
    /// later recovered.
    pub failures: Vec<ShardFailure>,
}

impl FaultReport {
    /// True when no shard ever failed an attempt.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Shards permanently dropped from the merged output.
    pub fn dropped(&self) -> impl Iterator<Item = &ShardFailure> {
        self.failures.iter().filter(|f| f.dropped)
    }

    /// Number of permanently dropped shards.
    pub fn dropped_count(&self) -> usize {
        self.dropped().count()
    }

    /// Total retry attempts across all failed shards.
    pub fn total_retries(&self) -> u64 {
        self.failures.iter().map(|f| u64::from(f.retries())).sum()
    }

    /// Total records discarded with failed attempts (see
    /// [`ShardFailure::records_lost`]).
    pub fn records_lost(&self) -> u64 {
        self.failures.iter().map(|f| f.records_lost).sum()
    }

    /// One line per failure, for logs and stderr.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "faults ({}): {} failed shard(s), {} retries, {} dropped, {} records lost",
            self.policy,
            self.failures.len(),
            self.total_retries(),
            self.dropped_count(),
            self.records_lost(),
        );
        for f in &self.failures {
            let _ = writeln!(
                out,
                "  shard {:3} {:<24} {} attempt(s){}  last panic: {}",
                f.shard,
                f.label,
                f.attempts,
                if f.dropped { ", DROPPED" } else { "" },
                f.panic_msg,
            );
        }
        out
    }
}

/// Why a study run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum StudyError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// Shard workers failed beyond what the [`FailurePolicy`] tolerates:
    /// any failure under `Abort`, or an exhausted-retry shard under
    /// `Retry`. The report lists every failed shard.
    ShardsFailed(FaultReport),
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Config(e) => write!(f, "invalid configuration: {e}"),
            StudyError::ShardsFailed(r) => {
                write!(
                    f,
                    "{} shard(s) failed under the {} policy",
                    r.failures.len(),
                    r.policy
                )
            }
        }
    }
}

impl std::error::Error for StudyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StudyError::Config(e) => Some(e),
            StudyError::ShardsFailed(_) => None,
        }
    }
}

impl From<ConfigError> for StudyError {
    fn from(e: ConfigError) -> Self {
        StudyError::Config(e)
    }
}

/// The result of [`crate::Study::run`]: the completed study (which under
/// [`FailurePolicy::Degrade`] carries a non-clean `Study::faults` report)
/// or the error that stopped it.
pub type StudyOutcome = Result<crate::Study, StudyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_decisions_are_deterministic_and_keyed() {
        let inj = FaultInjector::new()
            .fail_shard(3, 2)
            .delay_shard(5, 1_000)
            .with_panic_rate(0.25);
        for shard in 0..16usize {
            for attempt in 0..4u32 {
                assert_eq!(
                    inj.decide(42, shard, attempt),
                    inj.decide(42, shard, attempt),
                    "same key, same decision"
                );
            }
        }
        // Scripted shard 3 fails attempts 0 and 1, then recovers.
        assert!(inj.decide(42, 3, 0).panic_after_days.is_some());
        assert!(inj.decide(42, 3, 1).panic_after_days.is_some());
        assert_eq!(inj.decide(42, 3, 2).panic_after_days, None);
        // Scripted delay never panics by itself.
        let d = inj.decide(42, 5, 0);
        assert_eq!(d.delay, Duration::from_micros(1_000));
        // The probabilistic rate is seed-sensitive: across many keys, some
        // panic and some do not.
        let fired: usize = (0..64usize)
            .filter(|&s| inj.decide(42, s, 0).panic_after_days.is_some())
            .count();
        assert!(fired > 0 && fired < 64, "rate 0.25 fired {fired}/64");
    }

    #[test]
    fn inert_and_validation() {
        assert!(FaultInjector::new().is_inert());
        assert!(!FaultInjector::new().fail_shard(0, 1).is_inert());
        assert!(!FaultInjector::new().with_panic_rate(0.1).is_inert());
        assert!(FaultInjector::new().with_panic_rate(0.5).validate().is_ok());
        assert!(matches!(
            FaultInjector::new().with_panic_rate(1.5).validate(),
            Err(ConfigError::FaultRateOutOfRange(_))
        ));
        assert!(matches!(
            FaultInjector::new().with_panic_rate(f64::NAN).validate(),
            Err(ConfigError::FaultRateOutOfRange(_))
        ));
    }

    #[test]
    fn report_aggregates() {
        let report = FaultReport {
            policy: FailurePolicy::Degrade,
            failures: vec![
                ShardFailure {
                    shard: 2,
                    label: "benign hh 128..192".into(),
                    attempts: 3,
                    panic_msg: "injected".into(),
                    dropped: true,
                    records_lost: 120,
                },
                ShardFailure {
                    shard: 7,
                    label: "abuse camp 0..4".into(),
                    attempts: 2,
                    panic_msg: "injected".into(),
                    dropped: false,
                    records_lost: 40,
                },
            ],
        };
        assert!(!report.is_clean());
        assert_eq!(report.dropped_count(), 1);
        assert_eq!(report.total_retries(), 3);
        assert_eq!(report.records_lost(), 160);
        let text = report.render();
        assert!(text.contains("DROPPED"));
        assert!(text.contains("benign hh 128..192"));
    }

    #[test]
    fn policy_round_trips_through_names() {
        for p in [
            FailurePolicy::Abort,
            FailurePolicy::Retry,
            FailurePolicy::Degrade,
        ] {
            assert_eq!(FailurePolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(FailurePolicy::parse("nope"), None);
    }

    #[test]
    fn study_error_wraps_config_errors() {
        let e: StudyError = ConfigError::NoHouseholds.into();
        assert!(matches!(e, StudyError::Config(ConfigError::NoHouseholds)));
        assert!(e.to_string().contains("households"));
        let e = StudyError::ShardsFailed(FaultReport::default());
        assert!(e.to_string().contains("policy"));
    }
}
