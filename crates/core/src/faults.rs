//! Fault tolerance for the sharded driver: failure policies, the fault
//! report, and a seeded fault-injection harness.
//!
//! The driver (see [`crate::driver`]) isolates every shard attempt behind
//! `std::panic::catch_unwind`, so a panicking shard never poisons the
//! merge mutex or kills sibling workers. What happens *next* is governed
//! by the [`FailurePolicy`]:
//!
//! - [`FailurePolicy::Abort`] — any shard failure fails the run (after
//!   in-flight shards finish their current attempt). This is the default:
//!   a deterministic simulation that panics has hit a bug, and retrying a
//!   pure function of `(seed, shard)` would reproduce the same panic.
//! - [`FailurePolicy::Retry`] — failed shards are re-enqueued up to
//!   `max_shard_retries` extra attempts; a shard that exhausts its
//!   retries fails the run. Because each shard is a pure function of the
//!   config, a successful retry produces the *exact bytes* the first
//!   attempt would have, so the byte-identical-at-any-thread-count
//!   guarantee survives transient (environmental or injected) faults.
//! - [`FailurePolicy::Degrade`] — shards that exhaust their retries are
//!   dropped; the run completes on the surviving shards and the
//!   [`FaultReport`] records exactly what was lost.
//!
//! Every failure path is testable in CI through the [`FaultInjector`]: a
//! deterministic harness that panics or delays chosen shard attempts,
//! keyed off `(seed, shard index, attempt)` through the workspace's
//! stable hash — no wall-clock or OS randomness anywhere, so a chaos test
//! reproduces bit-for-bit.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use ipv6_study_stats::dist::uniform01;
use ipv6_study_stats::hash::StableHasher;
use ipv6_study_telemetry::{SpillError, SpillFaultPlan};

use crate::config::ConfigError;

/// What the driver does when a shard attempt panics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Fail the run on the first shard failure (the default).
    #[default]
    Abort,
    /// Re-enqueue failed shards up to `max_shard_retries` extra attempts;
    /// fail the run if any shard exhausts them.
    Retry,
    /// Retry like [`FailurePolicy::Retry`], but drop shards that exhaust
    /// their retries and complete the run on the survivors.
    Degrade,
}

impl FailurePolicy {
    /// Stable lowercase name, used in reports and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            FailurePolicy::Abort => "abort",
            FailurePolicy::Retry => "retry",
            FailurePolicy::Degrade => "degrade",
        }
    }

    /// Parses a policy name as written by [`FailurePolicy::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "abort" => Some(FailurePolicy::Abort),
            "retry" => Some(FailurePolicy::Retry),
            "degrade" => Some(FailurePolicy::Degrade),
            _ => None,
        }
    }
}

impl fmt::Display for FailurePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a shard attempt (or the run's merge phase) failed — panics and
/// typed storage errors are reported distinctly so an environmental EIO
/// is never mistaken for a model bug.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// The attempt panicked (a bug, or an injected panic).
    #[default]
    Panic,
    /// A spill I/O operation failed past its op-retry budget
    /// ([`SpillError::Io`]) — transient-capable, worth a shard retry.
    Io,
    /// On-disk data failed checksum/framing verification
    /// ([`SpillError::Corrupt`]) — re-running the same work cannot fix
    /// bit rot, so this never consumes retries.
    Corrupt,
    /// The session disk budget was exhausted ([`SpillError::Budget`]) —
    /// also non-retryable: the budget would still be exceeded.
    Budget,
}

impl FaultKind {
    /// Stable lowercase name, used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Io => "io",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Budget => "budget",
        }
    }

    /// Classifies a typed storage error.
    pub fn from_spill(e: &SpillError) -> Self {
        match e {
            SpillError::Io { .. } => FaultKind::Io,
            SpillError::Corrupt { .. } => FaultKind::Corrupt,
            SpillError::Budget { .. } => FaultKind::Budget,
            _ => FaultKind::Io,
        }
    }

    /// Whether a shard-level retry could plausibly clear this failure.
    /// Panics retry (the injector models transient panics); Io errors
    /// retry; corruption and budget overruns do not.
    pub fn is_retryable(self) -> bool {
        matches!(self, FaultKind::Panic | FaultKind::Io)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A scripted fault for one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardFault {
    /// The first `fail_attempts` attempts of the shard panic
    /// (`u32::MAX` = every attempt, for unrecoverable-shard tests).
    pub fail_attempts: u32,
    /// Delay injected before each attempt's simulation, in microseconds.
    /// Delays reorder *scheduling* (which worker finishes when) without
    /// touching output bytes — exactly the nondeterminism the merge must
    /// be immune to.
    pub delay_micros: u64,
    /// How many simulated days a panicking attempt completes before it
    /// panics. Nonzero values leave partially filled shard-local buffers
    /// behind, proving the unwind discards them cleanly.
    pub panic_after_days: u16,
}

/// The injector's decision for one `(shard, attempt)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// Sleep this long before starting the attempt.
    pub delay: Duration,
    /// `Some(n)`: panic after simulating `n` days (0 = before any work).
    pub panic_after_days: Option<u16>,
}

/// Deterministic fault-injection harness (off by default: the
/// `StudyConfig::faults` field is `None`).
///
/// Faults come in two flavors, both pure functions of
/// `(seed, shard, attempt)`:
///
/// - **scripted** — [`FaultInjector::fail_shard`] /
///   [`FaultInjector::delay_shard`] target explicit shard indices;
/// - **probabilistic** — [`FaultInjector::with_panic_rate`] panics each
///   attempt with probability `rate`, drawn from the stable hash of the
///   attempt key (so "random" chaos is still replayable from the seed).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultInjector {
    scripted: BTreeMap<usize, ShardFault>,
    /// Probability in `[0, 1]` that any given attempt panics.
    pub panic_rate: f64,
    /// Deterministic storage-layer faults (see [`IoFaultSpec`]).
    pub io: IoFaultSpec,
}

/// Deterministic I/O fault rates for the spill layer, keyed off
/// `(seed, shard, attempt, op index)` — the stream hash covers shard,
/// attempt and family; the op index covers position in the stream. All
/// zero by default (no I/O faults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoFaultSpec {
    /// Probability in `[0, 1]` that a run-frame write op fails
    /// transiently.
    pub write_fail_rate: f64,
    /// Probability in `[0, 1]` that a header/row read op fails
    /// transiently.
    pub read_fail_rate: f64,
    /// Of faulted writes, the fraction that tear a short prefix onto
    /// disk before failing (exercising the all-or-nothing rollback).
    pub short_write_rate: f64,
    /// Probability in `[0, 1]` that a written run gets one byte flipped —
    /// detected by the read-side checksum as [`SpillError::Corrupt`].
    pub corrupt_rate: f64,
    /// How many consecutive io attempts a faulted op fails before it
    /// succeeds; values above the op-retry budget make the op error out
    /// and fail the shard attempt.
    pub fail_attempts: u32,
}

impl Default for IoFaultSpec {
    fn default() -> Self {
        Self {
            write_fail_rate: 0.0,
            read_fail_rate: 0.0,
            short_write_rate: 0.0,
            corrupt_rate: 0.0,
            fail_attempts: 1,
        }
    }
}

impl IoFaultSpec {
    /// True when no I/O fault can ever fire.
    pub fn is_inert(&self) -> bool {
        self.write_fail_rate == 0.0 && self.read_fail_rate == 0.0 && self.corrupt_rate == 0.0
    }
}

impl FaultInjector {
    /// An injector that does nothing until faults are scripted.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scripts the first `attempts` attempts of shard `shard` to panic
    /// after one simulated day of work.
    pub fn fail_shard(mut self, shard: usize, attempts: u32) -> Self {
        let f = self.scripted.entry(shard).or_default();
        f.fail_attempts = attempts;
        if f.panic_after_days == 0 {
            f.panic_after_days = 1;
        }
        self
    }

    /// Scripts *every* attempt of shard `shard` to panic — the shard is
    /// unrecoverable under any retry budget.
    pub fn always_fail_shard(self, shard: usize) -> Self {
        self.fail_shard(shard, u32::MAX)
    }

    /// Scripts a pre-attempt delay for shard `shard` (all attempts).
    pub fn delay_shard(mut self, shard: usize, micros: u64) -> Self {
        self.scripted.entry(shard).or_default().delay_micros = micros;
        self
    }

    /// Sets the probabilistic panic rate (validated by
    /// `StudyConfig::validate` to be in `[0, 1]`).
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// Sets the transient write-failure rate for spill run writes.
    pub fn with_io_write_fail_rate(mut self, rate: f64) -> Self {
        self.io.write_fail_rate = rate;
        self
    }

    /// Sets the transient read-failure rate for spill reads.
    pub fn with_io_read_fail_rate(mut self, rate: f64) -> Self {
        self.io.read_fail_rate = rate;
        self
    }

    /// Sets the fraction of faulted writes that tear a short prefix onto
    /// disk before failing.
    pub fn with_short_write_rate(mut self, rate: f64) -> Self {
        self.io.short_write_rate = rate;
        self
    }

    /// Sets the per-run byte-corruption rate (caught by the read-side
    /// checksum as a typed [`SpillError::Corrupt`]).
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.io.corrupt_rate = rate;
        self
    }

    /// Sets how many consecutive io attempts a faulted op fails before
    /// succeeding (default 1 — one in-place retry recovers it).
    pub fn with_io_fail_attempts(mut self, attempts: u32) -> Self {
        self.io.fail_attempts = attempts;
        self
    }

    /// True when no fault can ever fire.
    pub fn is_inert(&self) -> bool {
        self.panic_rate <= 0.0
            && self.io.is_inert()
            && self
                .scripted
                .values()
                .all(|f| f.fail_attempts == 0 && f.delay_micros == 0)
    }

    /// Validates the injector's parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for rate in [
            self.panic_rate,
            self.io.write_fail_rate,
            self.io.read_fail_rate,
            self.io.short_write_rate,
            self.io.corrupt_rate,
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(ConfigError::FaultRateOutOfRange(rate));
            }
        }
        Ok(())
    }

    /// The spill layer's deterministic fault plan for this injector, or
    /// `None` when no I/O fault can fire.
    pub fn spill_fault_plan(&self, seed: u64) -> Option<SpillFaultPlan> {
        if self.io.is_inert() {
            return None;
        }
        Some(SpillFaultPlan {
            seed,
            write_fail_rate: self.io.write_fail_rate,
            read_fail_rate: self.io.read_fail_rate,
            short_write_rate: self.io.short_write_rate,
            corrupt_rate: self.io.corrupt_rate,
            fail_attempts: self.io.fail_attempts,
        })
    }

    /// The deterministic decision for one attempt of one shard.
    pub fn decide(&self, seed: u64, shard: usize, attempt: u32) -> FaultDecision {
        let mut d = FaultDecision::default();
        if let Some(f) = self.scripted.get(&shard) {
            d.delay = Duration::from_micros(f.delay_micros);
            if attempt < f.fail_attempts {
                d.panic_after_days = Some(f.panic_after_days);
            }
        }
        if d.panic_after_days.is_none() && self.panic_rate > 0.0 {
            let mut h = StableHasher::new(0x4641_554C); // "FAUL"
            h.write_u64(seed)
                .write_u64(shard as u64)
                .write_u64(u64::from(attempt));
            if uniform01(h.finish()) < self.panic_rate {
                d.panic_after_days = Some(1);
            }
        }
        d
    }
}

/// One shard that failed at least one attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// Index of the shard in the plan (= merge) order.
    pub shard: usize,
    /// Human-readable shard description, e.g. `benign hh 0..312`.
    pub label: String,
    /// Total attempts made (first try + retries).
    pub attempts: u32,
    /// How the last failed attempt failed (panic vs typed storage error).
    pub kind: FaultKind,
    /// Panic payload or typed-error message of the last failed attempt.
    pub panic_msg: String,
    /// Whether the shard was permanently dropped (only under
    /// [`FailurePolicy::Degrade`] after exhausting retries).
    pub dropped: bool,
    /// Records the last failed attempt had emitted by its final completed
    /// day boundary — the partial progress the unwind discarded. For a
    /// recovered shard this measures wasted work, not lost data.
    pub records_lost: u64,
}

impl ShardFailure {
    /// Retries beyond the first attempt.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// Everything that went wrong (and was recovered or dropped) in one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// The policy the run executed under.
    pub policy: FailurePolicy,
    /// Per-shard failures, ascending by shard index. A shard appears here
    /// iff at least one of its attempts failed — including shards that
    /// later recovered.
    pub failures: Vec<ShardFailure>,
    /// Op-level I/O retries absorbed inside the spill layer (transient
    /// write/read errors recovered without failing a shard attempt).
    pub io_retries: u64,
    /// Spill runs that failed checksum or framing verification.
    pub checksum_failures: u64,
}

impl FaultReport {
    /// True when no shard ever failed an attempt.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Shards permanently dropped from the merged output.
    pub fn dropped(&self) -> impl Iterator<Item = &ShardFailure> {
        self.failures.iter().filter(|f| f.dropped)
    }

    /// Number of permanently dropped shards.
    pub fn dropped_count(&self) -> usize {
        self.dropped().count()
    }

    /// Total retry attempts across all failed shards.
    pub fn total_retries(&self) -> u64 {
        self.failures.iter().map(|f| u64::from(f.retries())).sum()
    }

    /// Total records discarded with failed attempts (see
    /// [`ShardFailure::records_lost`]).
    pub fn records_lost(&self) -> u64 {
        self.failures.iter().map(|f| f.records_lost).sum()
    }

    /// One line per failure, for logs and stderr.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "faults ({}): {} failed shard(s), {} retries, {} dropped, {} records lost",
            self.policy,
            self.failures.len(),
            self.total_retries(),
            self.dropped_count(),
            self.records_lost(),
        );
        if self.io_retries > 0 || self.checksum_failures > 0 {
            let _ = writeln!(
                out,
                "  storage: {} io retry(ies) absorbed, {} checksum failure(s)",
                self.io_retries, self.checksum_failures,
            );
        }
        for f in &self.failures {
            let _ = writeln!(
                out,
                "  shard {:3} {:<24} {} attempt(s){}  last {}: {}",
                f.shard,
                f.label,
                f.attempts,
                if f.dropped { ", DROPPED" } else { "" },
                f.kind,
                f.panic_msg,
            );
        }
        out
    }
}

/// Why a study run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum StudyError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// Shard workers failed beyond what the [`FailurePolicy`] tolerates:
    /// any failure under `Abort`, or an exhausted-retry shard under
    /// `Retry`. The report lists every failed shard.
    ShardsFailed(FaultReport),
    /// The storage layer failed outside any single shard attempt — during
    /// the merge of spill runs into the frozen store, or while tearing the
    /// session down.
    Spill(SpillError),
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Config(e) => write!(f, "invalid configuration: {e}"),
            StudyError::ShardsFailed(r) => {
                write!(
                    f,
                    "{} shard(s) failed under the {} policy",
                    r.failures.len(),
                    r.policy
                )
            }
            StudyError::Spill(e) => write!(f, "storage failure during merge: {e}"),
        }
    }
}

impl std::error::Error for StudyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StudyError::Config(e) => Some(e),
            StudyError::ShardsFailed(_) => None,
            StudyError::Spill(e) => Some(e),
        }
    }
}

impl From<ConfigError> for StudyError {
    fn from(e: ConfigError) -> Self {
        StudyError::Config(e)
    }
}

impl From<SpillError> for StudyError {
    fn from(e: SpillError) -> Self {
        StudyError::Spill(e)
    }
}

/// The result of [`crate::Study::run`]: the completed study (which under
/// [`FailurePolicy::Degrade`] carries a non-clean `Study::faults` report)
/// or the error that stopped it.
pub type StudyOutcome = Result<crate::Study, StudyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_decisions_are_deterministic_and_keyed() {
        let inj = FaultInjector::new()
            .fail_shard(3, 2)
            .delay_shard(5, 1_000)
            .with_panic_rate(0.25);
        for shard in 0..16usize {
            for attempt in 0..4u32 {
                assert_eq!(
                    inj.decide(42, shard, attempt),
                    inj.decide(42, shard, attempt),
                    "same key, same decision"
                );
            }
        }
        // Scripted shard 3 fails attempts 0 and 1, then recovers.
        assert!(inj.decide(42, 3, 0).panic_after_days.is_some());
        assert!(inj.decide(42, 3, 1).panic_after_days.is_some());
        assert_eq!(inj.decide(42, 3, 2).panic_after_days, None);
        // Scripted delay never panics by itself.
        let d = inj.decide(42, 5, 0);
        assert_eq!(d.delay, Duration::from_micros(1_000));
        // The probabilistic rate is seed-sensitive: across many keys, some
        // panic and some do not.
        let fired: usize = (0..64usize)
            .filter(|&s| inj.decide(42, s, 0).panic_after_days.is_some())
            .count();
        assert!(fired > 0 && fired < 64, "rate 0.25 fired {fired}/64");
    }

    #[test]
    fn inert_and_validation() {
        assert!(FaultInjector::new().is_inert());
        assert!(!FaultInjector::new().fail_shard(0, 1).is_inert());
        assert!(!FaultInjector::new().with_panic_rate(0.1).is_inert());
        assert!(FaultInjector::new().with_panic_rate(0.5).validate().is_ok());
        assert!(matches!(
            FaultInjector::new().with_panic_rate(1.5).validate(),
            Err(ConfigError::FaultRateOutOfRange(_))
        ));
        assert!(matches!(
            FaultInjector::new().with_panic_rate(f64::NAN).validate(),
            Err(ConfigError::FaultRateOutOfRange(_))
        ));
    }

    #[test]
    fn fault_kinds_classify_spill_errors_and_gate_retries() {
        let io = SpillError::Io {
            path: "seg".into(),
            op: ipv6_study_telemetry::IoOp::Write,
            kind: std::io::ErrorKind::Interrupted,
            detail: "injected".into(),
        };
        let corrupt = SpillError::Corrupt {
            path: "seg".into(),
            run: 0,
            offset: 20,
            reason: "checksum mismatch".into(),
        };
        let budget = SpillError::Budget {
            budget_bytes: 100,
            attempted_bytes: 120,
        };
        assert_eq!(FaultKind::from_spill(&io), FaultKind::Io);
        assert_eq!(FaultKind::from_spill(&corrupt), FaultKind::Corrupt);
        assert_eq!(FaultKind::from_spill(&budget), FaultKind::Budget);
        assert!(FaultKind::Panic.is_retryable());
        assert!(FaultKind::Io.is_retryable());
        assert!(!FaultKind::Corrupt.is_retryable());
        assert!(!FaultKind::Budget.is_retryable());
        assert_eq!(FaultKind::Corrupt.to_string(), "corrupt");
        // Spill errors lift into StudyError with a source chain.
        let e = StudyError::from(corrupt);
        assert!(e.to_string().contains("merge"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn io_fault_spec_feeds_the_spill_plan() {
        let inj = FaultInjector::new()
            .with_io_write_fail_rate(0.05)
            .with_short_write_rate(0.5)
            .with_io_fail_attempts(2);
        assert!(!inj.is_inert());
        assert!(inj.validate().is_ok());
        let plan = inj.spill_fault_plan(42).expect("io faults configured");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.write_fail_rate, 0.05);
        assert_eq!(plan.fail_attempts, 2);
        // No io faults -> no plan, and bad rates fail validation.
        assert!(FaultInjector::new().spill_fault_plan(42).is_none());
        assert!(matches!(
            FaultInjector::new().with_corrupt_rate(2.0).validate(),
            Err(ConfigError::FaultRateOutOfRange(_))
        ));
    }

    #[test]
    fn report_aggregates() {
        let report = FaultReport {
            policy: FailurePolicy::Degrade,
            failures: vec![
                ShardFailure {
                    shard: 2,
                    label: "benign hh 128..192".into(),
                    attempts: 3,
                    kind: FaultKind::Panic,
                    panic_msg: "injected".into(),
                    dropped: true,
                    records_lost: 120,
                },
                ShardFailure {
                    shard: 7,
                    label: "abuse camp 0..4".into(),
                    attempts: 2,
                    kind: FaultKind::Io,
                    panic_msg: "injected".into(),
                    dropped: false,
                    records_lost: 40,
                },
            ],
            io_retries: 5,
            checksum_failures: 1,
        };
        assert!(!report.is_clean());
        assert_eq!(report.dropped_count(), 1);
        assert_eq!(report.total_retries(), 3);
        assert_eq!(report.records_lost(), 160);
        let text = report.render();
        assert!(text.contains("DROPPED"));
        assert!(text.contains("benign hh 128..192"));
        assert!(text.contains("storage: 5 io retry(ies) absorbed, 1 checksum failure(s)"));
        assert!(text.contains("last panic:"));
        assert!(text.contains("last io:"));
    }

    #[test]
    fn policy_round_trips_through_names() {
        for p in [
            FailurePolicy::Abort,
            FailurePolicy::Retry,
            FailurePolicy::Degrade,
        ] {
            assert_eq!(FailurePolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(FailurePolicy::parse("nope"), None);
    }

    #[test]
    fn study_error_wraps_config_errors() {
        let e: StudyError = ConfigError::NoHouseholds.into();
        assert!(matches!(e, StudyError::Config(ConfigError::NoHouseholds)));
        assert!(e.to_string().contains("households"));
        let e = StudyError::ShardsFailed(FaultReport::default());
        assert!(e.to_string().contains("policy"));
    }
}
