//! The simulation driver.

use ipv6_study_behavior::abuse::AbuseSim;
use ipv6_study_behavior::emit::emit_user_day;
use ipv6_study_behavior::population::Population;
use ipv6_study_behavior::schedule::day_plan;
use ipv6_study_netmodel::World;
use ipv6_study_telemetry::{AbuseLabels, DateRange, RequestStore, Samplers, StudyDatasets};

use crate::config::StudyConfig;

/// A completed study run: the world, the sampled datasets, the complete
/// abusive-request store, and the labels.
#[derive(Debug)]
pub struct Study {
    /// The configuration that produced this run.
    pub config: StudyConfig,
    /// The static world.
    pub world: World,
    /// The four sampled dataset families (§3.1).
    pub datasets: StudyDatasets,
    /// Every abusive-account request (the complete label join).
    pub abuse_store: RequestStore,
    /// Every request (benign and abusive) on the final four days of the
    /// window — the full-population day pairs behind the Figure 11 ROC
    /// (pooled over three consecutive day pairs, echoing the paper's
    /// "we repeat our analysis over different days"), without sampling
    /// noise.
    pub pair_store: RequestStore,
    /// The abusive-account labels.
    pub labels: AbuseLabels,
    /// Expected user count (for extrapolation scales).
    pub approx_users: u64,
}

impl Study {
    /// Runs the full simulation described by `config`.
    pub fn run(config: StudyConfig) -> Self {
        config.validate();
        let mut world = World::sized(config.seed, config.households);
        config.ablation.apply_to_world(&mut world);
        let pop = Population::new(&world, config.seed ^ 0x504F_5055, config.households);
        let approx_users = pop.approx_users();
        let samplers = Samplers::scaled_for(approx_users);
        let mut datasets =
            StudyDatasets::with_prefix_lengths(samplers.clone(), &config.prefix_lengths);

        // Attackers operate over the whole window (their creation dates
        // are spread across it).
        let abuse_window = DateRange::new(config.full_range.start, config.full_range.end);
        let abuse = AbuseSim::new(
            &world,
            config.seed ^ 0x4142_5553,
            config.campaigns,
            config.households,
            abuse_window,
        )
        .with_detect_scale(config.ablation.detect_scale());
        let labels = abuse.labels();
        let mut abuse_store = RequestStore::new();
        let mut pair_store = RequestStore::new();
        let pair_start = config.full_range.end - 3;

        for day in config.full_range.days() {
            let dense = config.dense_range.contains(day);
            let in_pair = day >= pair_start;
            for hh in 0..config.households {
                let hprof = pop.household(hh);
                for uid in pop.member_ids(&hprof) {
                    // Panel phase: only user-sample panel members.
                    if !dense && !samplers.user_sampled(uid) {
                        continue;
                    }
                    let profile = pop.user(uid);
                    let plan = day_plan(&world, &profile, day);
                    if plan.contexts.is_empty() {
                        continue;
                    }
                    emit_user_day(&world, &profile, day, &plan, &mut |rec| {
                        datasets.offer(rec);
                        if in_pair {
                            pair_store.push(rec);
                        }
                    });
                }
            }
            abuse.emit_day(&pop, day, &mut |rec| {
                abuse_store.push(rec);
                datasets.offer(rec);
                if in_pair {
                    pair_store.push(rec);
                }
            });
        }

        drop(pop);
        Self { config, world, datasets, abuse_store, pair_store, labels, approx_users }
    }

    /// The user-sample inclusion rate used by this run (for extrapolation).
    pub fn user_sample_rate(&self) -> f64 {
        self.datasets.samplers.user_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;
    use ipv6_study_telemetry::time::focus_week;

    #[test]
    fn tiny_study_produces_all_datasets() {
        let mut study = Study::run(StudyConfig::tiny());
        assert!(study.datasets.offered > 10_000, "offered {}", study.datasets.offered);
        assert!(!study.datasets.user_sample.is_empty());
        assert!(!study.datasets.ip_sample.is_empty());
        assert!(!study.datasets.request_sample.is_empty());
        assert!(!study.abuse_store.is_empty());
        assert!(study.labels.len() > 50);
        // The focus week is inside the dense window, so the IP sample has
        // traffic there.
        assert!(!study.datasets.ip_sample.in_range(focus_week()).is_empty());
        // Prefix samples exist for the configured lengths.
        assert!(!study.datasets.prefix_sample(64).is_empty());
        // The pair store holds full-population traffic for the last two days.
        assert!(study.pair_store.len() > 3 * study.datasets.ip_sample.on_day(ipv6_study_telemetry::time::focus_day_user()).len());
    }

    #[test]
    fn runs_are_reproducible() {
        let a = Study::run(StudyConfig::tiny());
        let b = Study::run(StudyConfig::tiny());
        assert_eq!(a.datasets.offered, b.datasets.offered);
        assert_eq!(a.datasets.user_sample.len(), b.datasets.user_sample.len());
        assert_eq!(a.abuse_store.len(), b.abuse_store.len());
        assert_eq!(a.labels.len(), b.labels.len());
    }

    #[test]
    fn abusive_traffic_is_labeled() {
        let mut study = Study::run(StudyConfig::tiny());
        for rec in study.abuse_store.all() {
            assert!(study.labels.is_abusive(rec.user));
        }
    }
}
