//! The simulation entry point: world + population + attacker setup, then
//! the sharded driver (see [`crate::driver`]).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ipv6_study_behavior::abuse::AbuseSim;
use ipv6_study_behavior::population::Population;
use ipv6_study_netmodel::World;
use ipv6_study_obs::{FaultStat, Json, RunReport, ShardStat};
use ipv6_study_secapp::actioning::DayCounts;
use ipv6_study_telemetry::{
    AbuseLabels, DateRange, FrozenDatasets, FrozenStore, SimDate, SpillPolicy, SpillSession,
    StorageMode,
};

use crate::config::{ConfigError, StudyBuilder, StudyConfig};
use crate::driver::{self, DriverOutput, RunMetrics};
use crate::faults::{FaultReport, StudyError, StudyOutcome};

/// A completed study run: the world, the sampled datasets, the complete
/// abusive-request store, and the labels.
///
/// All state is reached through accessor methods — the fields are crate
/// private so the storage backend (in-memory vs spill, see
/// [`StorageMode`]) can evolve without breaking consumers, and so derived
/// quantities like [`Study::user_sample_rate`] always come from the run's
/// realized counters rather than from fields a caller could desync.
#[derive(Debug)]
pub struct Study {
    /// The configuration that produced this run.
    pub(crate) config: StudyConfig,
    /// The static world.
    pub(crate) world: World,
    /// The four sampled dataset families (§3.1), frozen immutable so the
    /// parallel analysis engine can query them through `&self`.
    pub(crate) datasets: FrozenDatasets,
    /// Every abusive-account request (the complete label join).
    pub(crate) abuse_store: FrozenStore,
    /// Every request (benign and abusive) on the final four days of the
    /// window — the full-population day pairs behind the Figure 11 ROC
    /// (pooled over three consecutive day pairs, echoing the paper's
    /// "we repeat our analysis over different days"), without sampling
    /// noise.
    pub(crate) pair_store: FrozenStore,
    /// The abusive-account labels.
    pub(crate) labels: AbuseLabels,
    /// Expected user count (for extrapolation scales).
    pub(crate) approx_users: u64,
    /// Distinct benign users the sim enumerated on the first study day.
    pub(crate) users_seen: u64,
    /// How many of those the user sampler selected.
    pub(crate) users_sampled: u64,
    /// Per-phase wall-clock and per-shard throughput of this run.
    pub(crate) metrics: RunMetrics,
    /// Shard failures the run absorbed: retried-then-recovered shards,
    /// and (under [`crate::FailurePolicy::Degrade`]) dropped ones. Clean
    /// on a run with no failures.
    pub(crate) faults: FaultReport,
    /// The observability aggregate: driver phases and shards at first,
    /// extended with per-figure and actioning timings as the analyses
    /// run. Serialized to `BENCH_run.json` by `repro` and `bench_run`.
    /// Empty (but schema-complete) when `config.instrument` is off.
    pub(crate) report: RunReport,
    /// Per-day aggregation-trie cache over the pair store: each of the
    /// pair window's days is folded into its [`DayCounts`] trie pair at
    /// most once, shared between the Figure 11 sweep, the §7.2 ML pair
    /// and the EC1 entropy blocklist — and carried across
    /// [`Study::extend_days`] for days still inside the sliding window.
    pub(crate) day_counts: DayCountsCache,
}

/// Interior-mutable per-day [`DayCounts`] cache (see
/// [`Study::day_counts`]). A newtype so `Study` can keep deriving
/// `Debug` without requiring it of the trie internals.
#[derive(Default)]
pub(crate) struct DayCountsCache(Mutex<BTreeMap<SimDate, Arc<DayCounts>>>);

impl std::fmt::Debug for DayCountsCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let days: Vec<SimDate> = self
            .0
            .lock()
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        f.debug_tuple("DayCountsCache").field(&days).finish()
    }
}

impl Study {
    /// Starts a fluent configuration; finish with
    /// [`StudyBuilder::run`].
    pub fn builder() -> StudyBuilder {
        StudyBuilder::new()
    }

    /// Runs the full simulation described by `config`.
    ///
    /// Results are byte-identical for a given config at any
    /// `config.threads` value *and any [`StorageMode`]*; see
    /// [`crate::driver`] for how — including runs where shards failed and
    /// were retried. Returns [`StudyError::Config`] on an invalid config
    /// (or an unusable spill directory) and [`StudyError::ShardsFailed`]
    /// when shard failures exceed what `config.failure_policy` tolerates.
    pub fn run(config: StudyConfig) -> StudyOutcome {
        config.validate()?;
        let total = Instant::now();
        let mut world = World::sized(config.seed, config.households);
        config.ablation.apply_to_world(&mut world);
        let pop = Population::new(&world, config.seed ^ 0x504F_5055, config.households);
        let approx_users = pop.approx_users();
        let samplers = config.sampling.resolve(approx_users);

        // The spill session (when configured) lives for the whole sim +
        // merge: the driver's k-way merge streams the segment files into
        // frozen columns, after which the directory is deleted.
        let spill = open_spill(&config)?;

        // Attackers operate over the whole window (their creation dates
        // are spread across it).
        let abuse_window = DateRange::new(config.full_range.start, config.full_range.end);
        let abuse = AbuseSim::new(
            &world,
            config.seed ^ 0x4142_5553,
            config.campaigns,
            config.households,
            abuse_window,
        )
        .with_detect_scale(config.ablation.detect_scale());
        let labels = abuse.labels();

        let mut out = driver::execute(&config, &world, &pop, &abuse, &samplers, spill.as_ref())?;
        // Every record now lives in frozen columns; delete the segment
        // files before the (potentially long) analysis phase.
        drop(spill);

        out.metrics.total_wall = total.elapsed();
        let report = build_report(&config, approx_users, &out);
        Ok(Self {
            config,
            world,
            datasets: out.datasets,
            abuse_store: out.abuse_store,
            pair_store: out.pair_store,
            labels,
            approx_users,
            users_seen: out.users_seen,
            users_sampled: out.users_sampled,
            metrics: out.metrics,
            faults: out.faults,
            report,
            day_counts: DayCountsCache::default(),
        })
    }

    /// Extends the simulated timeline by `n` days without re-simulating
    /// any day this study already covers — the incremental engine's core
    /// operation (see [`crate::incremental`] for the mechanism and the
    /// byte-equality argument).
    ///
    /// Consumes the study and returns the extended one plus what was
    /// reused vs. computed. The result is byte-identical — datasets,
    /// EXPERIMENTS.md, figure digests — to a from-scratch
    /// [`Study::run`] whose config carries the summed `extend_days`, at
    /// any thread count and either [`StorageMode`]; the equivalence
    /// suite (`tests/incremental.rs`) pins this. Errors if the extension
    /// leaves the calendar ([`ConfigError::ExtensionPastCalendar`]) or
    /// the suffix simulation fails.
    ///
    /// [`ConfigError::ExtensionPastCalendar`]: crate::config::ConfigError::ExtensionPastCalendar
    pub fn extend_days(
        self,
        n: u16,
    ) -> Result<(Study, ipv6_study_obs::IncrementalStat), StudyError> {
        crate::incremental::extend(self, n)
    }

    /// The configuration that produced this run.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The static world the run simulated.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The four sampled dataset families (§3.1), frozen immutable.
    pub fn datasets(&self) -> &FrozenDatasets {
        &self.datasets
    }

    /// Every abusive-account request (the complete label join).
    pub fn abuse_store(&self) -> &FrozenStore {
        &self.abuse_store
    }

    /// Every request on the final four days of the window (the Figure 11
    /// full-population day pairs).
    pub fn pair_store(&self) -> &FrozenStore {
        &self.pair_store
    }

    /// The abusive-account labels.
    pub fn labels(&self) -> &AbuseLabels {
        &self.labels
    }

    /// Expected user count (for extrapolation scales).
    pub fn approx_users(&self) -> u64 {
        self.approx_users
    }

    /// Per-phase wall-clock and per-shard throughput of this run.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Shard failures the run absorbed (clean on a run without failures).
    pub fn faults(&self) -> &FaultReport {
        &self.faults
    }

    /// The observability aggregate for this run.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Mutable access to the observability aggregate, for callers that
    /// append analysis timings after the run (see
    /// [`crate::experiments`]).
    pub fn report_mut(&mut self) -> &mut RunReport {
        &mut self.report
    }

    /// The [`DayCounts`] aggregation-trie pair for one pair-window day,
    /// built on first request and cached for the study's lifetime.
    ///
    /// `DayCounts::build` reads only raw entity keys and labels (never
    /// dense intern ids), so a cached day survives the re-encoding that
    /// [`Study::extend_days`] performs — which is why the cache can be
    /// carried across extensions for days still inside the sliding pair
    /// window instead of being rebuilt.
    pub fn day_counts(&self, day: SimDate) -> Arc<DayCounts> {
        let mut cache = self
            .day_counts
            .0
            .lock()
            .expect("day-counts cache not poisoned");
        if let Some(c) = cache.get(&day) {
            return Arc::clone(c);
        }
        let built = Arc::new(DayCounts::build(self.pair_store.on_day(day), &self.labels));
        cache.insert(day, Arc::clone(&built));
        built
    }

    /// Days currently held by the per-day trie cache (diagnostic; the
    /// incremental suite asserts carried days are not rebuilt).
    pub fn cached_day_counts(&self) -> Vec<SimDate> {
        self.day_counts
            .0
            .lock()
            .expect("day-counts cache not poisoned")
            .keys()
            .copied()
            .collect()
    }

    /// Moves the cached per-day tries for `days` out of this study (used
    /// by [`Study::extend_days`] to carry still-valid days into the
    /// extended study while dropping days that left the pair window).
    pub(crate) fn take_day_counts(&self, days: DateRange) -> BTreeMap<SimDate, Arc<DayCounts>> {
        let mut cache = self
            .day_counts
            .0
            .lock()
            .expect("day-counts cache not poisoned");
        std::mem::take(&mut *cache)
            .into_iter()
            .filter(|&(day, _)| days.contains(day))
            .collect()
    }

    /// Seeds the per-day trie cache (the carry half of
    /// [`Study::take_day_counts`]).
    pub(crate) fn seed_day_counts(&self, seeded: BTreeMap<SimDate, Arc<DayCounts>>) {
        let mut cache = self
            .day_counts
            .0
            .lock()
            .expect("day-counts cache not poisoned");
        *cache = seeded;
    }

    /// The *realized* user-sample inclusion rate: sampled users over
    /// distinct users enumerated on the first study day. This is the rate
    /// extrapolation must divide by — on small populations the hash
    /// sampler's realized fraction differs measurably from the configured
    /// probability. Falls back to the configured rate when the run saw no
    /// users (e.g. every benign shard dropped under `Degrade`).
    pub fn user_sample_rate(&self) -> f64 {
        if self.users_seen == 0 {
            self.datasets.samplers.user_rate
        } else {
            self.users_sampled as f64 / self.users_seen as f64
        }
    }
}

/// Opens the run's spill session when `config.storage` is `Spill` —
/// shared by [`Study::run`] and the incremental extension path. The
/// session's storage policy carries the run's disk budget and any
/// injected I/O fault plan.
pub(crate) fn open_spill(config: &StudyConfig) -> Result<Option<SpillSession>, StudyError> {
    match &config.storage {
        StorageMode::Spill { dir, .. } => {
            let policy = SpillPolicy {
                disk_budget_bytes: config.disk_budget_bytes,
                faults: config
                    .faults
                    .as_ref()
                    .and_then(|inj| inj.spill_fault_plan(config.seed)),
                ..SpillPolicy::default()
            };
            Ok(Some(
                SpillSession::create_with(dir.as_deref(), policy)
                    .map_err(|e| StudyError::Config(ConfigError::Storage(e.to_string())))?,
            ))
        }
        StorageMode::InMemory => Ok(None),
    }
}

/// Converts the driver's output into the run's [`RunReport`]: phase
/// walls, per-shard stats, fault and storage stats, a config echo, and
/// registry aggregates. Returns an empty (disabled) report when
/// instrumentation is off.
pub(crate) fn build_report(
    config: &StudyConfig,
    approx_users: u64,
    out: &DriverOutput,
) -> RunReport {
    let metrics = &out.metrics;
    let faults = &out.faults;
    let retained = out.datasets.retained();
    // Peak frozen footprint: every store's columns plus the shared
    // intern tables, counted once (all stores point at the same Arc).
    let store_bytes = (out.datasets.bytes()
        + out.abuse_store.bytes()
        + out.pair_store.bytes()
        + out.abuse_store.tables().bytes()) as u64;
    let stored_records = retained + out.abuse_store.len() as u64 + out.pair_store.len() as u64;
    let mut report = RunReport::new(config.instrument);
    report.failure_policy = faults.policy.as_str().to_string();
    if !config.instrument {
        return report;
    }
    report.threads = metrics.threads as u64;
    // Batch accounting: every simulated day was computed this run. The
    // incremental paths overwrite this with their reuse split.
    report.incremental.days_computed = u64::from(config.sim_range().num_days());
    report.set_config("seed", Json::UInt(config.seed));
    report.set_config("households", Json::UInt(config.households));
    report.set_config("campaigns", Json::UInt(u64::from(config.campaigns)));
    report.set_config("threads", Json::UInt(config.threads as u64));
    report.set_config(
        "analysis_threads",
        Json::UInt(config.effective_analysis_threads() as u64),
    );
    report.set_config(
        "failure_policy",
        Json::str(faults.policy.as_str().to_string()),
    );
    report.set_config(
        "max_shard_retries",
        Json::UInt(u64::from(config.max_shard_retries)),
    );
    report.set_config("storage", Json::str(config.storage.label().to_string()));
    report.set_config(
        "segment_rows",
        Json::UInt(match &config.storage {
            StorageMode::Spill { segment_rows, .. } => *segment_rows as u64,
            StorageMode::InMemory => 0,
        }),
    );
    report.set_config(
        "disk_budget_bytes",
        Json::UInt(config.disk_budget_bytes.unwrap_or(0)),
    );
    report.set_config("sampling", Json::str(config.sampling.label()));
    report.set_config(
        "full_range",
        Json::str(format!(
            "{}..{}",
            config.full_range.start, config.full_range.end
        )),
    );
    report.set_config(
        "dense_range",
        Json::str(format!(
            "{}..{}",
            config.dense_range.start, config.dense_range.end
        )),
    );
    report.set_config("extend_days", Json::UInt(u64::from(config.extend_days)));
    report.phases = metrics.phases();
    report.shards = metrics
        .shards
        .iter()
        .map(|s| ShardStat {
            label: s.label.clone(),
            records: s.records,
            wall: s.wall,
        })
        .collect();
    for s in &report.shards {
        report.registry.record_duration("sim.shard_wall", s.wall);
    }
    report.faults = faults
        .failures
        .iter()
        .map(|f| FaultStat {
            shard: f.shard as u64,
            label: f.label.clone(),
            attempts: u64::from(f.attempts),
            retries: u64::from(f.retries()),
            dropped: f.dropped,
            records_lost: f.records_lost,
            kind: f.kind.as_str().to_string(),
            panic_msg: f.panic_msg.clone(),
        })
        .collect();
    report.io_retries = faults.io_retries;
    report.checksum_failures = faults.checksum_failures;
    report.spill_bytes_verified = out.spill_stats.bytes_verified;
    // Fault counters are recorded unconditionally (zero on clean runs) so
    // every report exposes the same metric set.
    report
        .registry
        .inc("sim.shard_failures", faults.failures.len() as u64);
    report
        .registry
        .inc("sim.shard_retries_total", faults.total_retries());
    report
        .registry
        .inc("sim.shards_dropped", faults.dropped_count() as u64);
    report
        .registry
        .inc("sim.records_lost", faults.records_lost());
    report.registry.inc("sim.io_retries", faults.io_retries);
    report
        .registry
        .inc("sim.checksum_failures", faults.checksum_failures);
    report.registry.set_gauge(
        "sim.spill_bytes_verified",
        out.spill_stats.bytes_verified as f64,
    );
    for f in &faults.failures {
        report
            .registry
            .record_value("sim.shard_retries", u64::from(f.retries()));
    }
    report
        .registry
        .inc("sim.records_total", metrics.total_records());
    report
        .registry
        .inc("sim.shards", metrics.shards.len() as u64);
    report.registry.inc("sim.records_retained", retained);
    report
        .registry
        .set_gauge("sim.approx_users", approx_users as f64);
    report
        .registry
        .set_gauge("sim.records_per_sec", metrics.records_per_sec());
    report
        .registry
        .set_gauge("sim.store_bytes", store_bytes as f64);
    report
        .registry
        .set_gauge("sim.peak_store_bytes", metrics.peak_store_bytes as f64);
    let bytes_per_record = if stored_records == 0 {
        0.0
    } else {
        store_bytes as f64 / stored_records as f64
    };
    report
        .registry
        .set_gauge("sim.bytes_per_record", bytes_per_record);
    report.store_bytes = store_bytes;
    report.bytes_per_record = bytes_per_record;
    report.peak_store_bytes = metrics.peak_store_bytes;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;
    use ipv6_study_telemetry::time::focus_week;

    #[test]
    fn tiny_study_produces_all_datasets() {
        let study = Study::run(StudyConfig::tiny()).unwrap();
        assert!(
            study.datasets().offered > 10_000,
            "offered {}",
            study.datasets().offered
        );
        assert!(!study.datasets().user_sample.is_empty());
        assert!(!study.datasets().ip_sample.is_empty());
        assert!(!study.datasets().request_sample.is_empty());
        assert!(!study.abuse_store().is_empty());
        assert!(study.labels().len() > 50);
        // The focus week is inside the dense window, so the IP sample has
        // traffic there.
        assert!(!study.datasets().ip_sample.in_range(focus_week()).is_empty());
        // Prefix samples exist for the configured lengths.
        assert!(!study.datasets().prefix_sample(64).is_empty());
        // The pair store holds full-population traffic for the last two days.
        assert!(
            study.pair_store().len()
                > 3 * study
                    .datasets()
                    .ip_sample
                    .on_day(ipv6_study_telemetry::time::focus_day_user())
                    .len()
        );
        // Metrics cover the whole run.
        assert_eq!(study.metrics().total_records(), study.datasets().offered);
        assert!(!study.metrics().shards.is_empty());
        assert!(study.metrics().total_wall >= study.metrics().sim_wall);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = Study::run(StudyConfig::tiny()).unwrap();
        let b = Study::run(StudyConfig::tiny()).unwrap();
        assert_eq!(a.datasets().offered, b.datasets().offered);
        assert_eq!(
            a.datasets().user_sample.len(),
            b.datasets().user_sample.len()
        );
        assert_eq!(a.abuse_store().len(), b.abuse_store().len());
        assert_eq!(a.labels().len(), b.labels().len());
    }

    #[test]
    fn abusive_traffic_is_labeled() {
        let study = Study::run(StudyConfig::tiny()).unwrap();
        for rec in study.abuse_store().all().records() {
            assert!(study.labels().is_abusive(rec.user));
        }
    }

    #[test]
    fn invalid_config_is_rejected_not_panicked() {
        use crate::config::ConfigError;
        let mut cfg = StudyConfig::tiny();
        cfg.households = 0;
        let err = Study::run(cfg).unwrap_err();
        assert!(
            matches!(err, StudyError::Config(ConfigError::NoHouseholds)),
            "got {err}"
        );
    }

    #[test]
    fn clean_run_reports_no_faults() {
        let study = Study::run(StudyConfig::tiny()).unwrap();
        assert!(study.faults().is_clean());
        assert_eq!(study.faults().total_retries(), 0);
        assert_eq!(study.faults().records_lost(), 0);
    }

    #[test]
    fn user_sample_rate_is_realized_not_configured() {
        let study = Study::run(StudyConfig::tiny()).unwrap();
        let realized = study.user_sample_rate();
        let configured = study.datasets().samplers.user_rate;
        // The counters actually ran: the rate is a proper fraction near
        // (but on a tiny population, not exactly) the configured one.
        assert!(realized > 0.0 && realized <= 1.0, "realized {realized}");
        assert!(
            (realized - configured).abs() < 0.15,
            "realized {realized} vs configured {configured}"
        );
        assert!(
            study.users_seen > 0 && study.users_sampled <= study.users_seen,
            "seen {} sampled {}",
            study.users_seen,
            study.users_sampled
        );
    }
}
