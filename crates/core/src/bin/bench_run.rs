//! Instrumented benchmark entry point: runs a full study plus every
//! analysis pass and writes the run's observability report as
//! `BENCH_run.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ipv6-study-core --bin bench_run -- \
//!     [scale] [--threads N|auto] [--analysis-threads N|auto] [--out PATH]
//! ```
//!
//! `scale` is one of `tiny`, `test`, `default` (the default) or `full`.
//! The JSON schema is documented in DESIGN.md and pinned by the
//! `tests/run_report.rs` golden test; timing values vary run to run, the
//! field set does not.

use ipv6_study_core::experiments::run_all;
use ipv6_study_core::{Study, StudyConfig, StudyError};

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: bench_run [tiny|test|default|full] [--threads N|auto] \
         [--analysis-threads N|auto] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_threads(arg: &str) -> usize {
    if arg == "auto" {
        return std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
    }
    match arg.parse() {
        Ok(n) => n,
        Err(_) => usage_exit(&format!("bad thread count `{arg}`")),
    }
}

fn main() {
    let mut scale = None;
    let mut out_path = None;
    let mut threads = 1usize;
    let mut analysis_threads = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let Some(v) = args.next() else {
                usage_exit("--threads needs a value")
            };
            threads = parse_threads(&v);
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            threads = parse_threads(v);
        } else if arg == "--analysis-threads" {
            let Some(v) = args.next() else {
                usage_exit("--analysis-threads needs a value")
            };
            analysis_threads = Some(parse_threads(&v));
        } else if let Some(v) = arg.strip_prefix("--analysis-threads=") {
            analysis_threads = Some(parse_threads(v));
        } else if arg == "--out" {
            let Some(v) = args.next() else {
                usage_exit("--out needs a value")
            };
            out_path = Some(v);
        } else if let Some(v) = arg.strip_prefix("--out=") {
            out_path = Some(v.to_string());
        } else if scale.is_none() {
            scale = Some(arg);
        } else {
            usage_exit(&format!("unexpected argument `{arg}`"));
        }
    }
    let scale = scale.unwrap_or_else(|| "default".into());
    let out_path = out_path.unwrap_or_else(|| "BENCH_run.json".into());

    let mut config = match scale.as_str() {
        "tiny" => StudyConfig::tiny(),
        "test" => StudyConfig::test_scale(),
        "default" => StudyConfig::default_scale(),
        "full" => StudyConfig::full_scale(),
        other => usage_exit(&format!(
            "unknown scale `{other}` (use tiny|test|default|full)"
        )),
    };
    config.threads = threads;
    config.analysis_threads = analysis_threads;
    config.instrument = true;

    let mut study = match Study::run(config) {
        Ok(s) => s,
        Err(e @ StudyError::Config(_)) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
        Err(StudyError::ShardsFailed(report)) => {
            eprint!("{}", report.render());
            eprintln!("run failed: shard failures exceeded the failure policy");
            std::process::exit(1);
        }
    };
    if !study.faults.is_clean() {
        eprint!("{}", study.faults.render());
    }
    let _results = run_all(&mut study);
    eprint!("{}", study.report.render());

    match std::fs::write(&out_path, study.report.to_json_string()) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
