//! Regenerates every table and figure of the study and writes
//! EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ipv6-study-core --bin repro -- \
//!     [scale] [output.md] [--threads N|auto] [--analysis-threads N|auto]
//! ```
//!
//! `scale` is one of `tiny`, `test`, `default` (the default) or `full`.
//! When an output path is given, the markdown report is written there;
//! otherwise it goes to `EXPERIMENTS.md` in the current directory.
//! `--threads N` runs the sharded simulation driver on N workers
//! (`auto` = all available cores), and `--analysis-threads N` does the
//! same for the analysis engine (it defaults to `--threads`); output is
//! byte-identical at any N for either knob.

use std::time::Instant;

use ipv6_study_core::experiments::run_all;
use ipv6_study_core::report::{render_markdown, render_summary};
use ipv6_study_core::{Study, StudyConfig, StudyError};

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: repro [tiny|test|default|full] [output.md] [--threads N|auto] \
         [--analysis-threads N|auto]"
    );
    std::process::exit(2);
}

fn parse_threads(arg: &str) -> usize {
    if arg == "auto" {
        return std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
    }
    match arg.parse() {
        Ok(n) => n,
        Err(_) => usage_exit(&format!("bad thread count `{arg}`")),
    }
}

fn main() {
    let mut scale = None;
    let mut output = None;
    let mut threads = 1usize;
    let mut analysis_threads = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let Some(v) = args.next() else {
                usage_exit("--threads needs a value")
            };
            threads = parse_threads(&v);
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            threads = parse_threads(v);
        } else if arg == "--analysis-threads" {
            let Some(v) = args.next() else {
                usage_exit("--analysis-threads needs a value")
            };
            analysis_threads = Some(parse_threads(&v));
        } else if let Some(v) = arg.strip_prefix("--analysis-threads=") {
            analysis_threads = Some(parse_threads(v));
        } else if scale.is_none() {
            scale = Some(arg);
        } else if output.is_none() {
            output = Some(arg);
        } else {
            usage_exit(&format!("unexpected argument `{arg}`"));
        }
    }
    let scale = scale.unwrap_or_else(|| "default".into());
    let output = output.unwrap_or_else(|| "EXPERIMENTS.md".into());

    let mut config = match scale.as_str() {
        "tiny" => StudyConfig::tiny(),
        "test" => StudyConfig::test_scale(),
        "default" => StudyConfig::default_scale(),
        "full" => StudyConfig::full_scale(),
        other => usage_exit(&format!(
            "unknown scale `{other}` (use tiny|test|default|full)"
        )),
    };
    config.threads = threads;
    config.analysis_threads = analysis_threads;

    eprintln!(
        "running study: {} households, {} campaigns, {}..{}, {} thread(s)",
        config.households,
        config.campaigns,
        config.full_range.start,
        config.full_range.end,
        config.threads
    );
    let mut study = match Study::run(config) {
        Ok(s) => s,
        Err(e @ StudyError::Config(_)) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
        Err(StudyError::ShardsFailed(report)) => {
            eprint!("{}", report.render());
            eprintln!("run failed: shard failures exceeded the failure policy");
            std::process::exit(1);
        }
    };
    eprint!("{}", study.metrics.render());
    if !study.faults.is_clean() {
        eprint!("{}", study.faults.render());
    }
    eprintln!(
        "simulation done: {} requests offered, {} retained, {} abusive accounts",
        study.datasets.offered,
        study.datasets.retained(),
        study.labels.len()
    );

    let t1 = Instant::now();
    let results = run_all(&mut study);
    eprintln!("analyses done in {:.1?}", t1.elapsed());

    print!("{}", render_summary(&results));

    let md = render_markdown(&results);
    match std::fs::write(&output, &md) {
        Ok(()) => eprintln!("wrote {output}"),
        Err(e) => {
            eprintln!("failed to write {output}: {e}");
            std::process::exit(1);
        }
    }

    // The observability report rides along with every repro run.
    if study.report.enabled {
        match std::fs::write("BENCH_run.json", study.report.to_json_string()) {
            Ok(()) => eprintln!("wrote BENCH_run.json"),
            Err(e) => {
                eprintln!("failed to write BENCH_run.json: {e}");
                std::process::exit(1);
            }
        }
    }
}
