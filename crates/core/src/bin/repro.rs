//! Regenerates every table and figure of the study and writes
//! EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ipv6-study-core --bin repro [-- scale] [output.md]
//! ```
//!
//! `scale` is one of `tiny`, `test`, `default` (the default) or `full`.
//! When an output path is given, the markdown report is written there;
//! otherwise it goes to `EXPERIMENTS.md` in the current directory.

use std::time::Instant;

use ipv6_study_core::experiments::run_all;
use ipv6_study_core::report::{render_markdown, render_summary};
use ipv6_study_core::{Study, StudyConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = args.first().map(String::as_str).unwrap_or("default");
    let output = args.get(1).map(String::as_str).unwrap_or("EXPERIMENTS.md");

    let config = match scale {
        "tiny" => StudyConfig::tiny(),
        "test" => StudyConfig::test_scale(),
        "default" => StudyConfig::default_scale(),
        "full" => StudyConfig::full_scale(),
        other => {
            eprintln!("unknown scale `{other}` (use tiny|test|default|full)");
            std::process::exit(2);
        }
    };

    eprintln!(
        "running study: {} households, {} campaigns, {}..{}",
        config.households, config.campaigns, config.full_range.start, config.full_range.end
    );
    let t0 = Instant::now();
    let mut study = Study::run(config);
    eprintln!(
        "simulation done in {:.1?}: {} requests offered, {} retained, {} abusive accounts",
        t0.elapsed(),
        study.datasets.offered,
        study.datasets.retained(),
        study.labels.len()
    );

    let t1 = Instant::now();
    let results = run_all(&mut study);
    eprintln!("analyses done in {:.1?}", t1.elapsed());

    print!("{}", render_summary(&results));

    let md = render_markdown(&results);
    match std::fs::write(output, &md) {
        Ok(()) => eprintln!("wrote {output}"),
        Err(e) => {
            eprintln!("failed to write {output}: {e}");
            std::process::exit(1);
        }
    }
}
