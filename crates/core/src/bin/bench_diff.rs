//! Compares two `BENCH_run.json` documents and fails on analysis-wall
//! regressions — the CI perf gate for the parallel analysis engine.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ipv6-study-core --bin bench_diff -- \
//!     baseline.json current.json [--max-regression PCT] \
//!     [--max-memory-regression PCT] [--max-peak-regression PCT]
//! ```
//!
//! Prints a per-figure wall-clock diff plus the engine phase walls, then
//! exits 1 when the current total analysis wall exceeds the baseline by
//! more than `--max-regression` percent (default 25) *and* by more than
//! an absolute noise floor (50ms) — so sub-noise blips on tiny baselines
//! never fail CI. With `--max-memory-regression`, also gates the frozen
//! store footprint (`sim.store_bytes`, a schema-v2 field): deterministic
//! byte counts get no noise floor, any growth past the budget fails.
//! `--max-peak-regression` gates `sim.peak_store_bytes` (schema v3) the
//! same way — CI uses it to prove a spill run's sim-phase peak memory
//! stays flat even when the current run simulates orders of magnitude
//! more households than the baseline. The Figure-11 trie sweep's
//! `actioning_sweep.total_wall_secs` (schema v4) is gated automatically
//! under the same percentage budget and noise floor whenever both
//! documents carry it. `sim.spill_bytes_verified` (schema v5) is diffed
//! informationally — printed when both documents carry it, skipped with
//! a notice against pre-v5 baselines, never a failure.
//!
//! Schema v6 adds **absolute throughput targets**, gated on the current
//! document alone (no baseline comparison, hence no noise floor — the
//! floor itself encodes the noise margin, see `.github/workflows/ci.yml`):
//! `--min-records-per-sec N` fails when `analysis.records_per_sec`
//! (records scanned per second of engine total wall) is below `N`, and
//! `--max-analysis-total-secs S` fails when `analysis.phases.total`
//! exceeds `S` seconds. Either flag against a document missing its field
//! (pre-v6) is a hard failure — a lane that asks for a target must be
//! able to measure it.
//!
//! Schema v7 adds the incremental-engine gate: `--max-extend-secs S`
//! fails when `analysis.incremental.extend_wall_secs` — the wall of a
//! whole `--state-dir` resume (delta rebuild + suffix sim + selective
//! re-analysis + checkpoint refresh) — exceeds `S` seconds. Like the
//! other absolute targets it gates the current document alone with no
//! noise floor, and is a hard failure against a document missing the
//! field (pre-v7 schema). The day-reuse split
//! (`days_reused`/`days_computed`) is printed alongside whenever the
//! section is present.
//! Exit 2 means bad usage or an unreadable document.
//! Timing comparisons only make sense between runs of the same scale and
//! machine class; CI diffs a fresh run against the committed baseline.

use ipv6_study_obs::Json;

/// Regressions smaller than this many seconds are noise, never failures.
const NOISE_FLOOR_SECS: f64 = 0.05;

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: bench_diff <baseline.json> <current.json> \
         [--max-regression PCT] [--max-memory-regression PCT] \
         [--max-peak-regression PCT] [--min-records-per-sec N] \
         [--max-analysis-total-secs S] [--max-extend-secs S]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Json {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => usage_exit(&format!("cannot read {path}: {e}")),
    };
    match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => usage_exit(&format!("cannot parse {path}: {e}")),
    }
}

fn as_f64(json: &Json) -> Option<f64> {
    match json {
        Json::UInt(u) => Some(*u as f64),
        Json::Num(n) => Some(*n),
        _ => None,
    }
}

/// Walks `doc` down a dotted path of object keys.
fn lookup<'a>(doc: &'a Json, path: &str) -> Option<&'a Json> {
    path.split('.').try_fold(doc, |node, key| node.get(key))
}

fn number_at(doc: &Json, path: &str) -> Option<f64> {
    lookup(doc, path).and_then(as_f64)
}

/// The run's total analysis wall: the engine's `analysis.phases.total`
/// when present, else the summed per-figure `analysis.total_wall_secs`
/// (pre-engine documents).
fn total_analysis_wall(doc: &Json) -> Option<f64> {
    match number_at(doc, "analysis.phases.total") {
        Some(t) if t > 0.0 => Some(t),
        _ => number_at(doc, "analysis.total_wall_secs"),
    }
}

/// Per-figure `(id, wall_secs)` pairs from `analysis.figures`.
fn figure_walls(doc: &Json) -> Vec<(String, f64)> {
    let Some(Json::Arr(figures)) = lookup(doc, "analysis.figures") else {
        return Vec::new();
    };
    figures
        .iter()
        .filter_map(|f| {
            let id = match f.get("id") {
                Some(Json::Str(s)) => s.clone(),
                _ => return None,
            };
            Some((id, f.get("wall_secs").and_then(as_f64)?))
        })
        .collect()
}

fn main() {
    let mut paths = Vec::new();
    let mut max_regression_pct = 25.0;
    let mut max_memory_regression_pct: Option<f64> = None;
    let mut max_peak_regression_pct: Option<f64> = None;
    let mut min_records_per_sec: Option<f64> = None;
    let mut max_analysis_total_secs: Option<f64> = None;
    let mut max_extend_secs: Option<f64> = None;
    let parse_pct = |v: &str| -> f64 {
        v.parse()
            .unwrap_or_else(|_| usage_exit(&format!("bad percentage `{v}`")))
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--max-regression" {
            let Some(v) = args.next() else {
                usage_exit("--max-regression needs a value")
            };
            max_regression_pct = parse_pct(&v);
        } else if let Some(v) = arg.strip_prefix("--max-regression=") {
            max_regression_pct = parse_pct(v);
        } else if arg == "--max-memory-regression" {
            let Some(v) = args.next() else {
                usage_exit("--max-memory-regression needs a value")
            };
            max_memory_regression_pct = Some(parse_pct(&v));
        } else if let Some(v) = arg.strip_prefix("--max-memory-regression=") {
            max_memory_regression_pct = Some(parse_pct(v));
        } else if arg == "--max-peak-regression" {
            let Some(v) = args.next() else {
                usage_exit("--max-peak-regression needs a value")
            };
            max_peak_regression_pct = Some(parse_pct(&v));
        } else if let Some(v) = arg.strip_prefix("--max-peak-regression=") {
            max_peak_regression_pct = Some(parse_pct(v));
        } else if arg == "--min-records-per-sec" {
            let Some(v) = args.next() else {
                usage_exit("--min-records-per-sec needs a value")
            };
            min_records_per_sec = Some(parse_pct(&v));
        } else if let Some(v) = arg.strip_prefix("--min-records-per-sec=") {
            min_records_per_sec = Some(parse_pct(v));
        } else if arg == "--max-analysis-total-secs" {
            let Some(v) = args.next() else {
                usage_exit("--max-analysis-total-secs needs a value")
            };
            max_analysis_total_secs = Some(parse_pct(&v));
        } else if let Some(v) = arg.strip_prefix("--max-analysis-total-secs=") {
            max_analysis_total_secs = Some(parse_pct(v));
        } else if arg == "--max-extend-secs" {
            let Some(v) = args.next() else {
                usage_exit("--max-extend-secs needs a value")
            };
            max_extend_secs = Some(parse_pct(&v));
        } else if let Some(v) = arg.strip_prefix("--max-extend-secs=") {
            max_extend_secs = Some(parse_pct(v));
        } else {
            paths.push(arg);
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        usage_exit("expected exactly two documents");
    };
    let baseline = load(baseline_path);
    let current = load(current_path);

    println!("== per-figure analysis wall (baseline -> current) ==");
    let base_figs = figure_walls(&baseline);
    let cur_figs = figure_walls(&current);
    for (id, cur_wall) in &cur_figs {
        match base_figs.iter().find(|(b, _)| b == id) {
            Some((_, base_wall)) => {
                let delta = if *base_wall > 0.0 {
                    100.0 * (cur_wall - base_wall) / base_wall
                } else {
                    0.0
                };
                println!("{id:>10}  {base_wall:>10.4}s -> {cur_wall:>10.4}s  ({delta:+7.1}%)");
            }
            None => println!("{id:>10}  (new)      -> {cur_wall:>10.4}s"),
        }
    }
    for (id, base_wall) in &base_figs {
        if !cur_figs.iter().any(|(c, _)| c == id) {
            println!("{id:>10}  {base_wall:>10.4}s -> (gone)");
        }
    }

    println!("\n== engine phases (current) ==");
    for phase in ["index", "passes", "total"] {
        if let Some(wall) = number_at(&current, &format!("analysis.phases.{phase}")) {
            println!("{phase:>10}  {wall:>10.4}s");
        }
    }

    let Some(base_total) = total_analysis_wall(&baseline) else {
        usage_exit(&format!("{baseline_path} has no analysis timing section"));
    };
    let Some(cur_total) = total_analysis_wall(&current) else {
        usage_exit(&format!("{current_path} has no analysis timing section"));
    };
    let delta = cur_total - base_total;
    let pct = if base_total > 0.0 {
        100.0 * delta / base_total
    } else {
        0.0
    };
    println!("\ntotal analysis wall: {base_total:.4}s -> {cur_total:.4}s ({pct:+.1}%)");

    let mut failed = false;
    if pct > max_regression_pct && delta > NOISE_FLOOR_SECS {
        eprintln!(
            "FAIL: total analysis wall regressed {pct:.1}% \
             (limit {max_regression_pct:.0}%, floor {NOISE_FLOOR_SECS}s)"
        );
        failed = true;
    }

    // Memory gate: store bytes are deterministic for a given config, so
    // the budget applies without a noise floor. A baseline without the
    // field (schema v1) or with a zero footprint (uninstrumented) can't
    // be compared and skips the gate with a notice.
    if let Some(limit_pct) = max_memory_regression_pct {
        let base_bytes = number_at(&baseline, "sim.store_bytes");
        let cur_bytes = number_at(&current, "sim.store_bytes");
        match (base_bytes, cur_bytes) {
            (Some(base), Some(cur)) if base > 0.0 => {
                let mem_pct = 100.0 * (cur - base) / base;
                println!("store bytes: {:.0} -> {:.0} ({mem_pct:+.1}%)", base, cur);
                if mem_pct > limit_pct {
                    eprintln!(
                        "FAIL: sim.store_bytes regressed {mem_pct:.1}% \
                         (limit {limit_pct:.0}%)"
                    );
                    failed = true;
                }
            }
            _ => println!(
                "store bytes: baseline has no usable sim.store_bytes \
                 (pre-v2 schema or uninstrumented); memory gate skipped"
            ),
        }
    }

    // Actioning-sweep gate: the Figure-11 trie sweep's wall (schema v4).
    // Timing, so the noise floor applies like the total-wall gate; it
    // shares the same percentage budget. A pre-v4 baseline skips with a
    // notice.
    {
        let base_sweep = number_at(&baseline, "actioning_sweep.total_wall_secs");
        let cur_sweep = number_at(&current, "actioning_sweep.total_wall_secs");
        match (base_sweep, cur_sweep) {
            (Some(base), Some(cur)) => {
                let sweep_delta = cur - base;
                let sweep_pct = if base > 0.0 {
                    100.0 * sweep_delta / base
                } else {
                    0.0
                };
                println!("actioning sweep wall: {base:.4}s -> {cur:.4}s ({sweep_pct:+.1}%)");
                if sweep_pct > max_regression_pct && sweep_delta > NOISE_FLOOR_SECS {
                    eprintln!(
                        "FAIL: actioning_sweep.total_wall_secs regressed {sweep_pct:.1}% \
                         (limit {max_regression_pct:.0}%, floor {NOISE_FLOOR_SECS}s)"
                    );
                    failed = true;
                }
            }
            _ => println!(
                "actioning sweep wall: baseline has no actioning_sweep section \
                 (pre-v4 schema); sweep gate skipped"
            ),
        }
    }

    // Storage-verification diff (schema v5): informational only — the
    // bytes verified at merge time are deterministic per config, so a
    // change is worth seeing in CI logs, but it is not a regression gate.
    // A pre-v5 baseline skips with a notice.
    {
        let base_verified = number_at(&baseline, "sim.spill_bytes_verified");
        let cur_verified = number_at(&current, "sim.spill_bytes_verified");
        match (base_verified, cur_verified) {
            (Some(base), Some(cur)) => {
                println!("spill bytes verified: {base:.0} -> {cur:.0}");
            }
            _ => println!(
                "spill bytes verified: baseline has no sim.spill_bytes_verified \
                 (pre-v5 schema); storage diff skipped"
            ),
        }
    }

    // Peak-memory gate: like the store gate, deterministic hence no noise
    // floor. This is the out-of-core pipeline's flat-memory proof — the
    // current run may be vastly larger than the baseline, yet its
    // sim-phase high-water must stay within the budget.
    if let Some(limit_pct) = max_peak_regression_pct {
        let base_peak = number_at(&baseline, "sim.peak_store_bytes");
        let cur_peak = number_at(&current, "sim.peak_store_bytes");
        match (base_peak, cur_peak) {
            (Some(base), Some(cur)) if base > 0.0 => {
                let peak_pct = 100.0 * (cur - base) / base;
                println!(
                    "peak store bytes: {:.0} -> {:.0} ({peak_pct:+.1}%)",
                    base, cur
                );
                if peak_pct > limit_pct {
                    eprintln!(
                        "FAIL: sim.peak_store_bytes regressed {peak_pct:.1}% \
                         (limit {limit_pct:.0}%)"
                    );
                    failed = true;
                }
            }
            _ => println!(
                "peak store bytes: baseline has no usable sim.peak_store_bytes \
                 (pre-v3 schema or uninstrumented); peak gate skipped"
            ),
        }
    }

    // Absolute throughput floor (schema v6): gates the current document
    // alone. Deliberately no noise floor — the target value itself is
    // chosen with the noise margin built in (the CI lane documents its
    // policy), so a run below the floor is a real miss, not a blip.
    if let Some(floor) = min_records_per_sec {
        match number_at(&current, "analysis.records_per_sec") {
            Some(rate) => {
                println!("analysis scan rate: {rate:.0} records/sec (floor {floor:.0})");
                if rate < floor {
                    eprintln!(
                        "FAIL: analysis.records_per_sec {rate:.0} is below \
                         the {floor:.0} records/sec floor"
                    );
                    failed = true;
                }
            }
            None => {
                eprintln!(
                    "FAIL: --min-records-per-sec given but {current_path} has no \
                     analysis.records_per_sec (pre-v6 schema or uninstrumented)"
                );
                failed = true;
            }
        }
        if let Some(rate) = number_at(&current, "analysis.index_records_per_sec") {
            println!("index build rate: {rate:.0} records/sec");
        }
    }

    // Absolute wall ceiling (schema v6): the engine's total phase must
    // finish within the target regardless of what the baseline did.
    if let Some(ceiling) = max_analysis_total_secs {
        match number_at(&current, "analysis.phases.total") {
            Some(total) if total > 0.0 => {
                println!("analysis total wall: {total:.4}s (ceiling {ceiling:.4}s)");
                if total > ceiling {
                    eprintln!(
                        "FAIL: analysis.phases.total {total:.4}s exceeds \
                         the {ceiling:.4}s ceiling"
                    );
                    failed = true;
                }
            }
            _ => {
                eprintln!(
                    "FAIL: --max-analysis-total-secs given but {current_path} has \
                     no analysis.phases.total"
                );
                failed = true;
            }
        }
    }

    // Incremental-engine gate (schema v7): the wall of a whole state-dir
    // resume. Absolute target on the current document, no noise floor —
    // the lane's chosen ceiling encodes the margin. The reuse split is
    // printed whenever the section exists, gated or not.
    {
        let reused = number_at(&current, "analysis.incremental.days_reused");
        let computed = number_at(&current, "analysis.incremental.days_computed");
        if let (Some(reused), Some(computed)) = (reused, computed) {
            println!("incremental days: {reused:.0} reused, {computed:.0} computed");
        }
    }
    if let Some(ceiling) = max_extend_secs {
        match number_at(&current, "analysis.incremental.extend_wall_secs") {
            Some(wall) => {
                println!("incremental extend wall: {wall:.4}s (ceiling {ceiling:.4}s)");
                if wall > ceiling {
                    eprintln!(
                        "FAIL: analysis.incremental.extend_wall_secs {wall:.4}s \
                         exceeds the {ceiling:.4}s ceiling"
                    );
                    failed = true;
                }
            }
            None => {
                eprintln!(
                    "FAIL: --max-extend-secs given but {current_path} has no \
                     analysis.incremental.extend_wall_secs (pre-v7 schema or \
                     uninstrumented)"
                );
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("OK: within the {max_regression_pct:.0}% regression budget");
}
