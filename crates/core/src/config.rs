//! Study configuration and scale presets.

use crate::ablation::Ablation;
use ipv6_study_netaddr::STUDY_PREFIX_LENGTHS;
use ipv6_study_telemetry::time::{study_end, study_start};
use ipv6_study_telemetry::{DateRange, SimDate};

/// Configuration for one study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Master seed; every address, user and campaign derives from it.
    pub seed: u64,
    /// Number of benign households (≈ 2.1 users each).
    pub households: u64,
    /// Number of attacker campaigns.
    pub campaigns: u32,
    /// Full study window (the paper's Jan 23 – Apr 19 2020).
    pub full_range: DateRange,
    /// Dense window: all users simulated (must end at `full_range.end`).
    pub dense_range: DateRange,
    /// IPv6 prefix lengths collected by the prefix random samples.
    pub prefix_lengths: Vec<u8>,
    /// Mechanism ablation (Baseline for the real model).
    pub ablation: Ablation,
}

impl StudyConfig {
    /// The default scale: large enough that every figure's shape is
    /// populated, small enough to run in seconds in release mode.
    pub fn default_scale() -> Self {
        Self::at_scale(42, 20_000)
    }

    /// A small scale for integration tests (debug-mode friendly).
    pub fn test_scale() -> Self {
        let mut cfg = Self::at_scale(42, 2_500);
        cfg.dense_range = DateRange::new(SimDate::ymd(4, 12), SimDate::ymd(4, 19));
        cfg
    }

    /// A minimal scale for doctests and smoke tests.
    pub fn tiny() -> Self {
        let mut cfg = Self::at_scale(42, 400);
        cfg.full_range = DateRange::new(SimDate::ymd(4, 6), SimDate::ymd(4, 19));
        cfg.dense_range = DateRange::new(SimDate::ymd(4, 13), SimDate::ymd(4, 19));
        cfg.campaigns = 20;
        cfg
    }

    /// A large scale for the full reproduction run (release mode).
    pub fn full_scale() -> Self {
        Self::at_scale(42, 60_000)
    }

    /// Builds a config at the given household scale with the standard
    /// windows: panel over the full study range, dense over the last two
    /// weeks (Apr 6–19), campaigns sized to ~1 per 150 households.
    pub fn at_scale(seed: u64, households: u64) -> Self {
        Self {
            seed,
            households,
            campaigns: (households / 25).max(20) as u32,
            full_range: DateRange::new(study_start(), study_end()),
            dense_range: DateRange::new(SimDate::ymd(4, 6), SimDate::ymd(4, 19)),
            prefix_lengths: STUDY_PREFIX_LENGTHS.to_vec(),
            ablation: Ablation::Baseline,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics when the dense window is not a suffix of the full window.
    pub fn validate(&self) {
        assert!(self.households > 0, "need households");
        assert!(
            self.dense_range.start >= self.full_range.start
                && self.dense_range.end == self.full_range.end,
            "dense window must be a suffix of the full window"
        );
        assert!(!self.prefix_lengths.is_empty(), "need at least one prefix length");
        for &l in &self.prefix_lengths {
            assert!(l <= 128, "bad prefix length {l}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        StudyConfig::default_scale().validate();
        StudyConfig::test_scale().validate();
        StudyConfig::tiny().validate();
        StudyConfig::full_scale().validate();
    }

    #[test]
    fn scales_are_ordered() {
        assert!(StudyConfig::tiny().households < StudyConfig::test_scale().households);
        assert!(StudyConfig::test_scale().households < StudyConfig::default_scale().households);
        assert!(StudyConfig::default_scale().households < StudyConfig::full_scale().households);
    }

    #[test]
    #[should_panic(expected = "suffix")]
    fn invalid_dense_window_rejected() {
        let mut cfg = StudyConfig::tiny();
        cfg.dense_range = DateRange::new(SimDate::ymd(2, 1), SimDate::ymd(2, 5));
        cfg.validate();
    }
}
