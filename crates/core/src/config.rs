//! Study configuration, validation errors, scale presets, and the
//! builder-style entry point.

use std::fmt;

use crate::ablation::Ablation;
use crate::faults::{FailurePolicy, FaultInjector, StudyOutcome};
use crate::study::Study;
use ipv6_study_netaddr::STUDY_PREFIX_LENGTHS;
use ipv6_study_telemetry::time::{study_end, study_start};
use ipv6_study_telemetry::{DateRange, Samplers, SimDate, StorageMode};

/// Why a [`StudyConfig`] cannot be run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `households` is zero: there is no population to simulate.
    NoHouseholds,
    /// The dense window must end exactly where the full window ends and
    /// start no earlier than it (the dense phase is the *suffix* of the
    /// study; see the crate-level phase description).
    DenseWindowNotSuffix {
        /// The offending dense window.
        dense: DateRange,
        /// The full study window it must suffix.
        full: DateRange,
    },
    /// `prefix_lengths` is empty: at least one prefix sample is required.
    NoPrefixLengths,
    /// A prefix length exceeds 128 bits.
    PrefixLengthTooLong(u8),
    /// `threads` is zero: the driver needs at least one worker.
    ZeroThreads,
    /// `analysis_threads` is `Some(0)`: the analysis engine needs at least
    /// one worker (leave it `None` to inherit `threads`).
    ZeroAnalysisThreads,
    /// `max_shard_retries` exceeds the sanity cap: a deterministic shard
    /// that failed dozens of times will not succeed on attempt 100.
    TooManyRetries(u32),
    /// The fault injector's `panic_rate` is outside `[0, 1]` (or NaN).
    FaultRateOutOfRange(f64),
    /// `storage` is [`StorageMode::Spill`] with `segment_rows == 0`: a
    /// segment must stage at least one row.
    ZeroSegmentRows,
    /// `disk_budget_bytes` is `Some(0)`: a zero budget rejects the very
    /// first spill write (leave it `None` for unlimited).
    ZeroDiskBudget,
    /// `disk_budget_bytes` is set but `storage` is
    /// [`StorageMode::InMemory`]: the budget governs spill writes only,
    /// so setting it without spill storage is a misconfiguration.
    DiskBudgetWithoutSpill,
    /// The spill session directory cannot be created or used.
    Storage(String),
    /// A fixed sampling rate is not a probability in `(0, 1]` (or NaN).
    InvalidSamplingRate(f64),
    /// The sampling plan expects fewer than one sampled user at the
    /// configured population — every sampled dataset would be empty in
    /// expectation, which is a misconfiguration, not a study.
    SamplingTooSparse {
        /// The configured per-entity rate.
        rate: f64,
        /// The approximate user population the rate applies to.
        population: u64,
    },
    /// The world's network portfolio cannot be materialized from this
    /// configuration (an address-assignment invariant would be violated).
    Network(String),
    /// `extend_days` pushes the simulated end past Dec 31 2020 — the
    /// calendar model covers one year, so an extension must stay inside
    /// it.
    ExtensionPastCalendar {
        /// The configured extension.
        extend_days: u16,
        /// The base window's last day.
        base_end: SimDate,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoHouseholds => write!(f, "households must be at least 1"),
            ConfigError::DenseWindowNotSuffix { dense, full } => write!(
                f,
                "dense window {}..{} must be a suffix of the full window {}..{}",
                dense.start, dense.end, full.start, full.end
            ),
            ConfigError::NoPrefixLengths => {
                write!(f, "at least one prefix length must be collected")
            }
            ConfigError::PrefixLengthTooLong(l) => {
                write!(f, "prefix length /{l} exceeds 128 bits")
            }
            ConfigError::ZeroThreads => write!(f, "threads must be at least 1"),
            ConfigError::ZeroAnalysisThreads => {
                write!(f, "analysis_threads must be at least 1 (or None)")
            }
            ConfigError::TooManyRetries(n) => {
                write!(
                    f,
                    "max_shard_retries {n} exceeds the cap of {MAX_SHARD_RETRIES_CAP}"
                )
            }
            ConfigError::FaultRateOutOfRange(r) => {
                write!(f, "fault panic_rate {r} must be within [0, 1]")
            }
            ConfigError::ZeroSegmentRows => {
                write!(f, "spill segment_rows must be at least 1")
            }
            ConfigError::ZeroDiskBudget => {
                write!(
                    f,
                    "disk_budget_bytes must be at least 1 (or None for unlimited)"
                )
            }
            ConfigError::DiskBudgetWithoutSpill => {
                write!(
                    f,
                    "disk_budget_bytes requires the spill storage mode (it caps on-disk bytes)"
                )
            }
            ConfigError::Storage(msg) => write!(f, "spill storage unusable: {msg}"),
            ConfigError::InvalidSamplingRate(r) => {
                write!(f, "sampling rate {r} must be within (0, 1]")
            }
            ConfigError::SamplingTooSparse { rate, population } => write!(
                f,
                "sampling rate {rate} over ~{population} users expects fewer than one \
                 sampled user"
            ),
            ConfigError::Network(msg) => write!(f, "network portfolio invalid: {msg}"),
            ConfigError::ExtensionPastCalendar {
                extend_days,
                base_end,
            } => write!(
                f,
                "extend_days {extend_days} pushes the window past Dec 31 2020 \
                 (base window ends {base_end})"
            ),
        }
    }
}

/// Upper bound on `max_shard_retries`. Shards are pure functions of the
/// config, so only transient environmental (or injected) faults can be
/// retried away; a budget beyond this is a misconfiguration, not
/// resilience.
pub const MAX_SHARD_RETRIES_CAP: u32 = 64;

impl std::error::Error for ConfigError {}

/// How the §3.1 sampler rates are chosen for a run.
///
/// Previously callers picked [`Samplers::scaled_for`] or
/// [`Samplers::paper`] directly, and a builder that changed `households`
/// after choosing silently kept stale rates. The plan is resolved against
/// the *final* configured population exactly once, at
/// [`Study::run`] time, and validated by [`StudyConfig::validate`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum SamplingPlan {
    /// Rates scaled so each sampled dataset stays analysis-sized at any
    /// population ([`Samplers::scaled_for`]) — the default.
    #[default]
    Scaled,
    /// The paper's fixed 0.1% rates ([`Samplers::paper`]); rejected when
    /// the population is too small to expect even one sampled user.
    Paper,
    /// One fixed rate for all four samplers.
    Fixed {
        /// The per-entity sampling probability, in `(0, 1]`.
        rate: f64,
    },
}

impl SamplingPlan {
    /// Resolves the plan into concrete sampler rates for a population of
    /// approximately `population` users.
    pub fn resolve(&self, population: u64) -> Samplers {
        match *self {
            SamplingPlan::Scaled => Samplers::scaled_for(population),
            SamplingPlan::Paper => Samplers::paper(),
            SamplingPlan::Fixed { rate } => Samplers {
                request_rate: rate,
                user_rate: rate,
                ip_rate: rate,
                prefix_rate: rate,
            },
        }
    }

    /// Machine-readable label echoed into `BENCH_run.json`
    /// (`"scaled"` / `"paper"` / `"fixed:RATE"`).
    pub fn label(&self) -> String {
        match *self {
            SamplingPlan::Scaled => "scaled".to_string(),
            SamplingPlan::Paper => "paper".to_string(),
            SamplingPlan::Fixed { rate } => format!("fixed:{rate}"),
        }
    }

    /// Validates the plan against the configured population.
    fn validate(&self, population: u64) -> Result<(), ConfigError> {
        let fixed_rate = match *self {
            // `scaled_for` clamps itself into a sane range for any
            // population; nothing to reject.
            SamplingPlan::Scaled => return Ok(()),
            SamplingPlan::Paper => Samplers::paper().user_rate,
            SamplingPlan::Fixed { rate } => {
                if !(rate > 0.0 && rate <= 1.0) {
                    return Err(ConfigError::InvalidSamplingRate(rate));
                }
                rate
            }
        };
        if fixed_rate * (population as f64) < 1.0 {
            return Err(ConfigError::SamplingTooSparse {
                rate: fixed_rate,
                population,
            });
        }
        Ok(())
    }
}

/// Configuration for one study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Master seed; every address, user and campaign derives from it.
    pub seed: u64,
    /// Number of benign households (≈ 2.1 users each).
    pub households: u64,
    /// Number of attacker campaigns.
    pub campaigns: u32,
    /// Full study window (the paper's Jan 23 – Apr 19 2020).
    pub full_range: DateRange,
    /// Dense window: all users simulated (must end at `full_range.end`).
    pub dense_range: DateRange,
    /// IPv6 prefix lengths collected by the prefix random samples.
    pub prefix_lengths: Vec<u8>,
    /// Mechanism ablation (Baseline for the real model).
    pub ablation: Ablation,
    /// Worker threads for the sharded simulation driver. The emitted
    /// datasets are byte-identical at any thread count; this knob only
    /// trades wall-clock for cores.
    pub threads: usize,
    /// Worker threads for the parallel analysis engine
    /// ([`crate::experiments::run_all`]), or `None` to inherit `threads`.
    /// Pass outputs merge in registry order, so the rendered figures and
    /// run report are byte-identical at any count.
    pub analysis_threads: Option<usize>,
    /// Whether to collect the observability [`RunReport`] (phase timers,
    /// per-shard/per-figure stats). Instrumentation is passive — it never
    /// feeds back into the simulation — so toggling it cannot change the
    /// emitted datasets (covered by a determinism test).
    ///
    /// [`RunReport`]: ipv6_study_obs::RunReport
    pub instrument: bool,
    /// What the driver does when a shard worker panics (default:
    /// [`FailurePolicy::Abort`]). See [`crate::faults`] for the
    /// isolation/retry/degradation semantics.
    pub failure_policy: FailurePolicy,
    /// Extra attempts a failed shard gets under [`FailurePolicy::Retry`]
    /// or [`FailurePolicy::Degrade`] before it counts as exhausted.
    /// Retries reproduce the exact bytes of a clean attempt (shards are
    /// pure functions of the config), so the determinism guarantee holds.
    pub max_shard_retries: u32,
    /// Deterministic fault-injection harness, off (`None`) by default.
    /// Only test and chaos configurations set this.
    pub faults: Option<FaultInjector>,
    /// Where retained streams live during the sim phase:
    /// [`StorageMode::InMemory`] (default) or [`StorageMode::Spill`],
    /// which bounds peak memory by streaming every dataset family into
    /// sorted on-disk segments. The emitted datasets are byte-identical
    /// in both modes.
    pub storage: StorageMode,
    /// Hard cap on the spill session's total on-disk bytes, `None` for
    /// unlimited. Exceeding the budget surfaces a typed
    /// `SpillError::Budget` on the offending shard; what happens next is
    /// the [`FailurePolicy`]'s call (under
    /// [`FailurePolicy::Degrade`] the shard is dropped and the run
    /// completes on the survivors — graceful degradation instead of a
    /// full disk). Requires [`StorageMode::Spill`].
    pub disk_budget_bytes: Option<u64>,
    /// How the §3.1 sampler rates are derived from the configured
    /// population (resolved once, at run time).
    pub sampling: SamplingPlan,
    /// Days simulated *past* `full_range.end` by the incremental engine
    /// (0 = the classic batch run). The base window stays the anchor for
    /// everything config-derived — shard plan, samplers, campaign
    /// placement, the calendar-anchored analysis windows — so a run at
    /// `extend_days = n` emits byte-identical rows for the base days as
    /// a run at `extend_days = 0`, which is what lets
    /// [`crate::incremental`] reuse frozen day deltas instead of
    /// re-simulating them. Only the end-relative read sets (the Figure
    /// 11 pair window, the §7.2/EC1 day pairs, Figure 1's prevalence
    /// span, and the driver's pair routing) follow the extended end; see
    /// [`ipv6_study_analysis::windows`].
    pub extend_days: u16,
}

impl StudyConfig {
    /// The default scale: large enough that every figure's shape is
    /// populated, small enough to run in seconds in release mode.
    pub fn default_scale() -> Self {
        Self::at_scale(42, 20_000)
    }

    /// A small scale for integration tests (debug-mode friendly).
    pub fn test_scale() -> Self {
        let mut cfg = Self::at_scale(42, 2_500);
        cfg.dense_range = DateRange::new(SimDate::ymd(4, 12), SimDate::ymd(4, 19));
        cfg
    }

    /// A minimal scale for doctests and smoke tests.
    pub fn tiny() -> Self {
        let mut cfg = Self::at_scale(42, 400);
        cfg.full_range = DateRange::new(SimDate::ymd(4, 6), SimDate::ymd(4, 19));
        cfg.dense_range = DateRange::new(SimDate::ymd(4, 13), SimDate::ymd(4, 19));
        cfg.campaigns = 20;
        cfg
    }

    /// A large scale for the full reproduction run (release mode).
    pub fn full_scale() -> Self {
        Self::at_scale(42, 60_000)
    }

    /// Builds a config at the given household scale with the standard
    /// windows: panel over the full study range, dense over the last two
    /// weeks (Apr 6–19), campaigns sized to ~1 per 25 households.
    pub fn at_scale(seed: u64, households: u64) -> Self {
        Self {
            seed,
            households,
            campaigns: (households / 25).max(20) as u32,
            full_range: DateRange::new(study_start(), study_end()),
            dense_range: DateRange::new(SimDate::ymd(4, 6), SimDate::ymd(4, 19)),
            prefix_lengths: STUDY_PREFIX_LENGTHS.to_vec(),
            ablation: Ablation::Baseline,
            threads: 1,
            analysis_threads: None,
            instrument: true,
            failure_policy: FailurePolicy::Abort,
            max_shard_retries: 2,
            faults: None,
            storage: StorageMode::InMemory,
            disk_budget_bytes: None,
            sampling: SamplingPlan::Scaled,
            extend_days: 0,
        }
    }

    /// The last *simulated* day: `full_range.end` plus `extend_days`.
    pub fn sim_end(&self) -> SimDate {
        self.full_range.end + self.extend_days
    }

    /// The full simulated window: the base `full_range` plus any
    /// extension days appended by the incremental engine.
    pub fn sim_range(&self) -> DateRange {
        DateRange::new(self.full_range.start, self.sim_end())
    }

    /// Whether `day` is simulated densely (all users, not just the
    /// panel). The dense window is the suffix of the base range, and
    /// extension days — which are always appended after it — stay dense:
    /// density is monotone along the timeline, so a day's rows never
    /// depend on how far the run eventually extends.
    pub fn is_dense(&self, day: SimDate) -> bool {
        self.dense_range.contains(day) || day > self.full_range.end
    }

    /// The approximate user population this config simulates — the number
    /// the sampling plan is resolved and validated against.
    pub fn approx_users(&self) -> u64 {
        ipv6_study_behavior::approx_users(self.households)
    }

    /// Validates internal consistency, reporting the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.households == 0 {
            return Err(ConfigError::NoHouseholds);
        }
        if self.dense_range.start < self.full_range.start
            || self.dense_range.end != self.full_range.end
        {
            return Err(ConfigError::DenseWindowNotSuffix {
                dense: self.dense_range,
                full: self.full_range,
            });
        }
        if usize::from(self.full_range.end.index()) + usize::from(self.extend_days) > 365 {
            return Err(ConfigError::ExtensionPastCalendar {
                extend_days: self.extend_days,
                base_end: self.full_range.end,
            });
        }
        if self.prefix_lengths.is_empty() {
            return Err(ConfigError::NoPrefixLengths);
        }
        for &l in &self.prefix_lengths {
            if l > 128 {
                return Err(ConfigError::PrefixLengthTooLong(l));
            }
        }
        if self.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if self.analysis_threads == Some(0) {
            return Err(ConfigError::ZeroAnalysisThreads);
        }
        if self.max_shard_retries > MAX_SHARD_RETRIES_CAP {
            return Err(ConfigError::TooManyRetries(self.max_shard_retries));
        }
        if let StorageMode::Spill { segment_rows, .. } = &self.storage {
            if *segment_rows == 0 {
                return Err(ConfigError::ZeroSegmentRows);
            }
        }
        match self.disk_budget_bytes {
            Some(0) => return Err(ConfigError::ZeroDiskBudget),
            Some(_) if !self.storage.is_spill() => return Err(ConfigError::DiskBudgetWithoutSpill),
            _ => {}
        }
        self.sampling.validate(self.approx_users())?;
        if let Some(faults) = &self.faults {
            faults.validate()?;
        }
        // Prove the network portfolio materializes: every world invariant
        // (pool sizes, deployment ratios) is checked here, so a violation
        // surfaces as a `ConfigError` instead of a panic mid-run.
        ipv6_study_netmodel::World::try_sized(self.seed, self.households)
            .map_err(|e| ConfigError::Network(e.to_string()))?;
        Ok(())
    }

    /// The analysis-engine worker count actually used: `analysis_threads`
    /// when set, the simulation `threads` otherwise.
    pub fn effective_analysis_threads(&self) -> usize {
        self.analysis_threads.unwrap_or(self.threads)
    }
}

/// Fluent construction of a [`Study`].
///
/// Starts from [`StudyConfig::default_scale`] (or a preset via
/// [`StudyBuilder::tiny`] / [`StudyBuilder::test_scale`] /
/// [`StudyBuilder::full_scale`]), overrides individual knobs, and
/// validates once at [`StudyBuilder::run`] (or [`StudyBuilder::build`]):
///
/// ```
/// use ipv6_study_core::Study;
///
/// let study = Study::builder().tiny().seed(7).threads(2).run().unwrap();
/// assert_eq!(study.config().seed, 7);
/// ```
#[derive(Debug, Clone)]
pub struct StudyBuilder {
    config: StudyConfig,
}

impl Default for StudyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl StudyBuilder {
    /// A builder at the default scale.
    pub fn new() -> Self {
        Self {
            config: StudyConfig::default_scale(),
        }
    }

    /// Switches to the [`StudyConfig::tiny`] preset (keeping the current
    /// seed, thread count, and ablation).
    pub fn tiny(self) -> Self {
        self.preset(StudyConfig::tiny())
    }

    /// Switches to the [`StudyConfig::test_scale`] preset (keeping the
    /// current seed, thread count, and ablation).
    pub fn test_scale(self) -> Self {
        self.preset(StudyConfig::test_scale())
    }

    /// Switches to the [`StudyConfig::full_scale`] preset (keeping the
    /// current seed, thread count, and ablation).
    pub fn full_scale(self) -> Self {
        self.preset(StudyConfig::full_scale())
    }

    fn preset(self, mut cfg: StudyConfig) -> Self {
        cfg.seed = self.config.seed;
        cfg.threads = self.config.threads;
        cfg.analysis_threads = self.config.analysis_threads;
        cfg.ablation = self.config.ablation;
        cfg.instrument = self.config.instrument;
        cfg.failure_policy = self.config.failure_policy;
        cfg.max_shard_retries = self.config.max_shard_retries;
        cfg.faults = self.config.faults;
        cfg.storage = self.config.storage;
        cfg.disk_budget_bytes = self.config.disk_budget_bytes;
        cfg.sampling = self.config.sampling;
        cfg.extend_days = self.config.extend_days;
        Self { config: cfg }
    }

    /// Sets the extension-day count (days simulated past the base
    /// window's end by the incremental engine).
    pub fn extend_days(mut self, days: u16) -> Self {
        self.config.extend_days = days;
        self
    }

    /// Sets the household count and rescales the campaign count with it
    /// (~1 per 25 households); call [`StudyBuilder::campaigns`] afterwards
    /// to pin an exact campaign count.
    pub fn households(mut self, households: u64) -> Self {
        self.config.households = households;
        self.config.campaigns = (households / 25).max(20) as u32;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the worker-thread count (results are identical at any count).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the analysis-engine worker count (rendered figures and reports
    /// are identical at any count); `None` inherits [`Self::threads`].
    pub fn analysis_threads(mut self, threads: usize) -> Self {
        self.config.analysis_threads = Some(threads);
        self
    }

    /// Enables or disables observability instrumentation (identical
    /// datasets either way; only the run's [`ipv6_study_obs::RunReport`]
    /// is affected).
    pub fn instrument(mut self, instrument: bool) -> Self {
        self.config.instrument = instrument;
        self
    }

    /// Sets the attacker campaign count.
    pub fn campaigns(mut self, campaigns: u32) -> Self {
        self.config.campaigns = campaigns;
        self
    }

    /// Sets the mechanism ablation.
    pub fn ablation(mut self, ablation: Ablation) -> Self {
        self.config.ablation = ablation;
        self
    }

    /// Sets the collected prefix-sample lengths.
    pub fn prefix_lengths(mut self, lengths: &[u8]) -> Self {
        self.config.prefix_lengths = lengths.to_vec();
        self
    }

    /// Sets the shard-failure policy (see [`crate::faults`]).
    pub fn failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.config.failure_policy = policy;
        self
    }

    /// Sets the retry budget for failed shards (only consulted under
    /// [`FailurePolicy::Retry`] and [`FailurePolicy::Degrade`]).
    pub fn max_shard_retries(mut self, retries: u32) -> Self {
        self.config.max_shard_retries = retries;
        self
    }

    /// Installs a deterministic fault injector (chaos testing only; the
    /// datasets of a run whose injected faults are all retried away are
    /// byte-identical to a fault-free run).
    pub fn fault_injector(mut self, faults: FaultInjector) -> Self {
        self.config.faults = Some(faults);
        self
    }

    /// Sets the sim-phase storage mode (in-memory or bounded spill-to-
    /// disk; emitted datasets are byte-identical in both).
    pub fn storage(mut self, storage: StorageMode) -> Self {
        self.config.storage = storage;
        self
    }

    /// Caps the spill session's total on-disk bytes (see
    /// [`StudyConfig::disk_budget_bytes`]); requires the spill storage
    /// mode. Exceeding the budget fails the offending shard with a typed
    /// budget error, degraded away or aborting per the failure policy.
    pub fn disk_budget_bytes(mut self, bytes: u64) -> Self {
        self.config.disk_budget_bytes = Some(bytes);
        self
    }

    /// Sets the sampling plan — the single place sampler rates are
    /// chosen. The plan is resolved against the *final* population at run
    /// time, so it composes with later [`StudyBuilder::households`] calls
    /// instead of silently keeping stale rates.
    pub fn sampling(mut self, plan: SamplingPlan) -> Self {
        self.config.sampling = plan;
        self
    }

    /// Validates and returns the configuration without running it.
    pub fn build(self) -> Result<StudyConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }

    /// Validates and runs the study.
    pub fn run(self) -> StudyOutcome {
        Study::run(self.build()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        StudyConfig::default_scale().validate().unwrap();
        StudyConfig::test_scale().validate().unwrap();
        StudyConfig::tiny().validate().unwrap();
        StudyConfig::full_scale().validate().unwrap();
    }

    #[test]
    fn scales_are_ordered() {
        assert!(StudyConfig::tiny().households < StudyConfig::test_scale().households);
        assert!(StudyConfig::test_scale().households < StudyConfig::default_scale().households);
        assert!(StudyConfig::default_scale().households < StudyConfig::full_scale().households);
    }

    #[test]
    fn invalid_dense_window_rejected() {
        let mut cfg = StudyConfig::tiny();
        cfg.dense_range = DateRange::new(SimDate::ymd(2, 1), SimDate::ymd(2, 5));
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::DenseWindowNotSuffix { .. })
        ));
    }

    #[test]
    fn each_constraint_has_its_own_error() {
        let mut cfg = StudyConfig::tiny();
        cfg.households = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoHouseholds));

        let mut cfg = StudyConfig::tiny();
        cfg.prefix_lengths.clear();
        assert_eq!(cfg.validate(), Err(ConfigError::NoPrefixLengths));

        let mut cfg = StudyConfig::tiny();
        cfg.prefix_lengths.push(129);
        assert_eq!(cfg.validate(), Err(ConfigError::PrefixLengthTooLong(129)));

        let mut cfg = StudyConfig::tiny();
        cfg.threads = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroThreads));

        let mut cfg = StudyConfig::tiny();
        cfg.analysis_threads = Some(0);
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroAnalysisThreads));

        let mut cfg = StudyConfig::tiny();
        cfg.storage = StorageMode::Spill {
            dir: None,
            segment_rows: 0,
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroSegmentRows));

        let mut cfg = StudyConfig::tiny();
        cfg.storage = StorageMode::spill();
        cfg.disk_budget_bytes = Some(0);
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroDiskBudget));

        let mut cfg = StudyConfig::tiny();
        cfg.disk_budget_bytes = Some(1 << 20);
        assert_eq!(cfg.validate(), Err(ConfigError::DiskBudgetWithoutSpill));
        cfg.storage = StorageMode::spill();
        assert_eq!(cfg.validate(), Ok(()));

        let mut cfg = StudyConfig::tiny();
        cfg.sampling = SamplingPlan::Fixed { rate: 1.5 };
        assert_eq!(cfg.validate(), Err(ConfigError::InvalidSamplingRate(1.5)));
        cfg.sampling = SamplingPlan::Fixed { rate: 0.0 };
        assert_eq!(cfg.validate(), Err(ConfigError::InvalidSamplingRate(0.0)));
        cfg.sampling = SamplingPlan::Fixed { rate: f64::NAN };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::InvalidSamplingRate(_))
        ));
    }

    #[test]
    fn sampling_plan_is_validated_against_the_final_population() {
        // The paper's 0.1% over the tiny preset's ~960 users expects less
        // than one sampled user: rejected.
        let mut cfg = StudyConfig::tiny();
        cfg.sampling = SamplingPlan::Paper;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::SamplingTooSparse {
                rate: 0.001,
                population: cfg.approx_users(),
            })
        );
        // The same plan at default scale (~48k users) is fine.
        let mut cfg = StudyConfig::default_scale();
        cfg.sampling = SamplingPlan::Paper;
        cfg.validate().unwrap();

        // The builder resolves against the final population, so ordering
        // sampling() before households() cannot produce stale rates.
        let err = Study::builder()
            .sampling(SamplingPlan::Paper)
            .tiny()
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::SamplingTooSparse { .. }));
        let cfg = Study::builder()
            .sampling(SamplingPlan::Paper)
            .households(20_000)
            .build()
            .unwrap();
        assert_eq!(cfg.sampling.resolve(cfg.approx_users()), Samplers::paper());
    }

    #[test]
    fn sampling_plan_labels_and_resolution() {
        assert_eq!(SamplingPlan::Scaled.label(), "scaled");
        assert_eq!(SamplingPlan::Paper.label(), "paper");
        assert_eq!(SamplingPlan::Fixed { rate: 0.25 }.label(), "fixed:0.25");
        assert_eq!(
            SamplingPlan::Scaled.resolve(1_000),
            Samplers::scaled_for(1_000)
        );
        let fixed = SamplingPlan::Fixed { rate: 0.25 }.resolve(1_000);
        assert_eq!(fixed.request_rate, 0.25);
        assert_eq!(fixed.user_rate, 0.25);
        assert_eq!(fixed.ip_rate, 0.25);
        assert_eq!(fixed.prefix_rate, 0.25);
    }

    #[test]
    fn analysis_threads_inherits_threads_unless_set() {
        let cfg = StudyBuilder::new().threads(4).tiny().build().unwrap();
        assert_eq!(cfg.effective_analysis_threads(), 4);
        let cfg = StudyBuilder::new()
            .threads(4)
            .analysis_threads(8)
            .tiny()
            .build()
            .unwrap();
        assert_eq!(cfg.effective_analysis_threads(), 8);
    }

    #[test]
    fn errors_render_usefully() {
        let mut cfg = StudyConfig::tiny();
        cfg.dense_range = DateRange::new(SimDate::ymd(2, 1), SimDate::ymd(2, 5));
        let msg = cfg.validate().unwrap_err().to_string();
        assert!(msg.contains("suffix"), "{msg}");
        assert!(ConfigError::ZeroThreads.to_string().contains("at least 1"));
    }

    #[test]
    fn builder_overrides_compose_with_presets() {
        let cfg = StudyBuilder::new()
            .seed(99)
            .threads(4)
            .tiny()
            .build()
            .unwrap();
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.households, StudyConfig::tiny().households);

        let cfg = StudyBuilder::new().households(1_000).build().unwrap();
        assert_eq!(cfg.households, 1_000);
        assert_eq!(cfg.campaigns, 40);

        let cfg = StudyBuilder::new()
            .households(1_000)
            .campaigns(7)
            .build()
            .unwrap();
        assert_eq!(cfg.campaigns, 7);
    }

    #[test]
    fn builder_surfaces_validation_errors() {
        assert_eq!(StudyBuilder::new().households(0).build().unwrap_err(), {
            ConfigError::NoHouseholds
        });
        assert_eq!(
            StudyBuilder::new().threads(0).build().unwrap_err(),
            ConfigError::ZeroThreads
        );
    }
}
