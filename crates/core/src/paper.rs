//! The paper's reference values, keyed by the experiment statistics.
//!
//! Absolute numbers cannot be expected to match — the substrate is a
//! calibrated simulator, not Facebook's billion-user telemetry — so each
//! reference carries the paper's quoted value and the *shape criterion*
//! that must hold for the reproduction to count. The `repro` binary joins
//! these against measured statistics to produce EXPERIMENTS.md.

/// One paper-reported quantity.
#[derive(Debug, Clone, Copy)]
pub struct PaperRef {
    /// The stat key emitted by [`crate::experiments`].
    pub key: &'static str,
    /// The value the paper reports, as quoted text.
    pub paper: &'static str,
    /// The shape criterion the reproduction must satisfy.
    pub criterion: &'static str,
}

/// All reference values, in paper order.
pub fn references() -> &'static [PaperRef] {
    &[
        PaperRef {
            key: "fig1.user_share_mean",
            paper: "34–36% of users on IPv6 daily",
            criterion: "within ~0.28–0.44",
        },
        PaperRef {
            key: "fig1.request_share_mean",
            paper: "22–25% of requests over IPv6",
            criterion: "below user share; ~0.17–0.32",
        },
        PaperRef {
            key: "fig1.user_share_lockdown_delta",
            paper: "user share drops after mid-March",
            criterion: "negative",
        },
        PaperRef {
            key: "fig1.request_share_lockdown_delta",
            paper: "request share rises after mid-March",
            criterion: "positive",
        },
        PaperRef {
            key: "fig1.weekend_user_share_delta",
            paper: "user share dips slightly on weekends",
            criterion: "negative, small",
        },
        PaperRef {
            key: "tab1.top_ratio",
            paper: "Reliance Jio at 0.96",
            criterion: "top ASN ratio ≥ 0.9",
        },
        PaperRef {
            key: "tab1.rank10_ratio",
            paper: "rank-10 ASN at 0.82",
            criterion: "≥ 0.6",
        },
        PaperRef {
            key: "tab1.zero_v6_share",
            paper: "10.7% of ASNs have no IPv6 users",
            criterion: "nonzero minority",
        },
        PaperRef {
            key: "tab1.low_v6_share",
            paper: "28.3% of ASNs under 10% IPv6",
            criterion: "larger than zero-share",
        },
        PaperRef {
            key: "tab2.in_apr",
            paper: "India 83.8%",
            criterion: "top country, ≥ 0.7",
        },
        PaperRef {
            key: "tab2.de_delta",
            paper: "Germany +19.4pp Jan→Apr",
            criterion: "strongly positive",
        },
        PaperRef {
            key: "tab2.by_delta",
            paper: "Belarus +15.2pp",
            criterion: "positive",
        },
        PaperRef {
            key: "tab2.pr_delta",
            paper: "Puerto Rico −15.5pp",
            criterion: "negative",
        },
        PaperRef {
            key: "c44.transition_share",
            paper: "<0.01% of IPv6 users on 6to4/Teredo",
            criterion: "≈ 0",
        },
        PaperRef {
            key: "c44.mac_embedded_share",
            paper: "~2.5% of IPv6 users EUI-64",
            criterion: "~0.01–0.05",
        },
        PaperRef {
            key: "c44.iid_reuse_share",
            paper: "83% of multi-address EUI-64 users reuse one IID",
            criterion: "~0.7–0.95",
        },
        PaperRef {
            key: "c44.iid_entropy_bits",
            paper: "most clients likely use randomized IIDs",
            criterion: "near 4 bits/nybble",
        },
        PaperRef {
            key: "fig2.v6_day_single",
            paper: "32% of IPv6 users have one address/day",
            criterion: "v6 < v4 single share",
        },
        PaperRef {
            key: "fig2.v4_day_single",
            paper: "37% of IPv4 users have one address/day",
            criterion: "~0.25–0.55",
        },
        PaperRef {
            key: "fig2.v4_week_median",
            paper: "median 6 IPv4 addresses/week",
            criterion: "below v6 median",
        },
        PaperRef {
            key: "fig2.v6_week_median",
            paper: "median 9 IPv6 addresses/week",
            criterion: "above v4 median",
        },
        PaperRef {
            key: "fig3.v4_day_single",
            paper: "majority of AAs use 1 address (v4)",
            criterion: "> 0.5",
        },
        PaperRef {
            key: "fig3.v6_day_single",
            paper: "majority of AAs use 1 address (v6), more than v4",
            criterion: "≥ v4 share (inversion)",
        },
        PaperRef {
            key: "o51.v4_max",
            paper: "max 6.9K IPv4 addresses/user/week",
            criterion: "v4 max ≫ v6 max",
        },
        PaperRef {
            key: "o51.v6_to_v4_outlier_prevalence_ratio",
            paper: "IPv6 outlier prevalence 1/12 of IPv4",
            criterion: "well below 1",
        },
        PaperRef {
            key: "fig4.users_le1_at64",
            paper: "large jump in single-prefix share at /64",
            criterion: "≫ share at /72+",
        },
        PaperRef {
            key: "fig4.users_le1_at40",
            paper: "further aggregation below /48",
            criterion: "> share at /48",
        },
        PaperRef {
            key: "fig5.v6_newborn_share",
            paper: "84% of (user, v6) pairs first seen that day",
            criterion: "> v4 share (~0.66)",
        },
        PaperRef {
            key: "fig5.v4_gt7d_share",
            paper: "22% of v4 pairs older than a week",
            criterion: "≫ v6 share (1.2%)",
        },
        PaperRef {
            key: "fig5.v4_ge27d_share",
            paper: "10.7% of v4 pairs ≥ 28 days",
            criterion: "≫ v6 share (0.23%)",
        },
        PaperRef {
            key: "fig6.v6_new_at64",
            paper: "v6 /64 pairs much longer-lived than /128",
            criterion: "new-share well below /128's",
        },
        PaperRef {
            key: "fig6.v4_new_at32",
            paper: "IPv4 address lifespans most like v6 /64",
            criterion: "between v6 /128 and /48 shares",
        },
        PaperRef {
            key: "fig7.v4_day_single",
            paper: "a third of IPv4 addresses single-user/day",
            criterion: "~0.2–0.55",
        },
        PaperRef {
            key: "fig7.v6_day_single",
            paper: "95% of IPv6 addresses single-user/day",
            criterion: "≥ 0.85",
        },
        PaperRef {
            key: "fig7.v6_day_le2",
            paper: ">99% of IPv6 addresses ≤2 users",
            criterion: "≥ 0.95",
        },
        PaperRef {
            key: "fig7.v4_week_single",
            paper: "v4 single-user share falls to 23% over a week",
            criterion: "below day share",
        },
        PaperRef {
            key: "fig7.v6_day_gt3",
            paper: "<0.2% of v6 addresses >3 users vs 29.3% for v4",
            criterion: "orders below v4",
        },
        PaperRef {
            key: "fig8.v4_single_aa_day",
            paper: "73% of v4 AA-addresses host one AA",
            criterion: "> 0.5",
        },
        PaperRef {
            key: "fig8.v6_single_aa",
            paper: "~95% of v6 AA-addresses host one AA",
            criterion: "≥ v4 share",
        },
        PaperRef {
            key: "fig8.v6_isolated_day",
            paper: "63% of v6 AA-addresses have no benign users",
            criterion: "≫ v4 share (3.4%)",
        },
        PaperRef {
            key: "fig8.v4_gt10_benign_day",
            paper: "72.9% of v4 AA-addresses have >10 benign users",
            criterion: "large; ≫ v6",
        },
        PaperRef {
            key: "o61.v4_max_users",
            paper: "830K users on one IPv4 address",
            criterion: "v4 max ≫ v6 max (~12×)",
        },
        PaperRef {
            key: "o61.v6_heavy_top1_asn_share",
            paper: "96% of heavy v6 addresses in one ASN",
            criterion: "≥ 0.5",
        },
        PaperRef {
            key: "o61.v4_heavy_asns",
            paper: "1568 ASNs with heavy v4 addresses",
            criterion: "≫ v6 heavy ASN count",
        },
        PaperRef {
            key: "o61.sig_heavy_share",
            paper: "heavy v6 addresses carry the low-16-bit IID signature",
            criterion: "≈ 1, light share ≈ 0",
        },
        PaperRef {
            key: "o61.predictor_precision",
            paper: "signatures for heavy addresses are feasible",
            criterion: "precision and recall high",
        },
        PaperRef {
            key: "fig9.single_user_at128",
            paper: "95% of addresses single-user",
            criterion: "decreasing in shorter prefixes",
        },
        PaperRef {
            key: "fig9.single_user_at64",
            paper: "41% of /64s single-user",
            criterion: "well below /68 share (73%)",
        },
        PaperRef {
            key: "fig9.v4_best_match_len",
            paper: "IPv4 most similar to /48 overall",
            criterion: "a short prefix (≤ /56)",
        },
        PaperRef {
            key: "fig10.v4_aa_best_match_len",
            paper: "IPv4 AA-population most similar to /56",
            criterion: "around /56–/52",
        },
        PaperRef {
            key: "fig10.benign_le1_at64",
            paper: "19% of AA-/64s have ≤1 benign user",
            criterion: "below overall /64 single share",
        },
        PaperRef {
            key: "o62.max_users_p112",
            paper: "a /112 with 2.3M users; 39 /112s over 1M",
            criterion: "p112 max ≈ p64 max (gateway)",
        },
        PaperRef {
            key: "o62.heavy_p64_top4_share",
            paper: "top-4 ASNs hold 61% of heavy /64s",
            criterion: "concentrated (≥ 0.5)",
        },
        PaperRef {
            key: "fig11.p128_max_tpr",
            paper: "TPR at most 14.3% on full v6 addresses",
            criterion: "well below /64's max TPR",
        },
        PaperRef {
            key: "fig11.p64_max_tpr",
            paper: "21.2% TPR at 0% threshold on /64",
            criterion: "> /128 max TPR",
        },
        PaperRef {
            key: "fig11.IPv4_max_tpr",
            paper: "65.8% TPR at 0% threshold on IPv4",
            criterion: "well above /128 and /64; ≈ /56 (±35%)",
        },
        PaperRef {
            key: "fig11.IPv4_t0_fpr",
            paper: "27.1% FPR at 0% threshold on IPv4",
            criterion: "far above v6 FPRs",
        },
        PaperRef {
            key: "fig11.p64_tpr_at_fpr_1pct",
            paper: "at low FPR, v6 actioning beats IPv4",
            criterion: "≥ IPv4's TPR at 1% FPR",
        },
        PaperRef {
            key: "s72.exchange_v6_addr_half_life",
            paper: "v6 address intel degrades quickly",
            criterion: "≤ /64's half-life",
        },
        PaperRef {
            key: "s72.ratelimit_v4_over_v6",
            paper: "v4 needs liberal thresholds; v6 tight",
            criterion: "≫ 1",
        },
        PaperRef {
            key: "s72.ml_v4_on_v6_auc",
            paper: "models should treat protocols distinctly",
            criterion: "≤ v6-trained AUC on v6",
        },
        PaperRef {
            key: "apx.v6_diversity_delta",
            paper: "IP diversity slightly lower during the pandemic (A.3)",
            criterion: "small (|Δ| ≲ 1 address)",
        },
        PaperRef {
            key: "apx.max_lifespan_curve_delta",
            paper: "no life-span data point differs by more than 4% (A.5)",
            criterion: "≲ 0.1",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn references_are_unique_and_nonempty() {
        let refs = references();
        assert!(refs.len() > 50);
        let mut keys: Vec<&str> = refs.iter().map(|r| r.key).collect();
        keys.sort_unstable();
        let n = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), n, "duplicate reference keys");
        for r in refs {
            assert!(!r.paper.is_empty() && !r.criterion.is_empty());
        }
    }
}
