//! The incremental day-over-day engine (DESIGN.md §14).
//!
//! The paper's security application is day-*n* → day-*n+1* actioning,
//! which makes "append one day" the pipeline's steady-state operation —
//! yet the batch pipeline recomputes the whole timeline per run. This
//! module adds the extension path on top of three facts the rest of the
//! workspace guarantees:
//!
//! 1. **Per-day purity.** A shard's emission on a day is a pure function
//!    of `(config, day)` — the shard plan, samplers, and campaign
//!    placement are all anchored on the *base* `full_range`, never on
//!    `extend_days` — so simulating only the suffix days reproduces
//!    exactly the rows a full run emits there (the crate-private
//!    `driver::execute_days`).
//! 2. **Order stability.** Frozen stores order rows by timestamp with
//!    plan-order tie-breaks; days are timestamp-disjoint, so the old
//!    store's canonical rows followed by the suffix's canonical rows
//!    *are* the longer run's canonical order — the re-freeze's stable
//!    sort is a no-op pass over already-sorted input.
//! 3. **Order-isomorphism.** [`EntityTables`] depend only on the
//!    distinct raw-key *sets*, and dense ids are assigned in ascending
//!    raw-key order — so the union tables equal the longer run's tables
//!    bit-for-bit, and keys that survive an extension keep their
//!    relative order (which is what lets cached per-day structures and
//!    merged indexes stay valid).
//!
//! Together these give the engine's defining correctness bar: extending
//! by a day is **byte-identical** to a from-scratch run of the longer
//! range, at any thread count and either storage mode (pinned by
//! `tests/incremental.rs`).
//!
//! # Checkpoints (`--state-dir`)
//!
//! A state directory persists the engine's frozen day deltas so a later
//! process can extend without re-simulating:
//!
//! ```text
//! state-dir/
//!   manifest.json        config identity, covered extension, counters,
//!                        cached-pass list (written last = commit point)
//!   days/day<idx>/<family>.seg   one checkpoint segment per family per
//!                        day, rows in canonical frozen order (request,
//!                        user, ip, prefix<len>…, abuse; pair only for
//!                        days inside the sliding pair window)
//!   passes/<id>.md|.sum  rendered markdown section + console summary
//!                        of each default-registry pass
//! ```
//!
//! Day deltas are immutable, so a save skips segments that already
//! exist; pair segments are pruned as the window slides. On resume, only
//! the passes whose read windows cover the new days (per
//! [`windows::invalidated_by_extension`], the single source of truth)
//! are re-run — everything else is spliced from the cached sections,
//! byte-identical because the calendar-anchored windows see the same
//! records in the same order.

use std::fs;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use ipv6_study_analysis::windows;
use ipv6_study_behavior::abuse::AbuseSim;
use ipv6_study_behavior::population::Population;
use ipv6_study_netmodel::World;
use ipv6_study_obs::{IncrementalStat, Json};
use ipv6_study_telemetry::{
    read_checkpoint_segment, write_checkpoint_segment, ColumnSlice, DateRange, EntityTables,
    RequestStore, SpillStats, StudyDatasets,
};

use crate::config::{ConfigError, StudyConfig};
use crate::driver::{self, DriverOutput, RunMetrics};
use crate::experiments::{self, ExperimentOutput};
use crate::faults::{FaultReport, StudyError};
use crate::report;
use crate::study::{build_report, open_spill, DayCountsCache, Study};

/// A completed incremental run: the (possibly extended) study, the reuse
/// accounting, and the rendered documents with cached sections spliced
/// in.
#[derive(Debug)]
pub struct IncrementalRun {
    /// The study covering the requested (extended) range.
    pub study: Study,
    /// What was reused vs. computed (also recorded in the study's run
    /// report as `analysis.incremental`).
    pub stats: IncrementalStat,
    /// The full EXPERIMENTS.md content for the extended range.
    pub markdown: String,
    /// The console summary (one line per statistic).
    pub summary: String,
}

/// One pass's rendered output, as cached under `passes/` in a state dir.
struct PassSection {
    id: String,
    markdown: String,
    summary: String,
}

/// A parsed checkpoint manifest.
struct Checkpoint {
    /// The `extend_days` value the persisted deltas cover.
    covered_extend_days: u16,
    offered: u64,
    users_seen: u64,
    users_sampled: u64,
    /// Ids of the passes with cached sections.
    passes: Vec<String>,
}

/// Wraps a filesystem problem in the state dir as a config/storage
/// error (the checkpoint is configuration-supplied storage).
fn storage_err(what: &str, path: &Path, e: &std::io::Error) -> StudyError {
    StudyError::Config(ConfigError::Storage(format!(
        "state dir: {what} {} failed: {e}",
        path.display()
    )))
}

/// A state-dir consistency problem (bad manifest, config mismatch).
fn storage_msg(msg: String) -> StudyError {
    StudyError::Config(ConfigError::Storage(msg))
}

/// The filename stem for a pass's cached sections. Pass ids may contain
/// path separators (e.g. `T2/F12`); flatten them so every cache file
/// lives directly under `passes/`.
fn pass_file_stem(id: &str) -> String {
    id.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Copies a frozen column slice into a mutable row store, preserving
/// order.
fn append_slice(store: &mut RequestStore, rows: ColumnSlice<'_>) {
    for rec in rows.records() {
        store.push(rec);
    }
}

/// Extends `study` by `n` simulated days: runs the driver over only the
/// suffix days, then re-freezes old + suffix rows against the union
/// intern tables. See the module docs for why the result is
/// byte-identical to a from-scratch run of the longer range.
pub(crate) fn extend(study: Study, n: u16) -> Result<(Study, IncrementalStat), StudyError> {
    let t0 = Instant::now();
    let old_days = u64::from(study.config.sim_range().num_days());
    if n == 0 {
        let mut study = study;
        let stats = IncrementalStat {
            days_reused: old_days,
            days_computed: 0,
            extend_wall: t0.elapsed(),
        };
        study.report.incremental = stats;
        return Ok((study, stats));
    }
    let mut config = study.config.clone();
    config.extend_days = config.extend_days.saturating_add(n);
    config.validate()?;
    let old_end = study.config.sim_end();
    let suffix = DateRange::new(old_end + 1, config.sim_end());

    // Deterministic rebuild of the simulation inputs against the study's
    // (already ablated) world — identical to what the original run used,
    // because all of them derive from base-config fields.
    let pop = Population::new(&study.world, config.seed ^ 0x504F_5055, config.households);
    let samplers = config.sampling.resolve(pop.approx_users());
    let abuse_window = DateRange::new(config.full_range.start, config.full_range.end);
    let abuse = AbuseSim::new(
        &study.world,
        config.seed ^ 0x4142_5553,
        config.campaigns,
        config.households,
        abuse_window,
    )
    .with_detect_scale(config.ablation.detect_scale());

    let spill = open_spill(&config)?;
    let out = driver::execute_days(
        &config,
        &study.world,
        &pop,
        &abuse,
        &samplers,
        spill.as_ref(),
        suffix,
    )?;
    drop(spill);

    // Union merge: old canonical rows, then suffix canonical rows. Days
    // are timestamp-disjoint and every suffix day is later, so the
    // concatenation is already in canonical order and the stable
    // re-sort inside freeze is a verification pass, not a reorder.
    let t_merge = Instant::now();
    let mut datasets = StudyDatasets::with_prefix_lengths(samplers, &config.prefix_lengths);
    append_slice(
        &mut datasets.request_sample,
        study.datasets.request_sample.all(),
    );
    append_slice(
        &mut datasets.request_sample,
        out.datasets.request_sample.all(),
    );
    append_slice(&mut datasets.user_sample, study.datasets.user_sample.all());
    append_slice(&mut datasets.user_sample, out.datasets.user_sample.all());
    append_slice(&mut datasets.ip_sample, study.datasets.ip_sample.all());
    append_slice(&mut datasets.ip_sample, out.datasets.ip_sample.all());
    for &len in &config.prefix_lengths {
        let store = datasets
            .prefix_samples
            .get_mut(&len)
            .expect("with_prefix_lengths creates every configured length");
        append_slice(store, study.datasets.prefix_sample(len).all());
        append_slice(store, out.datasets.prefix_sample(len).all());
    }
    datasets.offered = study.datasets.offered + out.datasets.offered;
    let mut abuse_store = RequestStore::new();
    append_slice(&mut abuse_store, study.abuse_store.all());
    append_slice(&mut abuse_store, out.abuse_store.all());
    // The pair store slides: keep the old window's days that remain
    // inside the new last-four-days window, then append the suffix rows
    // (the suffix run routed them against the *new* window already).
    let pair_win = windows::pair_window(config.sim_end());
    let mut pair_store = RequestStore::new();
    if pair_win.start <= old_end {
        append_slice(
            &mut pair_store,
            study
                .pair_store
                .in_range(DateRange::new(pair_win.start, old_end)),
        );
    }
    append_slice(&mut pair_store, out.pair_store.all());
    let merge_wall = t_merge.elapsed();

    // Re-freeze against the union tables. The distinct-key sets equal
    // the longer run's, so these tables — and therefore every dense id —
    // are bit-identical to a from-scratch build.
    let t_sort = Instant::now();
    let tables = Arc::new(EntityTables::build(
        datasets
            .iter_unordered()
            .chain(abuse_store.iter_unordered())
            .chain(pair_store.iter_unordered()),
    ));
    let datasets = datasets.freeze_with(tables.clone());
    let abuse_store = abuse_store.freeze_with(tables.clone());
    let pair_store = pair_store.freeze_with(tables);
    let sort_wall = t_sort.elapsed();

    // Carry the per-day trie cache for days still inside the sliding
    // pair window; DayCounts reads raw keys only, so re-encoding does
    // not invalidate them.
    let carried = study.take_day_counts(pair_win);

    let mut metrics = out.metrics;
    metrics.merge_wall += merge_wall;
    metrics.sort_wall += sort_wall;
    metrics.total_wall = t0.elapsed();
    let union_out = DriverOutput {
        datasets,
        abuse_store,
        pair_store,
        metrics,
        faults: out.faults,
        spill_stats: out.spill_stats,
        users_seen: study.users_seen + out.users_seen,
        users_sampled: study.users_sampled + out.users_sampled,
    };
    let mut report = build_report(&config, study.approx_users, &union_out);
    let stats = IncrementalStat {
        days_reused: old_days,
        days_computed: u64::from(n),
        extend_wall: t0.elapsed(),
    };
    report.incremental = stats;

    let DriverOutput {
        datasets,
        abuse_store,
        pair_store,
        metrics,
        faults,
        spill_stats: _,
        users_seen,
        users_sampled,
    } = union_out;
    let extended = Study {
        config,
        world: study.world,
        datasets,
        abuse_store,
        pair_store,
        labels: study.labels,
        approx_users: study.approx_users,
        users_seen,
        users_sampled,
        metrics,
        faults,
        report,
        day_counts: DayCountsCache::default(),
    };
    extended.seed_day_counts(carried);
    Ok((extended, stats))
}

/// The family names checkpointed per day, in a fixed order.
fn family_names(config: &StudyConfig) -> Vec<String> {
    let mut names = vec!["request".to_string(), "user".to_string(), "ip".to_string()];
    for &len in &config.prefix_lengths {
        names.push(format!("prefix{len}"));
    }
    names.push("abuse".to_string());
    names
}

/// The config-identity echo both written to and checked against the
/// manifest. Runtime knobs that cannot change the emitted datasets —
/// threads, analysis threads, storage mode, instrumentation — are
/// deliberately excluded: a checkpoint written by a spill run resumes
/// fine in memory mode and vice versa.
fn identity_json(config: &StudyConfig) -> Json {
    Json::obj()
        .with("seed", Json::UInt(config.seed))
        .with("households", Json::UInt(config.households))
        .with("campaigns", Json::UInt(u64::from(config.campaigns)))
        .with(
            "full_start",
            Json::UInt(u64::from(config.full_range.start.index())),
        )
        .with(
            "full_end",
            Json::UInt(u64::from(config.full_range.end.index())),
        )
        .with(
            "dense_start",
            Json::UInt(u64::from(config.dense_range.start.index())),
        )
        .with(
            "dense_end",
            Json::UInt(u64::from(config.dense_range.end.index())),
        )
        .with(
            "prefix_lengths",
            Json::Arr(
                config
                    .prefix_lengths
                    .iter()
                    .map(|&l| Json::UInt(u64::from(l)))
                    .collect(),
            ),
        )
        .with("sampling", Json::str(config.sampling.label()))
        .with("ablation", Json::str(format!("{:?}", config.ablation)))
}

/// Writes (or refreshes) the checkpoint for `study` in `dir`. Day
/// deltas are immutable, so existing segments are kept as-is; pair
/// segments outside the sliding window are pruned; the manifest is
/// written last as the commit point.
fn save_checkpoint(study: &Study, sections: &[PassSection], dir: &Path) -> Result<(), StudyError> {
    let days_dir = dir.join("days");
    fs::create_dir_all(&days_dir).map_err(|e| storage_err("creating", &days_dir, &e))?;
    let pair_win = windows::pair_window(study.config.sim_end());
    let families = family_names(&study.config);
    for day in study.config.sim_range().days() {
        let day_dir = days_dir.join(format!("day{:03}", day.index()));
        fs::create_dir_all(&day_dir).map_err(|e| storage_err("creating", &day_dir, &e))?;
        for name in &families {
            let path = day_dir.join(format!("{name}.seg"));
            if path.exists() {
                continue;
            }
            let rows = match name.as_str() {
                "request" => study.datasets().request_sample.on_day(day),
                "user" => study.datasets().user_sample.on_day(day),
                "ip" => study.datasets().ip_sample.on_day(day),
                "abuse" => study.abuse_store().on_day(day),
                prefix => {
                    let len: u8 = prefix
                        .strip_prefix("prefix")
                        .and_then(|l| l.parse().ok())
                        .expect("family_names emits only known families");
                    study.datasets().prefix_sample(len).on_day(day)
                }
            };
            let recs: Vec<_> = rows.records().collect();
            write_checkpoint_segment(&path, &recs).map_err(StudyError::Spill)?;
        }
        let pair_path = day_dir.join("pair.seg");
        if pair_win.contains(day) {
            if !pair_path.exists() {
                let recs: Vec<_> = study.pair_store().on_day(day).records().collect();
                write_checkpoint_segment(&pair_path, &recs).map_err(StudyError::Spill)?;
            }
        } else if pair_path.exists() {
            fs::remove_file(&pair_path).map_err(|e| storage_err("pruning", &pair_path, &e))?;
        }
    }
    let pass_dir = dir.join("passes");
    fs::create_dir_all(&pass_dir).map_err(|e| storage_err("creating", &pass_dir, &e))?;
    for s in sections {
        let stem = pass_file_stem(&s.id);
        let md = pass_dir.join(format!("{stem}.md"));
        fs::write(&md, &s.markdown).map_err(|e| storage_err("writing", &md, &e))?;
        let sum = pass_dir.join(format!("{stem}.sum"));
        fs::write(&sum, &s.summary).map_err(|e| storage_err("writing", &sum, &e))?;
    }
    let manifest = Json::obj()
        .with("checkpoint_schema", Json::UInt(1))
        .with("identity", identity_json(&study.config))
        .with(
            "covered_extend_days",
            Json::UInt(u64::from(study.config.extend_days)),
        )
        .with(
            "counters",
            Json::obj()
                .with("offered", Json::UInt(study.datasets().offered))
                .with("users_seen", Json::UInt(study.users_seen))
                .with("users_sampled", Json::UInt(study.users_sampled)),
        )
        .with(
            "passes",
            Json::Arr(sections.iter().map(|s| Json::str(&*s.id)).collect()),
        );
    let path = dir.join("manifest.json");
    fs::write(&path, manifest.render_pretty()).map_err(|e| storage_err("writing", &path, &e))?;
    Ok(())
}

/// Reads one `u64` field out of a manifest object.
fn manifest_u64(obj: &Json, key: &str) -> Result<u64, StudyError> {
    match obj.get(key) {
        Some(Json::UInt(v)) => Ok(*v),
        _ => Err(storage_msg(format!(
            "state dir manifest is missing the `{key}` field"
        ))),
    }
}

/// Loads and validates the manifest, or `Ok(None)` for a fresh dir.
fn load_manifest(dir: &Path, config: &StudyConfig) -> Result<Option<Checkpoint>, StudyError> {
    let path = dir.join("manifest.json");
    if !path.exists() {
        return Ok(None);
    }
    let text = fs::read_to_string(&path).map_err(|e| storage_err("reading", &path, &e))?;
    let json = Json::parse(&text)
        .map_err(|e| storage_msg(format!("state dir manifest is not valid JSON: {e}")))?;
    let identity = json
        .get("identity")
        .ok_or_else(|| storage_msg("state dir manifest has no identity echo".to_string()))?;
    if *identity != identity_json(config) {
        return Err(storage_msg(
            "state dir was produced by a different configuration (seed, scale, windows, \
             sampling, or ablation differ); refusing to resume — use a fresh --state-dir"
                .to_string(),
        ));
    }
    let covered = manifest_u64(&json, "covered_extend_days")?;
    let covered_extend_days = u16::try_from(covered)
        .map_err(|_| storage_msg(format!("covered_extend_days {covered} is out of range")))?;
    let counters = json
        .get("counters")
        .ok_or_else(|| storage_msg("state dir manifest has no counters".to_string()))?;
    let passes = match json.get("passes") {
        Some(Json::Arr(items)) => items
            .iter()
            .filter_map(|v| match v {
                Json::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    };
    Ok(Some(Checkpoint {
        covered_extend_days,
        offered: manifest_u64(counters, "offered")?,
        users_seen: manifest_u64(counters, "users_seen")?,
        users_sampled: manifest_u64(counters, "users_sampled")?,
        passes,
    }))
}

/// Reconstructs a frozen [`Study`] from persisted day deltas — no
/// simulation. The per-day segments hold rows in canonical frozen
/// order, days are timestamp-disjoint, and the intern tables are a pure
/// function of the key sets, so the rebuilt stores are bit-identical to
/// the ones the original run froze.
fn rebuild_study(config: StudyConfig, cp: &Checkpoint, dir: &Path) -> Result<Study, StudyError> {
    config.validate()?;
    let mut world = World::sized(config.seed, config.households);
    config.ablation.apply_to_world(&mut world);
    let pop = Population::new(&world, config.seed ^ 0x504F_5055, config.households);
    let approx_users = pop.approx_users();
    let samplers = config.sampling.resolve(approx_users);
    let abuse_window = DateRange::new(config.full_range.start, config.full_range.end);
    let labels = AbuseSim::new(
        &world,
        config.seed ^ 0x4142_5553,
        config.campaigns,
        config.households,
        abuse_window,
    )
    .with_detect_scale(config.ablation.detect_scale())
    .labels();

    let mut datasets = StudyDatasets::with_prefix_lengths(samplers, &config.prefix_lengths);
    let mut abuse_store = RequestStore::new();
    let mut pair_store = RequestStore::new();
    let families = family_names(&config);
    for day in config.sim_range().days() {
        let day_dir = dir.join("days").join(format!("day{:03}", day.index()));
        for name in &families {
            let path = day_dir.join(format!("{name}.seg"));
            let rows = read_checkpoint_segment(&path).map_err(StudyError::Spill)?;
            let store = match name.as_str() {
                "request" => &mut datasets.request_sample,
                "user" => &mut datasets.user_sample,
                "ip" => &mut datasets.ip_sample,
                "abuse" => &mut abuse_store,
                prefix => {
                    let len: u8 = prefix
                        .strip_prefix("prefix")
                        .and_then(|l| l.parse().ok())
                        .expect("family_names emits only known families");
                    datasets
                        .prefix_samples
                        .get_mut(&len)
                        .expect("with_prefix_lengths creates every configured length")
                }
            };
            for rec in rows {
                store.push(rec);
            }
        }
        let pair_path = day_dir.join("pair.seg");
        if pair_path.exists() {
            for rec in read_checkpoint_segment(&pair_path).map_err(StudyError::Spill)? {
                pair_store.push(rec);
            }
        }
    }
    datasets.offered = cp.offered;

    let tables = Arc::new(EntityTables::build(
        datasets
            .iter_unordered()
            .chain(abuse_store.iter_unordered())
            .chain(pair_store.iter_unordered()),
    ));
    let datasets = datasets.freeze_with(tables.clone());
    let abuse_store = abuse_store.freeze_with(tables.clone());
    let pair_store = pair_store.freeze_with(tables);

    let metrics = RunMetrics {
        threads: config.threads,
        shards: Vec::new(),
        plan_wall: Default::default(),
        sim_wall: Default::default(),
        merge_wall: Default::default(),
        sort_wall: Default::default(),
        total_wall: Default::default(),
        peak_store_bytes: 0,
    };
    let faults = FaultReport {
        policy: config.failure_policy,
        failures: Vec::new(),
        io_retries: 0,
        checksum_failures: 0,
    };
    let out = DriverOutput {
        datasets,
        abuse_store,
        pair_store,
        metrics,
        faults,
        spill_stats: SpillStats::default(),
        users_seen: cp.users_seen,
        users_sampled: cp.users_sampled,
    };
    let report = build_report(&config, approx_users, &out);
    let DriverOutput {
        datasets,
        abuse_store,
        pair_store,
        metrics,
        faults,
        spill_stats: _,
        users_seen,
        users_sampled,
    } = out;
    Ok(Study {
        config,
        world,
        datasets,
        abuse_store,
        pair_store,
        labels,
        approx_users,
        users_seen,
        users_sampled,
        metrics,
        faults,
        report,
        day_counts: DayCountsCache::default(),
    })
}

/// Runs the requested config against a state directory: a cold dir gets
/// a full batch run (then a checkpoint); a warm dir is extended — only
/// the not-yet-covered suffix days are simulated and only the passes
/// whose windows cover them are re-run, everything else spliced from
/// the cached sections. The rendered documents are byte-identical to a
/// from-scratch run of the same config either way.
pub fn run(config: StudyConfig, state_dir: &Path) -> Result<IncrementalRun, StudyError> {
    let t0 = Instant::now();
    config.validate()?;
    let Some(cp) = load_manifest(state_dir, &config)? else {
        // Cold start: batch-run the requested range, checkpoint it all.
        let mut study = Study::run(config)?;
        let results = experiments::run_all(&mut study);
        let sections = render_sections(&results);
        let markdown = report::render_markdown(&results);
        let summary = report::render_summary(&results);
        save_checkpoint(&study, &sections, state_dir)?;
        let stats = study.report.incremental;
        return Ok(IncrementalRun {
            study,
            stats,
            markdown,
            summary,
        });
    };

    if cp.covered_extend_days > config.extend_days {
        return Err(storage_msg(format!(
            "state dir already covers extend_days {} but the run requests only {}; \
             incremental runs only move forward",
            cp.covered_extend_days, config.extend_days
        )));
    }
    let n = config.extend_days - cp.covered_extend_days;
    let mut covered_config = config;
    covered_config.extend_days = cp.covered_extend_days;
    let base = rebuild_study(covered_config, &cp, state_dir)?;
    let old_range = base.config.sim_range();
    let (mut study, mut stats) = extend(base, n)?;
    let new_range = study.config.sim_range();

    // Re-run exactly the passes the extension invalidates (plus any the
    // checkpoint never cached); splice the rest from the cached
    // sections in registry order.
    let to_run: Vec<&'static str> = experiments::experiment_ids()
        .filter(|&id| {
            (n > 0 && windows::invalidated_by_extension(id, old_range, new_range))
                || !cp.passes.iter().any(|p| p.as_str() == id)
        })
        .collect();
    let workers = study.config.effective_analysis_threads();
    let (recomputed, _windows_built) = experiments::run_selected(&study, &to_run, workers);

    let mut markdown = report::render_header();
    let mut summary = String::new();
    let mut sections = Vec::with_capacity(experiments::experiment_ids().count());
    for id in experiments::experiment_ids() {
        let (md, sum) = match recomputed.iter().find(|(rid, _)| *rid == id) {
            Some((_, out)) => (
                report::render_pass_section(id, out),
                report::render_summary_section(id, out),
            ),
            None => {
                let stem = pass_file_stem(id);
                let md_path = state_dir.join("passes").join(format!("{stem}.md"));
                let sum_path = state_dir.join("passes").join(format!("{stem}.sum"));
                (
                    fs::read_to_string(&md_path)
                        .map_err(|e| storage_err("reading", &md_path, &e))?,
                    fs::read_to_string(&sum_path)
                        .map_err(|e| storage_err("reading", &sum_path, &e))?,
                )
            }
        };
        markdown.push_str(&md);
        summary.push_str(&sum);
        sections.push(PassSection {
            id: id.to_string(),
            markdown: md,
            summary: sum,
        });
    }

    stats.extend_wall = t0.elapsed();
    study.report.incremental = stats;
    save_checkpoint(&study, &sections, state_dir)?;
    Ok(IncrementalRun {
        study,
        stats,
        markdown,
        summary,
    })
}

/// Renders every pass's cached section pair from fresh results.
fn render_sections(results: &[(&'static str, ExperimentOutput)]) -> Vec<PassSection> {
    results
        .iter()
        .map(|(id, out)| PassSection {
            id: (*id).to_string(),
            markdown: report::render_pass_section(id, out),
            summary: report::render_summary_section(id, out),
        })
        .collect()
}
