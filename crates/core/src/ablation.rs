//! Ablation studies: turn off one mechanism and watch which figures break.
//!
//! DESIGN.md attributes each figure's shape to a specific assignment or
//! behavior mechanism. Ablations make those attributions testable:
//!
//! | ablation          | mechanism removed                 | expected effect |
//! |-------------------|-----------------------------------|-----------------|
//! | `FrozenIids`      | RFC 4941 privacy rotation         | v6 life spans stretch toward v4's; addresses per user collapse (Figs 2, 5) |
//! | `NoCgn`           | carrier-grade NAT on mobile IPv4  | v4 users-per-address collapses toward 1; v4 addresses per user shrink (Figs 2, 7) |
//! | `SlowDetection`   | fast abusive-account takedown     | abusive life spans stretch; day-over-day actioning recall rises (Fig 11) |

use ipv6_study_netmodel::{V4Conf, V4Mode, V6Mode, World};

/// A mechanism toggle applied to a built world / study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ablation {
    /// The calibrated model as-is.
    #[default]
    Baseline,
    /// Disable RFC 4941 privacy rotation: every device keeps one stable
    /// IID (as if the world had kept EUI-64-era addressing).
    FrozenIids,
    /// Disable CGN: mobile carriers hand out one sticky public IPv4
    /// address per subscriber household, like home NAT.
    NoCgn,
    /// Halve the platform's per-day abusive-account detection probability.
    SlowDetection,
}

impl Ablation {
    /// All ablations, baseline first.
    pub const ALL: [Ablation; 4] = [
        Ablation::Baseline,
        Ablation::FrozenIids,
        Ablation::NoCgn,
        Ablation::SlowDetection,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Ablation::Baseline => "baseline",
            Ablation::FrozenIids => "frozen-iids",
            Ablation::NoCgn => "no-cgn",
            Ablation::SlowDetection => "slow-detection",
        }
    }

    /// Rewrites the world's assignment policies for this ablation.
    pub fn apply_to_world(self, world: &mut World) {
        match self {
            Ablation::Baseline | Ablation::SlowDetection => {}
            Ablation::FrozenIids => {
                for net in world.networks_mut() {
                    if let Some(v6) = net.v6.as_mut() {
                        if matches!(
                            v6.mode,
                            V6Mode::ResidentialPd
                                | V6Mode::MobilePerDevice
                                | V6Mode::MobileSector { .. }
                        ) {
                            v6.iid_rotations_per_day = 0.0;
                        }
                    }
                }
            }
            Ablation::NoCgn => {
                for net in world.networks_mut() {
                    if net.v4.mode == V4Mode::Cgn {
                        let pool = net.v4.pool;
                        let size = net.v4.pool_size.max(1024);
                        net.v4 = V4Conf::home(pool, size.min(60_000), 35.0);
                    }
                }
            }
        }
    }

    /// The detection-probability multiplier for the abuse simulation.
    pub fn detect_scale(self) -> f64 {
        match self {
            Ablation::SlowDetection => 0.4,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;
    use crate::study::Study;

    fn cfg(ablation: Ablation) -> StudyConfig {
        let mut cfg = StudyConfig::tiny();
        cfg.ablation = ablation;
        cfg
    }

    #[test]
    fn frozen_iids_stretch_v6_lifespans_and_cut_address_counts() {
        let base = Study::run(cfg(Ablation::Baseline)).unwrap();
        let frozen = Study::run(cfg(Ablation::FrozenIids)).unwrap();
        let base_ctx = crate::experiments::AnalysisCtx::new(&base);
        let frozen_ctx = crate::experiments::AnalysisCtx::new(&frozen);
        let b = crate::experiments::fig5_lifespans(&base_ctx);
        let f = crate::experiments::fig5_lifespans(&frozen_ctx);
        let b_new = b.get_stat("fig5.v6_newborn_share").unwrap();
        let f_new = f.get_stat("fig5.v6_newborn_share").unwrap();
        assert!(
            f_new < b_new - 0.2,
            "without rotation, v6 pairs age: newborn {f_new} vs baseline {b_new}"
        );
        let b2 = crate::experiments::fig2_addrs_per_user(&base_ctx);
        let f2 = crate::experiments::fig2_addrs_per_user(&frozen_ctx);
        assert!(
            f2.get_stat("fig2.v6_week_median").unwrap()
                < b2.get_stat("fig2.v6_week_median").unwrap(),
            "without rotation, users hold fewer weekly v6 addresses"
        );
    }

    #[test]
    fn no_cgn_collapses_v4_sharing() {
        let base = Study::run(cfg(Ablation::Baseline)).unwrap();
        let nocgn = Study::run(cfg(Ablation::NoCgn)).unwrap();
        let b = crate::experiments::fig7_users_per_ip(&crate::experiments::AnalysisCtx::new(&base));
        let n =
            crate::experiments::fig7_users_per_ip(&crate::experiments::AnalysisCtx::new(&nocgn));
        assert!(
            n.get_stat("fig7.v4_day_gt3").unwrap() < b.get_stat("fig7.v4_day_gt3").unwrap(),
            "without CGN, heavily shared v4 addresses thin out"
        );
    }

    #[test]
    fn slow_detection_stretches_abusive_lifetimes() {
        let base = Study::run(cfg(Ablation::Baseline)).unwrap();
        let slow = Study::run(cfg(Ablation::SlowDetection)).unwrap();
        let b = base.labels.detected_within(0);
        let s = slow.labels.detected_within(0);
        assert!(
            s < b - 0.15,
            "slower detection catches fewer accounts on day one: {s} vs {b}"
        );
    }
}
