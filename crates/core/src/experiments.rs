//! The experiment registry: one function per table/figure in the paper.
//!
//! Every function takes an [`AnalysisCtx`] — a completed [`Study`] plus the
//! shared per-window [`DatasetIndex`]es built once for all passes — and
//! returns an [`ExperimentOutput`] — figures (plottable series), tables, and
//! named scalar statistics. The scalar statistics are the quantities the
//! paper quotes in prose (e.g. "95% of IPv6 addresses had a single user");
//! the `repro` binary compares them against [`crate::paper`]'s reference
//! values to build EXPERIMENTS.md.
//!
//! [`run_all`] executes the registry on a deterministic worker pool (the
//! analysis mirror of [`crate::driver`]'s shard pool): workers claim passes
//! from a shared cursor, results land in per-pass slots, and outputs merge
//! in registry order — so the rendered figures, stats, and run report are
//! byte-identical at any `analysis_threads` count.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use ipv6_study_analysis::characterize::{
    asn_low_v6_shares, asn_ratio_table, client_patterns, country_ratio_table, prevalence_series,
};
use ipv6_study_analysis::ip_centric::{
    abuse_per_ip, abuse_per_prefix, users_per_ip, users_per_prefix, users_per_v4_addr,
};
use ipv6_study_analysis::outliers::{
    heavy_ip_asn_concentration, heavy_prefix_asn_concentration, outlier_user_prevalence_ratio,
    signature_predictability, tail_stats,
};
use ipv6_study_analysis::similarity::most_similar;
use ipv6_study_analysis::user_centric::{
    address_lifespans, addrs_per_user, prefix_lifespans, prefixes_per_user,
};
use ipv6_study_analysis::windows;
use ipv6_study_analysis::{CdfSeries, DatasetIndex, FigureReport, IndexMode, TableReport};
use ipv6_study_obs::timer::PhaseStat;
use ipv6_study_obs::{ActioningStat, SweepStat};
use ipv6_study_secapp::actioning::{
    actioning_roc_between, operating_points, DayCounts, Granularity,
};
use ipv6_study_secapp::blocklist::{evaluate_over_days, Blocklist};
use ipv6_study_secapp::mlfeatures::{training_set, LogisticModel};
use ipv6_study_secapp::ratelimit::recommend_threshold;
use ipv6_study_secapp::signatures::HeavyAddressPredictor;
use ipv6_study_secapp::threat_exchange::{half_life, value_decay};
use ipv6_study_stats::Ecdf;
use ipv6_study_telemetry::kernels::{mask_from, scratch_reset};
use ipv6_study_telemetry::time::{focus_day_ip, focus_day_user, focus_week};
use ipv6_study_telemetry::{ColumnSlice, SimDate, UserId};

use crate::study::Study;

/// The shared, immutable input of every experiment: the study plus the
/// [`DatasetIndex`]es of the windows most passes group over, built lazily
/// and shared so parallel passes re-use them instead of re-grouping per
/// pass.
///
/// The shared windows cover the focus day/week of the user and IP
/// samples, the 28-day lifespan lookback, and the abuse store's focus
/// week; passes with one-off windows build them through
/// [`AnalysisCtx::index`] (which honors the configured [`IndexMode`]).
///
/// Each shared window lives in a [`OnceLock`] and is built on first
/// access: a full [`run_all`] forces all six up front (so the engine's
/// `index` phase wall still means what it always meant), while the
/// incremental engine's [`run_selected`] re-run of a few invalidated
/// passes only pays for the windows those passes actually touch — this
/// is what "no re-indexing of prior days" means in practice, since the
/// anchored windows' outputs are carried forward instead of rebuilt.
pub struct AnalysisCtx<'a> {
    /// The completed study this analysis reads.
    pub study: &'a Study,
    mode: IndexMode,
    user_week: OnceLock<DatasetIndex>,
    user_day: OnceLock<DatasetIndex>,
    user_lookback: OnceLock<DatasetIndex>,
    ip_day: OnceLock<DatasetIndex>,
    ip_week: OnceLock<DatasetIndex>,
    abuse_week: OnceLock<DatasetIndex>,
}

impl<'a> AnalysisCtx<'a> {
    /// Wraps a study with the production grouping mode.
    pub fn new(study: &'a Study) -> Self {
        Self::with_mode(study, IndexMode::Sorted)
    }

    /// Wraps a study with an explicit grouping mode (the naive path
    /// exists for the equivalence suite). Windows build on first access.
    pub fn with_mode(study: &'a Study, mode: IndexMode) -> Self {
        Self {
            study,
            mode,
            user_week: OnceLock::new(),
            user_day: OnceLock::new(),
            user_lookback: OnceLock::new(),
            ip_day: OnceLock::new(),
            ip_week: OnceLock::new(),
            abuse_week: OnceLock::new(),
        }
    }

    /// The user sample over the Apr 13–19 focus week.
    pub fn user_week(&self) -> &DatasetIndex {
        self.user_week
            .get_or_init(|| self.index(self.study.datasets.user_sample.in_range(focus_week())))
    }

    /// The user sample on the Apr 19 focus day.
    pub fn user_day(&self) -> &DatasetIndex {
        self.user_day
            .get_or_init(|| self.index(self.study.datasets.user_sample.on_day(focus_day_user())))
    }

    /// The user sample over the 28-day lifespan lookback behind Apr 19.
    pub fn user_lookback(&self) -> &DatasetIndex {
        self.user_lookback.get_or_init(|| {
            let lookback = windows::lookback_window(focus_day_user());
            self.index(self.study.datasets.user_sample.in_range(lookback))
        })
    }

    /// The IP sample on the Apr 13 focus day.
    pub fn ip_day(&self) -> &DatasetIndex {
        self.ip_day
            .get_or_init(|| self.index(self.study.datasets.ip_sample.on_day(focus_day_ip())))
    }

    /// The IP sample over the focus week.
    pub fn ip_week(&self) -> &DatasetIndex {
        self.ip_week
            .get_or_init(|| self.index(self.study.datasets.ip_sample.in_range(focus_week())))
    }

    /// The abuse stream over the focus week.
    pub fn abuse_week(&self) -> &DatasetIndex {
        self.abuse_week
            .get_or_init(|| self.index(self.study.abuse_store.in_range(focus_week())))
    }

    /// Forces every shared window, so a full registry run pays the whole
    /// index cost inside the engine's `index` phase (not attributed to
    /// whichever pass happens to touch a window first).
    pub fn build_all(&self) {
        self.user_week();
        self.user_day();
        self.user_lookback();
        self.ip_day();
        self.ip_week();
        self.abuse_week();
    }

    /// Indexes a one-off window with this context's grouping mode.
    pub fn index(&self, records: ColumnSlice<'_>) -> DatasetIndex {
        DatasetIndex::with_mode(records, self.mode)
    }

    fn built(&self) -> impl Iterator<Item = &DatasetIndex> {
        [
            self.user_week.get(),
            self.user_day.get(),
            self.user_lookback.get(),
            self.ip_day.get(),
            self.ip_week.get(),
            self.abuse_week.get(),
        ]
        .into_iter()
        .flatten()
    }

    /// How many of the six shared windows have been built — the
    /// incremental suite asserts a selected re-run builds only what its
    /// passes read.
    pub fn windows_built(&self) -> usize {
        self.built().count()
    }

    /// Total heap bytes across the built shared windows (reported as
    /// the `analysis.index_bytes` gauge when instrumented).
    fn index_bytes(&self) -> usize {
        self.built().map(DatasetIndex::bytes).sum()
    }

    /// Total records across the built shared windows — the input
    /// cardinality of the engine's index phase, reported as
    /// `analysis.index_records` so the CI throughput floors can derive
    /// an index-build rate.
    fn index_records(&self) -> u64 {
        self.built().map(|i| i.len() as u64).sum()
    }
}

/// The output of one experiment.
#[derive(Debug, Default)]
pub struct ExperimentOutput {
    /// Figures regenerated.
    pub figures: Vec<FigureReport>,
    /// Tables regenerated.
    pub tables: Vec<TableReport>,
    /// Named scalar findings, for paper-vs-measured comparison.
    pub stats: Vec<(String, f64)>,
    /// Input cardinality: how many records this experiment read across
    /// its dataset slices (reported to the observability layer).
    pub input_records: u64,
    /// Per-granularity actioning timings (filled by the ROC experiment;
    /// merged into the run report by [`run_all`] when instrumented).
    pub actioning: Vec<ActioningStat>,
    /// Aggregation-trie sweep timings (filled by the ROC experiment:
    /// build wall for the per-day tries plus read wall summed across all
    /// granularity cuts; merged into the run report when instrumented).
    pub sweep: Option<SweepStat>,
}

impl ExperimentOutput {
    fn stat(&mut self, name: &str, value: f64) {
        self.stats.push((name.to_string(), value));
    }

    /// Accumulates input cardinality (call once per dataset slice read).
    fn record_input(&mut self, records: usize) {
        self.input_records += records as u64;
    }

    /// Looks up a scalar statistic by name.
    pub fn get_stat(&self, name: &str) -> Option<f64> {
        self.stats.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// Figure 1 — daily IPv6 share of users and of requests.
pub fn fig1_prevalence(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let range = study.config.sim_range();
    let user = study.datasets.user_sample.in_range(range);
    let req = study.datasets.request_sample.in_range(range);
    let pts = prevalence_series(user, req, range);
    let mut out = ExperimentOutput::default();
    out.record_input(user.len() + req.len());
    let fig = FigureReport::new("Figure 1", "daily IPv6 proportion of users and requests")
        .with(CdfSeries::from_u64(
            "users",
            pts.iter().map(|p| (u64::from(p.day.index()), p.user_share)),
        ))
        .with(CdfSeries::from_u64(
            "requests",
            pts.iter()
                .map(|p| (u64::from(p.day.index()), p.request_share)),
        ));
    out.figures.push(fig);

    let mean = |f: &dyn Fn(&ipv6_study_analysis::characterize::PrevalencePoint) -> f64,
                lo: SimDate,
                hi: SimDate| {
        let sel: Vec<f64> = pts
            .iter()
            .filter(|p| p.day >= lo && p.day <= hi)
            .map(f)
            .collect();
        sel.iter().sum::<f64>() / sel.len().max(1) as f64
    };
    let early_end = range.start + 13;
    let late_start = range.end - 13;
    out.stat(
        "fig1.user_share_mean",
        mean(&|p| p.user_share, range.start, range.end),
    );
    out.stat(
        "fig1.request_share_mean",
        mean(&|p| p.request_share, range.start, range.end),
    );
    out.stat(
        "fig1.user_share_lockdown_delta",
        mean(&|p| p.user_share, late_start, range.end)
            - mean(&|p| p.user_share, range.start, early_end),
    );
    out.stat(
        "fig1.request_share_lockdown_delta",
        mean(&|p| p.request_share, late_start, range.end)
            - mean(&|p| p.request_share, range.start, early_end),
    );
    // Weekend effect: mean over weekends minus weekdays (pre-lockdown part).
    let pre = SimDate::ymd(3, 7);
    let (mut we, mut wd) = (Vec::new(), Vec::new());
    for p in pts.iter().filter(|p| p.day <= pre) {
        if p.day.is_weekend() {
            we.push(p.user_share);
        } else {
            wd.push(p.user_share);
        }
    }
    out.stat(
        "fig1.weekend_user_share_delta",
        we.iter().sum::<f64>() / we.len().max(1) as f64
            - wd.iter().sum::<f64>() / wd.len().max(1) as f64,
    );
    out
}

/// Table 1 — top ASNs by IPv6 user ratio (plus §4.2's low-deployment tail).
pub fn tab1_asns(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let recs = study.datasets.user_sample.in_range(focus_week());
    // The paper requires ≥1k users per ASN, i.e. ~0.04% of its 2.6M
    // sampled users; scale that floor to our sampled-user count. The
    // distinct-user table is memoized on the shared focus-week index.
    let distinct_users = ctx.user_week().distinct_users().len();
    let min_users = ((distinct_users as f64) * 0.004).ceil().max(12.0) as u64;
    let rows = asn_ratio_table(recs, min_users);
    let mut out = ExperimentOutput::default();
    out.record_input(recs.len());
    let mut table = TableReport::new(
        "Table 1",
        format!("top ASNs by IPv6 user ratio (≥{min_users} sampled users)"),
        &["Rank", "ASN", "Name", "Kind", "Country", "Users", "Ratio"],
    );
    for (i, row) in rows.iter().take(10).enumerate() {
        let net = study.world.find_by_asn(row.key);
        table.push_row(vec![
            (i + 1).to_string(),
            row.key.to_string(),
            net.map_or("?".into(), |n| n.name.clone()),
            net.map_or("?".into(), |n| n.kind.to_string()),
            net.map_or("?".into(), |n| n.country.to_string()),
            row.users.to_string(),
            format!("{:.2}", row.ratio),
        ]);
    }
    out.tables.push(table);
    let (zero, low) = asn_low_v6_shares(&rows);
    out.stat("tab1.top_ratio", rows.first().map_or(0.0, |r| r.ratio));
    out.stat("tab1.rank10_ratio", rows.get(9).map_or(0.0, |r| r.ratio));
    out.stat("tab1.zero_v6_share", zero);
    out.stat("tab1.low_v6_share", low);
    out
}

/// Table 2 + Figure 12 — top countries by IPv6 user ratio, Jan vs Apr.
pub fn tab2_countries(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let jan = windows::comparison_week_jan();
    let jan_recs = study.datasets.user_sample.in_range(jan);
    let apr_recs = study.datasets.user_sample.in_range(focus_week());
    let distinct_users = ctx.user_week().distinct_users().len();
    let min_users = ((distinct_users as f64) * 0.004).ceil().max(12.0) as u64;
    let jan_rows = country_ratio_table(jan_recs, min_users);
    let apr_rows = country_ratio_table(apr_recs, min_users);

    let mut out = ExperimentOutput::default();
    out.record_input(jan_recs.len() + apr_recs.len());
    for (label, rows) in [("Jan 23-29", &jan_rows), ("Apr 13-19", &apr_rows)] {
        let mut table = TableReport::new(
            "Table 2",
            format!("top countries by IPv6 user ratio, {label}"),
            &["Rank", "Country", "Users", "Ratio"],
        );
        for (i, row) in rows.iter().take(10).enumerate() {
            table.push_row(vec![
                (i + 1).to_string(),
                row.key.to_string(),
                row.users.to_string(),
                format!("{:.3}", row.ratio),
            ]);
        }
        out.tables.push(table);
    }
    // Figure 12's choropleth data = the full apr table; emit as CSV table.
    let mut choro = TableReport::new(
        "Figure 12",
        "choropleth data: IPv6 user ratio per country (Apr 13-19)",
        &["Country", "Users", "Ratio"],
    );
    for row in &apr_rows {
        choro.push_row(vec![
            row.key.to_string(),
            row.users.to_string(),
            format!("{:.3}", row.ratio),
        ]);
    }
    out.tables.push(choro);

    // Statistics use a low user floor so small countries (Germany, Puerto
    // Rico, Belarus) stay visible at every simulation scale.
    let jan_all = country_ratio_table(jan_recs, 5);
    let apr_all = country_ratio_table(apr_recs, 5);
    let ratio_of = |rows: &[ipv6_study_analysis::characterize::RatioRow<_>], code: &str| {
        rows.iter()
            .find(|r| r.key == ipv6_study_telemetry::Country::new(code))
            .map_or(f64::NAN, |r| r.ratio)
    };
    out.stat("tab2.in_apr", ratio_of(&apr_all, "IN"));
    out.stat("tab2.us_apr", ratio_of(&apr_all, "US"));
    out.stat("tab2.de_jan", ratio_of(&jan_all, "DE"));
    out.stat("tab2.de_apr", ratio_of(&apr_all, "DE"));
    out.stat(
        "tab2.de_delta",
        ratio_of(&apr_all, "DE") - ratio_of(&jan_all, "DE"),
    );
    out.stat(
        "tab2.by_delta",
        ratio_of(&apr_all, "BY") - ratio_of(&jan_all, "BY"),
    );
    out.stat(
        "tab2.pr_delta",
        ratio_of(&apr_all, "PR") - ratio_of(&jan_all, "PR"),
    );
    out
}

/// §4.4 — client IPv6 address patterns.
pub fn c44_client_patterns(ctx: &AnalysisCtx) -> ExperimentOutput {
    let p = client_patterns(ctx.user_week());
    let mut out = ExperimentOutput::default();
    out.record_input(ctx.user_week().len());
    out.stat("c44.v6_users", p.v6_users as f64);
    out.stat("c44.transition_share", p.transition_share);
    out.stat("c44.mac_embedded_share", p.mac_embedded_share);
    out.stat("c44.iid_reuse_share", p.iid_reuse_share);
    out.stat("c44.iid_entropy_bits", p.iid_entropy_bits);
    out
}

fn cdf_series(label: &str, e: &Ecdf, max_x: u64) -> CdfSeries {
    CdfSeries::from_u64(label, (0..=max_x).map(|x| (x, e.fraction_le(x))))
}

/// Figure 2 — addresses per user (benign), one day and one week.
pub fn fig2_addrs_per_user(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let filter = |u: UserId| !study.labels.is_abusive(u);
    let day = addrs_per_user(ctx.user_day(), filter);
    let week = addrs_per_user(ctx.user_week(), filter);
    let mut out = ExperimentOutput::default();
    out.record_input(ctx.user_day().len() + ctx.user_week().len());
    out.figures.push(
        FigureReport::new("Figure 2", "CDFs of addresses per user, 1 day and 7 days")
            .with(cdf_series("IPv4: 1 Day", &day.v4, 30))
            .with(cdf_series("IPv6: 1 Day", &day.v6, 30))
            .with(cdf_series("IPv4: 7 Days", &week.v4, 30))
            .with(cdf_series("IPv6: 7 Days", &week.v6, 30)),
    );
    out.stat("fig2.v4_day_single", day.v4.fraction_le(1));
    out.stat("fig2.v6_day_single", day.v6.fraction_le(1));
    out.stat("fig2.v4_day_gt5", day.v4.fraction_gt(5));
    out.stat("fig2.v6_day_gt5", day.v6.fraction_gt(5));
    out.stat("fig2.v4_week_median", week.v4.median().unwrap_or(0) as f64);
    out.stat("fig2.v6_week_median", week.v6.median().unwrap_or(0) as f64);
    out
}

/// Figure 3 — addresses per abusive account, one day.
pub fn fig3_aa_addrs(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let day_recs = study.abuse_store.on_day(focus_day_user());
    let day = ctx.index(day_recs);
    let aa = addrs_per_user(&day, |_| true);
    let mut out = ExperimentOutput::default();
    out.record_input(day_recs.len());
    out.figures.push(
        FigureReport::new("Figure 3", "CDFs of addresses per abusive account, 1 day")
            .with(cdf_series("IPv6: 1 Day", &aa.v6, 10))
            .with(cdf_series("IPv4: 1 Day", &aa.v4, 10)),
    );
    out.stat("fig3.v4_day_single", aa.v4.fraction_le(1));
    out.stat("fig3.v6_day_single", aa.v6.fraction_le(1));
    out.stat("fig3.v4_mean", aa.v4.mean().unwrap_or(0.0));
    out.stat("fig3.v6_mean", aa.v6.mean().unwrap_or(0.0));
    out
}

/// §5.1.3 — outlier users by address count, benign and abusive.
pub fn o51_user_outliers(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let filter = |u: UserId| !study.labels.is_abusive(u);
    let week = addrs_per_user(ctx.user_week(), filter);
    let aa_week = addrs_per_user(ctx.abuse_week(), |_| true);

    let thresholds = [100u64, 300, 1000];
    let v4 = tail_stats(&week.v4_counts, &thresholds);
    let v6 = tail_stats(&week.v6_counts, &thresholds);
    let aa4 = tail_stats(&aa_week.v4_counts, &thresholds);
    let aa6 = tail_stats(&aa_week.v6_counts, &thresholds);

    let mut out = ExperimentOutput::default();
    out.record_input(ctx.user_week().len() + ctx.abuse_week().len());
    let mut t = TableReport::new(
        "§5.1.3",
        "outlier users by weekly address count",
        &["Population", "Total", ">100", ">300", ">1000", "Max"],
    );
    for (label, s) in [
        ("users v4", &v4),
        ("users v6", &v6),
        ("AA v4", &aa4),
        ("AA v6", &aa6),
    ] {
        t.push_row(vec![
            label.into(),
            s.total.to_string(),
            s.above(100).to_string(),
            s.above(300).to_string(),
            s.above(1000).to_string(),
            s.max.to_string(),
        ]);
    }
    out.tables.push(t);
    out.stat("o51.v4_users_gt300", v4.above(300) as f64);
    out.stat("o51.v6_users_gt300", v6.above(300) as f64);
    out.stat("o51.v4_max", v4.max as f64);
    out.stat("o51.v6_max", v6.max as f64);
    out.stat("o51.aa_v4_max", aa4.max as f64);
    out.stat("o51.aa_v6_max", aa6.max as f64);
    if let Some(r) = outlier_user_prevalence_ratio(&week.v4_counts, &week.v6_counts, 300) {
        out.stat("o51.v6_to_v4_outlier_prevalence_ratio", r);
    }
    out
}

/// Figure 4 — IPv6 prefixes per user (users and abusive accounts).
pub fn fig4_prefix_span(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let lengths: Vec<u8> = vec![32, 36, 40, 44, 48, 52, 56, 60, 64, 68, 72, 80, 96, 112, 128];
    let filter = |u: UserId| !study.labels.is_abusive(u);
    let users = prefixes_per_user(ctx.user_week(), &lengths, filter);
    let aas = prefixes_per_user(ctx.abuse_week(), &lengths, |_| true);

    let to_fig =
        |id: &str, caption: &str, rows: &[ipv6_study_analysis::user_centric::PrefixSpanRow]| {
            FigureReport::new(id, caption)
                .with(CdfSeries::from_u64(
                    "1",
                    rows.iter().map(|r| (u64::from(r.len), r.le1)),
                ))
                .with(CdfSeries::from_u64(
                    "<=2",
                    rows.iter().map(|r| (u64::from(r.len), r.le2)),
                ))
                .with(CdfSeries::from_u64(
                    "<=3",
                    rows.iter().map(|r| (u64::from(r.len), r.le3)),
                ))
        };
    let mut out = ExperimentOutput::default();
    out.record_input(ctx.user_week().len() + ctx.abuse_week().len());
    out.figures.push(to_fig(
        "Figure 4a",
        "% of users whose v6 addresses span <=k prefixes",
        &users,
    ));
    out.figures.push(to_fig(
        "Figure 4b",
        "% of abusive accounts whose v6 addresses span <=k prefixes",
        &aas,
    ));
    let at = |rows: &[ipv6_study_analysis::user_centric::PrefixSpanRow], len: u8| {
        rows.iter().find(|r| r.len == len).map_or(0.0, |r| r.le1)
    };
    out.stat("fig4.users_le1_at128", at(&users, 128));
    out.stat("fig4.users_le1_at72", at(&users, 72));
    out.stat("fig4.users_le1_at64", at(&users, 64));
    out.stat("fig4.users_le1_at48", at(&users, 48));
    out.stat("fig4.users_le1_at40", at(&users, 40));
    out.stat("fig4.jump_at_64", at(&users, 64) - at(&users, 68));
    out.stat("fig4.aa_le1_at64", at(&aas, 64));
    out
}

/// Figure 5 — (user, address) life spans.
pub fn fig5_lifespans(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let focus = focus_day_user();
    let filter = |u: UserId| !study.labels.is_abusive(u);
    let l = address_lifespans(ctx.user_lookback(), focus, filter);
    let mut out = ExperimentOutput::default();
    out.record_input(ctx.user_lookback().len());
    out.figures.push(
        FigureReport::new("Figure 5", "CDFs of address life spans for users (days)")
            .with(cdf_series("Across v6s", &l.v6_pairs, 27))
            .with(cdf_series("v6: User med", &l.v6_user_median, 27))
            .with(cdf_series("Across v4s", &l.v4_pairs, 27))
            .with(cdf_series("v4: User med", &l.v4_user_median, 27)),
    );
    out.stat("fig5.v4_newborn_share", l.v4_pairs.fraction_le(0));
    out.stat("fig5.v6_newborn_share", l.v6_pairs.fraction_le(0));
    out.stat("fig5.v4_gt7d_share", l.v4_pairs.fraction_gt(7));
    out.stat("fig5.v6_gt7d_share", l.v6_pairs.fraction_gt(7));
    out.stat("fig5.v4_ge27d_share", l.v4_pairs.fraction_gt(26));
    out.stat("fig5.v6_ge27d_share", l.v6_pairs.fraction_gt(26));
    out
}

/// Figure 6 — (user, prefix) life spans across prefix lengths.
pub fn fig6_prefix_lifespans(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let focus = focus_day_user();
    let lookback = windows::lookback_window(focus);
    let aa_recs = study.abuse_store.in_range(lookback);
    let aa_history = ctx.index(aa_recs);
    let v6_lengths: Vec<u8> = vec![16, 24, 32, 40, 48, 56, 64, 72, 80, 96, 112, 128];
    let v4_lengths: Vec<u8> = vec![8, 16, 24, 32];
    let filter = |u: UserId| !study.labels.is_abusive(u);

    let mut out = ExperimentOutput::default();
    out.record_input(ctx.user_lookback().len() + aa_history.len());
    let always = |_: UserId| true;
    type Case<'a> = (&'a str, &'a DatasetIndex, &'a dyn Fn(UserId) -> bool);
    let cases: [Case; 2] = [
        ("Figure 6a", ctx.user_lookback(), &filter),
        ("Figure 6b", &aa_history, &always),
    ];
    for (id, history, f) in cases {
        let v6 = prefix_lifespans(history, focus, &v6_lengths, true, f);
        let v4 = prefix_lifespans(history, focus, &v4_lengths, false, f);
        let fig = FigureReport::new(id, "share of (user, prefix) pairs aged <=1/2/3 days")
            .with(CdfSeries::from_u64(
                "IPv6: 1d",
                v6.iter().map(|r| (u64::from(r.len), r.d1)),
            ))
            .with(CdfSeries::from_u64(
                "IPv6: <=2d",
                v6.iter().map(|r| (u64::from(r.len), r.d2)),
            ))
            .with(CdfSeries::from_u64(
                "IPv6: <=3d",
                v6.iter().map(|r| (u64::from(r.len), r.d3)),
            ))
            .with(CdfSeries::from_u64(
                "IPv4: 1d",
                v4.iter().map(|r| (u64::from(r.len), r.d1)),
            ))
            .with(CdfSeries::from_u64(
                "IPv4: <=2d",
                v4.iter().map(|r| (u64::from(r.len), r.d2)),
            ))
            .with(CdfSeries::from_u64(
                "IPv4: <=3d",
                v4.iter().map(|r| (u64::from(r.len), r.d3)),
            ));
        if id == "Figure 6a" {
            let at = |len: u8| v6.iter().find(|r| r.len == len).map_or(0.0, |r| r.d1);
            out.stat("fig6.v6_new_at128", at(128));
            out.stat("fig6.v6_new_at64", at(64));
            out.stat("fig6.v6_new_at48", at(48));
            out.stat(
                "fig6.v4_new_at32",
                v4.iter().find(|r| r.len == 32).map_or(0.0, |r| r.d1),
            );
        }
        out.figures.push(fig);
    }
    out
}

/// Figure 7 — users per address, day and week.
pub fn fig7_users_per_ip(ctx: &AnalysisCtx) -> ExperimentOutput {
    let day = users_per_ip(ctx.ip_day());
    let week = users_per_ip(ctx.ip_week());
    let mut out = ExperimentOutput::default();
    out.record_input(ctx.ip_day().len() + ctx.ip_week().len());
    out.figures.push(
        FigureReport::new("Figure 7", "CDFs of users per IP address")
            .with(cdf_series("IPv6: 1 day", &day.v6, 10))
            .with(cdf_series("IPv6: 1 week", &week.v6, 10))
            .with(cdf_series("IPv4: 1 day", &day.v4, 10))
            .with(cdf_series("IPv4: 1 week", &week.v4, 10)),
    );
    out.stat("fig7.v4_day_single", day.v4.fraction_le(1));
    out.stat("fig7.v6_day_single", day.v6.fraction_le(1));
    out.stat("fig7.v6_day_le2", day.v6.fraction_le(2));
    out.stat("fig7.v4_week_single", week.v4.fraction_le(1));
    out.stat("fig7.v6_week_single", week.v6.fraction_le(1));
    out.stat("fig7.v4_day_gt3", day.v4.fraction_gt(3));
    out.stat("fig7.v6_day_gt3", day.v6.fraction_gt(3));
    out
}

/// Figure 8 — abusive accounts and benign users per address-with-abuse.
pub fn fig8_aa_per_ip(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let day = abuse_per_ip(ctx.ip_day(), &study.labels);
    let week = abuse_per_ip(ctx.ip_week(), &study.labels);
    let mut out = ExperimentOutput::default();
    out.record_input(ctx.ip_day().len() + ctx.ip_week().len());
    out.figures.push(
        FigureReport::new(
            "Figure 8",
            "populations on addresses with >=1 abusive account",
        )
        .with(cdf_series("AAs per IPv4: 1 day", &day.aa_v4, 10))
        .with(cdf_series("AAs per IPv4: 1 week", &week.aa_v4, 10))
        .with(cdf_series("AAs per IPv6: 1 week", &week.aa_v6, 10))
        .with(cdf_series("Others per IPv4: 1 day", &day.benign_v4, 10))
        .with(cdf_series("Others per IPv4: 1 week", &week.benign_v4, 10))
        .with(cdf_series("Others per IPv6: 1 week", &week.benign_v6, 10)),
    );
    out.stat("fig8.v4_single_aa_day", day.aa_v4.fraction_le(1));
    out.stat("fig8.v6_single_aa", week.aa_v6.fraction_le(1));
    out.stat("fig8.v6_isolated_day", day.v6_isolated_share());
    out.stat("fig8.v4_isolated_day", day.v4_isolated_share());
    out.stat("fig8.v4_gt10_benign_day", day.benign_v4.fraction_gt(10));
    out.stat("fig8.v6_gt1_benign_day", day.benign_v6.fraction_gt(1));
    out
}

/// §6.1.3 — heavy addresses: tails, ASN concentration, predictability.
pub fn o61_ip_outliers(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let week = users_per_ip(ctx.ip_week());
    // Thresholds scaled to the simulation: a "heavy" address hosts >X
    // users; the paper's 1k/200k translate down with population size.
    // Scale-aware: a "heavy" address hosts more users than ~1/1500th of
    // the simulated population (the paper's 10K+ of ~2.5B scales likewise).
    let heavy = (study.approx_users / 1_500).max(8);
    let mega = heavy * 3;
    let mut v4_counts = HashMap::new();
    let mut v6_counts = HashMap::new();
    for (ip, &c) in &week.counts {
        if matches!(ip, std::net::IpAddr::V6(_)) {
            v6_counts.insert(*ip, c);
        } else {
            v4_counts.insert(*ip, c);
        }
    }
    let v4 = tail_stats(&v4_counts, &[heavy, mega]);
    let v6 = tail_stats(&v6_counts, &[heavy, mega]);
    let conc_v6 = heavy_ip_asn_concentration(ctx.ip_week(), &week.counts, heavy, true);
    let conc_v4 = heavy_ip_asn_concentration(ctx.ip_week(), &week.counts, heavy, false);
    let sig = signature_predictability(&week.counts, heavy);

    let mut out = ExperimentOutput::default();
    out.record_input(ctx.ip_week().len());
    let mut t = TableReport::new(
        "§6.1.3",
        "heavy addresses (users/week)",
        &[
            "Protocol",
            "Addresses",
            ">heavy",
            ">3x heavy",
            "Max",
            "ASNs(heavy)",
            "Top1 ASN share",
        ],
    );
    t.push_row(vec![
        "IPv4".into(),
        v4.total.to_string(),
        v4.above(heavy).to_string(),
        v4.above(mega).to_string(),
        v4.max.to_string(),
        conc_v4.asns.to_string(),
        format!("{:.2}", conc_v4.top1_share),
    ]);
    t.push_row(vec![
        "IPv6".into(),
        v6.total.to_string(),
        v6.above(heavy).to_string(),
        v6.above(mega).to_string(),
        v6.max.to_string(),
        conc_v6.asns.to_string(),
        format!("{:.2}", conc_v6.top1_share),
    ]);
    out.tables.push(t);
    out.stat("o61.v4_max_users", v4.max as f64);
    out.stat("o61.v6_max_users", v6.max as f64);
    out.stat("o61.v4_heavy_count", v4.above(heavy) as f64);
    out.stat("o61.v6_heavy_count", v6.above(heavy) as f64);
    out.stat("o61.v6_heavy_top1_asn_share", conc_v6.top1_share);
    out.stat("o61.v4_heavy_asns", conc_v4.asns as f64);
    out.stat("o61.v6_heavy_asns", conc_v6.asns as f64);
    out.stat("o61.sig_heavy_share", sig.heavy_signature_share);
    out.stat("o61.sig_light_share", sig.light_signature_share);

    // Predictor evaluation (the "signatures are feasible" claim). Each
    // address's ASN comes from its run head — the first record of the
    // address in timestamp order, exactly what the slice walk found.
    let mut asn_of = HashMap::new();
    for (ip, group) in ctx.ip_week().ip_groups() {
        asn_of.insert(ip, group.asns()[0]);
    }
    let predictor = HeavyAddressPredictor::learn(&week.counts, &asn_of, heavy);
    let eval = predictor.evaluate(&week.counts, &asn_of, heavy);
    out.stat("o61.predictor_precision", eval.precision);
    out.stat("o61.predictor_recall", eval.recall);
    out
}

/// Figure 9 — users per IPv6 prefix across lengths, with the IPv4 curve.
pub fn fig9_users_per_prefix(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let week = focus_week();
    let lengths = [128u8, 72, 68, 64, 48, 44];
    let mut out = ExperimentOutput::default();
    let mut fig = FigureReport::new("Figure 9", "CDFs of users per IPv6 prefix (1 week)");
    let mut singles: Vec<(u8, f64)> = Vec::new();
    let mut candidates: Vec<(u8, Ecdf)> = Vec::new();
    for len in lengths {
        let recs = study.datasets.prefix_sample(len).in_range(week);
        out.record_input(recs.len());
        let upp = users_per_prefix(&ctx.index(recs), len);
        singles.push((len, upp.ecdf.fraction_le(1)));
        fig = fig.with(cdf_series(&format!("/{len}"), &upp.ecdf, 10));
        candidates.push((len, upp.ecdf));
    }
    out.record_input(ctx.ip_week().len());
    let v4 = users_per_v4_addr(ctx.ip_week());
    fig = fig.with(cdf_series("IPv4", &v4, 10));
    out.figures.push(fig);
    for (len, s) in &singles {
        out.stat(&format!("fig9.single_user_at{len}"), *s);
    }
    // Which prefix length matches IPv4 best (paper: /48)?
    let sim = most_similar(&v4, &candidates);
    out.stat("fig9.v4_best_match_len", f64::from(sim.best_len));
    out.stat("fig9.v4_best_match_ks", sim.best_distance);
    out
}

/// Figure 10 — abusive accounts and benign users per prefix-with-abuse.
pub fn fig10_aa_per_prefix(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let week = focus_week();
    let mut out = ExperimentOutput::default();

    // (a) abusive accounts per prefix.
    let lengths_a = [128u8, 64, 60, 56, 52];
    let mut fig_a = FigureReport::new("Figure 10a", "abusive accounts per prefix (1 week)");
    let mut aa_candidates: Vec<(u8, Ecdf)> = Vec::new();
    for len in lengths_a {
        let recs = study.datasets.prefix_sample(len).in_range(week);
        out.record_input(recs.len());
        let app = abuse_per_prefix(&ctx.index(recs), &study.labels, len);
        fig_a = fig_a.with(cdf_series(&format!("/{len}"), &app.aa, 10));
        aa_candidates.push((len, app.aa));
    }
    out.record_input(ctx.ip_week().len());
    let v4_view = abuse_per_ip(ctx.ip_week(), &study.labels);
    fig_a = fig_a.with(cdf_series("IPv4", &v4_view.aa_v4, 10));
    out.figures.push(fig_a);

    // (b) benign users per prefix containing abuse.
    let lengths_b = [128u8, 96, 72, 68, 64, 56];
    let mut fig_b = FigureReport::new(
        "Figure 10b",
        "benign users per prefix with abusive accounts (1 week)",
    );
    let mut benign_candidates: Vec<(u8, Ecdf)> = Vec::new();
    for len in lengths_b {
        let recs = study.datasets.prefix_sample(len).in_range(week);
        out.record_input(recs.len());
        let app = abuse_per_prefix(&ctx.index(recs), &study.labels, len);
        fig_b = fig_b.with(cdf_series(&format!("/{len}"), &app.benign, 10));
        benign_candidates.push((len, app.benign));
    }
    fig_b = fig_b.with(cdf_series("IPv4", &v4_view.benign_v4, 10));
    out.figures.push(fig_b);

    let single_at = |cands: &[(u8, Ecdf)], len: u8| {
        cands
            .iter()
            .find(|(l, _)| *l == len)
            .map_or(0.0, |(_, e)| e.fraction_le(1))
    };
    out.stat("fig10.aa_single_at64", single_at(&aa_candidates, 64));
    out.stat("fig10.aa_single_at56", single_at(&aa_candidates, 56));
    out.stat(
        "fig10.benign_le1_at64",
        benign_candidates
            .iter()
            .find(|(l, _)| *l == 64)
            .map_or(0.0, |(_, e)| e.fraction_le(1)),
    );
    // The paper's /56 ≈ IPv4 similarity claims.
    let sim_aa = most_similar(&v4_view.aa_v4, &aa_candidates);
    out.stat("fig10.v4_aa_best_match_len", f64::from(sim_aa.best_len));
    let sim_benign = most_similar(&v4_view.benign_v4, &benign_candidates);
    out.stat(
        "fig10.v4_benign_best_match_len",
        f64::from(sim_benign.best_len),
    );
    out
}

/// §6.2.3 — heavy prefixes: /112 domination and ASN concentration.
pub fn o62_prefix_outliers(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    // §6.2.3's own method: the interesting prefixes are far too few for
    // the prefix random sample to hit, so the paper (and we) count *user
    // sample members per prefix* and extrapolate — a prefix with k sampled
    // users has k/rate users in expectation.
    let week = focus_week();
    let rate = study.user_sample_rate();
    let heavy_pop = (study.approx_users / 1_500).max(8);
    // Require a few sampled users on top of the expected-population bar,
    // to keep noise out at small scales.
    let heavy_sampled = ((heavy_pop as f64 * rate).ceil() as u64).max(3);
    let recs = study.datasets.user_sample.in_range(week);
    let mut out = ExperimentOutput::default();
    out.record_input(recs.len());
    let mut per_len = HashMap::new();
    for len in [112u8, 64, 48] {
        let upp = users_per_prefix(ctx.user_week(), len);
        let stats = tail_stats(&upp.counts, &[heavy_sampled]);
        out.stat(
            &format!("o62.heavy_p{len}_count"),
            stats.above(heavy_sampled) as f64,
        );
        out.stat(&format!("o62.max_users_p{len}"), stats.max as f64 / rate);
        per_len.insert(len, upp);
    }
    // ASN concentration of heavy /64s (paper: M247 21%, top-4 61%).
    let upp64 = &per_len[&64];
    let conc = heavy_prefix_asn_concentration(recs, &upp64.counts, heavy_sampled);
    out.stat("o62.heavy_p64_asns", conc.asns as f64);
    out.stat("o62.heavy_p64_top1_share", conc.top1_share);
    out.stat("o62.heavy_p64_top4_share", conc.top4_share);
    // The /112-equals-/64 gateway structure: the top /112's population
    // should rival the top /64's (the paper's "these /112 dominate").
    let max112 = per_len[&112].counts.values().copied().max().unwrap_or(0);
    let max64 = upp64.counts.values().copied().max().unwrap_or(0);
    out.stat(
        "o62.max112_over_max64",
        if max64 == 0 {
            0.0
        } else {
            max112 as f64 / max64 as f64
        },
    );
    out
}

/// Figure 11 — the actioning ROC at /128, /64, /56 and IPv4, pooled over
/// the last three day pairs (the paper repeats per-day analyses over
/// several days; pooling keeps small-scale runs statistically stable).
///
/// The sweep is one-pass: each of the four days is folded into a
/// [`DayCounts`] aggregation-trie pair exactly once (one sort per family
/// per day), and every granularity cut then reads its per-unit distinct
/// user counts straight off the shared tries — O(records + nodes) for the
/// whole sweep instead of a re-sort per (granularity, pair) combination.
/// The per-unit scores and outcomes are identical to the naive per-cut
/// tally (property-tested in `secapp::actioning`), so the curves are
/// byte-for-byte what the record-level path produced.
pub fn fig11_roc(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let mut out = ExperimentOutput::default();
    let mut fig = FigureReport::new("Figure 11", "day-over-day actioning ROC");
    let thresholds: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();

    let grans = [
        Granularity::V6Full,
        Granularity::V6Prefix(64),
        Granularity::V6Prefix(56),
        Granularity::V4Full,
    ];
    // Full-population day pairs: the paper's scenario without sampling
    // noise (abusive units are rare; samples would starve the curves).
    // The window is end-relative — the last four *simulated* days — so
    // an extended run scores the appended days, not the base focus week.
    // Day j holds `pair.start + j`; pair k scores day `last-(k+1)`
    // against outcomes on day `last-k`.
    let pair = windows::pair_window(study.config.sim_end());
    let day_recs: Vec<ColumnSlice<'_>> = pair.days().map(|d| study.pair_store.on_day(d)).collect();
    for w in day_recs.windows(2) {
        out.record_input(w[0].len() + w[1].len());
    }
    let t_build = Instant::now();
    let day_counts: Vec<Arc<DayCounts>> = pair.days().map(|d| study.day_counts(d)).collect();
    let build_wall = t_build.elapsed();
    let mut read_wall = std::time::Duration::ZERO;
    for gran in grans {
        let mut curve = ipv6_study_stats::RocCurve::new();
        let mut gran_stat = ActioningStat {
            granularity: gran.label(),
            wall: std::time::Duration::ZERO,
            units_scored: 0,
            units_evaluated: 0,
        };
        for k in 0..3usize {
            let (c, stat) = actioning_roc_between(&day_counts[2 - k], &day_counts[3 - k], gran);
            curve.extend_from(&c);
            gran_stat.wall += stat.wall;
            gran_stat.units_scored += stat.units_scored;
            gran_stat.units_evaluated += stat.units_evaluated;
        }
        read_wall += gran_stat.wall;
        out.actioning.push(gran_stat);
        let pts = curve.sweep(&thresholds, None);
        fig = fig.with(CdfSeries {
            label: gran.label(),
            points: {
                let mut p: Vec<(f64, f64)> = pts.iter().map(|p| (p.fpr, p.tpr)).collect();
                p.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                p
            },
        });
        let op = operating_points(&curve);
        let tag = gran.label().replace('/', "p");
        out.stat(&format!("fig11.{tag}_max_tpr"), op.max_tpr);
        out.stat(&format!("fig11.{tag}_t0_fpr"), op.t0.1);
        out.stat(&format!("fig11.{tag}_t10_tpr"), op.t10.0);
        out.stat(&format!("fig11.{tag}_t10_fpr"), op.t10.1);
        out.stat(&format!("fig11.{tag}_t100_tpr"), op.t100.0);
        out.stat(
            &format!("fig11.{tag}_tpr_at_fpr_1pct"),
            curve.tpr_at_fpr(0.01, None),
        );
    }
    out.figures.push(fig);
    out.sweep = Some(SweepStat {
        build_wall,
        read_wall,
        days: day_counts.len() as u64,
        trie_nodes: day_counts.iter().map(|d| d.node_count() as u64).sum(),
    });
    out
}

/// §7.2 — defense mechanisms: blocklist decay, threat-exchange half-life,
/// rate-limit thresholds, and the ML protocol-transfer gap.
pub fn s72_defenses(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let mut out = ExperimentOutput::default();
    let list_day = windows::blocklist_window().start;

    // Blocklist decay at three granularities.
    for (gran, name) in [
        (Granularity::V6Full, "v6_addr"),
        (Granularity::V6Prefix(64), "v6_p64"),
        (Granularity::V4Full, "v4_addr"),
    ] {
        let (store_day, later): (ColumnSlice<'_>, Vec<(SimDate, ColumnSlice<'_>)>) = match gran {
            Granularity::V6Prefix(len) => (
                study.datasets.prefix_sample(len).on_day(list_day),
                (1..=6u16)
                    .map(|k| {
                        let d = list_day + k;
                        (d, study.datasets.prefix_sample(len).on_day(d))
                    })
                    .collect(),
            ),
            _ => (
                study.datasets.ip_sample.on_day(list_day),
                (1..=6u16)
                    .map(|k| {
                        let d = list_day + k;
                        (d, study.datasets.ip_sample.on_day(d))
                    })
                    .collect(),
            ),
        };
        out.record_input(store_day.len() + later.iter().map(|(_, r)| r.len()).sum::<usize>());
        let bl = Blocklist::from_day(store_day, &study.labels, gran, 0.5, list_day, 14);
        let evals = evaluate_over_days(
            &bl,
            &study.labels,
            list_day,
            later.iter().map(|&(d, r)| (d, r)),
        );
        if let Some(first) = evals.first() {
            out.stat(&format!("s72.blocklist_{name}_day1_recall"), first.recall);
            out.stat(
                &format!("s72.blocklist_{name}_day1_collateral"),
                first.collateral,
            );
        }
        if let Some(last) = evals.last() {
            out.stat(&format!("s72.blocklist_{name}_day6_recall"), last.recall);
        }

        // Threat-exchange decay on the same data.
        let decay = value_decay(
            store_day,
            &study.labels,
            gran,
            later.iter().map(|&(d, r)| (d.days_since(list_day), r)),
        );
        let fig_label = format!("exchange decay: {name}");
        out.figures.push(
            FigureReport::new(format!("§7.2 decay {name}"), fig_label).with(CdfSeries::from_u64(
                "residual recall",
                decay
                    .iter()
                    .map(|p| (u64::from(p.offset), p.residual_recall)),
            )),
        );
        out.stat(
            &format!("s72.exchange_{name}_half_life"),
            half_life(&decay).map_or(7.0, f64::from),
        );
    }

    // Rate-limit recommendations from users-per-key distributions.
    let week = focus_week();
    out.record_input(ctx.ip_week().len());
    let per_ip = users_per_ip(ctx.ip_week());
    let per_p64 = {
        let recs = study.datasets.prefix_sample(64).in_range(week);
        out.record_input(recs.len());
        users_per_prefix(&ctx.index(recs), 64).ecdf
    };
    let q = 0.999;
    let per_user_budget = 200;
    let r_v6 = recommend_threshold(&per_ip.v6, per_user_budget, q);
    let r_v4 = recommend_threshold(&per_ip.v4, per_user_budget, q);
    let r_p64 = recommend_threshold(&per_p64, per_user_budget, q);
    out.stat("s72.ratelimit_v6_addr_budget", r_v6.requests_per_day as f64);
    out.stat("s72.ratelimit_v4_addr_budget", r_v4.requests_per_day as f64);
    out.stat("s72.ratelimit_v6_p64_budget", r_p64.requests_per_day as f64);
    out.stat(
        "s72.ratelimit_v4_over_v6",
        r_v4.requests_per_day as f64 / r_v6.requests_per_day.max(1) as f64,
    );

    // ML transfer: train/test within and across protocols, on the
    // full-population day pair (end-relative: the last two simulated
    // days, so an extension re-scores the fresh pair).
    let (d0, d1) = windows::ml_pair_days(study.config.sim_end());
    let day = study.pair_store.on_day(d0);
    let next = study.pair_store.on_day(d1);
    out.record_input(day.len() + next.len());
    let v4_set = training_set(day, next, &study.labels, Some(false));
    let v6_set = training_set(day, next, &study.labels, Some(true));
    if !v4_set.is_empty() && !v6_set.is_empty() {
        let m_v4 = LogisticModel::train(&v4_set, 200, 0.3);
        let m_v6 = LogisticModel::train(&v6_set, 200, 0.3);
        out.stat("s72.ml_v4_on_v4_auc", m_v4.auc(&v4_set));
        out.stat("s72.ml_v6_on_v6_auc", m_v6.auc(&v6_set));
        out.stat("s72.ml_v4_on_v6_auc", m_v4.auc(&v6_set));
    }
    out
}

/// §8 (future work) — per-network-type breakdown: the paper's own first
/// "future work" item, "characterizing IPv6 behavior across different
/// network types, such as mobile, residential, and enterprise networks".
/// We have the full world, so we can answer it: per network kind, how many
/// addresses a user burns in a day, how many users share an address, and
/// how ephemeral (user, address) pairs are.
pub fn x81_network_breakdown(ctx: &AnalysisCtx) -> ExperimentOutput {
    use ipv6_study_netmodel::NetworkKind;
    let study = ctx.study;
    let mut out = ExperimentOutput::default();
    let day_recs = study.datasets.ip_sample.on_day(focus_day_ip());
    let user_day = study.datasets.user_sample.on_day(focus_day_user());
    let focus = focus_day_user();
    let lookback = windows::lookback_window(focus);
    let history = study.datasets.user_sample.in_range(lookback);
    out.record_input(day_recs.len() + user_day.len() + history.len());

    // ASN → kind map from the world.
    let kind_of: HashMap<u32, NetworkKind> = study
        .world
        .networks()
        .iter()
        .map(|n| (n.asn.0, n.kind))
        .collect();
    let mut table = TableReport::new(
        "§8 breakdown",
        "per-network-type behavior (IPv6 focus; day = Apr 13/19)",
        &[
            "Kind",
            "v6 users/addr (mean)",
            "v6 addrs/user (mean)",
            "v6 newborn pairs",
            "v4 users/addr (mean)",
        ],
    );
    let labels = &study.labels;
    for kind in NetworkKind::ALL {
        // Columnar selection: a branchless mask over the ASN column, then
        // a five-column gather. The gathered windows share the global
        // intern tables (no row rematerialization, no re-interning) —
        // this replaced `OwnedColumns::encode_with(tables,
        // win.records().filter(..))`, the last row-at-a-time filter on
        // the pass hot path.
        let select = |win: ColumnSlice<'_>| {
            let mask = mask_from(win.asns(), |asn| kind_of.get(&asn.0) == Some(&kind));
            win.gather(&mask)
        };
        let (ip_recs, us_recs, hist) = (select(day_recs), select(user_day), select(history));
        let upi = users_per_ip(&ctx.index(ip_recs.as_slice()));
        let apu = addrs_per_user(&ctx.index(us_recs.as_slice()), |u| !labels.is_abusive(u));
        let life = address_lifespans(&ctx.index(hist.as_slice()), focus, |u| {
            !labels.is_abusive(u)
        });
        let tag = kind.to_string();
        let users_per_addr = upi.v6.mean().unwrap_or(0.0);
        let addrs_per = apu.v6.mean().unwrap_or(0.0);
        let newborn = life.v6_pairs.fraction_le(0);
        let v4_users = upi.v4.mean().unwrap_or(0.0);
        out.stat(&format!("x81.{tag}_v6_users_per_addr"), users_per_addr);
        out.stat(&format!("x81.{tag}_v6_addrs_per_user"), addrs_per);
        out.stat(&format!("x81.{tag}_v6_newborn"), newborn);
        out.stat(&format!("x81.{tag}_v4_users_per_addr"), v4_users);
        table.push_row(vec![
            tag,
            format!("{users_per_addr:.2}"),
            format!("{addrs_per:.2}"),
            format!("{newborn:.2}"),
            format!("{v4_users:.2}"),
        ]);
    }
    out.tables.push(table);
    out
}

/// Appendix A — pandemic before/after comparison: the paper re-runs its
/// user-centric analyses on pre-pandemic data (e.g. Feb 12–18) and finds
/// only small shifts — slightly lower IP diversity and slightly longer
/// life spans during lockdowns, "no data point differs by more than 4%"
/// (A.5). We regenerate that comparison from the panel data.
pub fn apx_pandemic_compare(ctx: &AnalysisCtx) -> ExperimentOutput {
    let study = ctx.study;
    let mut out = ExperimentOutput::default();
    let filter = |u: UserId| !study.labels.is_abusive(u);

    // Addresses per user, pre-pandemic week vs focus week (A.3).
    let pre_week = ipv6_study_telemetry::time::prepandemic_week();
    let pre_recs = study.datasets.user_sample.in_range(pre_week);
    out.record_input(pre_recs.len() + ctx.user_week().len());
    let pre = addrs_per_user(&ctx.index(pre_recs), filter);
    let apr = addrs_per_user(ctx.user_week(), filter);
    out.stat("apx.v6_week_mean_feb", pre.v6.mean().unwrap_or(0.0));
    out.stat("apx.v6_week_mean_apr", apr.v6.mean().unwrap_or(0.0));
    out.stat("apx.v4_week_mean_feb", pre.v4.mean().unwrap_or(0.0));
    out.stat("apx.v4_week_mean_apr", apr.v4.mean().unwrap_or(0.0));
    out.stat(
        "apx.v6_diversity_delta",
        apr.v6.mean().unwrap_or(0.0) - pre.v6.mean().unwrap_or(0.0),
    );

    // Life spans, Feb 18 vs Apr 19 focus days (A.5).
    let feb_focus = SimDate::ymd(2, 18);
    let feb_hist = study
        .datasets
        .user_sample
        .in_range(windows::apx_lookback(feb_focus));
    let feb_life = address_lifespans(&ctx.index(feb_hist), feb_focus, filter);
    let apr_focus = focus_day_user();
    let apr_hist = study
        .datasets
        .user_sample
        .in_range(windows::apx_lookback(apr_focus));
    out.record_input(feb_hist.len() + apr_hist.len());
    let apr_life = address_lifespans(&ctx.index(apr_hist), apr_focus, filter);
    out.stat("apx.v6_newborn_feb", feb_life.v6_pairs.fraction_le(0));
    out.stat("apx.v6_newborn_apr", apr_life.v6_pairs.fraction_le(0));
    out.stat("apx.v4_newborn_feb", feb_life.v4_pairs.fraction_le(0));
    out.stat("apx.v4_newborn_apr", apr_life.v4_pairs.fraction_le(0));
    out.stat(
        "apx.max_lifespan_curve_delta",
        (feb_life.v6_pairs.fraction_le(0) - apr_life.v6_pairs.fraction_le(0))
            .abs()
            .max((feb_life.v4_pairs.fraction_le(0) - apr_life.v4_pairs.fraction_le(0)).abs()),
    );
    let mut t = TableReport::new(
        "Appendix A",
        "pre-pandemic (Feb 12-18) vs pandemic (Apr 13-19) user behavior",
        &["Metric", "Feb", "Apr"],
    );
    t.push_row(vec![
        "v6 addrs/user/week (mean)".into(),
        format!("{:.2}", pre.v6.mean().unwrap_or(0.0)),
        format!("{:.2}", apr.v6.mean().unwrap_or(0.0)),
    ]);
    t.push_row(vec![
        "v4 addrs/user/week (mean)".into(),
        format!("{:.2}", pre.v4.mean().unwrap_or(0.0)),
        format!("{:.2}", apr.v4.mean().unwrap_or(0.0)),
    ]);
    t.push_row(vec![
        "v6 newborn pair share".into(),
        format!("{:.3}", feb_life.v6_pairs.fraction_le(0)),
        format!("{:.3}", apr_life.v6_pairs.fraction_le(0)),
    ]);
    out.tables.push(t);
    out
}

/// EC1 (extended) — entropy-clustered blocklisting. Fixed-length IPv6
/// blocklisting forces one granularity onto a space where allocation
/// practice varies wildly; here the day-*n* aggregation trie is cut at
/// entropy-guided variable lengths instead ([`entropy_cuts`]: structured
/// subtrees aggregate deeper, randomized space stays at the /32 base),
/// each cut is scored by its distinct-user abusive share, and cuts at or
/// above the blocking threshold are evaluated against day *n+1* outcomes
/// read off the next day's trie. The fixed-/64 policy at the same
/// threshold runs alongside as the baseline. Counts are per-unit
/// impacted users (a user under two blocked cuts counts in both),
/// matching the actioning ROC's unit-level semantics.
///
/// [`entropy_cuts`]: ipv6_study_netaddr::AggregationTrie::entropy_cuts
pub fn ec_entropy_blocklist(ctx: &AnalysisCtx) -> ExperimentOutput {
    const BASE_LEN: u8 = 32;
    const ENTROPY_THRESHOLD: f64 = 2.0;
    const SCORE_THRESHOLD: f64 = 0.5;

    let study = ctx.study;
    let mut out = ExperimentOutput::default();
    let (d0, d1) = windows::ml_pair_days(study.config.sim_end());
    let day_n = study.pair_store.on_day(d0);
    let day_n1 = study.pair_store.on_day(d1);
    out.record_input(day_n.len() + day_n1.len());
    // Shared with Figure 11 through the study's per-day trie cache: the
    // two ML-pair days are the tail of the four-day pair window, so an
    // incremental re-run builds each day's tries exactly once.
    let scores = study.day_counts(d0);
    let outcomes = study.day_counts(d1);
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };

    // Day n+1 ground truth: whole-space distinct-user totals.
    let (tot_abusive, tot_benign) = outcomes
        .v6_trie()
        .units_at(0)
        .next()
        .map_or((0, 0), |(_, a, b)| (a, b));

    // Variable-length policy: block every entropy cut whose abusive
    // share clears the threshold.
    let cuts = scores.v6_trie().entropy_cuts(BASE_LEN, ENTROPY_THRESHOLD);
    let mut len_counts: BTreeMap<u8, u64> = BTreeMap::new();
    let mut len_sum = 0u64;
    let (mut blocked, mut caught_abusive, mut caught_benign) = (0u64, 0u64, 0u64);
    for cut in &cuts {
        *len_counts.entry(cut.len).or_default() += 1;
        len_sum += u64::from(cut.len);
        if ratio(cut.abusive, cut.abusive + cut.benign) >= SCORE_THRESHOLD {
            blocked += 1;
            if let Some((a, b)) = outcomes.v6_trie().counts_under(cut.bits, cut.len) {
                caught_abusive += a;
                caught_benign += b;
            }
        }
    }

    // Baseline: the fixed /64 policy at the same threshold.
    let (mut p64_blocked, mut p64_abusive, mut p64_benign) = (0u64, 0u64, 0u64);
    for (bits, abusive, benign) in scores.v6_trie().units_at(64) {
        if ratio(abusive, abusive + benign) >= SCORE_THRESHOLD {
            p64_blocked += 1;
            if let Some((a, b)) = outcomes.v6_trie().counts_under(bits, 64) {
                p64_abusive += a;
                p64_benign += b;
            }
        }
    }

    out.stat("ec.cut_count", cuts.len() as f64);
    out.stat("ec.mean_cut_len", ratio(len_sum, cuts.len() as u64));
    out.stat("ec.blocked_cuts", blocked as f64);
    out.stat("ec.recall", ratio(caught_abusive, tot_abusive));
    out.stat("ec.collateral", ratio(caught_benign, tot_benign));
    out.stat("ec.p64_blocked", p64_blocked as f64);
    out.stat("ec.p64_recall", ratio(p64_abusive, tot_abusive));
    out.stat("ec.p64_collateral", ratio(p64_benign, tot_benign));
    out.stat("ec.blocked_vs_p64", ratio(blocked, p64_blocked));
    out.figures.push(
        FigureReport::new("EC1", "entropy-clustered blocklisting cut lengths").with(
            CdfSeries::from_u64(
                "cuts per length",
                len_counts.iter().map(|(&l, &n)| (u64::from(l), n as f64)),
            ),
        ),
    );
    out
}

/// One experiment: paper-artifact id plus its registry function.
type Experiment = (&'static str, fn(&AnalysisCtx) -> ExperimentOutput);

/// Every experiment in paper order.
const EXPERIMENTS: [Experiment; 20] = [
    ("F1", fig1_prevalence),
    ("T1", tab1_asns),
    ("T2/F12", tab2_countries),
    ("C4.4", c44_client_patterns),
    ("F2", fig2_addrs_per_user),
    ("F3", fig3_aa_addrs),
    ("O5.1", o51_user_outliers),
    ("F4", fig4_prefix_span),
    ("F5", fig5_lifespans),
    ("F6", fig6_prefix_lifespans),
    ("F7", fig7_users_per_ip),
    ("F8", fig8_aa_per_ip),
    ("O6.1", o61_ip_outliers),
    ("F9", fig9_users_per_prefix),
    ("F10", fig10_aa_per_prefix),
    ("O6.2", o62_prefix_outliers),
    ("F11", fig11_roc),
    ("S7.2", s72_defenses),
    ("X8.1", x81_network_breakdown),
    ("ApxA", apx_pandemic_compare),
];

/// Experiments beyond the paper's own artifact list, opt-in via
/// `repro --extended`. Kept out of [`EXPERIMENTS`] so the default
/// EXPERIMENTS.md and run report stay byte-identical whether or not the
/// extended pass runs.
const EXTENDED_EXPERIMENTS: [Experiment; 1] = [("EC1", ec_entropy_blocklist)];

/// Runs `registry` on a claim-order worker pool. Workers claim passes
/// from a shared cursor in racy order, but each result lands in its
/// registry-indexed slot and comes back in registry order — so the
/// outputs are byte-identical at any `workers` value.
fn run_pool(
    registry: &[Experiment],
    ctx: &AnalysisCtx<'_>,
    workers: usize,
) -> Vec<(ExperimentOutput, ipv6_study_obs::FigureStat)> {
    let workers = workers.clamp(1, registry.len());
    let slots: Vec<Mutex<Option<(ExperimentOutput, ipv6_study_obs::FigureStat)>>> =
        (0..registry.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(id, func)) = registry.get(i) else {
                    break;
                };
                let (out, stat) = ipv6_study_analysis::timed_figure(id, || {
                    let out = func(ctx);
                    let inputs = out.input_records;
                    (out, inputs)
                });
                *slots[i].lock().expect("no poisoned pass slot") = Some((out, stat));
                // Pass boundary: assert the worker's scratch leases are
                // balanced; pooled kernel buffers stay warm for the next
                // claimed pass.
                scratch_reset();
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned pass slot")
                .expect("every pass slot filled")
        })
        .collect()
}

/// Runs every experiment in paper order, on
/// `config.effective_analysis_threads()` workers.
///
/// When the study was run with `config.instrument`, each pass's wall
/// clock and input cardinality land in `study.report.figures` (plus an
/// `analysis.figure_wall` histogram in the registry), and the engine's
/// index/passes/total walls land in `study.report.analysis_phases` —
/// extending the driver-phase report that [`Study::run`] started.
pub fn run_all(study: &mut Study) -> Vec<(&'static str, ExperimentOutput)> {
    run_all_with(
        study,
        study.config.effective_analysis_threads(),
        IndexMode::Sorted,
    )
}

/// [`run_all`] with explicit worker count and index mode (the equivalence
/// suite exercises both knobs; production goes through [`run_all`]).
///
/// Output is byte-identical at any `workers` value: like the simulation
/// driver, workers claim passes from a shared cursor in racy order, but
/// each result lands in its registry-indexed slot and the merge below
/// walks slots in registry order.
pub fn run_all_with(
    study: &mut Study,
    workers: usize,
    mode: IndexMode,
) -> Vec<(&'static str, ExperimentOutput)> {
    let t_total = Instant::now();

    // Index phase: build the shared per-window indexes once. The windows
    // are lazy, but a full registry run touches all six, so force them
    // here to keep the whole index cost inside this phase's wall.
    let t_index = Instant::now();
    let ctx = AnalysisCtx::with_mode(study, mode);
    ctx.build_all();
    let index_wall = t_index.elapsed();

    // Passes phase: the worker pool. Claim order cannot affect output —
    // passes only read the frozen study and the shared context.
    let t_passes = Instant::now();
    let outs = run_pool(&EXPERIMENTS, &ctx, workers);
    let passes_wall = t_passes.elapsed();
    let index_bytes = ctx.index_bytes();
    let index_records = ctx.index_records();
    drop(ctx);

    // Merge in registry order, so per-figure report entries and registry
    // metrics appear exactly as a serial run would record them.
    let mut results = Vec::with_capacity(EXPERIMENTS.len());
    for ((id, _), (out, stat)) in EXPERIMENTS.iter().zip(outs) {
        if study.config.instrument {
            study
                .report
                .registry
                .record_duration("analysis.figure_wall", stat.wall);
            study.report.figures.push(stat);
            for a in &out.actioning {
                study
                    .report
                    .registry
                    .record_duration("actioning.roc_wall", a.wall);
                study.report.actioning.push(a.clone());
            }
            if let Some(sweep) = &out.sweep {
                study.report.actioning_sweep = sweep.clone();
            }
        }
        results.push((*id, out));
    }
    if study.config.instrument {
        let phase = |name: &str, wall| PhaseStat {
            name: name.to_string(),
            wall,
        };
        study.report.analysis_phases = vec![
            phase("index", index_wall),
            phase("passes", passes_wall),
            phase("total", t_total.elapsed()),
        ];
        study
            .report
            .registry
            .set_gauge("analysis.index_bytes", index_bytes as f64);
        study.report.index_bytes = index_bytes as u64;
        study.report.index_records = index_records;
    }
    results
}

/// Runs the extended (beyond-paper) registry, on
/// `config.effective_analysis_threads()` workers.
///
/// Unlike [`run_all`] this never writes to `study.report`: the extended
/// pass must leave the default BENCH_run.json exactly as untouched as it
/// leaves EXPERIMENTS.md.
pub fn run_extended(study: &Study) -> Vec<(&'static str, ExperimentOutput)> {
    run_extended_with(
        study,
        study.config.effective_analysis_threads(),
        IndexMode::Sorted,
    )
}

/// [`run_extended`] with explicit worker count and index mode (exercised
/// by the extended-equivalence suite; production goes through
/// [`run_extended`]). Byte-identical at any `workers` value.
pub fn run_extended_with(
    study: &Study,
    workers: usize,
    mode: IndexMode,
) -> Vec<(&'static str, ExperimentOutput)> {
    let ctx = AnalysisCtx::with_mode(study, mode);
    let outs = run_pool(&EXTENDED_EXPERIMENTS, &ctx, workers);
    EXTENDED_EXPERIMENTS
        .iter()
        .zip(outs)
        .map(|(&(id, _), (out, _))| (id, out))
        .collect()
}

/// Registry ids in paper order — the section order of EXPERIMENTS.md and
/// the id universe of the incremental engine's pass-invalidation
/// manifest.
pub fn experiment_ids() -> impl Iterator<Item = &'static str> {
    EXPERIMENTS.iter().map(|&(id, _)| id)
}

/// Extended-registry ids (the `repro --extended` passes).
pub fn extended_experiment_ids() -> impl Iterator<Item = &'static str> {
    EXTENDED_EXPERIMENTS.iter().map(|&(id, _)| id)
}

/// Runs only the default-registry passes whose ids are in `ids`, in
/// registry order, plus how many of the six shared windows the re-run
/// had to build — the incremental engine's re-run of the passes
/// invalidated by a timeline extension. Never writes to `study.report`
/// (the caller owns incremental bookkeeping). Unknown ids are ignored;
/// the invalidation registry is pinned to the experiment registry by
/// test, so an unknown id here is a caller bug, not silent drift.
pub fn run_selected(
    study: &Study,
    ids: &[&str],
    workers: usize,
) -> (Vec<(&'static str, ExperimentOutput)>, usize) {
    let registry: Vec<Experiment> = EXPERIMENTS
        .iter()
        .filter(|(id, _)| ids.contains(id))
        .copied()
        .collect();
    if registry.is_empty() {
        return (Vec::new(), 0);
    }
    let ctx = AnalysisCtx::with_mode(study, IndexMode::Sorted);
    let outs = run_pool(&registry, &ctx, workers);
    let built = ctx.windows_built();
    (
        registry
            .iter()
            .zip(outs)
            .map(|(&(id, _), (out, _))| (id, out))
            .collect(),
        built,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;

    #[test]
    fn all_experiments_run_on_a_tiny_study() {
        let mut study = Study::run(StudyConfig::tiny()).unwrap();
        let all = run_all(&mut study);
        assert_eq!(all.len(), 20);
        for (id, out) in &all {
            assert!(
                !out.figures.is_empty() || !out.tables.is_empty() || !out.stats.is_empty(),
                "experiment {id} produced nothing"
            );
            for (name, value) in &out.stats {
                assert!(
                    value.is_finite() || value.is_nan(),
                    "stat {name} is infinite"
                );
            }
        }
        // Instrumentation: one FigureStat per experiment, at least one
        // with nonzero input cardinality, per-granularity actioning, and
        // the engine's own phase walls.
        assert_eq!(study.report.figures.len(), 20);
        assert!(study.report.figures.iter().any(|f| f.input_records > 0));
        assert_eq!(study.report.actioning.len(), 4);
        let phases: Vec<&str> = study
            .report
            .analysis_phases
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(phases, ["index", "passes", "total"]);
        let total = &study.report.analysis_phases[2];
        assert!(study
            .report
            .analysis_phases
            .iter()
            .all(|p| p.wall <= total.wall));
    }

    /// Every registered pass must be known to the windows registry —
    /// otherwise the incremental engine would silently treat it as
    /// always-invalidated (or worse, the registries would drift apart).
    #[test]
    fn every_pass_is_known_to_the_windows_registry() {
        let range = StudyConfig::tiny().full_range;
        for (id, _) in EXPERIMENTS.iter().chain(EXTENDED_EXPERIMENTS.iter()) {
            assert!(
                windows::pass_reads(id, range).is_some(),
                "pass {id} is missing from analysis::windows::pass_reads"
            );
        }
    }

    /// The windows registry and a selected re-run agree: after a one-day
    /// extension exactly the four end-relative passes rerun, and the
    /// re-run builds only the one shared window (§7.2's ip_week) those
    /// passes touch.
    #[test]
    fn selected_rerun_builds_only_the_windows_it_reads() {
        let mut cfg = StudyConfig::tiny();
        cfg.instrument = false;
        let old = cfg.full_range;
        cfg.extend_days = 1;
        let new = cfg.sim_range();
        let invalidated: Vec<&str> = experiment_ids()
            .filter(|id| windows::invalidated_by_extension(id, old, new))
            .collect();
        assert_eq!(invalidated, ["F1", "F11", "S7.2"]);
        let study = Study::run(cfg).unwrap();
        let (outs, built) = run_selected(&study, &invalidated, 2);
        assert_eq!(
            outs.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            invalidated
        );
        assert_eq!(built, 1, "only S7.2's ip_week window is shared");
    }

    #[test]
    fn extended_experiments_leave_the_run_report_untouched() {
        let mut study = Study::run(StudyConfig::tiny()).unwrap();
        let _ = run_all(&mut study);
        let before = study.report.to_json_string();
        let ext = run_extended(&study);
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].0, "EC1");
        assert!(!ext[0].1.stats.is_empty());
        assert!(!ext[0].1.figures.is_empty());
        for (name, value) in &ext[0].1.stats {
            assert!(value.is_finite(), "extended stat {name} is not finite");
        }
        assert_eq!(
            study.report.to_json_string(),
            before,
            "extended pass wrote into the run report"
        );
    }

    #[test]
    fn sweep_stat_lands_in_the_run_report_when_instrumented() {
        let mut study = Study::run(StudyConfig::tiny()).unwrap();
        let _ = run_all(&mut study);
        let sweep = &study.report.actioning_sweep;
        assert_eq!(sweep.days, 4, "one trie pair per pooled day");
        assert!(sweep.trie_nodes > 0, "tries were built");
        assert!(sweep.total_wall() >= sweep.read_wall);
    }

    #[test]
    fn uninstrumented_run_collects_no_figure_stats() {
        let mut cfg = StudyConfig::tiny();
        cfg.instrument = false;
        let mut study = Study::run(cfg).unwrap();
        let all = run_all(&mut study);
        assert_eq!(all.len(), 20);
        assert!(study.report.figures.is_empty());
        assert!(study.report.actioning.is_empty());
        assert_eq!(study.report.actioning_sweep, SweepStat::default());
        assert!(study.report.analysis_phases.is_empty());
    }
}
