//! Predicting heavily-populated addresses from structure.
//!
//! §6.1.3's operational insight: the mega-populated IPv6 addresses live in
//! a handful of ASNs and carry a distinctive IID structure ("the IID bits
//! are all zeros except the least significant 16 bits"), so a platform can
//! *predict* them and exempt them from blocklists/rate limits instead of
//! discovering them through collateral damage. [`HeavyAddressPredictor`]
//! implements that predictor and its precision/recall evaluation.

use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

use ipv6_study_netaddr::IidClass;
use ipv6_study_telemetry::Asn;

/// Predicts whether an IPv6 address is heavily populated from its
/// structure and ASN, without counting users.
#[derive(Debug, Clone, Default)]
pub struct HeavyAddressPredictor {
    /// ASNs known to run gateway-style deployments (learned or configured).
    gateway_asns: HashSet<Asn>,
}

impl HeavyAddressPredictor {
    /// Creates a predictor trusting only the IID signature.
    pub fn structural_only() -> Self {
        Self::default()
    }

    /// Creates a predictor that additionally whitelists known gateway ASNs
    /// (any address there with the signature predicts heavy).
    pub fn with_gateway_asns(asns: impl IntoIterator<Item = Asn>) -> Self {
        Self {
            gateway_asns: asns.into_iter().collect(),
        }
    }

    /// Learns gateway ASNs from observed heavy addresses: any ASN where
    /// most heavy addresses carry the signature is recorded.
    pub fn learn<S1: std::hash::BuildHasher, S2: std::hash::BuildHasher>(
        counts: &HashMap<IpAddr, u64, S1>,
        asn_of: &HashMap<IpAddr, Asn, S2>,
        heavy_threshold: u64,
    ) -> Self {
        let mut sig: HashMap<Asn, (u64, u64)> = HashMap::new(); // (signature, total)
        for (ip, &c) in counts {
            if c <= heavy_threshold {
                continue;
            }
            if let IpAddr::V6(a) = ip {
                if let Some(&asn) = asn_of.get(ip) {
                    let e = sig.entry(asn).or_default();
                    e.1 += 1;
                    if IidClass::classify(*a).is_gateway_signature() {
                        e.0 += 1;
                    }
                }
            }
        }
        Self {
            gateway_asns: sig
                .into_iter()
                .filter(|&(_, (s, t))| t > 0 && s * 2 >= t)
                .map(|(asn, _)| asn)
                .collect(),
        }
    }

    /// The learned/configured gateway ASNs.
    pub fn gateway_asns(&self) -> &HashSet<Asn> {
        &self.gateway_asns
    }

    /// Predicts whether an address is heavily populated.
    ///
    /// Structural rule: the gateway IID signature predicts heavy. When
    /// gateway ASNs are known, the signature is only trusted there
    /// (tightening precision against coincidental low-IID addresses).
    pub fn predict(&self, ip: IpAddr, asn: Option<Asn>) -> bool {
        match ip {
            IpAddr::V6(a) => {
                let sig = IidClass::classify(a).is_gateway_signature();
                if self.gateway_asns.is_empty() {
                    sig
                } else {
                    sig && asn.is_some_and(|x| self.gateway_asns.contains(&x))
                }
            }
            IpAddr::V4(_) => false,
        }
    }

    /// Precision/recall of the predictor against ground-truth user counts.
    pub fn evaluate<S1: std::hash::BuildHasher, S2: std::hash::BuildHasher>(
        &self,
        counts: &HashMap<IpAddr, u64, S1>,
        asn_of: &HashMap<IpAddr, Asn, S2>,
        heavy_threshold: u64,
    ) -> PredictorEval {
        let mut tp = 0u64;
        let mut fp = 0u64;
        let mut fn_ = 0u64;
        for (ip, &c) in counts {
            if !matches!(ip, IpAddr::V6(_)) {
                continue;
            }
            let heavy = c > heavy_threshold;
            let pred = self.predict(*ip, asn_of.get(ip).copied());
            match (heavy, pred) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                (false, false) => {}
            }
        }
        PredictorEval {
            precision: if tp + fp == 0 {
                1.0
            } else {
                tp as f64 / (tp + fp) as f64
            },
            recall: if tp + fn_ == 0 {
                1.0
            } else {
                tp as f64 / (tp + fn_) as f64
            },
            predicted: tp + fp,
            heavy: tp + fn_,
        }
    }
}

/// Evaluation of a heavy-address predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorEval {
    /// TP / (TP + FP).
    pub precision: f64,
    /// TP / (TP + FN).
    pub recall: f64,
    /// Addresses predicted heavy.
    pub predicted: u64,
    /// Addresses actually heavy.
    pub heavy: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn world() -> (HashMap<IpAddr, u64>, HashMap<IpAddr, Asn>) {
        let counts: HashMap<IpAddr, u64> = [
            // Gateway addresses: heavy, signature IIDs, AS20057.
            ("2600:380:1:2::ab1", 40_000u64),
            ("2600:380:1:2::c3", 35_000),
            // Privacy addresses: light.
            ("2001:db8::a1b2:c3d4:e5f6:7788", 1),
            ("2001:db8::b1b2:c3d4:e5f6:8899", 2),
            // A coincidental low-IID address that is NOT heavy.
            ("2001:db8:9::5", 1),
        ]
        .into_iter()
        .map(|(s, c)| (ip(s), c))
        .collect();
        let asn_of: HashMap<IpAddr, Asn> = [
            ("2600:380:1:2::ab1", 20057u32),
            ("2600:380:1:2::c3", 20057),
            ("2001:db8::a1b2:c3d4:e5f6:7788", 64512),
            ("2001:db8::b1b2:c3d4:e5f6:8899", 64512),
            ("2001:db8:9::5", 64512),
        ]
        .into_iter()
        .map(|(s, a)| (ip(s), Asn(a)))
        .collect();
        (counts, asn_of)
    }

    #[test]
    fn structural_predictor_has_full_recall() {
        let (counts, asn_of) = world();
        let p = HeavyAddressPredictor::structural_only();
        let e = p.evaluate(&counts, &asn_of, 10_000);
        assert_eq!(e.recall, 1.0);
        // The coincidental low-IID address is a false positive.
        assert!(e.precision < 1.0);
        assert_eq!(e.heavy, 2);
        assert_eq!(e.predicted, 3);
    }

    #[test]
    fn learned_asns_tighten_precision() {
        let (counts, asn_of) = world();
        let p = HeavyAddressPredictor::learn(&counts, &asn_of, 10_000);
        assert!(p.gateway_asns().contains(&Asn(20057)));
        assert!(!p.gateway_asns().contains(&Asn(64512)));
        let e = p.evaluate(&counts, &asn_of, 10_000);
        assert_eq!(e.precision, 1.0);
        assert_eq!(e.recall, 1.0);
    }

    #[test]
    fn v4_is_never_predicted() {
        let p = HeavyAddressPredictor::structural_only();
        assert!(!p.predict(ip("192.0.2.1"), Some(Asn(20057))));
    }

    #[test]
    fn configured_asns_work_like_learned() {
        let (counts, asn_of) = world();
        let p = HeavyAddressPredictor::with_gateway_asns([Asn(20057)]);
        let e = p.evaluate(&counts, &asn_of, 10_000);
        assert_eq!(e.precision, 1.0);
        assert_eq!(e.recall, 1.0);
    }

    #[test]
    fn empty_world_is_vacuously_perfect() {
        let p = HeavyAddressPredictor::structural_only();
        let e = p.evaluate(&HashMap::new(), &HashMap::new(), 100);
        assert_eq!(e.precision, 1.0);
        assert_eq!(e.recall, 1.0);
        assert_eq!(e.predicted, 0);
    }
}
