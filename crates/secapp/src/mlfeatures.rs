//! IP-behavior features and a from-scratch logistic scorer.
//!
//! §7.2's machine-learning discussion: models using IP features should
//! treat the protocols distinctly, because the same feature (say,
//! users-per-address) has wildly different distributions on IPv4 and IPv6.
//! This module extracts the behavioral features the paper's analyses
//! surface and trains a tiny logistic-regression model to predict whether
//! a unit (address or prefix) will host an abusive account the next day —
//! enough to demonstrate the transfer gap between protocols and the value
//! of per-protocol training.

use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

use ipv6_study_netaddr::IidClass;
use ipv6_study_telemetry::{AbuseLabels, ColumnSlice, IpId, SimDate};

/// Behavioral features of one unit (address) over an observation day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureVector {
    /// log(1 + distinct users).
    pub log_users: f64,
    /// log(1 + requests).
    pub log_requests: f64,
    /// Requests per user.
    pub reqs_per_user: f64,
    /// Whether the address is IPv6.
    pub is_v6: f64,
    /// IPv6 only: whether the IID matches the gateway signature.
    pub gateway_signature: f64,
    /// IPv6 only: whether the IID is MAC-embedded.
    pub mac_embedded: f64,
    /// Share of the unit's requests in night hours (0–6): bots are
    /// diurnal-flat, humans are not.
    pub night_share: f64,
}

impl FeatureVector {
    /// The feature array (with implicit bias handled by the model).
    pub fn as_array(&self) -> [f64; 7] {
        [
            self.log_users,
            self.log_requests,
            self.reqs_per_user,
            self.is_v6,
            self.gateway_signature,
            self.mac_embedded,
            self.night_share,
        ]
    }
}

/// Extracts per-address features from one day of records.
///
/// Accumulation is keyed by interned [`IpId`] (u32) with user dedup on
/// dense ids; addresses are materialized once per distinct unit at the
/// end, not once per record.
pub fn extract_features(records: ColumnSlice<'_>) -> HashMap<IpAddr, FeatureVector> {
    struct Acc {
        users: HashSet<u32>,
        requests: u64,
        night: u64,
    }
    let tables = records.tables();
    let mut acc: HashMap<IpId, Acc> = HashMap::new();
    for ((&id, &user), &ts) in records
        .ip_ids()
        .iter()
        .zip(records.users_dense())
        .zip(records.ts())
    {
        let e = acc.entry(id).or_insert_with(|| Acc {
            users: HashSet::new(),
            requests: 0,
            night: 0,
        });
        e.users.insert(user);
        e.requests += 1;
        if ts.hour() < 6 {
            e.night += 1;
        }
    }
    acc.into_iter()
        .map(|(id, a)| {
            let ip = tables.ips.addr(id);
            let (sig, mac, v6) = match ip {
                IpAddr::V6(addr) => {
                    let c = IidClass::classify(addr);
                    (c.is_gateway_signature(), c.is_mac_embedded(), true)
                }
                IpAddr::V4(_) => (false, false, false),
            };
            let users = a.users.len() as f64;
            (
                ip,
                FeatureVector {
                    log_users: (1.0 + users).ln(),
                    log_requests: (1.0 + a.requests as f64).ln(),
                    reqs_per_user: a.requests as f64 / users.max(1.0),
                    is_v6: f64::from(v6),
                    gateway_signature: f64::from(sig),
                    mac_embedded: f64::from(mac),
                    night_share: a.night as f64 / a.requests.max(1) as f64,
                },
            )
        })
        .collect()
}

/// Builds next-day labels: an address is positive when it hosts at least
/// one abusive account on `next_day`'s records.
pub fn next_day_labels(next_day: ColumnSlice<'_>, labels: &AbuseLabels) -> HashSet<IpAddr> {
    let users = &next_day.tables().users;
    next_day
        .users_dense()
        .iter()
        .enumerate()
        .filter(|(_, &dense)| labels.is_abusive(users.user(dense)))
        .map(|(i, _)| next_day.addr_at(i))
        .collect()
}

/// A logistic-regression model over [`FeatureVector`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    /// Weights, one per feature.
    pub weights: [f64; 7],
    /// Bias term.
    pub bias: f64,
}

impl LogisticModel {
    /// Trains by batch gradient descent with L2 regularization.
    ///
    /// Deterministic: initialization is zeros and the data order is the
    /// caller's. Class imbalance is handled by weighting positives by the
    /// negative/positive ratio.
    pub fn train(data: &[(FeatureVector, bool)], epochs: u32, lr: f64) -> Self {
        let mut w = [0.0f64; 7];
        let mut b = 0.0f64;
        if data.is_empty() {
            return Self {
                weights: w,
                bias: b,
            };
        }
        let pos = data.iter().filter(|(_, y)| *y).count().max(1) as f64;
        let neg = (data.len() as f64 - pos).max(1.0);
        let pos_weight = neg / pos;
        let n = data.len() as f64;
        const L2: f64 = 1e-4;
        for _ in 0..epochs {
            let mut gw = [0.0f64; 7];
            let mut gb = 0.0f64;
            for (fv, y) in data {
                let x = fv.as_array();
                let z: f64 = b + w.iter().zip(x.iter()).map(|(wi, xi)| wi * xi).sum::<f64>();
                let p = 1.0 / (1.0 + (-z).exp());
                let weight = if *y { pos_weight } else { 1.0 };
                let err = (p - f64::from(*y)) * weight;
                for i in 0..7 {
                    gw[i] += err * x[i];
                }
                gb += err;
            }
            for i in 0..7 {
                w[i] -= lr * (gw[i] / n + L2 * w[i]);
            }
            b -= lr * gb / n;
        }
        Self {
            weights: w,
            bias: b,
        }
    }

    /// The predicted probability that the unit hosts abuse tomorrow.
    pub fn predict(&self, fv: &FeatureVector) -> f64 {
        let x = fv.as_array();
        let z: f64 = self.bias
            + self
                .weights
                .iter()
                .zip(x.iter())
                .map(|(w, xi)| w * xi)
                .sum::<f64>();
        1.0 / (1.0 + (-z).exp())
    }

    /// Ranking AUC over labeled data (probability a random positive ranks
    /// above a random negative), computed exactly.
    pub fn auc(&self, data: &[(FeatureVector, bool)]) -> f64 {
        let mut scored: Vec<(f64, bool)> =
            data.iter().map(|(fv, y)| (self.predict(fv), *y)).collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));
        let pos = scored.iter().filter(|(_, y)| *y).count() as f64;
        let neg = scored.len() as f64 - pos;
        if pos == 0.0 || neg == 0.0 {
            return 0.5;
        }
        // Rank-sum with midranks for ties.
        let mut rank_sum = 0.0;
        let mut i = 0;
        let n = scored.len();
        let mut rank = 1.0;
        while i < n {
            let mut j = i;
            while j < n && scored[j].0 == scored[i].0 {
                j += 1;
            }
            let mid = (rank + rank + (j - i) as f64 - 1.0) / 2.0;
            for item in &scored[i..j] {
                if item.1 {
                    rank_sum += mid;
                }
            }
            rank += (j - i) as f64;
            i = j;
        }
        (rank_sum - pos * (pos + 1.0) / 2.0) / (pos * neg)
    }
}

/// Assembles a training set from a (day, next-day) pair: features from
/// `day`, labels from `next_day`, restricted to one protocol when
/// `only_v6` is set.
pub fn training_set(
    day: ColumnSlice<'_>,
    next_day: ColumnSlice<'_>,
    labels: &AbuseLabels,
    only_v6: Option<bool>,
) -> Vec<(FeatureVector, bool)> {
    let features = extract_features(day);
    let positives = next_day_labels(next_day, labels);
    let mut rows: Vec<(IpAddr, FeatureVector)> = features
        .into_iter()
        .filter(|(ip, _)| only_v6.is_none_or(|v6| matches!(ip, IpAddr::V6(_)) == v6))
        .collect();
    // Deterministic order for reproducible training: sort on the unit's
    // address, a *total* key. Sorting on feature values ties for distinct
    // addresses, which lets the accumulator map's per-instance iteration
    // order leak into the gradient summation order — and 200 epochs of
    // descent amplify that rounding noise into visibly different AUCs.
    rows.sort_unstable_by_key(|&(ip, _)| ip);
    rows.into_iter()
        .map(|(ip, fv)| (fv, positives.contains(&ip)))
        .collect()
}

/// Convenience: the focus day pair for ML experiments.
pub fn day_pair(focus: SimDate) -> (SimDate, SimDate) {
    (focus - 1, focus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_telemetry::{AbuseInfo, Asn, Country, OwnedColumns, RequestRecord, UserId};

    fn cols(recs: &[RequestRecord]) -> OwnedColumns {
        OwnedColumns::from_records(recs)
    }

    fn rec(user: u64, ip: &str, hour: u8) -> RequestRecord {
        RequestRecord {
            ts: SimDate::ymd(4, 18).at(hour, 0, 0),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    #[test]
    fn feature_extraction() {
        let recs = vec![
            rec(1, "2600:380:1:2::ab1", 2),
            rec(2, "2600:380:1:2::ab1", 14),
            rec(1, "10.0.0.1", 3),
        ];
        let c = cols(&recs);
        let f = extract_features(c.as_slice());
        let v6 = &f[&"2600:380:1:2::ab1".parse::<IpAddr>().unwrap()];
        assert_eq!(v6.is_v6, 1.0);
        assert_eq!(v6.gateway_signature, 1.0);
        assert!((v6.night_share - 0.5).abs() < 1e-12);
        assert!((v6.log_users - 3.0f64.ln()).abs() < 1e-12);
        let v4 = &f[&"10.0.0.1".parse::<IpAddr>().unwrap()];
        assert_eq!(v4.is_v6, 0.0);
        assert_eq!(v4.night_share, 1.0);
    }

    #[test]
    fn logistic_learns_a_separable_problem() {
        // Positives have high night share and many requests per user.
        let mk = |night: f64, rpu: f64| FeatureVector {
            log_users: 0.7,
            log_requests: rpu.ln().max(0.0) + 0.7,
            reqs_per_user: rpu,
            is_v6: 1.0,
            gateway_signature: 0.0,
            mac_embedded: 0.0,
            night_share: night,
        };
        let mut data = Vec::new();
        for i in 0..200 {
            let jitter = (i % 10) as f64 / 100.0;
            data.push((mk(0.8 + jitter / 4.0, 20.0 + jitter), true));
            data.push((mk(0.05 + jitter / 4.0, 3.0 + jitter), false));
        }
        let model = LogisticModel::train(&data, 400, 0.5);
        let auc = model.auc(&data);
        assert!(auc > 0.95, "AUC {auc}");
        assert!(model.predict(&mk(0.85, 25.0)) > model.predict(&mk(0.02, 2.0)));
    }

    #[test]
    fn auc_of_empty_or_one_class_is_half() {
        let model = LogisticModel::train(&[], 10, 0.1);
        assert_eq!(model.auc(&[]), 0.5);
        let fv = FeatureVector {
            log_users: 0.0,
            log_requests: 0.0,
            reqs_per_user: 1.0,
            is_v6: 0.0,
            gateway_signature: 0.0,
            mac_embedded: 0.0,
            night_share: 0.0,
        };
        assert_eq!(model.auc(&[(fv, true)]), 0.5);
    }

    #[test]
    fn training_set_filters_by_protocol() {
        let labels: AbuseLabels = [(
            UserId(100),
            AbuseInfo {
                created: SimDate::ymd(4, 17),
                detected: SimDate::ymd(4, 19),
            },
        )]
        .into_iter()
        .collect();
        let day = vec![rec(1, "2001:db8::1", 10), rec(2, "10.0.0.1", 10)];
        let next = vec![rec(100, "2001:db8::1", 11)];
        let (cd, cn) = (cols(&day), cols(&next));
        let all = training_set(cd.as_slice(), cn.as_slice(), &labels, None);
        assert_eq!(all.len(), 2);
        let v6_only = training_set(cd.as_slice(), cn.as_slice(), &labels, Some(true));
        assert_eq!(v6_only.len(), 1);
        assert!(v6_only[0].1, "the v6 address hosts abuse next day");
        let v4_only = training_set(cd.as_slice(), cn.as_slice(), &labels, Some(false));
        assert!(!v4_only[0].1);
    }
}
