//! A TTL'd prefix blocklist and its longitudinal evaluation.
//!
//! §7.2: IPv6 blocklisting can be aggressive (few users per address) but
//! must be *short-term* (addresses are ephemeral). [`Blocklist`] is the
//! enforcement structure — a pair of tries with per-entry expiry — and
//! [`evaluate_over_days`] is the harness that measures recall and
//! collateral for a listing policy as the list ages.

use std::collections::HashSet;
use std::net::IpAddr;

use ipv6_study_netaddr::{Ipv4Prefix, Ipv6Prefix, PrefixTrie};
use ipv6_study_telemetry::{AbuseLabels, ColumnSlice, SimDate};

use crate::actioning::{tally, Granularity};

/// A blocklist over IPv4 addresses and IPv6 prefixes with per-entry TTLs.
#[derive(Debug, Clone, Default)]
pub struct Blocklist {
    v4: PrefixTrie<Ipv4Prefix, SimDate>,
    v6: PrefixTrie<Ipv6Prefix, SimDate>,
}

impl Blocklist {
    /// Creates an empty blocklist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lists an IPv4 address until `expires` (inclusive).
    pub fn add_v4(&mut self, prefix: Ipv4Prefix, expires: SimDate) {
        match self.v4.get_mut(&prefix) {
            Some(e) => *e = (*e).max(expires),
            None => {
                self.v4.insert(prefix, expires);
            }
        }
    }

    /// Lists an IPv6 prefix until `expires` (inclusive).
    pub fn add_v6(&mut self, prefix: Ipv6Prefix, expires: SimDate) {
        match self.v6.get_mut(&prefix) {
            Some(e) => *e = (*e).max(expires),
            None => {
                self.v6.insert(prefix, expires);
            }
        }
    }

    /// Whether traffic from `ip` is blocked on `day`.
    ///
    /// Checks *every* covering entry, not just the most specific one: a
    /// stale /128 must not shadow a still-live /64 listing.
    pub fn blocks(&self, ip: IpAddr, day: SimDate) -> bool {
        match ip {
            IpAddr::V4(a) => self
                .v4
                .covering(&Ipv4Prefix::host(a))
                .iter()
                .any(|(_, &exp)| exp >= day),
            IpAddr::V6(a) => self
                .v6
                .covering(&Ipv6Prefix::host(a))
                .iter()
                .any(|(_, &exp)| exp >= day),
        }
    }

    /// Number of live entries on `day`.
    pub fn live_entries(&self, day: SimDate) -> usize {
        self.v4.iter().filter(|(_, &e)| e >= day).count()
            + self.v6.iter().filter(|(_, &e)| e >= day).count()
    }

    /// Builds a blocklist from one day's observations: every unit at the
    /// given granularity whose abusive-account ratio is ≥ `threshold` is
    /// listed for `ttl_days`.
    pub fn from_day(
        records: ColumnSlice<'_>,
        labels: &AbuseLabels,
        granularity: Granularity,
        threshold: f64,
        listed_on: SimDate,
        ttl_days: u16,
    ) -> Self {
        // Shares the actioning radix tally: per-unit (abusive, benign)
        // distinct-user counts keyed by portable address/prefix bits.
        let units = tally(records, labels, granularity);
        let mut bl = Self::new();
        let expires = SimDate::from_index((listed_on.index() + ttl_days).min(365));
        for (key, (abusive, benign)) in units {
            let total = abusive + benign;
            if total == 0 || abusive == 0 {
                continue;
            }
            let ratio = abusive as f64 / total as f64;
            if ratio >= threshold {
                match granularity {
                    Granularity::V6Full => bl.add_v6(Ipv6Prefix::from_bits(key, 128), expires),
                    Granularity::V6Prefix(len) => {
                        // Clamped like every Granularity consumer; the
                        // tally above already masked `key` the same way.
                        bl.add_v6(
                            Ipv6Prefix::from_bits(key, Granularity::v6_len(len)),
                            expires,
                        )
                    }
                    Granularity::V4Full => {
                        bl.add_v4(Ipv4Prefix::from_bits(key as u32, 32), expires)
                    }
                }
            }
        }
        bl
    }
}

/// One day of a blocklist evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlocklistDayEval {
    /// Day offset from listing day (1 = next day).
    pub offset: u16,
    /// Share of that day's abusive accounts blocked (recall).
    pub recall: f64,
    /// Share of that day's benign users blocked (collateral).
    pub collateral: f64,
}

/// Evaluates a blocklist against subsequent days' traffic.
///
/// `days` yields `(day, records)` pairs strictly after the listing day.
pub fn evaluate_over_days<'a>(
    blocklist: &Blocklist,
    labels: &AbuseLabels,
    listed_on: SimDate,
    days: impl IntoIterator<Item = (SimDate, ColumnSlice<'a>)>,
) -> Vec<BlocklistDayEval> {
    days.into_iter()
        .map(|(day, records)| {
            let users = &records.tables().users;
            let mut abusive_all: HashSet<u32> = HashSet::new();
            let mut abusive_hit: HashSet<u32> = HashSet::new();
            let mut benign_all: HashSet<u32> = HashSet::new();
            let mut benign_hit: HashSet<u32> = HashSet::new();
            for (i, &dense) in records.users_dense().iter().enumerate() {
                let blocked = blocklist.blocks(records.addr_at(i), day);
                if labels.is_abusive(users.user(dense)) {
                    abusive_all.insert(dense);
                    if blocked {
                        abusive_hit.insert(dense);
                    }
                } else {
                    benign_all.insert(dense);
                    if blocked {
                        benign_hit.insert(dense);
                    }
                }
            }
            let frac = |hit: usize, all: usize| {
                if all == 0 {
                    0.0
                } else {
                    hit as f64 / all as f64
                }
            };
            BlocklistDayEval {
                offset: day.days_since(listed_on),
                recall: frac(abusive_hit.len(), abusive_all.len()),
                collateral: frac(benign_hit.len(), benign_all.len()),
            }
        })
        .collect()
}

/// A size-bounded blocklist: when full, the entry with the nearest expiry
/// is evicted first (deployments cap list sizes in routers/edge nodes;
/// §7.2's "IPv6 blocklisting can be aggressive" only works if the list
/// doesn't blow past hardware limits — IPv6's ephemerality means entries
/// age out fast, so a bounded list loses little recall).
#[derive(Debug, Clone)]
pub struct BoundedBlocklist {
    inner: Blocklist,
    capacity: usize,
    /// Live v6 entries with expiries, kept for eviction decisions.
    v6_entries: Vec<(Ipv6Prefix, SimDate)>,
    v4_entries: Vec<(Ipv4Prefix, SimDate)>,
}

impl BoundedBlocklist {
    /// Creates a bounded blocklist.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            inner: Blocklist::new(),
            capacity,
            v6_entries: Vec::new(),
            v4_entries: Vec::new(),
        }
    }

    fn evict_if_full(&mut self, now: SimDate) {
        while self.v6_entries.len() + self.v4_entries.len() >= self.capacity {
            // Drop already-expired entries first, then the nearest expiry.
            self.v6_entries.retain(|&(_, e)| e >= now);
            self.v4_entries.retain(|&(_, e)| e >= now);
            if self.v6_entries.len() + self.v4_entries.len() < self.capacity {
                break;
            }
            let v6_min = self.v6_entries.iter().map(|&(_, e)| e).min();
            let v4_min = self.v4_entries.iter().map(|&(_, e)| e).min();
            match (v6_min, v4_min) {
                (Some(a), Some(b)) if a <= b => self.evict_v6(a),
                (Some(_), Some(b)) => self.evict_v4(b),
                (Some(a), None) => self.evict_v6(a),
                (None, Some(b)) => self.evict_v4(b),
                (None, None) => break,
            }
        }
    }

    fn evict_v6(&mut self, expiry: SimDate) {
        if let Some(pos) = self.v6_entries.iter().position(|&(_, e)| e == expiry) {
            let (p, _) = self.v6_entries.swap_remove(pos);
            self.inner.v6.remove(&p);
        }
    }

    fn evict_v4(&mut self, expiry: SimDate) {
        if let Some(pos) = self.v4_entries.iter().position(|&(_, e)| e == expiry) {
            let (p, _) = self.v4_entries.swap_remove(pos);
            self.inner.v4.remove(&p);
        }
    }

    /// Lists an IPv6 prefix, evicting the nearest-expiry entry when full.
    pub fn add_v6(&mut self, prefix: Ipv6Prefix, expires: SimDate, now: SimDate) {
        self.evict_if_full(now);
        self.inner.add_v6(prefix, expires);
        self.v6_entries.push((prefix, expires));
    }

    /// Lists an IPv4 prefix, evicting when full.
    pub fn add_v4(&mut self, prefix: Ipv4Prefix, expires: SimDate, now: SimDate) {
        self.evict_if_full(now);
        self.inner.add_v4(prefix, expires);
        self.v4_entries.push((prefix, expires));
    }

    /// Whether traffic from `ip` is blocked on `day`.
    pub fn blocks(&self, ip: IpAddr, day: SimDate) -> bool {
        self.inner.blocks(ip, day)
    }

    /// Number of live entries.
    pub fn len(&self, day: SimDate) -> usize {
        self.inner.live_entries(day)
    }

    /// True when no live entries remain.
    pub fn is_empty(&self, day: SimDate) -> bool {
        self.len(day) == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_telemetry::{AbuseInfo, Asn, Country, OwnedColumns, RequestRecord, UserId};

    fn cols(recs: &[RequestRecord]) -> OwnedColumns {
        OwnedColumns::from_records(recs)
    }

    fn rec(user: u64, day: SimDate, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: day.at(10, 0, 0),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    fn labels_for(ids: &[u64]) -> AbuseLabels {
        ids.iter()
            .map(|&u| {
                (
                    UserId(u),
                    AbuseInfo {
                        created: SimDate::ymd(4, 10),
                        detected: SimDate::ymd(4, 19),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn bounded_list_evicts_nearest_expiry() {
        let now = SimDate::ymd(4, 13);
        let mut bl = BoundedBlocklist::new(2);
        let p1: Ipv6Prefix = "2001:db8:1::/64".parse().unwrap();
        let p2: Ipv6Prefix = "2001:db8:2::/64".parse().unwrap();
        let p3: Ipv6Prefix = "2001:db8:3::/64".parse().unwrap();
        bl.add_v6(p1, SimDate::ymd(4, 14), now); // expires soonest
        bl.add_v6(p2, SimDate::ymd(4, 20), now);
        bl.add_v6(p3, SimDate::ymd(4, 18), now); // evicts p1
        assert!(
            !bl.blocks("2001:db8:1::1".parse().unwrap(), now),
            "p1 evicted"
        );
        assert!(bl.blocks("2001:db8:2::1".parse().unwrap(), now));
        assert!(bl.blocks("2001:db8:3::1".parse().unwrap(), now));
        assert!(bl.len(now) <= bl.capacity());
    }

    #[test]
    fn bounded_list_prefers_dropping_expired() {
        let mut bl = BoundedBlocklist::new(2);
        let day1 = SimDate::ymd(4, 13);
        let p1: Ipv4Prefix = "192.0.2.1/32".parse().unwrap();
        let p2: Ipv4Prefix = "192.0.2.2/32".parse().unwrap();
        bl.add_v4(p1, SimDate::ymd(4, 13), day1); // will expire
        bl.add_v4(p2, SimDate::ymd(4, 30), day1);
        // Two days later, p1 is expired: adding p3 must drop p1, not p2.
        let day3 = SimDate::ymd(4, 15);
        let p3: Ipv4Prefix = "192.0.2.3/32".parse().unwrap();
        bl.add_v4(p3, SimDate::ymd(4, 30), day3);
        assert!(
            bl.blocks("192.0.2.2".parse().unwrap(), day3),
            "long-lived entry survives"
        );
        assert!(bl.blocks("192.0.2.3".parse().unwrap(), day3));
        assert!(!bl.is_empty(day3));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bounded_list_rejects_zero_capacity() {
        BoundedBlocklist::new(0);
    }

    #[test]
    fn ttl_expiry() {
        let mut bl = Blocklist::new();
        bl.add_v6("2001:db8::/64".parse().unwrap(), SimDate::ymd(4, 15));
        let inside: IpAddr = "2001:db8::1".parse().unwrap();
        assert!(bl.blocks(inside, SimDate::ymd(4, 14)));
        assert!(bl.blocks(inside, SimDate::ymd(4, 15)));
        assert!(!bl.blocks(inside, SimDate::ymd(4, 16)), "expired");
        assert!(!bl.blocks("2001:db9::1".parse().unwrap(), SimDate::ymd(4, 14)));
        assert_eq!(bl.live_entries(SimDate::ymd(4, 15)), 1);
        assert_eq!(bl.live_entries(SimDate::ymd(4, 16)), 0);
    }

    #[test]
    fn re_adding_extends_expiry() {
        let mut bl = Blocklist::new();
        let p: Ipv6Prefix = "2001:db8::/64".parse().unwrap();
        bl.add_v6(p, SimDate::ymd(4, 14));
        bl.add_v6(p, SimDate::ymd(4, 18));
        bl.add_v6(p, SimDate::ymd(4, 12)); // shorter must not shrink
        assert!(bl.blocks("2001:db8::1".parse().unwrap(), SimDate::ymd(4, 17)));
    }

    #[test]
    fn v4_blocking() {
        let mut bl = Blocklist::new();
        bl.add_v4("192.0.2.7/32".parse().unwrap(), SimDate::ymd(4, 20));
        assert!(bl.blocks("192.0.2.7".parse().unwrap(), SimDate::ymd(4, 15)));
        assert!(!bl.blocks("192.0.2.8".parse().unwrap(), SimDate::ymd(4, 15)));
    }

    #[test]
    fn from_day_respects_threshold() {
        let d = SimDate::ymd(4, 18);
        let labels = labels_for(&[100]);
        let records = vec![
            rec(100, d, "2001:db8::a"), // purely abusive address
            rec(100, d, "2001:db8::b"),
            rec(1, d, "2001:db8::b"), // mixed (ratio 0.5)
            rec(2, d, "2001:db8::c"), // purely benign
        ];
        let c = cols(&records);
        let strict = Blocklist::from_day(c.as_slice(), &labels, Granularity::V6Full, 1.0, d, 7);
        assert!(strict.blocks("2001:db8::a".parse().unwrap(), d + 1));
        assert!(!strict.blocks("2001:db8::b".parse().unwrap(), d + 1));
        assert!(!strict.blocks("2001:db8::c".parse().unwrap(), d + 1));
        let loose = Blocklist::from_day(c.as_slice(), &labels, Granularity::V6Full, 0.3, d, 7);
        assert!(loose.blocks("2001:db8::b".parse().unwrap(), d + 1));
        assert!(
            !loose.blocks("2001:db8::c".parse().unwrap(), d + 1),
            "benign-only never listed"
        );
    }

    mod model_based {
        use super::*;
        use ipv6_study_stats::testgen::TestGen;

        /// A naive reference blocklist: a plain list of (prefix, expiry).
        #[derive(Default)]
        struct NaiveList {
            v6: Vec<(Ipv6Prefix, SimDate)>,
        }

        impl NaiveList {
            fn add(&mut self, p: Ipv6Prefix, e: SimDate) {
                self.v6.push((p, e));
            }
            fn blocks(&self, ip: IpAddr, day: SimDate) -> bool {
                let IpAddr::V6(a) = ip else { return false };
                self.v6.iter().any(|&(p, e)| p.contains_addr(a) && e >= day)
            }
        }

        /// The trie-backed blocklist agrees with the naive model on
        /// arbitrary add/query sequences (same-prefix re-adds keep the
        /// max expiry in both).
        #[test]
        fn trie_blocklist_matches_naive_model() {
            let mut g = TestGen::new(0x424C_4B01);
            for _ in 0..128 {
                let mut fast = Blocklist::new();
                let mut naive = NaiveList::default();
                for _ in 0..g.range_u64(1, 39) {
                    // Spread prefixes over a narrow space to force overlap.
                    let raw = (0x2001_0db8u128 << 96) | u128::from(g.next_u64());
                    let p = Ipv6Prefix::from_bits(raw, g.range_u8(40, 128));
                    let e = SimDate::from_index(g.range_u64(100, 139) as u16);
                    fast.add_v6(p, e);
                    naive.add(p, e);
                }
                for _ in 0..40 {
                    let addr = IpAddr::V6(std::net::Ipv6Addr::from(
                        (0x2001_0db8u128 << 96) | u128::from(g.next_u64()),
                    ));
                    let day = SimDate::from_index(g.range_u64(90, 149) as u16);
                    assert_eq!(fast.blocks(addr, day), naive.blocks(addr, day));
                }
            }
        }

        /// A bounded blocklist never exceeds its capacity and anything
        /// it blocks, the unbounded list would block too (eviction only
        /// loses entries, never invents them).
        #[test]
        fn bounded_is_a_subset_of_unbounded() {
            let mut g = TestGen::new(0x424C_4B02);
            for _ in 0..128 {
                let now = SimDate::from_index(95);
                let cap = g.range_u64(1, 7) as usize;
                let mut bounded = BoundedBlocklist::new(cap);
                let mut full = Blocklist::new();
                for _ in 0..g.range_u64(1, 59) {
                    let raw = (0x2001_0db8u128 << 96) | u128::from(g.next_u64());
                    let p = Ipv6Prefix::from_bits(raw, 128);
                    let e = SimDate::from_index(g.range_u64(100, 139) as u16);
                    bounded.add_v6(p, e, now);
                    full.add_v6(p, e);
                }
                assert!(
                    bounded.len(now) <= cap + 1,
                    "len {} cap {}",
                    bounded.len(now),
                    cap
                );
                for _ in 0..30 {
                    let addr = IpAddr::V6(std::net::Ipv6Addr::from(
                        (0x2001_0db8u128 << 96) | u128::from(g.next_u64()),
                    ));
                    let day = SimDate::from_index(g.range_u64(90, 149) as u16);
                    if bounded.blocks(addr, day) {
                        assert!(full.blocks(addr, day));
                    }
                }
            }
        }
    }

    #[test]
    fn evaluation_measures_recall_and_collateral() {
        let d = SimDate::ymd(4, 18);
        let labels = labels_for(&[100, 101]);
        let day_n = vec![rec(100, d, "2001:db8::a")];
        let n = cols(&day_n);
        let bl = Blocklist::from_day(n.as_slice(), &labels, Granularity::V6Full, 0.5, d, 7);
        // Next day: AA 100 returns to the same address; AA 101 is fresh;
        // one benign user on a clean address.
        let next = vec![
            rec(100, d + 1, "2001:db8::a"),
            rec(101, d + 1, "2001:db8::ffff"),
            rec(1, d + 1, "2001:db8::c"),
        ];
        let next_cols = cols(&next);
        let evals = evaluate_over_days(&bl, &labels, d, [(d + 1, next_cols.as_slice())]);
        assert_eq!(evals.len(), 1);
        assert_eq!(evals[0].offset, 1);
        assert!((evals[0].recall - 0.5).abs() < 1e-12);
        assert_eq!(evals[0].collateral, 0.0);
    }
}
