//! The day-over-day actioning simulation (Figure 11).
//!
//! §7.1's scenario, implemented literally: *"we count the proportion of
//! abusive accounts per IP prefix on day n, and consider what would happen
//! on day n+1 if we actioned on all prefixes with a ratio over some
//! threshold t."* The decision unit is an address or prefix at a chosen
//! granularity; the score is day-*n*'s abusive-account share on the unit;
//! the outcome weights are day-*n+1*'s abusive and benign populations.
//!
//! Units that appear only on day *n+1* are never actioned but still count
//! in both denominators — exactly why the paper's /128 TPR tops out at
//! 14.3%: attackers mostly arrive on fresh addresses.

use std::collections::HashMap;
use std::net::IpAddr;
use std::time::Instant;

use ipv6_study_netaddr::Ipv6Prefix;
use ipv6_study_obs::ActioningStat;
use ipv6_study_stats::roc::RocCurve;
use ipv6_study_telemetry::{AbuseLabels, ColumnSlice};

/// The decision-unit granularity for actioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// Full IPv6 addresses (the paper's "/128").
    V6Full,
    /// IPv6 prefixes of the given length (e.g. 64, 56).
    V6Prefix(u8),
    /// Full IPv4 addresses.
    V4Full,
}

impl Granularity {
    /// The unit key for an address, or `None` when the protocol doesn't
    /// match the granularity. Unit keys are portable across days and
    /// table instances — they are address/prefix bits, not intern ids.
    pub(crate) fn unit_bits(self, ip: IpAddr) -> Option<u128> {
        match (self, ip) {
            (Granularity::V6Full, IpAddr::V6(a)) => Some(u128::from(a)),
            (Granularity::V6Prefix(len), IpAddr::V6(a)) => {
                Some(u128::from(a) & Ipv6Prefix::mask(len))
            }
            (Granularity::V4Full, IpAddr::V4(a)) => Some(u128::from(u32::from(a))),
            _ => None,
        }
    }

    /// Human-readable label matching the paper's legend.
    pub fn label(self) -> String {
        match self {
            Granularity::V6Full => "/128".to_string(),
            Granularity::V6Prefix(l) => format!("/{l}"),
            Granularity::V4Full => "IPv4".to_string(),
        }
    }
}

/// Sorts the `(unit, user)` pairs, dedups them (distinct users per unit),
/// and walks the unit runs, materializing each unit's portable `u128` key
/// exactly once. `Counts` are `(abusive, benign)` distinct-user tallies.
fn run_counts<K: Ord + Copy>(
    mut pairs: Vec<(K, u32)>,
    to_key: impl Fn(K) -> u128,
    is_abusive: impl Fn(u32) -> bool,
) -> HashMap<u128, (u64, u64)> {
    pairs.sort_unstable();
    pairs.dedup();
    let mut m = HashMap::with_capacity(64);
    let mut i = 0;
    while i < pairs.len() {
        let unit = pairs[i].0;
        let (mut abusive, mut benign) = (0u64, 0u64);
        while i < pairs.len() && pairs[i].0 == unit {
            if is_abusive(pairs[i].1) {
                abusive += 1;
            } else {
                benign += 1;
            }
            i += 1;
        }
        m.insert(to_key(unit), (abusive, benign));
    }
    m
}

/// Per-unit `(abusive, benign)` distinct-user counts for one day's slice.
///
/// This is a radix-style pass over the interned id columns: at the
/// precomputed granularities the unit id is the record's [`IpId`] raw
/// value or a precomputed /64 /56 /48 prefix id — a `(u32, u32)` sort —
/// and only per distinct unit do we touch the intern table to build the
/// portable `u128` key. No per-record hashing or address materialization.
///
/// [`IpId`]: ipv6_study_telemetry::IpId
pub(crate) fn tally(
    records: ColumnSlice<'_>,
    labels: &AbuseLabels,
    granularity: Granularity,
) -> HashMap<u128, (u64, u64)> {
    let tables = records.tables();
    let ips = &tables.ips;
    let is_abusive = |dense: u32| labels.is_abusive(tables.users.user(dense));
    let ids = records.ip_ids();
    let dense = records.users_dense();
    match granularity {
        Granularity::V6Full => {
            let pairs: Vec<_> = ids
                .iter()
                .zip(dense)
                .filter(|(id, _)| id.is_v6())
                .map(|(&id, &u)| (id, u))
                .collect();
            run_counts(pairs, |id| ips.v6_bits(id), is_abusive)
        }
        Granularity::V4Full => {
            let pairs: Vec<_> = ids
                .iter()
                .zip(dense)
                .filter(|(id, _)| !id.is_v6())
                .map(|(&id, &u)| (id, u))
                .collect();
            run_counts(pairs, |id| u128::from(ips.v4_bits(id)), is_abusive)
        }
        Granularity::V6Prefix(len @ (64 | 56 | 48)) => {
            let pid = |id| match len {
                64 => ips.p64_id(id),
                56 => ips.p56_id(id),
                _ => ips.p48_id(id),
            };
            let pairs: Vec<_> = ids
                .iter()
                .zip(dense)
                .filter(|(id, _)| id.is_v6())
                .map(|(&id, &u)| (pid(id), u))
                .collect();
            run_counts(
                pairs,
                |p| match len {
                    64 => ips.p64_bits(p),
                    56 => ips.p56_bits(p),
                    _ => ips.p48_bits(p),
                },
                is_abusive,
            )
        }
        Granularity::V6Prefix(len) => {
            // Lengths without a precomputed id column mask the stored bits.
            let mask = Ipv6Prefix::mask(len);
            let pairs: Vec<_> = ids
                .iter()
                .zip(dense)
                .filter(|(id, _)| id.is_v6())
                .map(|(&id, &u)| (ips.v6_bits(id) & mask, u))
                .collect();
            run_counts(pairs, |bits| bits, is_abusive)
        }
    }
}

/// Builds the Figure 11 ROC curve for one granularity.
///
/// `day_n` and `day_n1` are the request records of the two consecutive
/// days (full-population or sampled — rates cancel). The returned curve's
/// FPR denominator is the *entire* day-*n+1* benign population at this
/// granularity, including users on units never seen on day *n*.
pub fn actioning_roc(
    day_n: ColumnSlice<'_>,
    day_n1: ColumnSlice<'_>,
    labels: &AbuseLabels,
    granularity: Granularity,
) -> RocCurve {
    actioning_roc_timed(day_n, day_n1, labels, granularity).0
}

/// [`actioning_roc`] plus an observability record: wall clock of the
/// tally-and-curve pass and the decision-unit cardinalities on both days.
/// The timing is passive — the returned curve is identical to the
/// untimed call's.
pub fn actioning_roc_timed(
    day_n: ColumnSlice<'_>,
    day_n1: ColumnSlice<'_>,
    labels: &AbuseLabels,
    granularity: Granularity,
) -> (RocCurve, ActioningStat) {
    let t0 = Instant::now();
    let scores = tally(day_n, labels, granularity);
    let outcomes = tally(day_n1, labels, granularity);
    let mut curve = RocCurve::new();
    for (key, &(out_abusive, out_benign)) in &outcomes {
        let score = match scores.get(key) {
            Some(&(abusive, benign)) => {
                let total = abusive + benign;
                if total == 0 {
                    -1.0
                } else {
                    abusive as f64 / total as f64
                }
            }
            // Unseen yesterday: can never be actioned.
            None => -1.0,
        };
        curve.push(score, out_abusive as f64, out_benign as f64);
    }
    let stat = ActioningStat {
        granularity: granularity.label(),
        wall: t0.elapsed(),
        units_scored: scores.len() as u64,
        units_evaluated: outcomes.len() as u64,
    };
    (curve, stat)
}

/// The paper's three reported operating points (thresholds 0%, 10%, 100%)
/// plus the maximum attainable TPR, for a granularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoints {
    /// TPR/FPR at threshold 0 (action any unit with ≥1 abusive account).
    pub t0: (f64, f64),
    /// TPR/FPR at threshold 10%.
    pub t10: (f64, f64),
    /// TPR/FPR at threshold 100% (purely abusive units only).
    pub t100: (f64, f64),
    /// The maximum TPR over the sweep (attained at threshold → 0⁺).
    pub max_tpr: f64,
}

/// Extracts the paper's operating points from a curve.
pub fn operating_points(curve: &RocCurve) -> OperatingPoints {
    // Threshold 0 means "any unit with a positive score": abusive ratio
    // > 0. Use an epsilon above zero so score-0 units (benign-only
    // yesterday) are not actioned, matching the paper's reading.
    let at = |t: f64| {
        let p = curve.point_at(t, None);
        (p.tpr, p.fpr)
    };
    let t0 = at(1e-9);
    OperatingPoints {
        t0,
        t10: at(0.10),
        t100: at(1.0),
        max_tpr: t0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_telemetry::{
        AbuseInfo, Asn, Country, OwnedColumns, RequestRecord, SimDate, UserId,
    };

    fn cols(recs: &[RequestRecord]) -> OwnedColumns {
        OwnedColumns::from_records(recs)
    }

    fn rec(user: u64, day: SimDate, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: day.at(11, 0, 0),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    fn labels_for(ids: &[u64]) -> AbuseLabels {
        ids.iter()
            .map(|&u| {
                (
                    UserId(u),
                    AbuseInfo {
                        created: SimDate::ymd(4, 17),
                        detected: SimDate::ymd(4, 19),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn granularity_keys() {
        let v6: IpAddr = "2001:db8:1:2::abcd".parse().unwrap();
        let v4: IpAddr = "192.0.2.7".parse().unwrap();
        assert!(Granularity::V6Full.unit_bits(v6).is_some());
        assert!(Granularity::V6Full.unit_bits(v4).is_none());
        assert!(Granularity::V4Full.unit_bits(v4).is_some());
        assert_eq!(
            Granularity::V6Prefix(64).unit_bits(v6),
            Granularity::V6Prefix(64).unit_bits("2001:db8:1:2::ffff".parse().unwrap())
        );
        assert_eq!(Granularity::V6Prefix(56).label(), "/56");
        assert_eq!(Granularity::V4Full.label(), "IPv4");
    }

    #[test]
    fn persistent_attacker_is_caught_fresh_attacker_is_not() {
        let d1 = SimDate::ymd(4, 18);
        let d2 = SimDate::ymd(4, 19);
        let labels = labels_for(&[100, 101]);
        // Day n: AA 100 on ::a (alone). Day n+1: 100 returns to ::a, but
        // AA 101 shows up on a fresh address ::b.
        let day_n = vec![rec(100, d1, "2001:db8::a"), rec(1, d1, "2001:db8::c")];
        let day_n1 = vec![
            rec(100, d2, "2001:db8::a"),
            rec(101, d2, "2001:db8::b"),
            rec(1, d2, "2001:db8::c"),
        ];
        let (n, n1) = (cols(&day_n), cols(&day_n1));
        let curve = actioning_roc(n.as_slice(), n1.as_slice(), &labels, Granularity::V6Full);
        let pts = operating_points(&curve);
        // Only AA 100 (1 of 2) is caught even at the loosest threshold.
        assert!((pts.max_tpr - 0.5).abs() < 1e-12);
        assert_eq!(pts.t0.1, 0.0, "no benign user on the actioned unit");
        // At threshold 1.0 the purely-abusive ::a still qualifies.
        assert!((pts.t100.0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prefix_granularity_catches_movers_within_the_prefix() {
        let d1 = SimDate::ymd(4, 18);
        let d2 = SimDate::ymd(4, 19);
        let labels = labels_for(&[100]);
        // The AA moves to a new address inside the same /64.
        let day_n = vec![rec(100, d1, "2001:db8:1:2::a")];
        let day_n1 = vec![rec(100, d2, "2001:db8:1:2::b")];
        let (n, n1) = (cols(&day_n), cols(&day_n1));
        let full = operating_points(&actioning_roc(
            n.as_slice(),
            n1.as_slice(),
            &labels,
            Granularity::V6Full,
        ));
        let p64 = operating_points(&actioning_roc(
            n.as_slice(),
            n1.as_slice(),
            &labels,
            Granularity::V6Prefix(64),
        ));
        assert_eq!(full.max_tpr, 0.0, "address-level action misses the move");
        assert!((p64.max_tpr - 1.0).abs() < 1e-12, "/64 action catches it");
    }

    #[test]
    fn collateral_damage_shows_up_as_fpr() {
        let d1 = SimDate::ymd(4, 18);
        let d2 = SimDate::ymd(4, 19);
        let labels = labels_for(&[100]);
        // CGN-like: the abusive account shares the v4 address with many
        // benign users on both days.
        let mut day_n = vec![rec(100, d1, "192.0.2.1")];
        let mut day_n1 = vec![rec(100, d2, "192.0.2.1")];
        for u in 0..20 {
            day_n.push(rec(u, d1, "192.0.2.1"));
            day_n1.push(rec(u, d2, "192.0.2.1"));
            day_n1.push(rec(50 + u, d2, "192.0.2.9")); // clean address
        }
        let (n, n1) = (cols(&day_n), cols(&day_n1));
        let curve = actioning_roc(n.as_slice(), n1.as_slice(), &labels, Granularity::V4Full);
        let pts = operating_points(&curve);
        assert!((pts.t0.0 - 1.0).abs() < 1e-12);
        // 20 of 40 benign users are collateral.
        assert!((pts.t0.1 - 0.5).abs() < 1e-12);
        // The 10% threshold drops the mixed unit (ratio 1/21 < 10%).
        assert_eq!(pts.t10.0, 0.0);
        assert_eq!(pts.t10.1, 0.0);
    }

    #[test]
    fn timed_roc_matches_untimed_and_counts_units() {
        let d1 = SimDate::ymd(4, 18);
        let d2 = SimDate::ymd(4, 19);
        let labels = labels_for(&[100]);
        let day_n = vec![rec(100, d1, "2001:db8::a"), rec(1, d1, "2001:db8::c")];
        let day_n1 = vec![
            rec(100, d2, "2001:db8::a"),
            rec(2, d2, "2001:db8::d"),
            rec(1, d2, "2001:db8::c"),
        ];
        let (n, n1) = (cols(&day_n), cols(&day_n1));
        let plain = actioning_roc(n.as_slice(), n1.as_slice(), &labels, Granularity::V6Full);
        let (timed, stat) =
            actioning_roc_timed(n.as_slice(), n1.as_slice(), &labels, Granularity::V6Full);
        for i in 0..=10 {
            let t = i as f64 / 10.0;
            let (a, b) = (plain.point_at(t, None), timed.point_at(t, None));
            assert_eq!((a.tpr, a.fpr), (b.tpr, b.fpr), "t={t}");
        }
        assert_eq!(stat.granularity, "/128");
        assert_eq!(stat.units_scored, 2);
        assert_eq!(stat.units_evaluated, 3);
    }

    #[test]
    fn roc_monotone_over_thresholds() {
        let d1 = SimDate::ymd(4, 18);
        let d2 = SimDate::ymd(4, 19);
        let labels = labels_for(&[100, 101, 102]);
        let day_n = vec![
            rec(100, d1, "2001:db8::1"),
            rec(101, d1, "2001:db8::2"),
            rec(1, d1, "2001:db8::2"),
            rec(2, d1, "2001:db8::3"),
        ];
        let day_n1 = vec![
            rec(100, d2, "2001:db8::1"),
            rec(101, d2, "2001:db8::2"),
            rec(102, d2, "2001:db8::9"),
            rec(1, d2, "2001:db8::2"),
            rec(3, d2, "2001:db8::3"),
        ];
        let (n, n1) = (cols(&day_n), cols(&day_n1));
        let curve = actioning_roc(n.as_slice(), n1.as_slice(), &labels, Granularity::V6Full);
        let mut prev_tpr = f64::INFINITY;
        let mut prev_fpr = f64::INFINITY;
        for i in 0..=10 {
            let p = curve.point_at(i as f64 / 10.0, None);
            assert!(p.tpr <= prev_tpr + 1e-12 && p.fpr <= prev_fpr + 1e-12);
            prev_tpr = p.tpr;
            prev_fpr = p.fpr;
        }
    }
}
