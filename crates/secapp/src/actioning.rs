//! The day-over-day actioning simulation (Figure 11).
//!
//! §7.1's scenario, implemented literally: *"we count the proportion of
//! abusive accounts per IP prefix on day n, and consider what would happen
//! on day n+1 if we actioned on all prefixes with a ratio over some
//! threshold t."* The decision unit is an address or prefix at a chosen
//! granularity; the score is day-*n*'s abusive-account share on the unit;
//! the outcome weights are day-*n+1*'s abusive and benign populations.
//!
//! Units that appear only on day *n+1* are never actioned but still count
//! in both denominators — exactly why the paper's /128 TPR tops out at
//! 14.3%: attackers mostly arrive on fresh addresses.
//!
//! Since the one-pass sweep rewrite, each day's records are folded once
//! into a [`DayCounts`] — a pair of per-family
//! [`AggregationTrie`]s over the day's distinct `(user, address)` pairs —
//! and every granularity's per-unit tallies are read off that shared trie
//! in `O(nodes)`, instead of re-sorting the record set per prefix length.
//! `tally` remains as the naive sort-and-dedup reference (still used by
//! blocklisting, and by the property tests that pin the equivalence).

use std::collections::HashMap;
use std::net::IpAddr;
use std::time::Instant;

use ipv6_study_netaddr::{AggregationTrie, Ipv6Prefix};
use ipv6_study_obs::ActioningStat;
use ipv6_study_stats::roc::RocCurve;
use ipv6_study_telemetry::{AbuseLabels, ColumnSlice, IpId};

/// The decision-unit granularity for actioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// Full IPv6 addresses (the paper's "/128").
    V6Full,
    /// IPv6 prefixes of the given length (e.g. 64, 56).
    V6Prefix(u8),
    /// Full IPv4 addresses.
    V4Full,
}

impl Granularity {
    /// The effective IPv6 prefix length for a requested one: lengths
    /// beyond 128 **clamp** to 128 (a longer-than-address "prefix" can
    /// only mean the full address). Clamping rather than erroring keeps
    /// every granularity API infallible; the clamp is applied uniformly —
    /// unit keys, labels, tallies, blocklists and rate-limiter keying all
    /// agree — so `V6Prefix(129)` behaves exactly like `V6Full`.
    /// (Pre-fix, `Ipv6Prefix::mask(len)` underflowed `MAX_LEN - len` and
    /// panicked.)
    pub fn v6_len(len: u8) -> u8 {
        len.min(Ipv6Prefix::MAX_LEN)
    }

    /// The unit key for an address, or `None` when the protocol doesn't
    /// match the granularity. Unit keys are portable across days and
    /// table instances — they are address/prefix bits, not intern ids.
    pub(crate) fn unit_bits(self, ip: IpAddr) -> Option<u128> {
        match (self, ip) {
            (Granularity::V6Full, IpAddr::V6(a)) => Some(u128::from(a)),
            (Granularity::V6Prefix(len), IpAddr::V6(a)) => {
                Some(u128::from(a) & Ipv6Prefix::mask(Self::v6_len(len)))
            }
            (Granularity::V4Full, IpAddr::V4(a)) => Some(u128::from(u32::from(a))),
            _ => None,
        }
    }

    /// Human-readable label matching the paper's legend. Oversized IPv6
    /// lengths print their effective (clamped) length.
    pub fn label(self) -> String {
        match self {
            Granularity::V6Full => "/128".to_string(),
            Granularity::V6Prefix(l) => format!("/{}", Self::v6_len(l)),
            Granularity::V4Full => "IPv4".to_string(),
        }
    }
}

/// Sorts the `(unit, user)` pairs, dedups them (distinct users per unit),
/// and walks the unit runs, materializing each unit's portable `u128` key
/// exactly once. `Counts` are `(abusive, benign)` distinct-user tallies.
fn run_counts<K: Ord + Copy>(
    mut pairs: Vec<(K, u32)>,
    to_key: impl Fn(K) -> u128,
    is_abusive: impl Fn(u32) -> bool,
) -> HashMap<u128, (u64, u64)> {
    pairs.sort_unstable();
    pairs.dedup();
    let mut m = HashMap::with_capacity(64);
    let mut i = 0;
    while i < pairs.len() {
        let unit = pairs[i].0;
        let (mut abusive, mut benign) = (0u64, 0u64);
        while i < pairs.len() && pairs[i].0 == unit {
            if is_abusive(pairs[i].1) {
                abusive += 1;
            } else {
                benign += 1;
            }
            i += 1;
        }
        m.insert(to_key(unit), (abusive, benign));
    }
    m
}

/// Per-unit `(abusive, benign)` distinct-user counts for one day's slice —
/// the **naive reference** path, one sort per granularity.
///
/// The ROC sweep itself reads counts off a shared [`DayCounts`] trie;
/// this tally remains for single-granularity consumers (blocklist
/// construction) and as the independent oracle the trie is property-
/// tested against.
///
/// This is a radix-style pass over the interned id columns: at the
/// precomputed granularities the unit id is the record's [`IpId`] raw
/// value or a precomputed /64 /56 /48 prefix id — a `(u32, u32)` sort —
/// and only per distinct unit do we touch the intern table to build the
/// portable `u128` key. No per-record hashing or address materialization.
pub(crate) fn tally(
    records: ColumnSlice<'_>,
    labels: &AbuseLabels,
    granularity: Granularity,
) -> HashMap<u128, (u64, u64)> {
    let tables = records.tables();
    let ips = &tables.ips;
    let is_abusive = |dense: u32| labels.is_abusive(tables.users.user(dense));
    let ids = records.ip_ids();
    let dense = records.users_dense();
    match granularity {
        Granularity::V6Full => {
            let pairs: Vec<_> = ids
                .iter()
                .zip(dense)
                .filter(|(id, _)| id.is_v6())
                .map(|(&id, &u)| (id, u))
                .collect();
            run_counts(pairs, |id| ips.v6_bits(id), is_abusive)
        }
        Granularity::V4Full => {
            let pairs: Vec<_> = ids
                .iter()
                .zip(dense)
                .filter(|(id, _)| !id.is_v6())
                .map(|(&id, &u)| (id, u))
                .collect();
            run_counts(pairs, |id| u128::from(ips.v4_bits(id)), is_abusive)
        }
        Granularity::V6Prefix(len @ (64 | 56 | 48)) => {
            let pid = |id| match len {
                64 => ips.p64_id(id),
                56 => ips.p56_id(id),
                _ => ips.p48_id(id),
            };
            let pairs: Vec<_> = ids
                .iter()
                .zip(dense)
                .filter(|(id, _)| id.is_v6())
                .map(|(&id, &u)| (pid(id), u))
                .collect();
            run_counts(
                pairs,
                |p| match len {
                    64 => ips.p64_bits(p),
                    56 => ips.p56_bits(p),
                    _ => ips.p48_bits(p),
                },
                is_abusive,
            )
        }
        Granularity::V6Prefix(len) => {
            // Lengths without a precomputed id column mask the stored bits.
            let mask = Ipv6Prefix::mask(Granularity::v6_len(len));
            let pairs: Vec<_> = ids
                .iter()
                .zip(dense)
                .filter(|(id, _)| id.is_v6())
                .map(|(&id, &u)| (ips.v6_bits(id) & mask, u))
                .collect();
            run_counts(pairs, |bits| bits, is_abusive)
        }
    }
}

/// One day's distinct `(user, address)` pairs folded into per-family
/// counting tries — the shared structure every granularity of the
/// Figure-11 sweep reads from.
///
/// Building is one `(u32 user, u32 ip-index)` pack-sort-dedup per family
/// over the interned id columns (dense ip indices are address-ascending,
/// so the packed order *is* `(user, bits)` order) followed by the
/// `O(pairs)` trie construction; no per-granularity work. The intern
/// table is touched once per distinct pair to materialize portable key
/// bits.
pub struct DayCounts {
    v6: AggregationTrie,
    v4: AggregationTrie,
}

impl DayCounts {
    /// Folds one day's record slice into the per-family counting tries.
    pub fn build(records: ColumnSlice<'_>, labels: &AbuseLabels) -> Self {
        let tables = records.tables();
        let ips = &tables.ips;
        let users = &tables.users;
        let mut v6_packed: Vec<u64> = Vec::new();
        let mut v4_packed: Vec<u64> = Vec::new();
        for (&id, &u) in records.ip_ids().iter().zip(records.users_dense()) {
            let packed = (u64::from(u) << 32) | id.index() as u64;
            if id.is_v6() {
                v6_packed.push(packed);
            } else {
                v4_packed.push(packed);
            }
        }
        let build_family = |packed: &mut Vec<u64>, v6: bool| -> AggregationTrie {
            packed.sort_unstable();
            packed.dedup();
            // One label lookup per user run (the pack keeps users grouped).
            let mut last: Option<(u32, bool)> = None;
            let pairs: Vec<(u128, u32, bool)> = packed
                .iter()
                .map(|&p| {
                    let user = (p >> 32) as u32;
                    let index = (p & 0xffff_ffff) as usize;
                    let abusive = match last {
                        Some((u, a)) if u == user => a,
                        _ => {
                            let a = labels.is_abusive(users.user(user));
                            last = Some((user, a));
                            a
                        }
                    };
                    let bits = if v6 {
                        ips.v6_bits(IpId::new(true, index))
                    } else {
                        // v4 keys are left-aligned in the trie's u128 space.
                        u128::from(ips.v4_bits(IpId::new(false, index))) << 96
                    };
                    (bits, user, abusive)
                })
                .collect();
            AggregationTrie::from_sorted_pairs(if v6 { 128 } else { 32 }, &pairs)
        };
        Self {
            v6: build_family(&mut v6_packed, true),
            v4: build_family(&mut v4_packed, false),
        }
    }

    /// The family trie and effective cut length for a granularity.
    fn trie_and_len(&self, granularity: Granularity) -> (&AggregationTrie, u8) {
        match granularity {
            Granularity::V6Full => (&self.v6, 128),
            Granularity::V6Prefix(len) => (&self.v6, Granularity::v6_len(len)),
            Granularity::V4Full => (&self.v4, 32),
        }
    }

    /// The day's IPv6 counting trie (variable-length cuts read from it
    /// directly, e.g. the entropy-clustered blocklisting experiment).
    pub fn v6_trie(&self) -> &AggregationTrie {
        &self.v6
    }

    /// The day's IPv4 counting trie (keys left-aligned by 96 bits).
    pub fn v4_trie(&self) -> &AggregationTrie {
        &self.v4
    }

    /// Total trie nodes across both families.
    pub fn node_count(&self) -> usize {
        self.v6.node_count() + self.v4.node_count()
    }
}

/// Builds the Figure 11 ROC curve for one granularity.
///
/// `day_n` and `day_n1` are the request records of the two consecutive
/// days (full-population or sampled — rates cancel). The returned curve's
/// FPR denominator is the *entire* day-*n+1* benign population at this
/// granularity, including users on units never seen on day *n*.
pub fn actioning_roc(
    day_n: ColumnSlice<'_>,
    day_n1: ColumnSlice<'_>,
    labels: &AbuseLabels,
    granularity: Granularity,
) -> RocCurve {
    actioning_roc_timed(day_n, day_n1, labels, granularity).0
}

/// [`actioning_roc`] plus an observability record: wall clock of the
/// build-and-curve pass and the decision-unit cardinalities on both days.
/// The timing is passive — the returned curve is identical to the
/// untimed call's.
pub fn actioning_roc_timed(
    day_n: ColumnSlice<'_>,
    day_n1: ColumnSlice<'_>,
    labels: &AbuseLabels,
    granularity: Granularity,
) -> (RocCurve, ActioningStat) {
    let t0 = Instant::now();
    let scores = DayCounts::build(day_n, labels);
    let outcomes = DayCounts::build(day_n1, labels);
    let (curve, mut stat) = actioning_roc_between(&scores, &outcomes, granularity);
    // The standalone call charges the trie builds to this granularity;
    // sweep callers build `DayCounts` once and account for it separately.
    stat.wall = t0.elapsed();
    (curve, stat)
}

/// The read-only half of the sweep: scores day-*n+1*'s units against
/// day-*n*'s abusive ratios at one granularity, off prebuilt
/// [`DayCounts`]. One `O(nodes)` merge-join of the two tries' sorted
/// per-unit count streams — the key property that makes the whole
/// Figure-11 sweep one trie build plus per-cut reads.
///
/// The curve is bit-identical to the naive tally path: per-unit counts
/// are equal integers, and `RocCurve` sums integer-valued weights whose
/// f64 addition is exact in any order.
pub fn actioning_roc_between(
    day_n: &DayCounts,
    day_n1: &DayCounts,
    granularity: Granularity,
) -> (RocCurve, ActioningStat) {
    let t0 = Instant::now();
    let (score_trie, len) = day_n.trie_and_len(granularity);
    let (outcome_trie, _) = day_n1.trie_and_len(granularity);
    let mut curve = RocCurve::new();
    let mut scores = score_trie.units_at(len).peekable();
    for (key, out_abusive, out_benign) in outcome_trie.units_at(len) {
        while matches!(scores.peek(), Some(&(k, _, _)) if k < key) {
            scores.next();
        }
        let score = match scores.peek() {
            Some(&(k, abusive, benign)) if k == key => {
                let total = abusive + benign;
                if total == 0 {
                    -1.0
                } else {
                    abusive as f64 / total as f64
                }
            }
            // Unseen yesterday: can never be actioned.
            _ => -1.0,
        };
        curve.push(score, out_abusive as f64, out_benign as f64);
    }
    let stat = ActioningStat {
        granularity: granularity.label(),
        wall: t0.elapsed(),
        units_scored: score_trie.unit_count(len) as u64,
        units_evaluated: outcome_trie.unit_count(len) as u64,
    };
    (curve, stat)
}

/// The paper's three reported operating points (thresholds 0%, 10%, 100%)
/// plus the maximum attainable TPR, for a granularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoints {
    /// TPR/FPR at threshold 0 (action any unit with ≥1 abusive account).
    pub t0: (f64, f64),
    /// TPR/FPR at threshold 10%.
    pub t10: (f64, f64),
    /// TPR/FPR at threshold 100% (purely abusive units only).
    pub t100: (f64, f64),
    /// The maximum TPR over the sweep (attained at threshold → 0⁺).
    pub max_tpr: f64,
}

/// Extracts the paper's operating points from a curve.
pub fn operating_points(curve: &RocCurve) -> OperatingPoints {
    // Threshold 0 means "any unit with a positive score": abusive ratio
    // > 0. Use an epsilon above zero so score-0 units (benign-only
    // yesterday) are not actioned, matching the paper's reading.
    let at = |t: f64| {
        let p = curve.point_at(t, None);
        (p.tpr, p.fpr)
    };
    let t0 = at(1e-9);
    OperatingPoints {
        t0,
        t10: at(0.10),
        t100: at(1.0),
        max_tpr: t0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_stats::testgen::TestGen;
    use ipv6_study_telemetry::{
        AbuseInfo, Asn, Country, OwnedColumns, RequestRecord, SimDate, UserId,
    };

    fn cols(recs: &[RequestRecord]) -> OwnedColumns {
        OwnedColumns::from_records(recs)
    }

    fn rec(user: u64, day: SimDate, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: day.at(11, 0, 0),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    fn labels_for(ids: &[u64]) -> AbuseLabels {
        ids.iter()
            .map(|&u| {
                (
                    UserId(u),
                    AbuseInfo {
                        created: SimDate::ymd(4, 17),
                        detected: SimDate::ymd(4, 19),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn granularity_keys() {
        let v6: IpAddr = "2001:db8:1:2::abcd".parse().unwrap();
        let v4: IpAddr = "192.0.2.7".parse().unwrap();
        assert!(Granularity::V6Full.unit_bits(v6).is_some());
        assert!(Granularity::V6Full.unit_bits(v4).is_none());
        assert!(Granularity::V4Full.unit_bits(v4).is_some());
        assert_eq!(
            Granularity::V6Prefix(64).unit_bits(v6),
            Granularity::V6Prefix(64).unit_bits("2001:db8:1:2::ffff".parse().unwrap())
        );
        assert_eq!(Granularity::V6Prefix(56).label(), "/56");
        assert_eq!(Granularity::V4Full.label(), "IPv4");
    }

    #[test]
    fn persistent_attacker_is_caught_fresh_attacker_is_not() {
        let d1 = SimDate::ymd(4, 18);
        let d2 = SimDate::ymd(4, 19);
        let labels = labels_for(&[100, 101]);
        // Day n: AA 100 on ::a (alone). Day n+1: 100 returns to ::a, but
        // AA 101 shows up on a fresh address ::b.
        let day_n = vec![rec(100, d1, "2001:db8::a"), rec(1, d1, "2001:db8::c")];
        let day_n1 = vec![
            rec(100, d2, "2001:db8::a"),
            rec(101, d2, "2001:db8::b"),
            rec(1, d2, "2001:db8::c"),
        ];
        let (n, n1) = (cols(&day_n), cols(&day_n1));
        let curve = actioning_roc(n.as_slice(), n1.as_slice(), &labels, Granularity::V6Full);
        let pts = operating_points(&curve);
        // Only AA 100 (1 of 2) is caught even at the loosest threshold.
        assert!((pts.max_tpr - 0.5).abs() < 1e-12);
        assert_eq!(pts.t0.1, 0.0, "no benign user on the actioned unit");
        // At threshold 1.0 the purely-abusive ::a still qualifies.
        assert!((pts.t100.0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prefix_granularity_catches_movers_within_the_prefix() {
        let d1 = SimDate::ymd(4, 18);
        let d2 = SimDate::ymd(4, 19);
        let labels = labels_for(&[100]);
        // The AA moves to a new address inside the same /64.
        let day_n = vec![rec(100, d1, "2001:db8:1:2::a")];
        let day_n1 = vec![rec(100, d2, "2001:db8:1:2::b")];
        let (n, n1) = (cols(&day_n), cols(&day_n1));
        let full = operating_points(&actioning_roc(
            n.as_slice(),
            n1.as_slice(),
            &labels,
            Granularity::V6Full,
        ));
        let p64 = operating_points(&actioning_roc(
            n.as_slice(),
            n1.as_slice(),
            &labels,
            Granularity::V6Prefix(64),
        ));
        assert_eq!(full.max_tpr, 0.0, "address-level action misses the move");
        assert!((p64.max_tpr - 1.0).abs() < 1e-12, "/64 action catches it");
    }

    #[test]
    fn collateral_damage_shows_up_as_fpr() {
        let d1 = SimDate::ymd(4, 18);
        let d2 = SimDate::ymd(4, 19);
        let labels = labels_for(&[100]);
        // CGN-like: the abusive account shares the v4 address with many
        // benign users on both days.
        let mut day_n = vec![rec(100, d1, "192.0.2.1")];
        let mut day_n1 = vec![rec(100, d2, "192.0.2.1")];
        for u in 0..20 {
            day_n.push(rec(u, d1, "192.0.2.1"));
            day_n1.push(rec(u, d2, "192.0.2.1"));
            day_n1.push(rec(50 + u, d2, "192.0.2.9")); // clean address
        }
        let (n, n1) = (cols(&day_n), cols(&day_n1));
        let curve = actioning_roc(n.as_slice(), n1.as_slice(), &labels, Granularity::V4Full);
        let pts = operating_points(&curve);
        assert!((pts.t0.0 - 1.0).abs() < 1e-12);
        // 20 of 40 benign users are collateral.
        assert!((pts.t0.1 - 0.5).abs() < 1e-12);
        // The 10% threshold drops the mixed unit (ratio 1/21 < 10%).
        assert_eq!(pts.t10.0, 0.0);
        assert_eq!(pts.t10.1, 0.0);
    }

    #[test]
    fn timed_roc_matches_untimed_and_counts_units() {
        let d1 = SimDate::ymd(4, 18);
        let d2 = SimDate::ymd(4, 19);
        let labels = labels_for(&[100]);
        let day_n = vec![rec(100, d1, "2001:db8::a"), rec(1, d1, "2001:db8::c")];
        let day_n1 = vec![
            rec(100, d2, "2001:db8::a"),
            rec(2, d2, "2001:db8::d"),
            rec(1, d2, "2001:db8::c"),
        ];
        let (n, n1) = (cols(&day_n), cols(&day_n1));
        let plain = actioning_roc(n.as_slice(), n1.as_slice(), &labels, Granularity::V6Full);
        let (timed, stat) =
            actioning_roc_timed(n.as_slice(), n1.as_slice(), &labels, Granularity::V6Full);
        for i in 0..=10 {
            let t = i as f64 / 10.0;
            let (a, b) = (plain.point_at(t, None), timed.point_at(t, None));
            assert_eq!((a.tpr, a.fpr), (b.tpr, b.fpr), "t={t}");
        }
        assert_eq!(stat.granularity, "/128");
        assert_eq!(stat.units_scored, 2);
        assert_eq!(stat.units_evaluated, 3);
    }

    /// Boundary prefix lengths: 0 (whole space), 128 (full address) and
    /// 129 (oversized — clamps to 128 instead of panicking on mask
    /// underflow).
    #[test]
    fn prefix_length_boundaries_0_128_129() {
        let v6: IpAddr = "2001:db8:1:2::abcd".parse().unwrap();
        assert_eq!(Granularity::V6Prefix(0).unit_bits(v6), Some(0));
        assert_eq!(
            Granularity::V6Prefix(128).unit_bits(v6),
            Granularity::V6Full.unit_bits(v6)
        );
        assert_eq!(
            Granularity::V6Prefix(129).unit_bits(v6),
            Granularity::V6Full.unit_bits(v6)
        );
        assert_eq!(Granularity::V6Prefix(0).label(), "/0");
        assert_eq!(Granularity::V6Prefix(129).label(), "/128");

        // End to end: /129 produces the same curve and stats as /128.
        let d1 = SimDate::ymd(4, 18);
        let d2 = SimDate::ymd(4, 19);
        let labels = labels_for(&[100]);
        let day_n = vec![rec(100, d1, "2001:db8::a"), rec(1, d1, "2001:db8::c")];
        let day_n1 = vec![rec(100, d2, "2001:db8::a"), rec(2, d2, "2001:db8::d")];
        let (n, n1) = (cols(&day_n), cols(&day_n1));
        let (full, full_stat) =
            actioning_roc_timed(n.as_slice(), n1.as_slice(), &labels, Granularity::V6Full);
        let (over, over_stat) = actioning_roc_timed(
            n.as_slice(),
            n1.as_slice(),
            &labels,
            Granularity::V6Prefix(129),
        );
        for i in 0..=10 {
            let t = i as f64 / 10.0;
            let (a, b) = (full.point_at(t, None), over.point_at(t, None));
            assert_eq!((a.tpr, a.fpr), (b.tpr, b.fpr), "t={t}");
        }
        assert_eq!(over_stat.granularity, "/128");
        assert_eq!(over_stat.units_scored, full_stat.units_scored);
        assert_eq!(over_stat.units_evaluated, full_stat.units_evaluated);

        // /0 folds each family into one unit and still works.
        let zero = actioning_roc(
            n.as_slice(),
            n1.as_slice(),
            &labels,
            Granularity::V6Prefix(0),
        );
        let p = zero.point_at(0.4, None);
        assert!(
            (p.tpr - 1.0).abs() < 1e-12,
            "half-abusive whole space actions"
        );
    }

    /// The naive reference: the pre-trie curve loop over `tally` maps.
    fn naive_roc(
        day_n: ColumnSlice<'_>,
        day_n1: ColumnSlice<'_>,
        labels: &AbuseLabels,
        granularity: Granularity,
    ) -> (RocCurve, usize, usize) {
        let scores = tally(day_n, labels, granularity);
        let outcomes = tally(day_n1, labels, granularity);
        let mut curve = RocCurve::new();
        for (key, &(out_abusive, out_benign)) in &outcomes {
            let score = match scores.get(key) {
                Some(&(abusive, benign)) => abusive as f64 / (abusive + benign) as f64,
                None => -1.0,
            };
            curve.push(score, out_abusive as f64, out_benign as f64);
        }
        (curve, scores.len(), outcomes.len())
    }

    /// Randomized day of records: users hop between clustered v6
    /// addresses (shared /48s and /64s) and a small v4 pool.
    fn random_day(g: &mut TestGen, day: SimDate, users: u64) -> Vec<RequestRecord> {
        let n = g.range_u64(20, 300) as usize;
        g.vec_of(n, |g| {
            let user = g.range_u64(0, users);
            let ip = if g.range_u64(0, 4) == 0 {
                IpAddr::V4(std::net::Ipv4Addr::from(
                    0xc000_0200 | (g.range_u64(0, 12) as u32),
                ))
            } else {
                let site = (0x2001_0db8u128 << 96) | (g.range_u64(0, 3) as u128) << 80;
                let subnet = (g.range_u64(0, 40) as u128) << 64;
                let iid = u128::from(g.next_u64() >> g.range_u8(0, 60));
                IpAddr::V6(std::net::Ipv6Addr::from(site | subnet | iid))
            };
            RequestRecord {
                ts: day.at(11, 0, 0),
                user: UserId(user),
                ip,
                asn: Asn(64496),
                country: Country::new("US"),
            }
        })
    }

    /// The tentpole equivalence: the shared-trie sweep reproduces the
    /// naive per-granularity sort-and-dedup ROC — curves, unit counts
    /// and operating points — on randomized populations, across fixed
    /// and odd prefix lengths.
    #[test]
    fn trie_sweep_matches_naive_tally_roc() {
        let mut g = TestGen::new(0x4143_5401);
        let grans = [
            Granularity::V6Full,
            Granularity::V6Prefix(64),
            Granularity::V6Prefix(56),
            Granularity::V6Prefix(48),
            Granularity::V6Prefix(61),
            Granularity::V6Prefix(33),
            Granularity::V6Prefix(0),
            Granularity::V4Full,
        ];
        for _ in 0..24 {
            let users = g.range_u64(2, 40);
            let abusive: Vec<u64> = (0..users).filter(|u| u % 3 == 0).collect();
            let labels = labels_for(&abusive);
            let day_n = random_day(&mut g, SimDate::ymd(4, 18), users);
            let day_n1 = random_day(&mut g, SimDate::ymd(4, 19), users);
            let (n, n1) = (cols(&day_n), cols(&day_n1));
            let counts_n = DayCounts::build(n.as_slice(), &labels);
            let counts_n1 = DayCounts::build(n1.as_slice(), &labels);
            for gran in grans {
                let (trie_curve, stat) = actioning_roc_between(&counts_n, &counts_n1, gran);
                let (naive_curve, scored, evaluated) =
                    naive_roc(n.as_slice(), n1.as_slice(), &labels, gran);
                assert_eq!(stat.units_scored as usize, scored, "{gran:?}");
                assert_eq!(stat.units_evaluated as usize, evaluated, "{gran:?}");
                for i in -2..=20 {
                    let t = i as f64 / 20.0;
                    let (a, b) = (trie_curve.point_at(t, None), naive_curve.point_at(t, None));
                    assert_eq!((a.tpr, a.fpr), (b.tpr, b.fpr), "{gran:?} t={t}");
                }
                assert_eq!(
                    operating_points(&trie_curve),
                    operating_points(&naive_curve),
                    "{gran:?}"
                );
            }
        }
    }

    #[test]
    fn roc_monotone_over_thresholds() {
        let d1 = SimDate::ymd(4, 18);
        let d2 = SimDate::ymd(4, 19);
        let labels = labels_for(&[100, 101, 102]);
        let day_n = vec![
            rec(100, d1, "2001:db8::1"),
            rec(101, d1, "2001:db8::2"),
            rec(1, d1, "2001:db8::2"),
            rec(2, d1, "2001:db8::3"),
        ];
        let day_n1 = vec![
            rec(100, d2, "2001:db8::1"),
            rec(101, d2, "2001:db8::2"),
            rec(102, d2, "2001:db8::9"),
            rec(1, d2, "2001:db8::2"),
            rec(3, d2, "2001:db8::3"),
        ];
        let (n, n1) = (cols(&day_n), cols(&day_n1));
        let curve = actioning_roc(n.as_slice(), n1.as_slice(), &labels, Granularity::V6Full);
        let mut prev_tpr = f64::INFINITY;
        let mut prev_fpr = f64::INFINITY;
        for i in 0..=10 {
            let p = curve.point_at(i as f64 / 10.0, None);
            assert!(p.tpr <= prev_tpr + 1e-12 && p.fpr <= prev_fpr + 1e-12);
            prev_tpr = p.tpr;
            prev_fpr = p.fpr;
        }
    }
}
