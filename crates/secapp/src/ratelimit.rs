//! Per-prefix rate limiting.
//!
//! §7.2: IPv4 thresholds must be liberal because users-per-address varies
//! wildly; IPv6 thresholds "can be set more tightly … by assuming a small
//! number of legitimate users per IPv6 address or prefix". This module
//! provides:
//!
//! - [`recommend_threshold`] — turn a users-per-key distribution plus a
//!   per-user request budget into a keyed rate limit that throttles at most
//!   a target share of keys;
//! - [`RateLimiter`] — a token-bucket enforcement engine keyed by address
//!   or prefix, for end-to-end tests and examples.

use std::collections::HashMap;
use std::net::IpAddr;

use ipv6_study_netaddr::Ipv6Prefix;
use ipv6_study_stats::Ecdf;
use ipv6_study_telemetry::Timestamp;

/// A recommended per-key rate limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdRecommendation {
    /// The users-per-key value at the protected quantile.
    pub users_at_quantile: u64,
    /// Requests per day to allow per key.
    pub requests_per_day: u64,
    /// The share of keys whose daily legitimate volume stays under the
    /// limit by construction (the quantile).
    pub protected_share: f64,
}

/// Recommends a per-key daily request limit: enough for the users-per-key
/// distribution's `quantile` (e.g. 0.999) times a per-user budget.
pub fn recommend_threshold(
    users_per_key: &Ecdf,
    per_user_daily_requests: u64,
    quantile: f64,
) -> ThresholdRecommendation {
    let users = users_per_key.quantile(quantile).unwrap_or(1).max(1);
    ThresholdRecommendation {
        users_at_quantile: users,
        requests_per_day: users * per_user_daily_requests,
        protected_share: quantile,
    }
}

/// The enforcement key for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitKey {
    /// Full-address keying.
    Addr(IpAddr),
    /// IPv6-prefix keying (IPv4 stays full-address).
    V6Prefix(u128, u8),
}

/// How a limiter keys requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyPolicy {
    /// Key on the full source address.
    FullAddress,
    /// Key IPv6 on a prefix of the given length, IPv4 on the full address.
    V6PrefixLen(u8),
}

impl KeyPolicy {
    fn key(self, ip: IpAddr) -> LimitKey {
        match (self, ip) {
            (KeyPolicy::V6PrefixLen(len), IpAddr::V6(a)) => {
                // Lengths beyond 128 clamp to the full address, matching
                // `Granularity::v6_len` (see secapp::actioning).
                let len = len.min(Ipv6Prefix::MAX_LEN);
                LimitKey::V6Prefix(u128::from(a) & Ipv6Prefix::mask(len), len)
            }
            _ => LimitKey::Addr(ip),
        }
    }
}

/// A token-bucket rate limiter keyed by address or prefix.
///
/// Buckets hold `burst` tokens and refill at `rate_per_sec`. This is the
/// classic long-term-rate + burst shape; the §7.2 recommendation maps a
/// daily budget onto `rate_per_sec = budget / 86_400` with a burst of a
/// few minutes' worth.
#[derive(Debug)]
pub struct RateLimiter {
    policy: KeyPolicy,
    rate_per_sec: f64,
    burst: f64,
    buckets: HashMap<LimitKey, (f64, Timestamp)>, // (tokens, last update)
}

impl RateLimiter {
    /// Creates a limiter.
    ///
    /// # Panics
    /// Panics on non-positive rate or burst.
    pub fn new(policy: KeyPolicy, rate_per_sec: f64, burst: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && burst >= 1.0,
            "invalid limiter parameters"
        );
        Self {
            policy,
            rate_per_sec,
            burst,
            buckets: HashMap::new(),
        }
    }

    /// Processes one request; returns true when allowed.
    ///
    /// The refill clock only moves forward: a request with `now` before
    /// the bucket's last update spends a token at the current fill but
    /// does not rewind `last` — otherwise the next in-order request would
    /// refill from the rewound clock and be granted extra tokens.
    pub fn allow(&mut self, ip: IpAddr, now: Timestamp) -> bool {
        let key = self.policy.key(ip);
        let (tokens, last) = self.buckets.entry(key).or_insert((self.burst, now));
        if now.secs() > last.secs() {
            let elapsed = (now.secs() - last.secs()) as f64;
            *tokens = (*tokens + elapsed * self.rate_per_sec).min(self.burst);
            *last = now;
        }
        if *tokens >= 1.0 {
            *tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Number of tracked keys.
    pub fn tracked_keys(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_telemetry::SimDate;

    #[test]
    fn recommendation_scales_with_distribution() {
        // IPv6-like: almost every address has one user.
        let v6 = Ecdf::from_values(std::iter::repeat_n(1u64, 999).chain([3]));
        let r6 = recommend_threshold(&v6, 100, 0.999);
        assert_eq!(r6.users_at_quantile, 1);
        assert_eq!(r6.requests_per_day, 100);
        // IPv4-like: heavy tail of shared addresses.
        let v4 = Ecdf::from_values((0..1000u64).map(|i| if i < 700 { 2 } else { 50 }));
        let r4 = recommend_threshold(&v4, 100, 0.999);
        assert!(r4.requests_per_day >= 5_000, "v4 needs a liberal limit");
        assert!(r4.requests_per_day > 10 * r6.requests_per_day);
    }

    #[test]
    fn empty_distribution_recommends_minimum() {
        let e = Ecdf::from_values(std::iter::empty());
        let r = recommend_threshold(&e, 50, 0.999);
        assert_eq!(r.users_at_quantile, 1);
        assert_eq!(r.requests_per_day, 50);
    }

    #[test]
    fn token_bucket_throttles_and_refills() {
        let mut rl = RateLimiter::new(KeyPolicy::FullAddress, 1.0, 3.0);
        let ip: IpAddr = "2001:db8::1".parse().unwrap();
        let t0 = SimDate::ymd(4, 13).at(12, 0, 0);
        assert!(rl.allow(ip, t0));
        assert!(rl.allow(ip, t0));
        assert!(rl.allow(ip, t0));
        assert!(!rl.allow(ip, t0), "burst exhausted");
        // Two seconds later, two tokens refilled.
        let t2 = SimDate::ymd(4, 13).at(12, 0, 2);
        assert!(rl.allow(ip, t2));
        assert!(rl.allow(ip, t2));
        assert!(!rl.allow(ip, t2));
        // Other keys are independent.
        assert!(rl.allow("2001:db8::2".parse().unwrap(), t2));
        assert_eq!(rl.tracked_keys(), 2);
    }

    #[test]
    fn prefix_keying_shares_a_bucket_across_the_64() {
        let mut rl = RateLimiter::new(KeyPolicy::V6PrefixLen(64), 0.001, 2.0);
        let t = SimDate::ymd(4, 13).at(12, 0, 0);
        let a: IpAddr = "2001:db8:1:2::a".parse().unwrap();
        let b: IpAddr = "2001:db8:1:2::b".parse().unwrap();
        let other: IpAddr = "2001:db8:1:3::a".parse().unwrap();
        assert!(rl.allow(a, t));
        assert!(rl.allow(b, t));
        assert!(!rl.allow(a, t), "same /64 bucket");
        assert!(rl.allow(other, t), "different /64");
        // IPv4 under the same policy keys per address.
        let v4a: IpAddr = "192.0.2.1".parse().unwrap();
        assert!(rl.allow(v4a, t));
    }

    #[test]
    #[should_panic(expected = "invalid limiter")]
    fn bad_parameters_rejected() {
        RateLimiter::new(KeyPolicy::FullAddress, 0.0, 1.0);
    }

    /// Regression: an out-of-order request must not rewind the refill
    /// clock. With the rewind bug, the t=90 request below reset `last`
    /// to 90, so the t=101 request refilled 11 seconds' worth of tokens
    /// instead of 1 and the bucket over-granted.
    #[test]
    fn out_of_order_requests_do_not_rewind_the_refill_clock() {
        let mut rl = RateLimiter::new(KeyPolicy::FullAddress, 1.0, 3.0);
        let ip: IpAddr = "2001:db8::1".parse().unwrap();
        let at = |s| SimDate::ymd(4, 13).at(12, 1, s);
        for _ in 0..3 {
            assert!(rl.allow(ip, at(40)), "burst of 3");
        }
        assert!(!rl.allow(ip, at(40)), "burst exhausted");
        // A late-arriving request 10s in the past: still denied (no
        // tokens), and it must not move the clock back.
        assert!(!rl.allow(ip, at(30)));
        // 1s after the true last update: exactly one token refilled.
        assert!(rl.allow(ip, at(41)));
        assert!(
            !rl.allow(ip, at(41)),
            "rewound clock over-refilled the bucket"
        );
    }

    /// Out-of-order requests still spend tokens at the current fill.
    #[test]
    fn out_of_order_requests_spend_from_the_current_bucket() {
        let mut rl = RateLimiter::new(KeyPolicy::FullAddress, 1.0, 2.0);
        let ip: IpAddr = "2001:db8::7".parse().unwrap();
        let at = |s| SimDate::ymd(4, 13).at(12, 1, s);
        assert!(rl.allow(ip, at(40)));
        assert!(rl.allow(ip, at(20)), "past request spends the second token");
        assert!(!rl.allow(ip, at(40)), "bucket is empty at the frontier");
    }

    /// Prefix lengths beyond 128 clamp to the full address instead of
    /// panicking on mask underflow.
    #[test]
    fn oversized_prefix_length_clamps_to_full_address() {
        let mut rl = RateLimiter::new(KeyPolicy::V6PrefixLen(129), 0.001, 1.0);
        let t = SimDate::ymd(4, 13).at(12, 0, 0);
        let a: IpAddr = "2001:db8::a".parse().unwrap();
        let b: IpAddr = "2001:db8::b".parse().unwrap();
        assert!(rl.allow(a, t));
        assert!(rl.allow(b, t), "distinct addresses key separately at /128");
        assert!(!rl.allow(a, t));
    }
}
