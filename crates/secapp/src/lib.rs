//! §7 — IP-based security applications.
//!
//! The study's payoff section: given the behavioral differences measured in
//! §5–§6, how should defenses treat IPv6? Each module implements one
//! mechanism the paper discusses, plus the evaluation harness that
//! regenerates its numbers:
//!
//! - [`actioning`] — the day-*n* → day-*n+1* actioning simulation behind
//!   Figure 11's ROC curves, at any prefix granularity.
//! - [`blocklist`] — a TTL'd prefix blocklist and its recall/collateral
//!   evaluation over time (the "IPv6 blocklisting is likely most effective
//!   when deployed short term" analysis of §7.2).
//! - [`ratelimit`] — per-prefix rate limiting: threshold recommendation
//!   from users-per-key distributions ("thresholds can be set more tightly"
//!   on IPv6) and a token-bucket enforcement engine.
//! - [`threat_exchange`] — intelligence value decay: how fast a shared
//!   list of abusive IPv6 addresses goes stale (§7.2's "the value of
//!   intelligence on suspicious IPv6 addresses degrades quickly").
//! - [`mlfeatures`] — IP-behavior feature extraction plus a from-scratch
//!   logistic-regression scorer, for the "models may perform better if
//!   treating the two protocols distinctly" discussion.
//! - [`signatures`] — the heavily-populated-address predictor built on the
//!   §6.1.3 IID signature, enabling the "predict outliers and exempt them"
//!   policy the paper recommends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actioning;
pub mod blocklist;
pub mod mlfeatures;
pub mod ratelimit;
pub mod signatures;
pub mod threat_exchange;

pub use actioning::{
    actioning_roc, actioning_roc_between, actioning_roc_timed, DayCounts, Granularity,
};
pub use blocklist::{Blocklist, BoundedBlocklist};
pub use mlfeatures::{FeatureVector, LogisticModel};
pub use ratelimit::{recommend_threshold, RateLimiter};
pub use signatures::HeavyAddressPredictor;
pub use threat_exchange::value_decay;
