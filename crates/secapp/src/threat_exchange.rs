//! Threat-intelligence value decay.
//!
//! §7.2: *"the value of intelligence on suspicious IPv6 addresses degrades
//! quickly."* We quantify that: share today's abusive units (addresses or
//! prefixes) as an indicator list, then measure what fraction of each
//! subsequent day's abusive accounts the list still catches. The decay
//! curve is the product a threat exchange actually delivers to consumers.

use std::collections::HashSet;

use ipv6_study_telemetry::{AbuseLabels, ColumnSlice};

use crate::actioning::Granularity;

/// One day of an indicator list's residual value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayPoint {
    /// Days since the list was shared (0 = same day).
    pub offset: u16,
    /// Share of that day's abusive accounts appearing on listed units.
    pub residual_recall: f64,
    /// Share of that day's benign users appearing on listed units
    /// (consumer collateral if they act blindly on the feed).
    pub collateral: f64,
}

/// Builds the indicator list from `day0` (every unit hosting an abusive
/// account) and evaluates its residual value on each of `later_days`.
pub fn value_decay<'a>(
    day0: ColumnSlice<'_>,
    labels: &AbuseLabels,
    granularity: Granularity,
    later_days: impl IntoIterator<Item = (u16, ColumnSlice<'a>)>,
) -> Vec<DecayPoint> {
    let mut listed: HashSet<u128> = HashSet::new();
    let day0_users = &day0.tables().users;
    for (i, &dense) in day0.users_dense().iter().enumerate() {
        if labels.is_abusive(day0_users.user(dense)) {
            if let Some(k) = granularity.unit_bits(day0.addr_at(i)) {
                listed.insert(k);
            }
        }
    }
    later_days
        .into_iter()
        .map(|(offset, records)| {
            let users = &records.tables().users;
            let mut aa_all: HashSet<u32> = HashSet::new();
            let mut aa_hit: HashSet<u32> = HashSet::new();
            let mut benign_all: HashSet<u32> = HashSet::new();
            let mut benign_hit: HashSet<u32> = HashSet::new();
            for (i, &dense) in records.users_dense().iter().enumerate() {
                let key = granularity.unit_bits(records.addr_at(i));
                let hit = key.is_some_and(|k| listed.contains(&k));
                if labels.is_abusive(users.user(dense)) {
                    aa_all.insert(dense);
                    if hit {
                        aa_hit.insert(dense);
                    }
                } else if key.is_some() {
                    benign_all.insert(dense);
                    if hit {
                        benign_hit.insert(dense);
                    }
                }
            }
            let frac = |h: usize, a: usize| if a == 0 { 0.0 } else { h as f64 / a as f64 };
            DecayPoint {
                offset,
                residual_recall: frac(aa_hit.len(), aa_all.len()),
                collateral: frac(benign_hit.len(), benign_all.len()),
            }
        })
        .collect()
}

/// Summarizes a decay curve as its half-life: the first offset at which
/// residual recall drops below half the day-0 (or first-point) value.
/// Returns `None` when recall never halves within the curve.
pub fn half_life(points: &[DecayPoint]) -> Option<u16> {
    let base = points.first()?.residual_recall;
    if base == 0.0 {
        return Some(0);
    }
    points
        .iter()
        .find(|p| p.residual_recall < base / 2.0)
        .map(|p| p.offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_telemetry::{
        AbuseInfo, Asn, Country, OwnedColumns, RequestRecord, SimDate, UserId,
    };

    fn cols(recs: &[RequestRecord]) -> OwnedColumns {
        OwnedColumns::from_records(recs)
    }

    fn rec(user: u64, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: SimDate::ymd(4, 15).at(10, 0, 0),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    fn labels_for(ids: &[u64]) -> AbuseLabels {
        ids.iter()
            .map(|&u| {
                (
                    UserId(u),
                    AbuseInfo {
                        created: SimDate::ymd(4, 10),
                        detected: SimDate::ymd(4, 19),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn decay_measures_residual_recall() {
        let labels = labels_for(&[100, 101, 102]);
        let day0 = vec![rec(100, "2001:db8::a"), rec(101, "2001:db8::b")];
        // Day 1: 100 persists on a listed address, 102 is fresh.
        let day1 = vec![rec(100, "2001:db8::a"), rec(102, "2001:db8::c9")];
        // Day 2: all attackers moved.
        let day2 = vec![rec(101, "2001:db8::e1")];
        let (c0, c1, c2) = (cols(&day0), cols(&day1), cols(&day2));
        let pts = value_decay(
            c0.as_slice(),
            &labels,
            Granularity::V6Full,
            [(1u16, c1.as_slice()), (2, c2.as_slice())],
        );
        assert!((pts[0].residual_recall - 0.5).abs() < 1e-12);
        assert_eq!(pts[1].residual_recall, 0.0);
        assert_eq!(half_life(&pts), Some(2));
    }

    #[test]
    fn collateral_counts_benign_on_listed_units() {
        let labels = labels_for(&[100]);
        let day0 = vec![rec(100, "192.0.2.1")];
        let day1 = vec![rec(1, "192.0.2.1"), rec(2, "192.0.2.2")];
        let (c0, c1) = (cols(&day0), cols(&day1));
        let pts = value_decay(
            c0.as_slice(),
            &labels,
            Granularity::V4Full,
            [(1u16, c1.as_slice())],
        );
        assert!((pts[0].collateral - 0.5).abs() < 1e-12);
        assert_eq!(pts[0].residual_recall, 0.0, "no abusive accounts that day");
    }

    #[test]
    fn prefix_lists_decay_slower() {
        let labels = labels_for(&[100]);
        let day0 = vec![rec(100, "2001:db8:1:2::a")];
        // Attacker rotates within the /64.
        let day1 = vec![rec(100, "2001:db8:1:2::b")];
        let (c0, c1) = (cols(&day0), cols(&day1));
        let full = value_decay(
            c0.as_slice(),
            &labels,
            Granularity::V6Full,
            [(1u16, c1.as_slice())],
        );
        let p64 = value_decay(
            c0.as_slice(),
            &labels,
            Granularity::V6Prefix(64),
            [(1u16, c1.as_slice())],
        );
        assert_eq!(full[0].residual_recall, 0.0);
        assert!((p64[0].residual_recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_life_edge_cases() {
        assert_eq!(half_life(&[]), None);
        let flat = vec![
            DecayPoint {
                offset: 1,
                residual_recall: 0.4,
                collateral: 0.0,
            },
            DecayPoint {
                offset: 2,
                residual_recall: 0.35,
                collateral: 0.0,
            },
        ];
        assert_eq!(half_life(&flat), None);
        let zero = vec![DecayPoint {
            offset: 1,
            residual_recall: 0.0,
            collateral: 0.0,
        }];
        assert_eq!(half_life(&zero), Some(0));
    }
}
