//! Abusive-account labels.
//!
//! §3.1: the paper joins its request datasets with *"millions of
//! high-confidence abusive accounts labeled by Facebook"*; §3.3 stresses
//! that detection (mostly within a day of an account becoming active)
//! censors the observable lifetime of abusive accounts. Our label set
//! records both the creation and the detection date so that analyses can
//! reproduce this censoring honestly — an account's requests simply stop
//! after detection, exactly like accounts actioned by the real platform.

use std::collections::HashMap;

use crate::ids::UserId;
use crate::time::SimDate;

/// Label metadata for one abusive account.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbuseInfo {
    /// Day the account became active.
    pub created: SimDate,
    /// Day the platform detected and actioned it (activity stops here).
    pub detected: SimDate,
}

impl AbuseInfo {
    /// Number of days the account was active (≥ 1: creation day counts).
    pub fn active_days(&self) -> u16 {
        self.detected.days_since(self.created) + 1
    }
}

/// The labeled abusive-account dataset.
#[derive(Debug, Clone, Default)]
pub struct AbuseLabels {
    labels: HashMap<UserId, AbuseInfo>,
}

impl AbuseLabels {
    /// Creates an empty label set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a label. Re-labeling an account keeps the earliest creation
    /// and detection dates (labels are append-only facts).
    pub fn insert(&mut self, user: UserId, info: AbuseInfo) {
        self.labels
            .entry(user)
            .and_modify(|e| {
                e.created = e.created.min(info.created);
                e.detected = e.detected.min(info.detected);
            })
            .or_insert(info);
    }

    /// Whether the account is labeled abusive (as of the label snapshot).
    pub fn is_abusive(&self, user: UserId) -> bool {
        self.labels.contains_key(&user)
    }

    /// Label metadata for an account.
    pub fn get(&self, user: UserId) -> Option<AbuseInfo> {
        self.labels.get(&user).copied()
    }

    /// Number of labeled accounts.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no accounts are labeled.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates `(user, info)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, AbuseInfo)> + '_ {
        self.labels.iter().map(|(&u, &i)| (u, i))
    }

    /// Fraction of labeled accounts detected within `days` days of creation
    /// — the censoring statistic the paper reports ("the vast majority of
    /// observed abusive accounts are detected within a day", §3.3).
    pub fn detected_within(&self, days: u16) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        let quick = self
            .labels
            .values()
            .filter(|i| i.detected.days_since(i.created) <= days)
            .count();
        quick as f64 / self.labels.len() as f64
    }
}

impl FromIterator<(UserId, AbuseInfo)> for AbuseLabels {
    fn from_iter<T: IntoIterator<Item = (UserId, AbuseInfo)>>(iter: T) -> Self {
        let mut l = Self::new();
        for (u, i) in iter {
            l.insert(u, i);
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_queries() {
        let mut l = AbuseLabels::new();
        l.insert(
            UserId(1),
            AbuseInfo {
                created: SimDate::ymd(4, 10),
                detected: SimDate::ymd(4, 10),
            },
        );
        l.insert(
            UserId(2),
            AbuseInfo {
                created: SimDate::ymd(4, 10),
                detected: SimDate::ymd(4, 15),
            },
        );
        assert!(l.is_abusive(UserId(1)));
        assert!(!l.is_abusive(UserId(3)));
        assert_eq!(l.len(), 2);
        assert_eq!(l.get(UserId(2)).unwrap().active_days(), 6);
        assert_eq!(l.detected_within(0), 0.5);
        assert_eq!(l.detected_within(5), 1.0);
    }

    #[test]
    fn relabel_keeps_earliest() {
        let mut l = AbuseLabels::new();
        l.insert(
            UserId(1),
            AbuseInfo {
                created: SimDate::ymd(4, 12),
                detected: SimDate::ymd(4, 14),
            },
        );
        l.insert(
            UserId(1),
            AbuseInfo {
                created: SimDate::ymd(4, 10),
                detected: SimDate::ymd(4, 16),
            },
        );
        let i = l.get(UserId(1)).unwrap();
        assert_eq!(i.created, SimDate::ymd(4, 10));
        assert_eq!(i.detected, SimDate::ymd(4, 14));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn empty_set_statistics() {
        let l = AbuseLabels::new();
        assert_eq!(l.detected_within(7), 0.0);
        assert!(l.is_empty());
    }
}
